/**
 * @file
 * google-benchmark micro-benchmarks for the campaign persistence
 * layer: JSON write, parse + validate, shard merge, and the
 * summarize() pass — the per-checkpoint and per-merge costs a sharded
 * sweep pays, measured on synthetic results so no simulation runs.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "fault/serialize.hpp"

using namespace nocalert;
using namespace nocalert::fault;

namespace {

CampaignResult
syntheticResult(std::size_t runs, unsigned shard_index = 0,
                unsigned shard_count = 1)
{
    CampaignResult result;
    result.config.shardIndex = shard_index;
    result.config.shardCount = shard_count;
    result.totalSitesEnumerated = runs * 4;
    result.goldenFlits = 123456;
    result.shardRunsPlanned = (runs + shard_count - 1 - shard_index) /
                              shard_count;

    for (std::size_t i = shard_index; i < runs; i += shard_count) {
        FaultRunResult run;
        run.sampleIndex = i;
        run.site.router = static_cast<noc::NodeId>(i % 64);
        run.site.signal = static_cast<SignalClass>(i % kNumSignalClasses);
        run.site.port = static_cast<int>(i % 5);
        run.site.vc = static_cast<int>(i % 4);
        run.site.bit = static_cast<unsigned>(i % 3);
        run.injectCycle = 32000;
        run.violated = i % 3 == 0;
        run.detected = i % 3 != 1;
        run.detectionLatency = run.detected
                                   ? static_cast<noc::Cycle>(i % 40)
                                   : kNoDetection;
        run.simultaneousCheckers = run.detected ? 1 + i % 4 : 0;
        if (run.detected)
            run.invariants = {static_cast<core::InvariantId>(1 + i % 32)};
        result.runs.push_back(std::move(run));
    }
    return result;
}

void
BM_WriteCampaignJson(benchmark::State &state)
{
    const CampaignResult result =
        syntheticResult(static_cast<std::size_t>(state.range(0)));
    std::size_t bytes = 0;
    for (auto _ : state) {
        const std::string text = writeCampaignJson(result);
        bytes = text.size();
        benchmark::DoNotOptimize(text);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(result.runs.size()));
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_WriteCampaignJson)->Arg(100)->Arg(2000);

void
BM_ReadCampaignJson(benchmark::State &state)
{
    const std::string text = writeCampaignJson(
        syntheticResult(static_cast<std::size_t>(state.range(0))));
    for (auto _ : state) {
        auto result = readCampaignJson(text);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_ReadCampaignJson)->Arg(100)->Arg(2000);

void
BM_MergeShards(benchmark::State &state)
{
    const auto total = static_cast<std::size_t>(state.range(0));
    constexpr unsigned kShards = 4;
    std::vector<CampaignResult> shards;
    for (unsigned i = 0; i < kShards; ++i)
        shards.push_back(syntheticResult(total, i, kShards));
    for (auto _ : state) {
        auto merged = mergeCampaignShards(shards);
        benchmark::DoNotOptimize(merged);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MergeShards)->Arg(2000);

void
BM_Summarize(benchmark::State &state)
{
    const CampaignResult result =
        syntheticResult(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        const CampaignSummary summary = result.summarize();
        benchmark::DoNotOptimize(summary);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Summarize)->Arg(2000);

} // namespace
