/**
 * @file
 * Ablation over the temporal fault model (paper Section 5.2 and
 * Observation 3): the same site sample injected as single-bit
 * transient, intermittent, and permanent (stuck-inverted) faults.
 *
 * The paper's evaluation uses transients and argues the checkers work
 * identically for permanents — the assertion simply stays raised.
 * This bench quantifies the campaign-level consequences: permanent
 * faults convert many benign transients into real correctness
 * violations (invariant 5's transient-NOP/permanent-deadlock duality
 * writ large), while detection latency stays near-instantaneous.
 * It also surfaces the one honest gap of pure invariance checking:
 * permanently stuck-at control lines that never produce an *illegal*
 * output (e.g. a credit line stuck at "full") starve traffic without
 * tripping any checker — detectable only by end-to-end schemes.
 *
 * Usage: ablation_fault_kinds [--sites N] [--rate R]
 */

#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace nocalert;

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseBenchOptions(argc, argv);

    std::printf("Ablation — temporal fault model (same %u-site sample "
                "per kind; 6x6 mesh)\n\n",
                std::max(30u, options.campaign.maxSites / 3));

    Table table({"fault kind", "runs", "violations", "TP", "FP", "TN",
                 "FN", "same-cycle"});

    for (fault::FaultKind kind :
         {fault::FaultKind::Transient, fault::FaultKind::Intermittent,
          fault::FaultKind::Permanent}) {
        fault::CampaignConfig config = options.campaign;
        config.network.width = 6;
        config.network.height = 6;
        config.warmup = 600;
        config.kind = kind;
        config.maxSites = std::max(30u, config.maxSites / 3);
        config.runForever = false;

        const fault::CampaignResult result =
            bench::runCampaign(config, faultKindName(kind));
        const fault::CampaignSummary summary = result.summarize();

        std::uint64_t violations = 0;
        for (const fault::FaultRunResult &run : result.runs)
            violations += run.violated ? 1 : 0;

        using fault::Outcome;
        const Histogram &lat = summary.detectionLatency;
        table.addRow(
            {faultKindName(kind), std::to_string(summary.runs),
             std::to_string(violations),
             Table::pct(summary.pct(summary.nocalert[static_cast<unsigned>(
                 Outcome::TruePositive)])),
             Table::pct(summary.pct(summary.nocalert[static_cast<unsigned>(
                 Outcome::FalsePositive)])),
             Table::pct(summary.pct(summary.nocalert[static_cast<unsigned>(
                 Outcome::TrueNegative)])),
             Table::pct(summary.pct(summary.nocalert[static_cast<unsigned>(
                 Outcome::FalseNegative)])),
             lat.empty() ? "-" : Table::pct(100.0 * lat.cdfAt(0), 1)});

        // Permanent-fault false negatives are the documented gap:
        // name the sites so the claim is auditable.
        for (const fault::FaultRunResult &run : result.runs) {
            if (run.violated && !run.detected) {
                std::printf("  [%s] undetected violation at %s "
                            "(invariance-silent starvation)\n",
                            faultKindName(kind),
                            run.site.describe().c_str());
            }
        }
    }
    table.print();
    std::printf("\ntransient faults: 0%% FN (the paper's fault model). "
                "Permanent stuck-at faults on credit/valid lines can "
                "starve traffic without an illegal output — the gap "
                "end-to-end schemes like ForEVeR close.\n");
    return 0;
}
