/**
 * @file
 * Regenerates Figure 6: the fault-coverage breakdown (true positive /
 * false positive / true negative / false negative percentages) for
 * NoCAlert, NoCAlert Cautious, and ForEVeR, at two injection
 * instants — cycle 0 (empty network) and a warmed-up network (the
 * paper's cycle 32K).
 *
 * Also prints the Observation-5 partition of the faults that caused
 * no same-cycle assertion (Section 5.4).
 *
 * Usage: fig06_coverage [--sites N] [--rate R] [--warm N] [--full]
 */

#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace nocalert;

namespace {

void
addDetectorRows(Table &table, const char *instant,
                const fault::CampaignSummary &summary)
{
    auto row = [&](const char *detector,
                   const std::array<std::uint64_t, fault::kNumOutcomes>
                       &counts) {
        using fault::Outcome;
        table.addRow(
            {instant, detector,
             Table::pct(summary.pct(
                 counts[static_cast<unsigned>(Outcome::TruePositive)])),
             Table::pct(summary.pct(
                 counts[static_cast<unsigned>(Outcome::FalsePositive)])),
             Table::pct(summary.pct(
                 counts[static_cast<unsigned>(Outcome::TrueNegative)])),
             Table::pct(summary.pct(counts[static_cast<unsigned>(
                 Outcome::FalseNegative)]))});
    };
    row("NoCAlert", summary.nocalert);
    row("NoCAlert Cautious", summary.cautious);
    row("ForEVeR", summary.forever);
}

void
printObservation5(const char *instant,
                  const fault::CampaignSummary &summary)
{
    if (summary.noInstantAlert == 0)
        return;
    const double later = 100.0 *
        static_cast<double>(summary.noInstantCaughtLater) /
        static_cast<double>(summary.noInstantAlert);
    const double benign = 100.0 *
        static_cast<double>(summary.noInstantBenignUndetected) /
        static_cast<double>(summary.noInstantAlert);
    std::printf(
        "[%s] faults with no same-cycle assertion: %llu — caught by a "
        "subsequent checker: %.1f%%, never detected & benign: %.1f%%, "
        "never detected & malicious: %llu (paper Observation 5: must "
        "be 0)\n",
        instant,
        static_cast<unsigned long long>(summary.noInstantAlert), later,
        benign,
        static_cast<unsigned long long>(
            summary.noInstantViolatedUndetected));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseBenchOptions(argc, argv);

    // ---- Instant 1: cycle 0 (empty network) ----
    fault::CampaignConfig cold = options.campaign;
    cold.warmup = 0;
    const fault::CampaignResult cold_result =
        bench::runCampaign(cold, "fig06 cycle-0");
    const fault::CampaignSummary cold_summary = cold_result.summarize();

    // ---- Instant 2: warmed-up network (paper: cycle 32K) ----
    fault::CampaignConfig warm = options.campaign;
    warm.warmup = options.warmInstant;
    const fault::CampaignResult warm_result =
        bench::runCampaign(warm, "fig06 warm");
    const fault::CampaignSummary warm_summary = warm_result.summarize();

    std::printf("Figure 6 — fault coverage breakdown over %llu "
                "injections per instant (%zu enumerated sites; "
                "single-bit transients, uniform random traffic, 8x8 "
                "mesh)\n\n",
                static_cast<unsigned long long>(cold_summary.runs),
                cold_result.totalSitesEnumerated);

    Table table({"instant", "detector", "true-pos", "false-pos",
                 "true-neg", "false-neg"});
    addDetectorRows(table, "cycle 0", cold_summary);
    addDetectorRows(table, "warm", warm_summary);
    table.print();

    std::printf("\npaper reference (Fig 6): cycle 0  — TP 51.64 / FP "
                "30.62 (22.01 cautious) / TN 17.73 (26.35), FN 0\n");
    std::printf("                         cycle 32K — TP 38.45 / FP "
                "45.33 (36.62 cautious) / TN 16.22 (24.93), FN 0\n\n");

    printObservation5("cycle 0", cold_summary);
    printObservation5("warm", warm_summary);
    return 0;
}
