/**
 * @file
 * Regenerates Figure 9: the cumulative distribution of invariance
 * violations as a function of the number of simultaneously asserted
 * checkers (distinct invariants firing in the first detection cycle).
 *
 * Paper reference: most violations are caught by about two checkers
 * at once; the maximum observed was nine.
 *
 * Usage: fig09_simultaneity [--sites N] [--rate R] [--full]
 */

#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace nocalert;

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseBenchOptions(argc, argv);

    fault::CampaignConfig config = options.campaign;
    config.warmup = options.warmInstant;
    const fault::CampaignResult result =
        bench::runCampaign(config, "fig09");
    const fault::CampaignSummary summary = result.summarize();
    const Histogram &simultaneous = summary.simultaneous;

    std::printf("Figure 9 — CDF of detections vs number of "
                "simultaneously asserted checkers (%llu detected "
                "faults)\n\n",
                static_cast<unsigned long long>(simultaneous.count()));

    if (simultaneous.empty()) {
        std::printf("no detections (increase --sites)\n");
        return 0;
    }

    Table table({"# simultaneous checkers", "detections", "CDF"});
    for (const auto &[value, count] : simultaneous.points()) {
        table.addRow({std::to_string(value), std::to_string(count),
                      Table::pct(100.0 * simultaneous.cdfAt(value), 1)});
    }
    table.print();

    std::printf("\nmedian %lld, max %lld simultaneously asserted "
                "checkers (paper: mode ~2, max 9)\n",
                static_cast<long long>(simultaneous.percentile(0.5)),
                static_cast<long long>(simultaneous.max()));
    return 0;
}
