/**
 * @file
 * Regenerates Figure 8: the share of invariance violations captured
 * by each individual checker over all fault runs.
 *
 * Paper notes reproduced here: invariant 27 never fires because the
 * runs use atomic VC buffers, and every checker that fires does so in
 * at least one run where it matters. Invariant 29 additionally cannot
 * fire in this model: with the ST schedule holding a single entry per
 * port, a multi-VC read cannot be expressed structurally (see
 * EXPERIMENTS.md).
 *
 * Usage: fig08_checker_profile [--sites N] [--rate R] [--full]
 */

#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace nocalert;

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseBenchOptions(argc, argv);

    fault::CampaignConfig config = options.campaign;
    config.warmup = options.warmInstant;
    const fault::CampaignResult result =
        bench::runCampaign(config, "fig08");
    const fault::CampaignSummary summary = result.summarize();

    std::uint64_t participations = 0;
    for (unsigned i = 1; i <= core::kNumInvariants; ++i)
        participations += summary.perInvariant[i];

    std::printf("Figure 8 — share of violations captured per checker "
                "(%llu detected-fault participations over %llu "
                "injections)\n\n",
                static_cast<unsigned long long>(participations),
                static_cast<unsigned long long>(summary.runs));

    Table table({"checker", "name", "faults", "share"});
    for (unsigned i = 1; i <= core::kNumInvariants; ++i) {
        const auto id = static_cast<core::InvariantId>(i);
        const std::uint64_t count = summary.perInvariant[i];
        const double share = participations
            ? 100.0 * static_cast<double>(count) /
                  static_cast<double>(participations)
            : 0.0;
        table.addRow({std::to_string(i), core::invariantName(id),
                      std::to_string(count), Table::pct(share, 2)});
    }
    table.print();

    std::printf("\nnotes: invariant 27 requires non-atomic buffers "
                "(absent from the paper's Fig 8 as well); invariant 29 "
                "is structurally unreachable in this router model.\n");
    return 0;
}
