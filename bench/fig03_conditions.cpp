/**
 * @file
 * Regenerates Figure 3: the mapping of the 32 invariances onto the
 * four fundamental network-correctness conditions (no flit drop,
 * bounded delivery, no new flit generation, no corruption/mixing) —
 * and cross-validates the static taxonomy empirically: for every
 * checker, which conditions were actually breached in the
 * true-positive runs it participated in.
 *
 * Usage: fig03_conditions [--sites N] [--rate R] [--full]
 */

#include <array>
#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace nocalert;

namespace {

std::string
conditionMarks(std::uint8_t bits)
{
    std::string out;
    out += (bits & core::kBoundedDelivery) ? "BD " : "-- ";
    out += (bits & core::kNoFlitDrop) ? "FD " : "-- ";
    out += (bits & core::kNoNewFlitGeneration) ? "NG " : "-- ";
    out += (bits & core::kNoCorruptionOrMixing) ? "CM" : "--";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseBenchOptions(argc, argv);

    fault::CampaignConfig config = options.campaign;
    config.warmup = options.warmInstant;
    config.runForever = false;
    const fault::CampaignResult result =
        bench::runCampaign(config, "fig03");

    // Tally, per invariant, the correctness-condition bits of the
    // true-positive runs it participated in. The strict consistency
    // check uses only *lone* attributions (runs where exactly one
    // distinct checker fired): with co-located checkers, a run's
    // condition bits cannot be assigned to any one of them.
    std::array<std::uint8_t, core::kNumInvariants + 1> observed = {};
    std::array<std::uint8_t, core::kNumInvariants + 1> lone = {};
    std::array<std::uint64_t, core::kNumInvariants + 1> tp_runs = {};
    for (const fault::FaultRunResult &run : result.runs) {
        if (run.outcome() != fault::Outcome::TruePositive)
            continue;
        for (core::InvariantId id : run.invariants) {
            observed[core::invariantIndex(id)] |=
                run.violatedConditions;
            tp_runs[core::invariantIndex(id)] += 1;
        }
        if (run.invariants.size() == 1) {
            lone[core::invariantIndex(run.invariants[0])] |=
                run.violatedConditions;
        }
    }

    std::printf("Figure 3 — invariances vs the four correctness "
                "conditions (BD=bounded delivery, FD=no flit drop, "
                "NG=no new flit, CM=no corruption/mixing)\n");
    std::printf("static = this library's taxonomy; observed = "
                "conditions actually breached in true-positive runs "
                "the checker participated in (%zu injections)\n\n",
                result.runs.size());

    Table table({"#", "invariant", "static", "observed*", "TP runs",
                 "lone-consistent"});
    unsigned inconsistencies = 0;
    for (const core::InvariantInfo &info : core::invariantCatalog()) {
        const unsigned i = core::invariantIndex(info.id);
        // Strict consistency over lone attributions only: a condition
        // breached in a run where this checker fired *alone* must be
        // part of its static taxonomy. (The converse needs larger
        // samples — a checker guards conditions its sampled faults
        // may not have breached.)
        const bool consistent = (lone[i] & ~info.conditions) == 0;
        if (!consistent)
            ++inconsistencies;
        table.addRow({std::to_string(i), info.name,
                      conditionMarks(info.conditions),
                      tp_runs[i] ? conditionMarks(observed[i])
                                 : "(no data)",
                      std::to_string(tp_runs[i]),
                      lone[i] ? (consistent ? "yes" : "NO") : "n/a"});
    }
    table.print();

    std::printf("\ntaxonomy violations (lone-attributed conditions "
                "outside the static mapping): %u\n",
                inconsistencies);
    std::printf("* co-located checkers share a run's condition bits, "
                "so the observed column is an upper bound per "
                "checker; '(no data)' rows need --full for "
                "coverage.\n");
    return 0;
}
