/**
 * @file
 * Regenerates Figure 7: the cumulative fault-detection delay
 * distribution of the true-positive faults, NoCAlert vs ForEVeR
 * (epoch length 1,500 cycles).
 *
 * Paper reference: NoCAlert captures 97% of true positives in the
 * injection cycle, 99% within 9 cycles, 100% within 28; ForEVeR needs
 * ~3,000 cycles for 99% and ~12,000 for 100% — the >100x detection-
 * latency gap.
 *
 * Usage: fig07_detection_latency [--sites N] [--rate R] [--full]
 */

#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace nocalert;

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseBenchOptions(argc, argv);

    fault::CampaignConfig config = options.campaign;
    config.warmup = options.warmInstant;
    const fault::CampaignResult result =
        bench::runCampaign(config, "fig07");
    const fault::CampaignSummary summary = result.summarize();

    const Histogram &noca = summary.detectionLatency;
    const Histogram &fever = summary.foreverLatency;

    std::printf("Figure 7 — cumulative detection-delay distribution "
                "(true positives; ForEVeR epoch = %lld cycles)\n\n",
                static_cast<long long>(config.forever.epochLength));

    Table table({"delay (cycles)", "NoCAlert CDF", "ForEVeR CDF"});
    for (std::int64_t delay :
         {0LL, 1LL, 2LL, 4LL, 9LL, 16LL, 28LL, 64LL, 256LL, 1024LL,
          1500LL, 3000LL, 4500LL, 6000LL, 9000LL, 12000LL}) {
        table.addRow({std::to_string(delay),
                      noca.empty() ? "-" : Table::pct(
                          100.0 * noca.cdfAt(delay), 1),
                      fever.empty() ? "-" : Table::pct(
                          100.0 * fever.cdfAt(delay), 1)});
    }
    table.print();

    if (!noca.empty()) {
        std::printf("\nNoCAlert:  same-cycle %.1f%%  p99 %lld cy  max "
                    "%lld cy  (paper: 97%% / 9 cy / 28 cy)\n",
                    100.0 * noca.cdfAt(0),
                    static_cast<long long>(noca.percentile(0.99)),
                    static_cast<long long>(noca.max()));
    }
    if (!fever.empty()) {
        std::printf("ForEVeR:   p99 %lld cy  max %lld cy  (paper: "
                    "~3,000 / ~11,995 cy)\n",
                    static_cast<long long>(fever.percentile(0.99)),
                    static_cast<long long>(fever.max()));
    }
    if (!noca.empty() && !fever.empty() && noca.mean() > 0) {
        std::printf("mean-latency improvement: %.0fx (paper: >100x)\n",
                    fever.mean() / noca.mean());
    } else if (!noca.empty() && !fever.empty()) {
        std::printf("mean latencies: NoCAlert %.2f cy vs ForEVeR %.0f "
                    "cy (paper: >100x gap)\n",
                    noca.mean(), fever.mean());
    }
    return 0;
}
