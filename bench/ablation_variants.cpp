/**
 * @file
 * Ablation over the Section 4.4 router variants: the same stratified
 * fault campaign run against the non-atomic, speculative, VC-less,
 * and adaptive-routing router designs. Demonstrates that the
 * invariance-checking approach (with the variant-adjusted invariant
 * set) preserves the zero-false-negative property beyond the baseline
 * micro-architecture.
 *
 * Usage: ablation_variants [--sites N] [--rate R]
 */

#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace nocalert;

namespace {

struct Variant
{
    const char *name;
    void (*tweak)(noc::NetworkConfig &);
};

void
baseline(noc::NetworkConfig &)
{
}

void
nonAtomic(noc::NetworkConfig &config)
{
    config.router.atomicBuffers = false;
}

void
speculative(noc::NetworkConfig &config)
{
    config.router.speculative = true;
}

void
noVcs(noc::NetworkConfig &config)
{
    config.router.numVcs = 1;
    config.router.classes = {{"data", 5}};
}

void
noVcsExtended(noc::NetworkConfig &config)
{
    noVcs(config);
    config.router.extendedChecks = true;
}

void
westFirst(noc::NetworkConfig &config)
{
    config.routing = noc::RoutingAlgo::WestFirst;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseBenchOptions(argc, argv);

    const Variant variants[] = {
        {"baseline", baseline},
        {"non-atomic buffers", nonAtomic},
        {"speculative VA+SA", speculative},
        {"no VCs", noVcs},
        {"no VCs + ext checks", noVcsExtended},
        {"west-first adaptive", westFirst},
    };

    std::printf("Ablation — NoCAlert across router variants "
                "(Section 4.4 applicability claim)\n\n");

    Table table({"variant", "runs", "TP", "FP", "TN", "FN",
                 "same-cycle", "max latency"});

    for (const Variant &variant : variants) {
        fault::CampaignConfig config = options.campaign;
        // Keep the ablation affordable: a 6x6 mesh and a smaller
        // per-variant sample still exercise every signal class.
        config.network.width = 6;
        config.network.height = 6;
        config.warmup = 600;
        config.maxSites = std::max(30u, config.maxSites / 3);
        config.runForever = false;
        variant.tweak(config.network);

        const fault::CampaignResult result =
            bench::runCampaign(config, variant.name);
        const fault::CampaignSummary summary = result.summarize();

        using fault::Outcome;
        const Histogram &lat = summary.detectionLatency;
        table.addRow(
            {variant.name, std::to_string(summary.runs),
             Table::pct(summary.pct(summary.nocalert[static_cast<unsigned>(
                 Outcome::TruePositive)])),
             Table::pct(summary.pct(summary.nocalert[static_cast<unsigned>(
                 Outcome::FalsePositive)])),
             Table::pct(summary.pct(summary.nocalert[static_cast<unsigned>(
                 Outcome::TrueNegative)])),
             Table::pct(summary.pct(summary.nocalert[static_cast<unsigned>(
                 Outcome::FalseNegative)])),
             lat.empty() ? "-" : Table::pct(100.0 * lat.cdfAt(0), 1),
             lat.empty() ? "-"
                         : std::to_string(lat.max()) + " cy"});
    }
    table.print();
    std::printf(
        "\nfalse negatives are 0%% for every multi-VC variant: the "
        "invariant set adapts to the micro-architecture (Section "
        "4.4).\nThe single-VC design is the exception the paper never "
        "evaluated: allocation leaks and credit losses starve the "
        "port's ONLY VC\nwithout any illegal output. The extension "
        "checkers (allocation-table consistency) close the leak class; "
        "pure credit losses remain\nend-to-end territory — see "
        "EXPERIMENTS.md.\n");
    return 0;
}
