/**
 * @file
 * Regenerates Table 1: the complete invariant catalog with module
 * class, guarded correctness conditions (Figure 3 mapping), risk
 * level, applicability, and the per-checker hardware cost — the
 * paper's claim that each checker is far cheaper than the module it
 * guards, made quantitative.
 */

#include <cstdio>

#include "core/invariant.hpp"
#include "hw/checkcost.hpp"
#include "hw/modules.hpp"
#include "util/table.hpp"

using namespace nocalert;

namespace {

std::string
conditionsOf(const core::InvariantInfo &info)
{
    std::string out;
    if (info.conditions & core::kBoundedDelivery)
        out += "BD ";
    if (info.conditions & core::kNoFlitDrop)
        out += "FD ";
    if (info.conditions & core::kNoNewFlitGeneration)
        out += "NG ";
    if (info.conditions & core::kNoCorruptionOrMixing)
        out += "CM ";
    if (!out.empty())
        out.pop_back();
    return out;
}

std::string
riskOf(const core::InvariantInfo &info)
{
    switch (info.risk) {
      case core::RiskLevel::Low: return "low";
      case core::RiskLevel::PermanentSensitive: return "perm-sens";
      case core::RiskLevel::Standard: return "std";
    }
    return "?";
}

std::string
appliesOf(const core::InvariantInfo &info)
{
    std::string out;
    if (info.atomicOnly)
        out += "atomic ";
    if (info.nonAtomicOnly)
        out += "non-atomic ";
    if (info.minimalOnly)
        out += "minimal ";
    if (info.needsVcs)
        out += "VCs ";
    if (out.empty())
        return "always";
    out.pop_back();
    return out;
}

} // namespace

int
main()
{
    noc::NetworkConfig config; // paper baseline: 8x8, 4 VCs
    const hw::GateLibrary &lib = hw::GateLibrary::typical65nm();

    std::printf("Table 1 — the 32 NoCAlert invariances (baseline "
                "router: 5 ports, %u VCs, %u-flit buffers)\n",
                config.router.numVcs, config.router.bufferDepth);
    std::printf("Conditions: BD=bounded delivery, FD=no flit drop, "
                "NG=no new flit generation, CM=no corruption/mixing\n\n");

    Table table({"#", "invariant", "module", "conds", "risk",
                 "applies", "gates", "area um2"});
    double checker_total = 0;
    for (const core::InvariantInfo &info : core::invariantCatalog()) {
        const hw::GateCounts gates = hw::checkerGates(info.id, config);
        const double area = lib.areaUm2(gates);
        const bool active =
            !(info.nonAtomicOnly && config.router.atomicBuffers);
        if (active)
            checker_total += area;
        table.addRow({std::to_string(core::invariantIndex(info.id)),
                      info.name, core::moduleClassName(info.module),
                      conditionsOf(info), riskOf(info), appliesOf(info),
                      Table::num(gates.total(), 0),
                      Table::num(area, 0)});
    }
    table.print();

    const double router_area = lib.areaUm2(hw::routerTotal(config));
    const double control_area =
        lib.areaUm2(hw::routerControlLogic(config));
    std::printf("\nrouter area:        %10.0f um2\n", router_area);
    std::printf("control logic area: %10.0f um2 (%.1f%% of router)\n",
                control_area, 100.0 * control_area / router_area);
    std::printf("all checkers:       %10.0f um2 (%.1f%% of router, "
                "%.1f%% of the control logic they guard)\n",
                checker_total, 100.0 * checker_total / router_area,
                100.0 * checker_total / control_area);
    return 0;
}
