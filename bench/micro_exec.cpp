/**
 * @file
 * Execution-engine throughput: the same fault campaign run at a sweep
 * of --jobs values (default 1,2,4,8), timing whole-campaign wall
 * clock and verifying that every parallel artifact is byte-identical
 * to the serial one (writeCampaignJson compared as strings — config,
 * telemetry block, every run record). Writes BENCH_exec.json with the
 * runs/sec and speedup-vs-serial per jobs value.
 *
 * Speedup is bounded by the machine: `hardwareConcurrency` is
 * recorded in the artifact so a curve from a 1-core container (flat,
 * ~1.0x) is distinguishable from an 8-core runner (where --jobs 8
 * must clear 3x). The identity check is the part that is
 * machine-independent — exit status is non-zero if any jobs value
 * produces a different artifact, so CI can use this binary as both a
 * perf smoke and a determinism check.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "exec/workpool.hpp"
#include "fault/campaign.hpp"
#include "fault/serialize.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

using namespace nocalert;

namespace {

std::vector<unsigned>
parseJobsList(const std::string &list)
{
    std::vector<unsigned> jobs;
    std::size_t pos = 0;
    while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok =
            list.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        if (!tok.empty())
            jobs.push_back(static_cast<unsigned>(std::stoul(tok)));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (jobs.empty())
        NOCALERT_FATAL("--jobs-list parsed to an empty list: ", list);
    return jobs;
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv,
                    {"mesh", "sites", "rate", "seed", "warmup",
                     "observe", "drain", "jobs-list", "out"});

    fault::CampaignConfig config;
    config.network.width = static_cast<int>(cli.getInt("mesh", 8));
    config.network.height = config.network.width;
    config.workload.synthetic.injectionRate = cli.getDouble("rate", 0.03);
    config.workload.synthetic.seed =
        static_cast<std::uint64_t>(cli.getInt("seed", 5));
    config.warmup = cli.getInt("warmup", 400);
    config.observeWindow = cli.getInt("observe", 1200);
    config.drainLimit = cli.getInt("drain", 6000);
    config.maxSites = static_cast<unsigned>(cli.getInt("sites", 32));

    const std::vector<unsigned> jobs_sweep =
        parseJobsList(cli.getString("jobs-list", "1,2,4,8"));
    const std::string out_path = cli.getString("out", "BENCH_exec.json");
    const unsigned hw = exec::WorkerPool::hardwareConcurrency();

    std::printf("micro_exec: %u-site campaign on a %dx%d mesh, jobs "
                "sweep (%u hardware threads)\n",
                config.maxSites, config.network.width,
                config.network.height, hw);

    std::string serial_artifact;
    double serial_seconds = 0.0;
    bool identical = true;
    double max_speedup = 0.0;
    JsonValue sweep(JsonValue::Array{});

    for (const unsigned jobs : jobs_sweep) {
        config.jobs = jobs;
        fault::FaultCampaign campaign(config);

        const auto start = std::chrono::steady_clock::now();
        const fault::CampaignResult result = campaign.run();
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();

        const std::string artifact = fault::writeCampaignJson(result);
        if (serial_artifact.empty()) {
            serial_artifact = artifact;
            serial_seconds = seconds;
        } else if (artifact != serial_artifact) {
            identical = false;
            std::fprintf(stderr,
                         "jobs %u: artifact DIFFERS from --jobs %u\n",
                         jobs, jobs_sweep.front());
        }

        const double speedup = serial_seconds / seconds;
        max_speedup = std::max(max_speedup, speedup);

        JsonValue entry;
        entry.set("jobs", jobs);
        entry.set("seconds", seconds);
        entry.set("runsPerSec", result.runs.size() / seconds);
        entry.set("speedup", speedup);
        sweep.push(std::move(entry));

        std::printf("  jobs %2u: %7.2f s  %6.2f runs/s  %.2fx  [%s]\n",
                    jobs, seconds, result.runs.size() / seconds,
                    speedup,
                    artifact == serial_artifact ? "byte-identical"
                                                : "MISMATCH");
    }

    JsonValue json;
    json.set("schema", "nocalert-bench-exec");
    json.set("mesh", config.network.width);
    json.set("sites", config.maxSites);
    json.set("warmup", config.warmup);
    json.set("observeWindow", config.observeWindow);
    json.set("hardwareConcurrency", hw);
    json.set("identical", identical);
    json.set("sweep", std::move(sweep));
    json.set("maxSpeedup", max_speedup);

    std::ofstream file(out_path);
    file << json.dump(2) << "\n";
    if (!file) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::printf("max speedup vs --jobs %u: %.2fx (%u hardware "
                "threads)\n",
                jobs_sweep.front(), max_speedup, hw);
    std::printf("wrote %s\n", out_path.c_str());

    return identical ? 0 : 2;
}
