/**
 * @file
 * Extension beyond the paper's single-fault model ("more elaborate
 * fault models are left for future work", Section 5.2): pairs of
 * simultaneous single-bit transients injected at two independent
 * sites in the same cycle.
 *
 * The interesting question is whether fault *pairs* can conspire to
 * evade the checkers — e.g. one fault masking the network-level
 * symptom of another. The campaign classifies pairs exactly like
 * single faults against the same golden reference.
 *
 * Usage: ablation_multifault [--sites N] [--rate R]
 */

#include <cstdio>

#include "bench_common.hpp"
#include "core/nocalert.hpp"
#include "fault/campaign.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace nocalert;

namespace {

fault::FaultRunResult
runPair(const fault::CampaignConfig &config, const noc::Network &base,
        const fault::GoldenReference &golden,
        const fault::FaultSite &first, const fault::FaultSite &second)
{
    noc::Network net(base);
    core::NoCAlertEngine engine(net, /*attach_now=*/true);

    fault::FaultInjector injector;
    injector.arm({first, net.cycle(), config.kind});
    injector.arm({second, net.cycle(), config.kind});
    injector.attach(net);

    fault::FaultRunResult result;
    result.site = first;
    result.injectCycle = net.cycle();

    net.run(config.observeWindow);
    result.drained = net.drain(config.drainLimit);

    const fault::GoldenComparison comparison =
        golden.compare(net.collectEjections(), result.drained);
    result.violated = comparison.violated();
    result.violatedConditions = comparison.conditions();

    if (auto firstCycle = engine.log().firstCycle()) {
        result.detected = true;
        result.detectionLatency = *firstCycle - result.injectCycle;
        result.alertAtInjection = *firstCycle == result.injectCycle;
    }
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions options = bench::parseBenchOptions(argc, argv);

    fault::CampaignConfig config = options.campaign;
    config.network.width = 6;
    config.network.height = 6;
    config.warmup = 600;
    config.workload.synthetic.stopCycle = config.warmup + config.observeWindow;
    const unsigned pairs = std::max(30u, config.maxSites / 3);

    std::fprintf(stderr, "[multifault] preparing golden reference...\n");
    noc::Network base(config.network, config.workload);
    base.run(config.warmup);
    noc::Network golden_net(base);
    golden_net.run(config.observeWindow);
    if (!golden_net.drain(config.drainLimit)) {
        std::fprintf(stderr, "golden run failed to drain\n");
        return 1;
    }
    const fault::GoldenReference golden(golden_net.collectEjections());

    // Deterministic site pairs: consecutive draws of one shuffle.
    const auto sites = fault::FaultSiteCatalog::sampleNetwork(
        config.network, pairs * 2, config.sampleSeed);

    std::array<std::uint64_t, fault::kNumOutcomes> outcomes = {};
    Histogram latency;
    std::uint64_t silent_violations = 0;
    for (unsigned i = 0; i + 1 < sites.size(); i += 2) {
        const auto result =
            runPair(config, base, golden, sites[i], sites[i + 1]);
        outcomes[static_cast<unsigned>(result.outcome())] += 1;
        if (result.outcome() == fault::Outcome::TruePositive)
            latency.add(result.detectionLatency);
        if (result.violated && !result.detected) {
            ++silent_violations;
            std::printf("  undetected pair: %s + %s\n",
                        sites[i].describe().c_str(),
                        sites[i + 1].describe().c_str());
        }
        if ((i / 2) % 10 == 9)
            std::fprintf(stderr, ".");
    }
    std::fprintf(stderr, "\n");

    const auto total = static_cast<double>(
        outcomes[0] + outcomes[1] + outcomes[2] + outcomes[3]);
    std::printf("Extension — simultaneous fault pairs (%u pairs, "
                "single-bit transients, 6x6 mesh)\n\n",
                pairs);
    Table table({"outcome", "pairs", "share"});
    for (unsigned o = 0; o < 4; ++o) {
        table.addRow({outcomeName(static_cast<fault::Outcome>(o)),
                      std::to_string(outcomes[o]),
                      Table::pct(100.0 * outcomes[o] / total, 1)});
    }
    table.print();
    if (!latency.empty()) {
        std::printf("\ntrue-positive detection: same-cycle %.1f%%, "
                    "max %lld cycles\n",
                    100.0 * latency.cdfAt(0),
                    static_cast<long long>(latency.max()));
    }
    std::printf("silent violations (double-fault escapes): %llu\n",
                static_cast<unsigned long long>(silent_violations));
    return 0;
}
