/**
 * @file
 * google-benchmark micro-benchmarks: simulator throughput with and
 * without the NoCAlert checker banks attached, checker-bank
 * evaluation in isolation, fault-site enumeration, and warm-network
 * snapshot cost. (These measure the *simulator*, not the modelled
 * hardware — the hardware overheads are fig10_hw_overhead's job.)
 */

#include <benchmark/benchmark.h>

#include "core/nocalert.hpp"
#include "fault/site.hpp"
#include "noc/network.hpp"

using namespace nocalert;

namespace {

noc::NetworkConfig
meshConfig(int side)
{
    noc::NetworkConfig config;
    config.width = side;
    config.height = side;
    return config;
}

noc::TrafficSpec
trafficSpec(double rate)
{
    noc::TrafficSpec spec;
    spec.injectionRate = rate;
    spec.seed = 11;
    return spec;
}

void
BM_NetworkCycle(benchmark::State &state)
{
    noc::Network net(meshConfig(static_cast<int>(state.range(0))),
                     trafficSpec(0.05));
    net.run(500); // warm
    for (auto _ : state)
        net.step();
    state.SetItemsProcessed(state.iterations() *
                            net.config().numNodes());
}
BENCHMARK(BM_NetworkCycle)->Arg(4)->Arg(8);

void
BM_NetworkCycleWithNoCAlert(benchmark::State &state)
{
    noc::Network net(meshConfig(static_cast<int>(state.range(0))),
                     trafficSpec(0.05));
    core::NoCAlertEngine engine(net);
    net.run(500);
    for (auto _ : state)
        net.step();
    state.SetItemsProcessed(state.iterations() *
                            net.config().numNodes());
}
BENCHMARK(BM_NetworkCycleWithNoCAlert)->Arg(4)->Arg(8);

void
BM_CheckerBankEvaluation(benchmark::State &state)
{
    noc::Network net(meshConfig(4), trafficSpec(0.1));
    net.run(300);
    // Evaluate the bank over a live router's final wires repeatedly.
    core::CheckerContext ctx{&net.config(), &net.routing()};
    net.step();
    const noc::Router &router = net.router(5);
    std::vector<core::Assertion> out;
    for (auto _ : state) {
        out.clear();
        core::evaluateCheckers(router, router.wires(), ctx, out);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_CheckerBankEvaluation);

void
BM_WarmSnapshotCopy(benchmark::State &state)
{
    noc::Network net(meshConfig(8), trafficSpec(0.05));
    net.run(1000);
    for (auto _ : state) {
        noc::Network copy(net);
        benchmark::DoNotOptimize(copy.cycle());
    }
}
BENCHMARK(BM_WarmSnapshotCopy);

void
BM_FaultSiteEnumeration(benchmark::State &state)
{
    const auto config = meshConfig(8);
    for (auto _ : state) {
        auto sites = fault::FaultSiteCatalog::enumerateNetwork(config);
        benchmark::DoNotOptimize(sites);
    }
}
BENCHMARK(BM_FaultSiteEnumeration);

} // namespace
