#include "bench_common.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace nocalert::bench {

BenchOptions
parseBenchOptions(int argc, const char *const *argv)
{
    CommandLine cli(argc, argv,
                    {"sites", "rate", "seed", "warm", "observe",
                     "drain", "full", "epoch", "wires", "jobs"});

    BenchOptions options;
    options.full = cli.getBool("full", false);

    fault::CampaignConfig &campaign = options.campaign;
    campaign.network.width = 8;
    campaign.network.height = 8;
    campaign.workload.synthetic.injectionRate = cli.getDouble("rate", 0.04);
    campaign.workload.synthetic.seed =
        static_cast<std::uint64_t>(cli.getInt("seed", 1));
    campaign.observeWindow = cli.getInt("observe", 3200);
    campaign.drainLimit = cli.getInt("drain", 6000);
    campaign.maxSites = static_cast<unsigned>(
        cli.getInt("sites", options.full ? 0 : 100));
    campaign.forever.epochLength = cli.getInt("epoch", 1500);
    campaign.wireSitesOnly = cli.getBool("wires", false);
    campaign.jobs = static_cast<unsigned>(cli.getInt("jobs", 0));

    options.warmInstant = cli.getInt("warm", 2000);
    return options;
}

fault::CampaignResult
runCampaign(const fault::CampaignConfig &config, const std::string &label)
{
    std::fprintf(stderr, "[%s] injecting %u sites (mesh %dx%d, rate "
                         "%.3f, warmup %lld)...\n",
                 label.c_str(), config.maxSites, config.network.width,
                 config.network.height, config.workload.synthetic.injectionRate,
                 static_cast<long long>(config.warmup));
    const auto start = std::chrono::steady_clock::now();

    fault::FaultCampaign campaign(config);
    std::atomic<std::size_t> last_decile{0};
    const fault::CampaignResult result = campaign.run(
        [&](std::size_t done, std::size_t total) {
            const std::size_t decile = 10 * done / total;
            if (decile > last_decile.exchange(decile))
                std::fprintf(stderr, ".");
        });

    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::fprintf(stderr, " done: %zu runs in %.1fs\n",
                 result.runs.size(), seconds);
    return result;
}

} // namespace nocalert::bench
