/**
 * @file
 * Dense/active/bitmask kernel throughput on the campaign's cycle
 * shape: a warmed 8x8 network is copied per run, NoCAlert and ForEVeR
 * observe every cycle, traffic runs for the observation window, the
 * network drains, and a ForEVeR epoch tail completes the horizon —
 * exactly the per-site work FaultCampaign::runSingle performs. Each
 * kernel executes the same runs; the harness verifies their ejection
 * logs and statistics stay bit-identical while it times them, then
 * writes BENCH_kernel.json with runs/sec for all three kernels, the
 * legacy dense-vs-active speedup, and the active-vs-bitmask speedup,
 * swept across injection rates (default 0.01/0.02/0.05).
 *
 * The sweep exists because the active kernel's win is occupancy
 * bound: at 0.05 packets/node/cycle an 8x8 mesh holds ~4.5 flits per
 * router in steady state, so ~86% of routers are non-quiescent during
 * the live window and the win comes from the drain + ForEVeR-epoch
 * tail; at rates <= 0.02, where most routers really are idle on most
 * cycles, the active speedup clears 2-4x. The bitmask kernel attacks
 * the remaining cost — per-router branchy evaluation plus the full
 * checker bank — with packed struct-of-arrays state and a single
 * violation word per router per cycle, so its win holds at high
 * occupancy too. See EXPERIMENTS.md.
 *
 * Exit status is non-zero if the kernels ever disagree, so CI can use
 * this binary as both a perf smoke and an equivalence check.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/nocalert.hpp"
#include "forever/forever.hpp"
#include "noc/network.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

using namespace nocalert;

namespace {

struct RunOutcome
{
    std::size_t ejections = 0;
    std::uint64_t latencySum = 0;
    std::uint64_t flitsEjected = 0;
    std::size_t alerts = 0;
    noc::Cycle endCycle = 0;
    std::uint64_t routerEvals = 0;
};

struct KernelTiming
{
    double seconds = 0.0; ///< Total across runs (throughput stats).
    /**
     * Fastest single run. Speedup ratios are computed from best
     * times: every run does identical work (the outcome checks pin
     * that), so run-to-run spread is additive scheduler/cache noise
     * and the minimum is the least-contaminated cost estimate.
     */
    double bestSeconds = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t routerEvals = 0;
};

/** One campaign-shaped run of @p base's copy on @p mode. */
RunOutcome
campaignRun(const noc::Network &base, noc::KernelMode mode,
            noc::Cycle observe, noc::Cycle drain_limit,
            const forever::ForeverConfig &fc)
{
    noc::Network net(base);
    net.setKernelMode(mode);

    core::NoCAlertEngine engine(net, /*attach_now=*/false);
    forever::ForeverModel fever(net, fc, /*attach_now=*/false);
    net.setRouterObserver([&](const noc::Router &router,
                              const noc::RouterWires &wires) {
        engine.observeRouter(router, wires);
        fever.observeRouter(router, wires);
    });
    net.setPackedObserver([&](const noc::Router &router,
                              const noc::PackedCycleEvents &ev) {
        engine.observePacked(router, ev);
    });
    net.setNiObserver([&](const noc::NetworkInterface &ni,
                          const noc::NiWires &wires) {
        engine.observeNi(ni, wires);
        fever.observeNi(ni, wires);
    });
    net.setCycleObserver(
        [&](const noc::Network &n) { fever.onCycleEnd(n); });

    net.run(observe);
    net.drain(drain_limit);
    net.run(fc.epochLength + 2); // ForEVeR horizon tail

    RunOutcome out;
    out.ejections = net.collectEjections().size();
    const noc::NetworkStats stats = net.stats();
    out.latencySum = stats.latencySum;
    out.flitsEjected = stats.flitsEjected;
    out.alerts = engine.log().count();
    out.endCycle = net.cycle();
    out.routerEvals = net.routerEvaluations();
    return out;
}

bool
sameOutcome(const RunOutcome &a, const RunOutcome &b)
{
    return a.ejections == b.ejections && a.latencySum == b.latencySum &&
           a.flitsEjected == b.flitsEjected && a.alerts == b.alerts &&
           a.endCycle == b.endCycle;
}

constexpr int kNumKernels = 3;

/** Timings and verdict of one swept injection rate. */
struct RateResult
{
    double rate = 0.0;
    bool identical = true;
    KernelTiming timing[kNumKernels]; // [0]=dense [1]=active [2]=bitmask
    double speedup = 0.0;        // dense best / active best
    double bitmaskSpeedup = 0.0; // active best / bitmask best
};

RateResult
benchRate(int mesh, double rate, std::uint64_t seed, noc::Cycle warmup,
          noc::Cycle observe, int runs)
{
    noc::NetworkConfig config;
    config.width = mesh;
    config.height = mesh;
    noc::TrafficSpec traffic;
    traffic.injectionRate = rate;
    traffic.seed = seed;
    traffic.stopCycle = warmup + observe;

    const noc::Cycle drain_limit = 12000;
    const forever::ForeverConfig fc;

    // Warm base snapshot, exactly as FaultCampaign::run() prepares it.
    noc::Network base(config, traffic);
    base.run(warmup);

    RateResult result;
    result.rate = rate;
    const noc::KernelMode modes[kNumKernels] = {noc::KernelMode::Dense,
                                                noc::KernelMode::Active,
                                                noc::KernelMode::Bitmask};

    for (int r = 0; r < runs; ++r) {
        RunOutcome outcomes[kNumKernels];
        for (int k = 0; k < kNumKernels; ++k) {
            const auto start = std::chrono::steady_clock::now();
            outcomes[k] = campaignRun(base, modes[k], observe,
                                      drain_limit, fc);
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start;
            result.timing[k].seconds += elapsed.count();
            if (r == 0 ||
                elapsed.count() < result.timing[k].bestSeconds)
                result.timing[k].bestSeconds = elapsed.count();
            result.timing[k].cycles += static_cast<std::uint64_t>(
                outcomes[k].endCycle - base.cycle());
            result.timing[k].routerEvals += outcomes[k].routerEvals;
        }
        for (int k = 1; k < kNumKernels; ++k) {
            if (sameOutcome(outcomes[0], outcomes[k]))
                continue;
            result.identical = false;
            std::fprintf(stderr,
                         "rate %.3f run %d: kernel %d DISAGREES with "
                         "dense (ejections %zu/%zu, alerts %zu/%zu, "
                         "end cycle %lld/%lld)\n",
                         rate, r, k, outcomes[0].ejections,
                         outcomes[k].ejections, outcomes[0].alerts,
                         outcomes[k].alerts,
                         static_cast<long long>(outcomes[0].endCycle),
                         static_cast<long long>(outcomes[k].endCycle));
        }
        // Active and bitmask share the quiescence skip predicate, so
        // their scheduling decisions must agree run by run.
        if (outcomes[1].routerEvals != outcomes[2].routerEvals) {
            result.identical = false;
            std::fprintf(stderr,
                         "rate %.3f run %d: active/bitmask router "
                         "eval counts diverge (%llu vs %llu)\n",
                         rate, r,
                         static_cast<unsigned long long>(
                             outcomes[1].routerEvals),
                         static_cast<unsigned long long>(
                             outcomes[2].routerEvals));
        }
    }
    result.speedup =
        result.timing[0].bestSeconds / result.timing[1].bestSeconds;
    result.bitmaskSpeedup =
        result.timing[1].bestSeconds / result.timing[2].bestSeconds;
    return result;
}

std::vector<double>
parseRates(const std::string &list)
{
    std::vector<double> rates;
    std::size_t pos = 0;
    while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok =
            list.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        if (!tok.empty())
            rates.push_back(std::stod(tok));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (rates.empty())
        NOCALERT_FATAL("--rates parsed to an empty list: ", list);
    return rates;
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv,
                    {"mesh", "rate", "rates", "seed", "warmup",
                     "observe", "runs", "out", "notes"});

    const int mesh = static_cast<int>(cli.getInt("mesh", 8));
    const noc::Cycle warmup = cli.getInt("warmup", 500);
    const noc::Cycle observe = cli.getInt("observe", 2000);
    const int runs = static_cast<int>(cli.getInt("runs", 3));
    const auto seed = static_cast<std::uint64_t>(cli.getInt("seed", 5));
    const std::string out_path =
        cli.getString("out", "BENCH_kernel.json");

    // --rate X pins a single rate; --rates a,b,c sweeps.
    std::vector<double> rates;
    if (cli.getDouble("rate", 0.0) > 0.0)
        rates.push_back(cli.getDouble("rate", 0.0));
    else
        rates = parseRates(cli.getString("rates", "0.01,0.02,0.05"));

    const forever::ForeverConfig fc;
    std::printf("micro_kernel: %dx%d mesh, %d runs of observe=%lld + "
                "drain + %lld-cycle tail per kernel per rate\n",
                mesh, mesh, runs, static_cast<long long>(observe),
                static_cast<long long>(fc.epochLength + 2));

    const char *names[kNumKernels] = {"dense", "active", "bitmask"};
    bool identical = true;
    bool first = true;
    double min_speedup = 0.0;
    double max_speedup = 0.0;
    double min_bitmask = 0.0;
    double max_bitmask = 0.0;
    JsonValue sweep(JsonValue::Array{});

    for (const double rate : rates) {
        const RateResult res =
            benchRate(mesh, rate, seed, warmup, observe, runs);
        identical = identical && res.identical;
        if (first) {
            min_speedup = max_speedup = res.speedup;
            min_bitmask = max_bitmask = res.bitmaskSpeedup;
            first = false;
        } else {
            min_speedup = std::min(min_speedup, res.speedup);
            max_speedup = std::max(max_speedup, res.speedup);
            min_bitmask = std::min(min_bitmask, res.bitmaskSpeedup);
            max_bitmask = std::max(max_bitmask, res.bitmaskSpeedup);
        }

        JsonValue entry;
        entry.set("rate", rate);
        entry.set("identical", res.identical);
        for (int k = 0; k < kNumKernels; ++k) {
            JsonValue kernel;
            kernel.set("seconds", res.timing[k].seconds);
            kernel.set("bestSeconds", res.timing[k].bestSeconds);
            kernel.set("runsPerSec", runs / res.timing[k].seconds);
            kernel.set("cyclesPerSec",
                       res.timing[k].cycles / res.timing[k].seconds);
            kernel.set("routerEvals", res.timing[k].routerEvals);
            entry.set(names[k], std::move(kernel));
        }
        entry.set("speedup", res.speedup);
        entry.set("bitmaskSpeedup", res.bitmaskSpeedup);
        sweep.push(std::move(entry));

        std::printf("rate %.3f:\n", rate);
        for (int k = 0; k < kNumKernels; ++k) {
            std::printf("  %-7s  %8.3f s  %7.2f runs/s  "
                        "%12.0f cycles/s  %llu router evals\n",
                        names[k], res.timing[k].seconds,
                        runs / res.timing[k].seconds,
                        res.timing[k].cycles / res.timing[k].seconds,
                        static_cast<unsigned long long>(
                            res.timing[k].routerEvals));
        }
        std::printf("  speedup (active vs dense): %.2fx, "
                    "(bitmask vs active): %.2fx  [%s]\n",
                    res.speedup, res.bitmaskSpeedup,
                    res.identical ? "bit-identical" : "MISMATCH");
    }

    JsonValue json;
    json.set("schema", "nocalert-bench-kernel");
    json.set("mesh", mesh);
    json.set("warmup", warmup);
    json.set("observeWindow", observe);
    json.set("runs", runs);
    json.set("identical", identical);
    json.set("sweep", std::move(sweep));
    json.set("minSpeedup", min_speedup);
    json.set("maxSpeedup", max_speedup);
    json.set("minBitmaskSpeedup", min_bitmask);
    json.set("maxBitmaskSpeedup", max_bitmask);
    // Free-form provenance (e.g. a before/after note for an
    // optimization this file's numbers record). The perf gate ignores
    // unknown keys, so notes ride along without affecting the floor.
    const std::string notes = cli.getString("notes", "");
    if (!notes.empty())
        json.set("notes", notes);

    std::ofstream file(out_path);
    file << json.dump(2) << "\n";
    if (!file) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::printf("active-vs-dense speedup range: %.2fx - %.2fx\n",
                min_speedup, max_speedup);
    std::printf("bitmask-vs-active speedup range: %.2fx - %.2fx\n",
                min_bitmask, max_bitmask);
    std::printf("wrote %s\n", out_path.c_str());

    return identical ? 0 : 2;
}
