/**
 * @file
 * Regenerates Figure 10 plus the Section 5.5 hardware numbers: the
 * NoCAlert area overhead as a function of the VCs per input port,
 * compared with double modular redundancy of the control logic
 * ("DMR-CL"), plus power overhead and critical-path impact.
 *
 * Paper reference: NoCAlert 1.38%-4.42% area (avg ~3%), fairly flat
 * over 2-8 VCs; DMR-CL 5.41% -> 31.32%; power 0.3%-1.2% (avg 0.7%);
 * critical path at most 3%, around 1% on average.
 *
 * Usage: fig10_hw_overhead (no flags; the sweep is analytic)
 */

#include <cstdio>

#include "hw/report.hpp"
#include "util/table.hpp"

using namespace nocalert;

int
main()
{
    std::printf("Figure 10 — hardware overhead vs VCs per port "
                "(65 nm gate model; 5-port router, 5-flit buffers, "
                "128-bit flits)\n\n");

    Table table({"VCs", "router um2", "NoCAlert um2",
                 "NoCAlert area", "DMR-CL area", "power", "crit path"});

    double area_sum = 0;
    double power_sum = 0;
    double cp_sum = 0;
    int rows = 0;
    for (unsigned vcs = 2; vcs <= 8; ++vcs) {
        noc::NetworkConfig config;
        config.router.numVcs = vcs;
        const hw::HwReport report = hw::makeHwReport(config);
        table.addRow({std::to_string(vcs),
                      Table::num(report.routerArea, 0),
                      Table::num(report.nocalertArea, 0),
                      Table::pct(report.nocalertAreaOverheadPct, 2),
                      Table::pct(report.dmrAreaOverheadPct, 2),
                      Table::pct(report.nocalertPowerOverheadPct, 2),
                      Table::pct(report.criticalPathImpactPct, 2)});
        area_sum += report.nocalertAreaOverheadPct;
        power_sum += report.nocalertPowerOverheadPct;
        cp_sum += report.criticalPathImpactPct;
        ++rows;
    }
    table.print();

    std::printf("\naverages: area %.2f%% (paper ~3%%), power %.2f%% "
                "(paper ~0.7%%), critical path %.2f%% (paper ~1%%)\n",
                area_sum / rows, power_sum / rows, cp_sum / rows);
    std::printf("paper Fig 10: NoCAlert 1.38%%..4.42%% fairly flat; "
                "DMR-CL 5.41%% -> 31.32%% over 2..8 VCs\n");
    return 0;
}
