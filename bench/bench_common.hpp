/**
 * @file
 * Shared setup for the figure-reproduction benchmark binaries: the
 * paper's evaluation platform (8x8 mesh, 4 atomic VCs, 5-flit
 * buffers, XY routing, uniform random traffic) plus standard flags.
 *
 * Defaults are sized to finish in tens of seconds on one core using a
 * stratified fault-site sample; pass --full for a paper-scale
 * exhaustive sweep (hours).
 */

#ifndef NOCALERT_BENCH_COMMON_HPP
#define NOCALERT_BENCH_COMMON_HPP

#include <string>

#include "fault/campaign.hpp"
#include "util/cli.hpp"

namespace nocalert::bench {

/** Parsed options shared by the campaign-driven benches. */
struct BenchOptions
{
    fault::CampaignConfig campaign;
    bool full = false;

    /** Warmup used for the paper's "cycle 32K" warm-network instant. */
    noc::Cycle warmInstant = 2000;
};

/** Standard flag set: --sites --rate --seed --warm --observe --full
 *  --jobs (0 = all hardware threads; results are --jobs-invariant). */
BenchOptions parseBenchOptions(int argc, const char *const *argv);

/** Run a campaign, printing progress dots to stderr. */
fault::CampaignResult runCampaign(const fault::CampaignConfig &config,
                                  const std::string &label);

} // namespace nocalert::bench

#endif // NOCALERT_BENCH_COMMON_HPP
