
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/alert_test.cpp" "tests/CMakeFiles/test_core.dir/core/alert_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/alert_test.cpp.o.d"
  "/root/repo/tests/core/checkers_test.cpp" "tests/CMakeFiles/test_core.dir/core/checkers_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/checkers_test.cpp.o.d"
  "/root/repo/tests/core/checkers_unit_test.cpp" "tests/CMakeFiles/test_core.dir/core/checkers_unit_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/checkers_unit_test.cpp.o.d"
  "/root/repo/tests/core/extended_checks_test.cpp" "tests/CMakeFiles/test_core.dir/core/extended_checks_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/extended_checks_test.cpp.o.d"
  "/root/repo/tests/core/invariant_test.cpp" "tests/CMakeFiles/test_core.dir/core/invariant_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/invariant_test.cpp.o.d"
  "/root/repo/tests/core/nocalert_test.cpp" "tests/CMakeFiles/test_core.dir/core/nocalert_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/nocalert_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nocalert.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
