file(REMOVE_RECURSE
  "CMakeFiles/test_fault.dir/fault/campaign_test.cpp.o"
  "CMakeFiles/test_fault.dir/fault/campaign_test.cpp.o.d"
  "CMakeFiles/test_fault.dir/fault/golden_test.cpp.o"
  "CMakeFiles/test_fault.dir/fault/golden_test.cpp.o.d"
  "CMakeFiles/test_fault.dir/fault/injector_test.cpp.o"
  "CMakeFiles/test_fault.dir/fault/injector_test.cpp.o.d"
  "CMakeFiles/test_fault.dir/fault/report_test.cpp.o"
  "CMakeFiles/test_fault.dir/fault/report_test.cpp.o.d"
  "CMakeFiles/test_fault.dir/fault/site_test.cpp.o"
  "CMakeFiles/test_fault.dir/fault/site_test.cpp.o.d"
  "test_fault"
  "test_fault.pdb"
  "test_fault[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
