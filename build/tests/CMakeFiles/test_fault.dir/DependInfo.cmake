
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fault/campaign_test.cpp" "tests/CMakeFiles/test_fault.dir/fault/campaign_test.cpp.o" "gcc" "tests/CMakeFiles/test_fault.dir/fault/campaign_test.cpp.o.d"
  "/root/repo/tests/fault/golden_test.cpp" "tests/CMakeFiles/test_fault.dir/fault/golden_test.cpp.o" "gcc" "tests/CMakeFiles/test_fault.dir/fault/golden_test.cpp.o.d"
  "/root/repo/tests/fault/injector_test.cpp" "tests/CMakeFiles/test_fault.dir/fault/injector_test.cpp.o" "gcc" "tests/CMakeFiles/test_fault.dir/fault/injector_test.cpp.o.d"
  "/root/repo/tests/fault/report_test.cpp" "tests/CMakeFiles/test_fault.dir/fault/report_test.cpp.o" "gcc" "tests/CMakeFiles/test_fault.dir/fault/report_test.cpp.o.d"
  "/root/repo/tests/fault/site_test.cpp" "tests/CMakeFiles/test_fault.dir/fault/site_test.cpp.o" "gcc" "tests/CMakeFiles/test_fault.dir/fault/site_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nocalert.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
