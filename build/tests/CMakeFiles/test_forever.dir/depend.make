# Empty dependencies file for test_forever.
# This may be replaced when dependencies are built.
