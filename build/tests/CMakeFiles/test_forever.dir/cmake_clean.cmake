file(REMOVE_RECURSE
  "CMakeFiles/test_forever.dir/forever/checknet_test.cpp.o"
  "CMakeFiles/test_forever.dir/forever/checknet_test.cpp.o.d"
  "CMakeFiles/test_forever.dir/forever/forever_test.cpp.o"
  "CMakeFiles/test_forever.dir/forever/forever_test.cpp.o.d"
  "test_forever"
  "test_forever.pdb"
  "test_forever[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forever.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
