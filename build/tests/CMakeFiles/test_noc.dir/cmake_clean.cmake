file(REMOVE_RECURSE
  "CMakeFiles/test_noc.dir/noc/arbiter_test.cpp.o"
  "CMakeFiles/test_noc.dir/noc/arbiter_test.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/buffer_test.cpp.o"
  "CMakeFiles/test_noc.dir/noc/buffer_test.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/config_test.cpp.o"
  "CMakeFiles/test_noc.dir/noc/config_test.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/crossbar_test.cpp.o"
  "CMakeFiles/test_noc.dir/noc/crossbar_test.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/interface_test.cpp.o"
  "CMakeFiles/test_noc.dir/noc/interface_test.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/link_test.cpp.o"
  "CMakeFiles/test_noc.dir/noc/link_test.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/network_test.cpp.o"
  "CMakeFiles/test_noc.dir/noc/network_test.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/router_test.cpp.o"
  "CMakeFiles/test_noc.dir/noc/router_test.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/routing_test.cpp.o"
  "CMakeFiles/test_noc.dir/noc/routing_test.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/stats_test.cpp.o"
  "CMakeFiles/test_noc.dir/noc/stats_test.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/trace_test.cpp.o"
  "CMakeFiles/test_noc.dir/noc/trace_test.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/traffic_test.cpp.o"
  "CMakeFiles/test_noc.dir/noc/traffic_test.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/wormhole_test.cpp.o"
  "CMakeFiles/test_noc.dir/noc/wormhole_test.cpp.o.d"
  "test_noc"
  "test_noc.pdb"
  "test_noc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
