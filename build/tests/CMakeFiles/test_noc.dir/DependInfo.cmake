
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/noc/arbiter_test.cpp" "tests/CMakeFiles/test_noc.dir/noc/arbiter_test.cpp.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/arbiter_test.cpp.o.d"
  "/root/repo/tests/noc/buffer_test.cpp" "tests/CMakeFiles/test_noc.dir/noc/buffer_test.cpp.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/buffer_test.cpp.o.d"
  "/root/repo/tests/noc/config_test.cpp" "tests/CMakeFiles/test_noc.dir/noc/config_test.cpp.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/config_test.cpp.o.d"
  "/root/repo/tests/noc/crossbar_test.cpp" "tests/CMakeFiles/test_noc.dir/noc/crossbar_test.cpp.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/crossbar_test.cpp.o.d"
  "/root/repo/tests/noc/interface_test.cpp" "tests/CMakeFiles/test_noc.dir/noc/interface_test.cpp.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/interface_test.cpp.o.d"
  "/root/repo/tests/noc/link_test.cpp" "tests/CMakeFiles/test_noc.dir/noc/link_test.cpp.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/link_test.cpp.o.d"
  "/root/repo/tests/noc/network_test.cpp" "tests/CMakeFiles/test_noc.dir/noc/network_test.cpp.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/network_test.cpp.o.d"
  "/root/repo/tests/noc/router_test.cpp" "tests/CMakeFiles/test_noc.dir/noc/router_test.cpp.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/router_test.cpp.o.d"
  "/root/repo/tests/noc/routing_test.cpp" "tests/CMakeFiles/test_noc.dir/noc/routing_test.cpp.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/routing_test.cpp.o.d"
  "/root/repo/tests/noc/stats_test.cpp" "tests/CMakeFiles/test_noc.dir/noc/stats_test.cpp.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/stats_test.cpp.o.d"
  "/root/repo/tests/noc/trace_test.cpp" "tests/CMakeFiles/test_noc.dir/noc/trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/trace_test.cpp.o.d"
  "/root/repo/tests/noc/traffic_test.cpp" "tests/CMakeFiles/test_noc.dir/noc/traffic_test.cpp.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/traffic_test.cpp.o.d"
  "/root/repo/tests/noc/wormhole_test.cpp" "tests/CMakeFiles/test_noc.dir/noc/wormhole_test.cpp.o" "gcc" "tests/CMakeFiles/test_noc.dir/noc/wormhole_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nocalert.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
