# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_fault[1]_include.cmake")
include("/root/repo/build/tests/test_forever[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_recovery[1]_include.cmake")
