
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alert.cpp" "src/CMakeFiles/nocalert.dir/core/alert.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/core/alert.cpp.o.d"
  "/root/repo/src/core/checkers.cpp" "src/CMakeFiles/nocalert.dir/core/checkers.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/core/checkers.cpp.o.d"
  "/root/repo/src/core/invariant.cpp" "src/CMakeFiles/nocalert.dir/core/invariant.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/core/invariant.cpp.o.d"
  "/root/repo/src/core/nocalert.cpp" "src/CMakeFiles/nocalert.dir/core/nocalert.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/core/nocalert.cpp.o.d"
  "/root/repo/src/fault/campaign.cpp" "src/CMakeFiles/nocalert.dir/fault/campaign.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/fault/campaign.cpp.o.d"
  "/root/repo/src/fault/golden.cpp" "src/CMakeFiles/nocalert.dir/fault/golden.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/fault/golden.cpp.o.d"
  "/root/repo/src/fault/injector.cpp" "src/CMakeFiles/nocalert.dir/fault/injector.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/fault/injector.cpp.o.d"
  "/root/repo/src/fault/report.cpp" "src/CMakeFiles/nocalert.dir/fault/report.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/fault/report.cpp.o.d"
  "/root/repo/src/fault/site.cpp" "src/CMakeFiles/nocalert.dir/fault/site.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/fault/site.cpp.o.d"
  "/root/repo/src/forever/checknet.cpp" "src/CMakeFiles/nocalert.dir/forever/checknet.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/forever/checknet.cpp.o.d"
  "/root/repo/src/forever/forever.cpp" "src/CMakeFiles/nocalert.dir/forever/forever.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/forever/forever.cpp.o.d"
  "/root/repo/src/hw/checkcost.cpp" "src/CMakeFiles/nocalert.dir/hw/checkcost.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/hw/checkcost.cpp.o.d"
  "/root/repo/src/hw/gates.cpp" "src/CMakeFiles/nocalert.dir/hw/gates.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/hw/gates.cpp.o.d"
  "/root/repo/src/hw/modules.cpp" "src/CMakeFiles/nocalert.dir/hw/modules.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/hw/modules.cpp.o.d"
  "/root/repo/src/hw/report.cpp" "src/CMakeFiles/nocalert.dir/hw/report.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/hw/report.cpp.o.d"
  "/root/repo/src/noc/arbiter.cpp" "src/CMakeFiles/nocalert.dir/noc/arbiter.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/noc/arbiter.cpp.o.d"
  "/root/repo/src/noc/buffer.cpp" "src/CMakeFiles/nocalert.dir/noc/buffer.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/noc/buffer.cpp.o.d"
  "/root/repo/src/noc/config.cpp" "src/CMakeFiles/nocalert.dir/noc/config.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/noc/config.cpp.o.d"
  "/root/repo/src/noc/crossbar.cpp" "src/CMakeFiles/nocalert.dir/noc/crossbar.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/noc/crossbar.cpp.o.d"
  "/root/repo/src/noc/flit.cpp" "src/CMakeFiles/nocalert.dir/noc/flit.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/noc/flit.cpp.o.d"
  "/root/repo/src/noc/interface.cpp" "src/CMakeFiles/nocalert.dir/noc/interface.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/noc/interface.cpp.o.d"
  "/root/repo/src/noc/link.cpp" "src/CMakeFiles/nocalert.dir/noc/link.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/noc/link.cpp.o.d"
  "/root/repo/src/noc/network.cpp" "src/CMakeFiles/nocalert.dir/noc/network.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/noc/network.cpp.o.d"
  "/root/repo/src/noc/router.cpp" "src/CMakeFiles/nocalert.dir/noc/router.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/noc/router.cpp.o.d"
  "/root/repo/src/noc/routing.cpp" "src/CMakeFiles/nocalert.dir/noc/routing.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/noc/routing.cpp.o.d"
  "/root/repo/src/noc/signals.cpp" "src/CMakeFiles/nocalert.dir/noc/signals.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/noc/signals.cpp.o.d"
  "/root/repo/src/noc/stats.cpp" "src/CMakeFiles/nocalert.dir/noc/stats.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/noc/stats.cpp.o.d"
  "/root/repo/src/noc/trace.cpp" "src/CMakeFiles/nocalert.dir/noc/trace.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/noc/trace.cpp.o.d"
  "/root/repo/src/noc/traffic.cpp" "src/CMakeFiles/nocalert.dir/noc/traffic.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/noc/traffic.cpp.o.d"
  "/root/repo/src/noc/types.cpp" "src/CMakeFiles/nocalert.dir/noc/types.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/noc/types.cpp.o.d"
  "/root/repo/src/recovery/policy.cpp" "src/CMakeFiles/nocalert.dir/recovery/policy.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/recovery/policy.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/nocalert.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/nocalert.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/nocalert.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/nocalert.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/nocalert.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/nocalert.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
