file(REMOVE_RECURSE
  "libnocalert.a"
)
