# Empty dependencies file for nocalert.
# This may be replaced when dependencies are built.
