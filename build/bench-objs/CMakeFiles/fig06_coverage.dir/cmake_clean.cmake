file(REMOVE_RECURSE
  "../bench/fig06_coverage"
  "../bench/fig06_coverage.pdb"
  "CMakeFiles/fig06_coverage.dir/bench_common.cpp.o"
  "CMakeFiles/fig06_coverage.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig06_coverage.dir/fig06_coverage.cpp.o"
  "CMakeFiles/fig06_coverage.dir/fig06_coverage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
