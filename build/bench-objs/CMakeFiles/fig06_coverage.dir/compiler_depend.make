# Empty compiler generated dependencies file for fig06_coverage.
# This may be replaced when dependencies are built.
