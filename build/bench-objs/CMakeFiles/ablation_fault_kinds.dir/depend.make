# Empty dependencies file for ablation_fault_kinds.
# This may be replaced when dependencies are built.
