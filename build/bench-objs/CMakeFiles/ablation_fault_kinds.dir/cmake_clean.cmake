file(REMOVE_RECURSE
  "../bench/ablation_fault_kinds"
  "../bench/ablation_fault_kinds.pdb"
  "CMakeFiles/ablation_fault_kinds.dir/ablation_fault_kinds.cpp.o"
  "CMakeFiles/ablation_fault_kinds.dir/ablation_fault_kinds.cpp.o.d"
  "CMakeFiles/ablation_fault_kinds.dir/bench_common.cpp.o"
  "CMakeFiles/ablation_fault_kinds.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fault_kinds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
