# Empty dependencies file for fig03_conditions.
# This may be replaced when dependencies are built.
