file(REMOVE_RECURSE
  "../bench/fig03_conditions"
  "../bench/fig03_conditions.pdb"
  "CMakeFiles/fig03_conditions.dir/bench_common.cpp.o"
  "CMakeFiles/fig03_conditions.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig03_conditions.dir/fig03_conditions.cpp.o"
  "CMakeFiles/fig03_conditions.dir/fig03_conditions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
