file(REMOVE_RECURSE
  "../bench/table1_catalog"
  "../bench/table1_catalog.pdb"
  "CMakeFiles/table1_catalog.dir/table1_catalog.cpp.o"
  "CMakeFiles/table1_catalog.dir/table1_catalog.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
