file(REMOVE_RECURSE
  "../bench/fig08_checker_profile"
  "../bench/fig08_checker_profile.pdb"
  "CMakeFiles/fig08_checker_profile.dir/bench_common.cpp.o"
  "CMakeFiles/fig08_checker_profile.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig08_checker_profile.dir/fig08_checker_profile.cpp.o"
  "CMakeFiles/fig08_checker_profile.dir/fig08_checker_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_checker_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
