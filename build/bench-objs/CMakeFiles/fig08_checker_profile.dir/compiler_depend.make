# Empty compiler generated dependencies file for fig08_checker_profile.
# This may be replaced when dependencies are built.
