file(REMOVE_RECURSE
  "../bench/ablation_multifault"
  "../bench/ablation_multifault.pdb"
  "CMakeFiles/ablation_multifault.dir/ablation_multifault.cpp.o"
  "CMakeFiles/ablation_multifault.dir/ablation_multifault.cpp.o.d"
  "CMakeFiles/ablation_multifault.dir/bench_common.cpp.o"
  "CMakeFiles/ablation_multifault.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multifault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
