# Empty dependencies file for ablation_multifault.
# This may be replaced when dependencies are built.
