file(REMOVE_RECURSE
  "../bench/fig07_detection_latency"
  "../bench/fig07_detection_latency.pdb"
  "CMakeFiles/fig07_detection_latency.dir/bench_common.cpp.o"
  "CMakeFiles/fig07_detection_latency.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig07_detection_latency.dir/fig07_detection_latency.cpp.o"
  "CMakeFiles/fig07_detection_latency.dir/fig07_detection_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_detection_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
