file(REMOVE_RECURSE
  "../bench/fig09_simultaneity"
  "../bench/fig09_simultaneity.pdb"
  "CMakeFiles/fig09_simultaneity.dir/bench_common.cpp.o"
  "CMakeFiles/fig09_simultaneity.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig09_simultaneity.dir/fig09_simultaneity.cpp.o"
  "CMakeFiles/fig09_simultaneity.dir/fig09_simultaneity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_simultaneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
