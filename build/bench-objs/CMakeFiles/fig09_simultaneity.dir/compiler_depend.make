# Empty compiler generated dependencies file for fig09_simultaneity.
# This may be replaced when dependencies are built.
