# Empty dependencies file for fig10_hw_overhead.
# This may be replaced when dependencies are built.
