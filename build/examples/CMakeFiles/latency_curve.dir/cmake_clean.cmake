file(REMOVE_RECURSE
  "CMakeFiles/latency_curve.dir/latency_curve.cpp.o"
  "CMakeFiles/latency_curve.dir/latency_curve.cpp.o.d"
  "latency_curve"
  "latency_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
