# Empty dependencies file for latency_curve.
# This may be replaced when dependencies are built.
