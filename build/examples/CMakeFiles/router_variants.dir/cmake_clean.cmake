file(REMOVE_RECURSE
  "CMakeFiles/router_variants.dir/router_variants.cpp.o"
  "CMakeFiles/router_variants.dir/router_variants.cpp.o.d"
  "router_variants"
  "router_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
