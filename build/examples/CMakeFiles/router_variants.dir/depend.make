# Empty dependencies file for router_variants.
# This may be replaced when dependencies are built.
