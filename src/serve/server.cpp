#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/log.hpp"

namespace nocalert::serve {

namespace {

/** Write all of @p text, tolerating partial sends and EINTR. */
bool
sendAll(int fd, std::string_view text)
{
    while (!text.empty()) {
        const ssize_t sent =
            ::send(fd, text.data(), text.size(), MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        text.remove_prefix(static_cast<std::size_t>(sent));
    }
    return true;
}

JsonValue
listResponse(const std::vector<CampaignStatus> &campaigns)
{
    JsonValue array;
    for (const CampaignStatus &status : campaigns) {
        JsonValue one;
        one.set("id", status.id);
        one.set("state", campaignStateName(status.state));
        one.set("runsCompleted", status.runsCompleted);
        one.set("runsPlanned", status.runsPlanned);
        one.set("cached", status.cached);
        if (!status.failure.empty())
            one.set("failure", status.failure);
        array.push(std::move(one));
    }
    JsonValue json;
    json.set("type", "list");
    json.set("campaigns", std::move(array));
    return json;
}

JsonValue
statsResponse(const RegistryStats &stats, const CacheStats &cache,
              const RecoveryInfo &recovery, std::uint64_t journalAppends)
{
    JsonValue json;
    json.set("type", "stats");
    json.set("submissions", stats.submissions);
    json.set("cacheHits", stats.cacheHits);
    json.set("coalesced", stats.coalesced);
    json.set("runsExecuted", stats.runsExecuted);
    json.set("campaignsCompleted", stats.campaignsCompleted);
    json.set("campaignsCancelled", stats.campaignsCancelled);
    json.set("campaignsFailed", stats.campaignsFailed);
    json.set("cacheEntries", cache.entries);
    json.set("cacheBytes", cache.bytesStored);
    json.set("cacheEvictions", cache.evictions);
    json.set("cacheQuarantined", cache.quarantined);
    json.set("journalAppends", journalAppends);
    json.set("recoveredRequeued", recovery.requeued);
    json.set("recoveredCompleted", recovery.completedVerified);
    json.set("recoveredHealed", recovery.completedRequeued);
    return json;
}

std::unique_ptr<SubmissionJournal>
makeJournal(const ServerConfig &config)
{
    if (config.journalPath == "none")
        return nullptr;
    std::string path = config.journalPath;
    if (path.empty())
        path = config.cacheDir + "/journal.wal";
    return std::make_unique<SubmissionJournal>(std::move(path));
}

} // namespace

CampaignServer::CampaignServer(ServerConfig config)
    : config_(std::move(config)),
      cache_(CacheConfig{config_.cacheDir, config_.cacheMaxBytes}),
      journal_(makeJournal(config_)),
      registry_(config_.registry, cache_, journal_.get())
{
}

CampaignServer::~CampaignServer() { stop(); }

bool
CampaignServer::start(std::string *error)
{
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (config_.socketPath.size() >= sizeof(address.sun_path)) {
        if (error) {
            *error = "socket path too long: '" + config_.socketPath +
                     "' (" + std::to_string(config_.socketPath.size()) +
                     " bytes, limit " +
                     std::to_string(sizeof(address.sun_path) - 1) + ")";
        }
        return false;
    }
    std::memcpy(address.sun_path, config_.socketPath.c_str(),
                config_.socketPath.size() + 1);

    // A socket file may be left behind: by a crashed predecessor
    // (stale — reclaim it) or by a daemon that is still alive (never
    // clobber it). A connect probe tells the two apart.
    struct stat existing{};
    if (::lstat(config_.socketPath.c_str(), &existing) == 0) {
        if (!S_ISSOCK(existing.st_mode)) {
            if (error) {
                *error = "'" + config_.socketPath +
                         "' exists and is not a socket; refusing to"
                         " remove it";
            }
            return false;
        }
        const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (probe >= 0) {
            const bool alive =
                ::connect(probe,
                          reinterpret_cast<const sockaddr *>(&address),
                          sizeof(address)) == 0;
            ::close(probe);
            if (alive) {
                if (error) {
                    *error = "another daemon is listening on '" +
                             config_.socketPath + "'";
                }
                return false;
            }
        }
        // Nobody answered: a dead daemon's leftover. Reclaim it.
        ::unlink(config_.socketPath.c_str());
    }

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<const sockaddr *>(&address),
               sizeof(address)) != 0) {
        if (error) {
            *error = "bind '" + config_.socketPath +
                     "': " + std::strerror(errno);
        }
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    if (::listen(listenFd_, 64) != 0) {
        if (error)
            *error = std::string("listen: ") + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
CampaignServer::stop()
{
    std::vector<std::thread> threads;
    std::vector<SessionPtr> sessions;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
            // A concurrent stop() already tore the server down; only
            // the first caller joins threads.
            return;
        }
        stopping_ = true;
        for (const auto &[client, session] : sessions_)
            sessions.push_back(session);
        threads.swap(sessionThreads_);
    }
    shutdownCv_.notify_all();

    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
    for (const SessionPtr &session : sessions) {
        std::lock_guard<std::mutex> lock(session->writeMutex);
        if (session->open)
            ::shutdown(session->fd, SHUT_RDWR);
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    for (std::thread &thread : threads)
        thread.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(config_.socketPath.c_str());
    }
    registry_.shutdown();
}

void
CampaignServer::waitForShutdown()
{
    std::unique_lock<std::mutex> lock(mutex_);
    shutdownCv_.wait(lock,
                     [this] { return shutdownRequested_ || stopping_; });
}

void
CampaignServer::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // Listener closed (stop()) or broken.
        }
        SessionPtr session = std::make_shared<Session>();
        session->fd = fd;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_) {
                ::close(fd);
                return;
            }
            session->client = nextClient_++;
            sessions_.emplace(session->client, session);
            sessionThreads_.emplace_back(
                [this, session] { sessionLoop(session); });
        }
    }
}

void
CampaignServer::sessionLoop(const SessionPtr &session)
{
    LineFramer framer(config_.maxLineBytes);
    char buffer[4096];
    for (;;) {
        const ssize_t got =
            ::recv(session->fd, buffer, sizeof(buffer), 0);
        if (got < 0 && errno == EINTR)
            continue;
        if (got <= 0)
            break; // EOF or abrupt disconnect.
        framer.feed(std::string_view(buffer,
                                     static_cast<std::size_t>(got)));
        while (const auto line = framer.next())
            handleLine(session, *line);
    }

    // Release every interest this connection held; attached campaigns
    // nobody else wants auto-cancel and free their scheduler share.
    registry_.disconnect(session->client);
    {
        std::lock_guard<std::mutex> lock(session->writeMutex);
        session->open = false;
        ::close(session->fd);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    sessions_.erase(session->client);
}

void
CampaignServer::handleLine(const SessionPtr &session,
                           const LineFramer::Line &line)
{
    if (line.oversized) {
        sendLine(session,
                 errorResponse(
                     kErrOversized,
                     "request line exceeds " +
                         std::to_string(config_.maxLineBytes) +
                         " bytes (dropped " +
                         std::to_string(line.bytesDropped) + ")"));
        return;
    }
    if (line.text.empty())
        return; // Tolerate blank keep-alive lines.

    JsonValue error;
    const std::optional<Request> request =
        parseRequestLine(line.text, &error);
    if (!request) {
        sendLine(session, error);
        return;
    }

    switch (request->type) {
      case RequestType::Ping:
        sendLine(session, pongResponse());
        return;

      case RequestType::Submit: {
        const SubmitOutcome outcome = registry_.submit(
            *request->config, request->detach, session->client);
        if (outcome.errorCode) {
            sendLine(session,
                     errorResponse(outcome.errorCode, outcome.error));
            return;
        }
        sendLine(session,
                 submittedResponse(outcome.id, outcome.state,
                                   outcome.cached, outcome.coalesced));
        return;
      }

      case RequestType::Status: {
        const auto status = registry_.status(request->id);
        if (!status) {
            sendLine(session,
                     errorResponse(kErrUnknownCampaign,
                                   "no campaign '" + request->id + "'"));
            return;
        }
        sendLine(session,
                 statusResponse(status->id, status->state,
                                status->runsCompleted,
                                status->runsPlanned, status->cached,
                                status->failure));
        return;
      }

      case RequestType::Watch: {
        if (!registry_.status(request->id)) {
            sendLine(session,
                     errorResponse(kErrUnknownCampaign,
                                   "no campaign '" + request->id + "'"));
            return;
        }
        // Ack first so every event follows the subscription answer.
        sendLine(session, watchingResponse(request->id));
        registry_.watch(request->id, session->client,
                        [this, session](const JsonValue &event) {
                            return sendLine(session, event);
                        });
        return;
      }

      case RequestType::Cancel: {
        if (const char *code = registry_.cancel(request->id)) {
            sendLine(session,
                     errorResponse(code, "cannot cancel campaign '" +
                                             request->id + "'"));
            return;
        }
        sendLine(session, cancelledResponse(request->id));
        return;
      }

      case RequestType::Result: {
        ResultOutcome outcome = registry_.result(request->id);
        if (!outcome.artifact) {
            std::string message =
                "campaign '" + request->id + "' is " +
                campaignStateName(outcome.state);
            if (!outcome.failure.empty())
                message += ": " + outcome.failure;
            sendLine(session,
                     errorResponse(outcome.errorCode
                                       ? outcome.errorCode
                                       : kErrNotComplete,
                                   message));
            return;
        }
        sendLine(session,
                 resultResponse(request->id, *outcome.artifact));
        return;
      }

      case RequestType::List:
        sendLine(session, listResponse(registry_.list()));
        return;

      case RequestType::Stats:
        sendLine(session,
                 statsResponse(registry_.stats(), cache_.stats(),
                               registry_.recovery(),
                               journal_ ? journal_->appendCount() : 0));
        return;

      case RequestType::Shutdown: {
        sendLine(session, byeResponse());
        std::lock_guard<std::mutex> lock(mutex_);
        shutdownRequested_ = true;
        shutdownCv_.notify_all();
        return;
      }
    }
}

bool
CampaignServer::sendLine(const SessionPtr &session, const JsonValue &json)
{
    const std::string line = json.dump() + "\n";
    std::lock_guard<std::mutex> lock(session->writeMutex);
    if (!session->open)
        return false;
    if (!sendAll(session->fd, line)) {
        // A dead peer mid-write: poison the writer side so later
        // pushes (watch events) stop immediately, and shut the socket
        // so the read loop wakes with EOF. The read loop owns the
        // close; open stays true until it runs so it still closes.
        ::shutdown(session->fd, SHUT_RDWR);
        return false;
    }
    return true;
}

} // namespace nocalert::serve
