/**
 * @file
 * Campaign registry: the concurrency and caching brain of the service.
 *
 * Every submitted spec maps to a campaign entry keyed by its artifact
 * hash. The registry multiplexes active entries onto one
 * exec::FairScheduler — each scheduling turn advances one campaign by
 * one batch quantum (FaultCampaign::RunOptions::maxNewRuns over the
 * entry's checkpoint), so N concurrent campaigns share the worker
 * budget round-robin and there is a valid resumable checkpoint on
 * disk between any two turns. Determinism carries over unchanged: a
 * campaign advanced quantum-by-quantum is exactly the batch CLI's
 * --limit/resume sequence, which is proven byte-stable, so the
 * artifact the service caches is byte-identical to a single-shot
 * batch run of the same spec.
 *
 * Request handling:
 *  - submit: cache hit -> served from the store, no simulation;
 *    in-flight duplicate -> coalesced onto the running entry;
 *    cancelled/failed -> reactivated (resuming from its checkpoint);
 *    otherwise a new entry is scheduled.
 *  - cancel / client disconnect: the entry's CancelToken fires; the
 *    in-flight quantum flushes its checkpoint and the entry retires
 *    as Cancelled, freeing its scheduler share immediately. An
 *    attached (non-detached) entry auto-cancels when its last
 *    interested client disconnects.
 *  - watch: subscribers receive one finite telemetry delta per
 *    quantum and a terminal done event.
 *
 * Run-time spec failures (a fatal() inside the campaign layer, e.g. a
 * golden run that cannot drain) are caught via FatalThrowScope and
 * retire the entry as Failed with the message — one tenant's bad spec
 * never takes the service down.
 *
 * Durability (serve/journal.hpp): with a journal attached, every
 * accepted submission is fsync'd to the write-ahead log before it is
 * scheduled, terminal transitions are journalled after their effects
 * are durable, and construction replays the log — so a kill -9 at
 * any instant loses no accepted submission. Recovered work requeues
 * at the head of the scheduler ring (FairScheduler::addFront) and
 * resumes from its checkpoint; completed work is re-verified against
 * the cache and requeued if its artifact went missing or corrupt.
 */

#ifndef NOCALERT_SERVE_REGISTRY_HPP
#define NOCALERT_SERVE_REGISTRY_HPP

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exec/fairsched.hpp"
#include "exec/telemetry.hpp"
#include "fault/campaign.hpp"
#include "serve/cache.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"

namespace nocalert::serve {

/** Service-side execution knobs (never campaign identity). */
struct RegistryConfig
{
    /** Workers per quantum (0 = hardware concurrency). */
    unsigned jobs = 1;
    /** Runs per scheduling turn — the fairness granule. Larger quanta
     *  amortize the warm-snapshot rebuild; smaller ones tighten the
     *  latency with which campaigns interleave and cancellation acts. */
    unsigned quantum = 16;
    /** Checkpoint cadence inside a quantum. */
    unsigned checkpointEvery = 8;
    /**
     * Spawn the scheduler thread (the daemon). Tests disable this and
     * drive stepOnce() for deterministic interleavings.
     */
    bool startScheduler = true;
};

/** Connection identity used for interest tracking. */
using ClientId = std::uint64_t;

/** Watch sink; return false to drop the subscription (dead peer). */
using EventSink = std::function<bool(const JsonValue &event)>;

/** Answer to a submit request. */
struct SubmitOutcome
{
    std::string id;
    CampaignState state = CampaignState::Queued;
    bool cached = false;    ///< Served from the artifact store.
    bool coalesced = false; ///< Joined an in-flight campaign.
    /** Non-null error code when the spec was rejected. */
    const char *errorCode = nullptr;
    std::string error;
};

/** One-shot progress view. */
struct CampaignStatus
{
    std::string id;
    CampaignState state = CampaignState::Queued;
    std::size_t runsCompleted = 0;
    std::size_t runsPlanned = 0;
    bool cached = false;
    std::string failure; ///< Failed entries: the fatal message.
};

/** Answer to a result request. */
struct ResultOutcome
{
    std::optional<std::string> artifact;
    const char *errorCode = nullptr; ///< Set when artifact is empty.
    CampaignState state = CampaignState::Queued;
    std::string failure;
};

/** Monotonic service counters (the cache-hit acceptance test reads
 *  runsExecuted to prove a repeated submission simulated nothing). */
struct RegistryStats
{
    std::uint64_t submissions = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t runsExecuted = 0;
    std::uint64_t campaignsCompleted = 0;
    std::uint64_t campaignsCancelled = 0;
    std::uint64_t campaignsFailed = 0;
};

/** What journal replay rebuilt at construction time. */
struct RecoveryInfo
{
    /** Unfinished journalled submissions put back on the queue. */
    std::size_t requeued = 0;
    /** Completed submissions whose cached artifact verified intact. */
    std::size_t completedVerified = 0;
    /** Completed submissions whose artifact was missing or corrupt —
     *  requeued from the journalled spec (self-healing). */
    std::size_t completedRequeued = 0;
    std::size_t recordsReplayed = 0;
    std::size_t recordsCorrupt = 0;
    std::size_t bytesDroppedAtTail = 0;
};

/** See file comment. All public methods are thread-safe. */
class CampaignRegistry
{
  public:
    /**
     * With a @p journal, the registry is crash-safe: every accepted
     * submission is journalled (fsync'd) before it is scheduled, and
     * construction replays the journal — requeueing unfinished
     * submissions at the head of the scheduler ring, re-verifying
     * completed ones against the cache — before the scheduler thread
     * starts. Without one, behavior matches the pre-journal service
     * (tests that only exercise scheduling semantics use that mode).
     */
    CampaignRegistry(RegistryConfig config, ResultCache &cache,
                     SubmissionJournal *journal = nullptr);
    ~CampaignRegistry();

    CampaignRegistry(const CampaignRegistry &) = delete;
    CampaignRegistry &operator=(const CampaignRegistry &) = delete;

    SubmitOutcome submit(const fault::CampaignConfig &spec, bool detach,
                         ClientId client);

    std::optional<CampaignStatus> status(const std::string &id);

    std::vector<CampaignStatus> list();

    /** nullptr on success; else a protocol error code. */
    const char *cancel(const std::string &id);

    ResultOutcome result(const std::string &id);

    /**
     * Subscribe @p sink to @p id's telemetry stream. A terminal entry
     * receives its done event immediately. False when @p id is
     * unknown.
     */
    bool watch(const std::string &id, ClientId client, EventSink sink);

    /** Drop every interest and subscription @p client holds;
     *  auto-cancels attached campaigns left with no client. */
    void disconnect(ClientId client);

    RegistryStats stats() const;

    /** What construction recovered from the journal (all zeros when
     *  no journal was attached or the journal was empty). */
    RecoveryInfo recovery() const;

    /** Manual mode: run one scheduling turn; false when idle. */
    bool stepOnce();

    /** Cancel everything, drain, stop the scheduler thread. Entries
     *  flush checkpoints, so in-flight work resumes after restart. */
    void shutdown();

  private:
    struct Watcher
    {
        std::uint64_t token = 0; ///< Subscription identity (removal).
        ClientId client = 0;
        EventSink sink;
    };

    struct Entry
    {
        std::string id;
        fault::CampaignConfig spec;
        CampaignState state = CampaignState::Queued;
        bool detached = false;
        bool cached = false; ///< Answered from the artifact store.
        std::set<ClientId> clients;
        std::string failure;
        std::size_t runsCompleted = 0;
        std::size_t runsPlanned = 0;
        /** High-water mark feeding RegistryStats::runsExecuted. */
        std::size_t countedRuns = 0;
        exec::FairScheduler::JobId job = 0;
        /** The journal saw this entry's `start` record already. */
        bool startLogged = false;
        /** Live telemetry watermark for per-quantum deltas. */
        std::chrono::steady_clock::time_point epoch;
        bool epochSet = false;
        double lastNotifyElapsed = 0.0;
        std::size_t lastNotifyRuns = 0;
        std::vector<Watcher> watchers;
    };
    using EntryPtr = std::shared_ptr<Entry>;

    /** One scheduling turn of @p entry (scheduler thread). */
    exec::QuantumResult runQuantum(const EntryPtr &entry,
                                   exec::CancelToken &cancel);

    /** Schedule (or reschedule) an entry; mutex_ must be held. @p
     *  front requeues recovered work at the head of the ring. */
    void scheduleLocked(const EntryPtr &entry, bool front = false);

    /** Rebuild entries from the journal (constructor, pre-thread). */
    void replayJournal();

    /** Append to the journal, downgrading I/O failure to a warning
     *  (the in-memory service keeps running either way). */
    void journalAppend(const JournalRecord &record);

    /** Retire an entry and emit its done event. */
    void finalize(const EntryPtr &entry, CampaignState state,
                  std::string failure);

    /** Send @p event to the entry's watchers, dropping dead sinks. */
    void notifyWatchers(const EntryPtr &entry, const JsonValue &event);

    /** Emit one finite telemetry delta to the entry's watchers. */
    void emitTelemetry(const EntryPtr &entry);

    CampaignStatus statusOfLocked(const Entry &entry) const;

    RegistryConfig config_;
    ResultCache &cache_;
    SubmissionJournal *journal_;
    exec::FairScheduler scheduler_;
    std::thread schedulerThread_;

    mutable std::mutex mutex_;
    std::unordered_map<std::string, EntryPtr> entries_;
    RegistryStats stats_;
    RecoveryInfo recovery_;
    std::uint64_t nextWatcherToken_ = 1;
    bool shutdown_ = false;
    /** Serializes shutdown(); never held with mutex_. */
    std::mutex shutdownMutex_;
};

} // namespace nocalert::serve

#endif // NOCALERT_SERVE_REGISTRY_HPP
