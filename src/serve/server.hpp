/**
 * @file
 * Socket front end of the campaign service: a Unix-domain stream
 * listener speaking the newline-delimited JSON protocol
 * (serve/protocol.hpp), one session thread per connection.
 *
 * The server owns the artifact cache and the campaign registry; a
 * session is a thin translation loop — frame lines, parse requests,
 * call the registry, write responses — with a per-connection write
 * mutex so watch events (pushed from the scheduler thread) interleave
 * with request responses without tearing. Framing and parse failures
 * answer with typed errors and the session resyncs; only EOF or a
 * transport error ends it. When a session ends — cleanly or by abrupt
 * disconnect — the registry releases every interest the connection
 * held, which auto-cancels attached campaigns nobody else wants.
 */

#ifndef NOCALERT_SERVE_SERVER_HPP
#define NOCALERT_SERVE_SERVER_HPP

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/cache.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"

namespace nocalert::serve {

/** Daemon parameters. */
struct ServerConfig
{
    /** Unix-domain socket path (must fit sockaddr_un; keep it short). */
    std::string socketPath;
    /** Artifact cache directory. */
    std::string cacheDir;
    /** Artifact-byte budget for the cache (0 = unlimited). */
    std::uint64_t cacheMaxBytes = 0;
    /** Write-ahead submission journal. Empty derives
     *  "<cacheDir>/journal.wal"; "none" disables durability. */
    std::string journalPath;
    RegistryConfig registry;
    std::size_t maxLineBytes = kDefaultMaxLineBytes;
};

/** See file comment. */
class CampaignServer
{
  public:
    explicit CampaignServer(ServerConfig config);
    ~CampaignServer();

    CampaignServer(const CampaignServer &) = delete;
    CampaignServer &operator=(const CampaignServer &) = delete;

    /**
     * Bind, listen, and spawn the accept loop. False + *error when
     * the socket cannot be set up. A socket file left behind by a
     * crashed predecessor is detected by a connect probe (nobody
     * answering ⟹ stale) and reclaimed; a path a *live* daemon
     * answers on is refused instead of clobbered.
     */
    bool start(std::string *error);

    /** Close the listener, end every session, stop the registry. */
    void stop();

    /** Block until a shutdown request arrives (or stop() is called). */
    void waitForShutdown();

    const std::string &socketPath() const { return config_.socketPath; }

    CampaignRegistry &registry() { return registry_; }
    ResultCache &cache() { return cache_; }
    SubmissionJournal *journal() { return journal_.get(); }

  private:
    /** Shared connection state; watch sinks hold it beyond the
     *  session thread, so writes are mutex-guarded and gated on
     *  open (never touching a closed or reused descriptor). */
    struct Session
    {
        int fd = -1;
        ClientId client = 0;
        std::mutex writeMutex;
        bool open = true; ///< Guarded by writeMutex.
    };
    using SessionPtr = std::shared_ptr<Session>;

    void acceptLoop();
    void sessionLoop(const SessionPtr &session);
    void handleLine(const SessionPtr &session,
                    const LineFramer::Line &line);

    /** Write one response line; false once the session is gone. */
    bool sendLine(const SessionPtr &session, const JsonValue &json);

    ServerConfig config_;
    ResultCache cache_;
    /** Null when durability is explicitly disabled. */
    std::unique_ptr<SubmissionJournal> journal_;
    CampaignRegistry registry_;

    int listenFd_ = -1;
    std::thread acceptThread_;

    std::mutex mutex_;
    std::condition_variable shutdownCv_;
    bool stopping_ = false;
    bool shutdownRequested_ = false;
    ClientId nextClient_ = 1;
    std::unordered_map<ClientId, SessionPtr> sessions_;
    std::vector<std::thread> sessionThreads_;
};

} // namespace nocalert::serve

#endif // NOCALERT_SERVE_SERVER_HPP
