#include "serve/cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/log.hpp"

namespace nocalert::serve {

namespace fs = std::filesystem;

ResultCache::ResultCache(std::string directory)
    : directory_(std::move(directory))
{
    std::error_code ec;
    fs::create_directories(directory_, ec);
    if (ec) {
        NOCALERT_FATAL("cannot create cache directory '", directory_,
                       "': ", ec.message());
    }
}

std::string
ResultCache::artifactPath(const std::string &key) const
{
    return (fs::path(directory_) / (key + ".json")).string();
}

std::string
ResultCache::checkpointPath(const std::string &key) const
{
    return (fs::path(directory_) / (key + ".ckpt.json")).string();
}

std::optional<std::string>
ResultCache::fetch(const std::string &key)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = memory_.find(key);
        if (it != memory_.end())
            return it->second;
    }
    std::ifstream file(artifactPath(key), std::ios::binary);
    if (!file)
        return std::nullopt;
    std::ostringstream contents;
    contents << file.rdbuf();
    std::string artifact = std::move(contents).str();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        memory_.emplace(key, artifact);
    }
    return artifact;
}

bool
ResultCache::contains(const std::string &key)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (memory_.count(key))
            return true;
    }
    return fs::exists(artifactPath(key));
}

bool
ResultCache::store(const std::string &key, std::string_view artifact,
                   std::string *error)
{
    const std::string path = artifactPath(key);
    const std::string temp = path + ".tmp";
    {
        std::ofstream file(temp, std::ios::binary | std::ios::trunc);
        if (!file) {
            if (error)
                *error = "cannot open '" + temp + "' for writing";
            return false;
        }
        file.write(artifact.data(),
                   static_cast<std::streamsize>(artifact.size()));
        if (!file.good()) {
            if (error)
                *error = "short write to '" + temp + "'";
            return false;
        }
    }
    std::error_code ec;
    fs::rename(temp, path, ec);
    if (ec) {
        if (error) {
            *error = "cannot rename '" + temp + "' to '" + path +
                     "': " + ec.message();
        }
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    memory_[key] = std::string(artifact);
    return true;
}

void
ResultCache::dropCheckpoint(const std::string &key)
{
    std::error_code ec;
    fs::remove(checkpointPath(key), ec);
}

std::size_t
ResultCache::memoryEntries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return memory_.size();
}

} // namespace nocalert::serve
