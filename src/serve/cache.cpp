#include "serve/cache.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>
#include <vector>

#include "fault/serialize.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace nocalert::serve {

namespace fs = std::filesystem;

namespace {

constexpr const char *kArtifactSuffix = ".json";
constexpr const char *kCheckpointSuffix = ".ckpt.json";
constexpr const char *kCorruptSubdir = "corrupt";

bool
endsWith(const std::string &text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

/**
 * Sidecar-less entries (inherited from a pre-CRC store) still get
 * verified: the artifact's own config block must hash back to the
 * key it is stored under. A bit flip inside the config block, a
 * misfiled artifact, or JSON damage all fail this check; only flips
 * confined to the run data of a legacy entry are invisible, and the
 * healing write below upgrades every such entry to CRC coverage on
 * its first read.
 */
bool
artifactMatchesKey(const std::string &key, const std::string &artifact)
{
    const std::optional<JsonValue> doc = parseJson(artifact);
    if (!doc || !doc->isObject())
        return false;
    const JsonValue *config = doc->find("config");
    if (!config)
        return false;
    const auto parsed = fault::campaignConfigFromJson(*config);
    if (!parsed)
        return false;
    return fault::campaignArtifactHash(*parsed) == key;
}

} // namespace

ResultCache::ResultCache(CacheConfig config) : config_(std::move(config))
{
    std::error_code ec;
    fs::create_directories(config_.directory, ec);
    if (ec) {
        NOCALERT_FATAL("cannot create cache directory '",
                       config_.directory, "': ", ec.message());
    }

    // Index surviving artifacts; oldest-written become the LRU tail
    // so a restarted daemon evicts in a sensible order.
    struct Found
    {
        std::string key;
        std::uint64_t bytes = 0;
        fs::file_time_type when;
    };
    std::vector<Found> found;
    for (const auto &entry : fs::directory_iterator(config_.directory, ec)) {
        if (!entry.is_regular_file(ec))
            continue;
        const std::string name = entry.path().filename().string();
        if (!endsWith(name, kArtifactSuffix) ||
            endsWith(name, kCheckpointSuffix) ||
            name.find(".tmp.") != std::string::npos) {
            continue;
        }
        Found one;
        one.key = name.substr(
            0, name.size() - std::string(kArtifactSuffix).size());
        one.bytes = entry.file_size(ec);
        one.when = entry.last_write_time(ec);
        found.push_back(std::move(one));
    }
    std::sort(found.begin(), found.end(),
              [](const Found &a, const Found &b) { return a.when < b.when; });
    for (const Found &one : found)
        touchLocked(one.key, one.bytes); // Single-threaded here.
}

std::string
ResultCache::artifactPath(const std::string &key) const
{
    return (fs::path(config_.directory) / (key + kArtifactSuffix))
        .string();
}

std::string
ResultCache::sidecarPath(const std::string &key) const
{
    return (fs::path(config_.directory) / (key + ".crc")).string();
}

std::string
ResultCache::checkpointPath(const std::string &key) const
{
    return (fs::path(config_.directory) / (key + kCheckpointSuffix))
        .string();
}

std::string
ResultCache::corruptDirectory() const
{
    return (fs::path(config_.directory) / kCorruptSubdir).string();
}

std::optional<std::string>
ResultCache::fetch(const std::string &key)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = memory_.find(key);
        if (it != memory_.end()) {
            touchLocked(key, it->second.size());
            return it->second;
        }
    }

    const std::optional<std::string> artifact =
        readFileBytes(artifactPath(key));
    if (!artifact)
        return std::nullopt;

    // Never serve disk bytes unverified: CRC sidecar when present,
    // identity-hash fallback (plus a healing sidecar write) when not.
    const std::optional<std::string> sidecar =
        readFileBytes(sidecarPath(key));
    if (sidecar) {
        std::string hex = *sidecar;
        while (!hex.empty() && (hex.back() == '\n' || hex.back() == '\r'))
            hex.pop_back();
        const auto expected = parseCrc32Hex(hex);
        if (!expected || crc32(*artifact) != *expected) {
            std::lock_guard<std::mutex> lock(mutex_);
            quarantineLocked(key, "CRC mismatch on read");
            return std::nullopt;
        }
    } else {
        if (!artifactMatchesKey(key, *artifact)) {
            std::lock_guard<std::mutex> lock(mutex_);
            quarantineLocked(key,
                            "artifact does not match its identity key");
            return std::nullopt;
        }
        writeFileAtomic(sidecarPath(key),
                        crc32Hex(crc32(*artifact)) + "\n");
    }

    std::lock_guard<std::mutex> lock(mutex_);
    memory_.emplace(key, *artifact);
    touchLocked(key, artifact->size());
    return artifact;
}

bool
ResultCache::contains(const std::string &key)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (memory_.count(key))
            return true;
    }
    return fs::exists(artifactPath(key));
}

bool
ResultCache::store(const std::string &key, std::string_view artifact,
                   std::string *error)
{
    if (!writeFileAtomic(artifactPath(key), artifact, error))
        return false;
    if (!writeFileAtomic(sidecarPath(key),
                         crc32Hex(crc32(artifact)) + "\n", error)) {
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    memory_[key] = std::string(artifact);
    touchLocked(key, artifact.size());
    evictLocked();
    return true;
}

void
ResultCache::dropCheckpoint(const std::string &key)
{
    std::error_code ec;
    fs::remove(checkpointPath(key), ec);
}

void
ResultCache::pin(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++pins_[key];
}

void
ResultCache::unpin(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pins_.find(key);
    if (it == pins_.end())
        return;
    if (--it->second == 0)
        pins_.erase(it);
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    CacheStats stats;
    stats.entries = index_.size();
    stats.bytesStored = bytesStored_;
    stats.evictions = evictions_;
    stats.quarantined = quarantined_;
    return stats;
}

std::size_t
ResultCache::memoryEntries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return memory_.size();
}

void
ResultCache::quarantineLocked(const std::string &key,
                              const std::string &reason)
{
    std::error_code ec;
    fs::create_directories(corruptDirectory(), ec);
    const fs::path dest = fs::path(corruptDirectory());
    // Preserve the specimen for post-mortem; an older specimen of the
    // same key is less interesting than the fresh failure.
    fs::remove(dest / (key + kArtifactSuffix), ec);
    fs::rename(artifactPath(key), dest / (key + kArtifactSuffix), ec);
    fs::remove(dest / (key + ".crc"), ec);
    fs::rename(sidecarPath(key), dest / (key + ".crc"), ec);
    syncParentDirectory(artifactPath(key));
    ++quarantined_;
    forgetLocked(key);
    NOCALERT_WARN("cache entry '", key, "' quarantined: ", reason);
}

void
ResultCache::touchLocked(const std::string &key, std::uint64_t bytes)
{
    auto it = index_.find(key);
    if (it != index_.end()) {
        bytesStored_ -= it->second.bytes;
        bytesStored_ += bytes;
        it->second.bytes = bytes;
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
        return;
    }
    lru_.push_front(key);
    index_.emplace(key, IndexEntry{bytes, lru_.begin()});
    bytesStored_ += bytes;
}

void
ResultCache::evictLocked()
{
    if (config_.maxBytes == 0)
        return;
    auto victim = lru_.end();
    while (bytesStored_ > config_.maxBytes && !lru_.empty()) {
        // Oldest unpinned entry, scanning from the LRU tail.
        victim = lru_.end();
        for (auto it = std::prev(lru_.end());; --it) {
            if (!pins_.count(*it)) {
                victim = it;
                break;
            }
            if (it == lru_.begin())
                break;
        }
        if (victim == lru_.end())
            return; // Everything left is pinned.
        const std::string key = *victim;
        std::error_code ec;
        fs::remove(artifactPath(key), ec);
        fs::remove(sidecarPath(key), ec);
        syncParentDirectory(artifactPath(key));
        forgetLocked(key);
        ++evictions_;
    }
}

void
ResultCache::forgetLocked(const std::string &key)
{
    memory_.erase(key);
    auto it = index_.find(key);
    if (it == index_.end())
        return;
    bytesStored_ -= it->second.bytes;
    lru_.erase(it->second.lruIt);
    index_.erase(it);
}

} // namespace nocalert::serve
