#include "serve/registry.hpp"

#include <algorithm>
#include <utility>

#include "fault/serialize.hpp"
#include "util/log.hpp"

namespace nocalert::serve {

CampaignRegistry::CampaignRegistry(RegistryConfig config,
                                   ResultCache &cache,
                                   SubmissionJournal *journal)
    : config_(config), cache_(cache), journal_(journal)
{
    if (config_.quantum == 0)
        config_.quantum = 1;
    if (config_.checkpointEvery == 0)
        config_.checkpointEvery = 1;
    // Recovery happens before the scheduler thread exists, so replay
    // requeues everything without racing fresh submissions.
    if (journal_)
        replayJournal();
    if (config_.startScheduler) {
        schedulerThread_ =
            std::thread([this] { scheduler_.serviceLoop(); });
    }
}

void
CampaignRegistry::replayJournal()
{
    const JournalReplay replay = journal_->replay();
    recovery_.recordsReplayed = replay.recordsReplayed;
    recovery_.recordsCorrupt = replay.recordsCorrupt;
    recovery_.bytesDroppedAtTail = replay.bytesDroppedAtTail;

    std::vector<PendingSubmission> live = replay.pending;

    // Completed submissions must still have an intact artifact: fetch
    // verifies (and quarantines damage). A verified one resurrects as
    // a Complete entry; a damaged one is requeued from its journalled
    // spec when the pre-compaction submit record still carries it.
    for (const CompletedSubmission &done : replay.completed) {
        if (cache_.fetch(done.id)) {
            // Resurrect as a Complete entry only when the journal
            // still carries the spec — an entry must never hold a
            // default spec under a real id (the self-heal requeue in
            // result() would then run the wrong campaign).
            if (done.config) {
                EntryPtr entry = std::make_shared<Entry>();
                entry->id = done.id;
                entry->spec = *done.config;
                entry->detached = true;
                entry->state = CampaignState::Complete;
                entry->cached = true;
                entries_.emplace(done.id, entry);
            }
            ++recovery_.completedVerified;
            continue;
        }
        if (done.config) {
            PendingSubmission heal;
            heal.id = done.id;
            heal.config = *done.config;
            live.push_back(std::move(heal));
            ++recovery_.completedRequeued;
        }
    }

    // Compact first: the rewritten journal is exactly the live set,
    // clearing torn tails and corrupt records off disk.
    std::string error;
    if (!journal_->compact(live, &error))
        NOCALERT_WARN("journal compaction failed: ", error);

    // Requeue in reverse through the head-of-ring hook so the final
    // ring order equals the original submission order, ahead of any
    // submission that arrives after recovery.
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = live.rbegin(); it != live.rend(); ++it) {
        EntryPtr entry = std::make_shared<Entry>();
        entry->id = it->id;
        entry->spec = it->config;
        entry->detached = true; // The submitting client is gone.
        entry->startLogged = it->started;
        entries_.emplace(it->id, entry);
        scheduleLocked(entry, /*front=*/true);
        ++recovery_.requeued;
    }
}

void
CampaignRegistry::journalAppend(const JournalRecord &record)
{
    if (!journal_)
        return;
    std::string error;
    if (!journal_->append(record, &error)) {
        // Degraded durability, not an outage: the in-memory service
        // keeps its promise for this process's lifetime.
        NOCALERT_WARN("journal append (", journalOpName(record.op),
                      " ", record.id, ") failed: ", error);
    }
}

CampaignRegistry::~CampaignRegistry() { shutdown(); }

SubmitOutcome
CampaignRegistry::submit(const fault::CampaignConfig &spec, bool detach,
                         ClientId client)
{
    SubmitOutcome outcome;
    outcome.id = fault::campaignArtifactHash(spec);

    // Run the campaign constructor's validation with fatal() diverted
    // to an exception: a rejected spec becomes a typed error response
    // instead of taking the process down.
    try {
        FatalThrowScope guard;
        fault::CampaignConfig probe = spec;
        probe.checkpointPath.clear();
        fault::FaultCampaign validate(std::move(probe));
    } catch (const FatalError &failure) {
        outcome.errorCode = kErrBadSpec;
        outcome.error = failure.what();
        return outcome;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.submissions;
    if (shutdown_) {
        outcome.errorCode = kErrNotActive;
        outcome.error = "server is shutting down";
        return outcome;
    }

    auto it = entries_.find(outcome.id);
    if (it != entries_.end()) {
        const EntryPtr &entry = it->second;
        switch (entry->state) {
          case CampaignState::Complete:
            ++stats_.cacheHits;
            outcome.state = CampaignState::Complete;
            outcome.cached = true;
            return outcome;
          case CampaignState::Queued:
          case CampaignState::Running:
            // In-flight duplicate: coalesce onto the running entry.
            ++stats_.coalesced;
            if (detach)
                entry->detached = true;
            else
                entry->clients.insert(client);
            outcome.state = entry->state;
            outcome.coalesced = true;
            return outcome;
          case CampaignState::Cancelled:
          case CampaignState::Failed: {
            // Reactivate; the next quantum resumes from the entry's
            // checkpoint, converging on the same artifact bytes. The
            // journal reopens the id (write-ahead of scheduling).
            JournalRecord record;
            record.op = JournalRecord::Op::Submit;
            record.id = entry->id;
            record.config = spec;
            record.detach = detach;
            journalAppend(record);
            entry->detached = detach;
            entry->clients.clear();
            if (!detach)
                entry->clients.insert(client);
            scheduleLocked(entry);
            outcome.state = CampaignState::Queued;
            return outcome;
          }
        }
    }

    EntryPtr entry = std::make_shared<Entry>();
    entry->id = outcome.id;
    entry->spec = spec;
    entry->detached = detach;
    entries_.emplace(outcome.id, entry);

    // A previous server life may already hold the finished artifact.
    // fetch() (not contains()) so the stored bytes are verified — a
    // corrupt entry is quarantined here and the campaign re-runs
    // instead of being pinned to unservable bytes.
    if (cache_.fetch(outcome.id)) {
        ++stats_.cacheHits;
        entry->state = CampaignState::Complete;
        entry->cached = true;
        outcome.state = CampaignState::Complete;
        outcome.cached = true;
        return outcome;
    }

    // Write-ahead: the submission is durable before it is scheduled,
    // so a kill -9 from here on can no longer lose it.
    JournalRecord record;
    record.op = JournalRecord::Op::Submit;
    record.id = outcome.id;
    record.config = spec;
    record.detach = detach;
    journalAppend(record);

    if (!detach)
        entry->clients.insert(client);
    scheduleLocked(entry);
    outcome.state = CampaignState::Queued;
    return outcome;
}

std::optional<CampaignStatus>
CampaignRegistry::status(const std::string &id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(id);
    if (it == entries_.end())
        return std::nullopt;
    return statusOfLocked(*it->second);
}

std::vector<CampaignStatus>
CampaignRegistry::list()
{
    std::vector<CampaignStatus> all;
    std::lock_guard<std::mutex> lock(mutex_);
    all.reserve(entries_.size());
    for (const auto &[id, entry] : entries_)
        all.push_back(statusOfLocked(*entry));
    std::sort(all.begin(), all.end(),
              [](const CampaignStatus &a, const CampaignStatus &b) {
                  return a.id < b.id;
              });
    return all;
}

const char *
CampaignRegistry::cancel(const std::string &id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(id);
    if (it == entries_.end())
        return kErrUnknownCampaign;
    const Entry &entry = *it->second;
    if (entry.state != CampaignState::Queued &&
        entry.state != CampaignState::Running) {
        return kErrNotActive;
    }
    // An explicit cancel is durable: after a restart the id stays
    // settled instead of being requeued (unlike a crash, where every
    // unfinished submission comes back).
    JournalRecord record;
    record.op = JournalRecord::Op::Cancel;
    record.id = entry.id;
    journalAppend(record);
    scheduler_.cancel(entry.job);
    return nullptr;
}

ResultOutcome
CampaignRegistry::result(const std::string &id)
{
    ResultOutcome outcome;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(id);
        if (it == entries_.end()) {
            outcome.errorCode = kErrUnknownCampaign;
            return outcome;
        }
        outcome.state = it->second->state;
        outcome.failure = it->second->failure;
    }
    if (outcome.state == CampaignState::Failed) {
        outcome.errorCode = kErrCampaignFailed;
        return outcome;
    }
    if (outcome.state != CampaignState::Complete) {
        outcome.errorCode = kErrNotComplete;
        return outcome;
    }
    outcome.artifact = cache_.fetch(id);
    if (!outcome.artifact) {
        // The artifact went missing or failed verification (fetch
        // quarantined it). Self-heal: requeue the campaign from its
        // spec — it resumes from any surviving checkpoint and
        // converges on the same bytes — and answer not-complete so
        // the client retries once it lands.
        outcome.errorCode = kErrNotComplete;
        outcome.state = CampaignState::Queued;
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(id);
        if (it != entries_.end() &&
            it->second->state == CampaignState::Complete &&
            fault::campaignArtifactHash(it->second->spec) == id) {
            const EntryPtr &entry = it->second;
            entry->cached = false;
            entry->detached = true;
            JournalRecord record;
            record.op = JournalRecord::Op::Submit;
            record.id = entry->id;
            record.config = entry->spec;
            journalAppend(record);
            scheduleLocked(entry);
        }
    }
    return outcome;
}

bool
CampaignRegistry::watch(const std::string &id, ClientId client,
                        EventSink sink)
{
    JsonValue immediate;
    bool terminal = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(id);
        if (it == entries_.end())
            return false;
        const EntryPtr &entry = it->second;
        if (entry->state == CampaignState::Queued ||
            entry->state == CampaignState::Running) {
            entry->watchers.push_back(
                {nextWatcherToken_++, client, std::move(sink)});
            return true;
        }
        terminal = true;
        immediate = doneEvent(id, entry->state);
    }
    if (terminal)
        sink(immediate);
    return true;
}

void
CampaignRegistry::disconnect(ClientId client)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[id, entry] : entries_) {
        std::erase_if(entry->watchers, [client](const Watcher &watcher) {
            return watcher.client == client;
        });
        const bool released = entry->clients.erase(client) > 0;
        if (released && entry->clients.empty() && !entry->detached &&
            (entry->state == CampaignState::Queued ||
             entry->state == CampaignState::Running)) {
            // Last interested connection is gone: free the campaign's
            // scheduler share; its checkpoint stays resumable. The
            // auto-cancel is journalled like an explicit one — nobody
            // wants this campaign, so a restart must not revive it.
            JournalRecord record;
            record.op = JournalRecord::Op::Cancel;
            record.id = entry->id;
            journalAppend(record);
            scheduler_.cancel(entry->job);
        }
    }
}

RegistryStats
CampaignRegistry::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

RecoveryInfo
CampaignRegistry::recovery() const
{
    // Written only during construction; immutable afterwards.
    return recovery_;
}

bool
CampaignRegistry::stepOnce()
{
    return scheduler_.runOne();
}

void
CampaignRegistry::shutdown()
{
    std::lock_guard<std::mutex> shutdown_lock(shutdownMutex_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    scheduler_.cancelAll();
    if (schedulerThread_.joinable()) {
        scheduler_.waitIdle();
        scheduler_.stop();
        schedulerThread_.join();
    } else {
        // Manual mode: drain the cancelled jobs ourselves.
        while (scheduler_.runOne()) {
        }
    }
}

exec::QuantumResult
CampaignRegistry::runQuantum(const EntryPtr &entry,
                             exec::CancelToken &cancel)
{
    if (cancel.cancelled()) {
        finalize(entry, CampaignState::Cancelled, {});
        return exec::QuantumResult::Finished;
    }

    // Service-side execution knobs; never campaign identity (schema v4
    // drops them from the artifact), so the served bytes stay equal to
    // a batch run of the same spec.
    fault::CampaignConfig config = entry->spec;
    config.jobs = config_.jobs;
    config.checkpointPath = cache_.checkpointPath(entry->id);
    config.checkpointEvery = config_.checkpointEvery;

    bool logStart = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entry->state = CampaignState::Running;
        if (!entry->startLogged) {
            entry->startLogged = true;
            logStart = true;
        }
        if (!entry->epochSet) {
            entry->epoch = std::chrono::steady_clock::now();
            entry->epochSet = true;
        }
    }
    if (logStart) {
        JournalRecord record;
        record.op = JournalRecord::Op::Start;
        record.id = entry->id;
        journalAppend(record);
    }

    fault::FaultCampaign::RunOptions options;
    options.maxNewRuns = config_.quantum;
    options.cancel = &cancel;

    fault::CampaignResult result;
    try {
        // A run-time fatal (e.g. a golden run that cannot drain) is
        // this campaign's failure, not the service's.
        FatalThrowScope guard;
        fault::FaultCampaign campaign(std::move(config));
        result = campaign.run(nullptr, options);
    } catch (const FatalError &failure) {
        finalize(entry, CampaignState::Failed, failure.what());
        return exec::QuantumResult::Finished;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        entry->runsCompleted = result.runs.size();
        entry->runsPlanned = result.shardRunsPlanned;
        if (result.runs.size() > entry->countedRuns) {
            stats_.runsExecuted += result.runs.size() - entry->countedRuns;
            entry->countedRuns = result.runs.size();
        }
    }

    if (result.complete()) {
        const std::string artifact = fault::writeCampaignJson(result);
        std::string error;
        if (!cache_.store(entry->id, artifact, &error)) {
            finalize(entry, CampaignState::Failed,
                     "artifact store failed: " + error);
            return exec::QuantumResult::Finished;
        }
        cache_.dropCheckpoint(entry->id);
        finalize(entry, CampaignState::Complete, {});
        return exec::QuantumResult::Finished;
    }

    if (cancel.cancelled()) {
        // The quantum flushed a resumable checkpoint on its way out.
        finalize(entry, CampaignState::Cancelled, {});
        return exec::QuantumResult::Finished;
    }

    emitTelemetry(entry);
    return exec::QuantumResult::MoreWork;
}

void
CampaignRegistry::scheduleLocked(const EntryPtr &entry, bool front)
{
    entry->state = CampaignState::Queued;
    entry->failure.clear();
    // Live campaigns pin their cache key: the artifact (and on-disk
    // working set) of in-flight work is exempt from GC eviction until
    // finalize() releases it.
    cache_.pin(entry->id);
    auto quantum = [this, entry](exec::CancelToken &cancel) {
        return runQuantum(entry, cancel);
    };
    entry->job = front ? scheduler_.addFront(std::move(quantum))
                       : scheduler_.add(std::move(quantum));
}

void
CampaignRegistry::finalize(const EntryPtr &entry, CampaignState state,
                           std::string failure)
{
    // Journal the terminal transition. Complete follows the durable
    // artifact store (runQuantum's order), so a crash between the two
    // replays as "unfinished" and merely re-runs from the checkpoint.
    // Cancelled is *not* journalled here: shutdown and crash must
    // requeue, and the explicitly-durable cancels (client request,
    // interest loss) were journalled at their decision points.
    if (state == CampaignState::Complete) {
        JournalRecord record;
        record.op = JournalRecord::Op::Complete;
        record.id = entry->id;
        journalAppend(record);
    } else if (state == CampaignState::Failed) {
        JournalRecord record;
        record.op = JournalRecord::Op::Fail;
        record.id = entry->id;
        record.message = failure;
        journalAppend(record);
    }
    cache_.unpin(entry->id);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entry->state = state;
        entry->failure = std::move(failure);
        switch (state) {
          case CampaignState::Complete:
            ++stats_.campaignsCompleted;
            break;
          case CampaignState::Cancelled:
            ++stats_.campaignsCancelled;
            break;
          case CampaignState::Failed:
            ++stats_.campaignsFailed;
            break;
          default:
            break;
        }
    }
    notifyWatchers(entry, doneEvent(entry->id, state));
    // A watch() arriving after the state flip answers itself with an
    // immediate done event, so clearing cannot strand a subscriber.
    std::lock_guard<std::mutex> lock(mutex_);
    entry->watchers.clear();
}

void
CampaignRegistry::notifyWatchers(const EntryPtr &entry,
                                 const JsonValue &event)
{
    std::vector<Watcher> sinks;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sinks = entry->watchers;
    }
    // Sinks do socket I/O; invoke them outside the registry lock.
    std::vector<std::uint64_t> dead;
    for (const Watcher &watcher : sinks) {
        if (!watcher.sink(event))
            dead.push_back(watcher.token);
    }
    if (dead.empty())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    std::erase_if(entry->watchers, [&dead](const Watcher &watcher) {
        return std::find(dead.begin(), dead.end(), watcher.token) !=
               dead.end();
    });
}

void
CampaignRegistry::emitTelemetry(const EntryPtr &entry)
{
    // Per-quantum hubs restart their clocks, so windowed rates are
    // computed against the registry's own epoch: synthesize the
    // snapshot pair and let deltaBetween apply the finiteness guards.
    exec::TelemetrySnapshot prev;
    exec::TelemetrySnapshot cur;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - entry->epoch)
                .count();
        prev.runsCompleted = entry->lastNotifyRuns;
        prev.elapsedSeconds = entry->lastNotifyElapsed;
        cur.runsCompleted = entry->runsCompleted;
        cur.runsPlanned = entry->runsPlanned;
        cur.elapsedSeconds = elapsed;
        if (elapsed > 0.0) {
            cur.runsPerSecond =
                static_cast<double>(cur.runsCompleted) / elapsed;
        }
        entry->lastNotifyRuns = entry->runsCompleted;
        entry->lastNotifyElapsed = elapsed;
    }
    notifyWatchers(entry,
                   telemetryEvent(entry->id,
                                  exec::deltaBetween(prev, cur)));
}

CampaignStatus
CampaignRegistry::statusOfLocked(const Entry &entry) const
{
    CampaignStatus status;
    status.id = entry.id;
    status.state = entry.state;
    status.runsCompleted = entry.runsCompleted;
    status.runsPlanned = entry.runsPlanned;
    status.cached = entry.cached;
    status.failure = entry.failure;
    return status;
}

} // namespace nocalert::serve
