#include "serve/registry.hpp"

#include <algorithm>
#include <utility>

#include "fault/serialize.hpp"
#include "util/log.hpp"

namespace nocalert::serve {

CampaignRegistry::CampaignRegistry(RegistryConfig config,
                                   ResultCache &cache)
    : config_(config), cache_(cache)
{
    if (config_.quantum == 0)
        config_.quantum = 1;
    if (config_.checkpointEvery == 0)
        config_.checkpointEvery = 1;
    if (config_.startScheduler) {
        schedulerThread_ =
            std::thread([this] { scheduler_.serviceLoop(); });
    }
}

CampaignRegistry::~CampaignRegistry() { shutdown(); }

SubmitOutcome
CampaignRegistry::submit(const fault::CampaignConfig &spec, bool detach,
                         ClientId client)
{
    SubmitOutcome outcome;
    outcome.id = fault::campaignArtifactHash(spec);

    // Run the campaign constructor's validation with fatal() diverted
    // to an exception: a rejected spec becomes a typed error response
    // instead of taking the process down.
    try {
        FatalThrowScope guard;
        fault::CampaignConfig probe = spec;
        probe.checkpointPath.clear();
        fault::FaultCampaign validate(std::move(probe));
    } catch (const FatalError &failure) {
        outcome.errorCode = kErrBadSpec;
        outcome.error = failure.what();
        return outcome;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.submissions;
    if (shutdown_) {
        outcome.errorCode = kErrNotActive;
        outcome.error = "server is shutting down";
        return outcome;
    }

    auto it = entries_.find(outcome.id);
    if (it != entries_.end()) {
        const EntryPtr &entry = it->second;
        switch (entry->state) {
          case CampaignState::Complete:
            ++stats_.cacheHits;
            outcome.state = CampaignState::Complete;
            outcome.cached = true;
            return outcome;
          case CampaignState::Queued:
          case CampaignState::Running:
            // In-flight duplicate: coalesce onto the running entry.
            ++stats_.coalesced;
            if (detach)
                entry->detached = true;
            else
                entry->clients.insert(client);
            outcome.state = entry->state;
            outcome.coalesced = true;
            return outcome;
          case CampaignState::Cancelled:
          case CampaignState::Failed:
            // Reactivate; the next quantum resumes from the entry's
            // checkpoint, converging on the same artifact bytes.
            entry->detached = detach;
            entry->clients.clear();
            if (!detach)
                entry->clients.insert(client);
            scheduleLocked(entry);
            outcome.state = CampaignState::Queued;
            return outcome;
        }
    }

    EntryPtr entry = std::make_shared<Entry>();
    entry->id = outcome.id;
    entry->spec = spec;
    entry->detached = detach;
    entries_.emplace(outcome.id, entry);

    // A previous server life may already hold the finished artifact.
    if (cache_.contains(outcome.id)) {
        ++stats_.cacheHits;
        entry->state = CampaignState::Complete;
        entry->cached = true;
        outcome.state = CampaignState::Complete;
        outcome.cached = true;
        return outcome;
    }

    if (!detach)
        entry->clients.insert(client);
    scheduleLocked(entry);
    outcome.state = CampaignState::Queued;
    return outcome;
}

std::optional<CampaignStatus>
CampaignRegistry::status(const std::string &id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(id);
    if (it == entries_.end())
        return std::nullopt;
    return statusOfLocked(*it->second);
}

std::vector<CampaignStatus>
CampaignRegistry::list()
{
    std::vector<CampaignStatus> all;
    std::lock_guard<std::mutex> lock(mutex_);
    all.reserve(entries_.size());
    for (const auto &[id, entry] : entries_)
        all.push_back(statusOfLocked(*entry));
    std::sort(all.begin(), all.end(),
              [](const CampaignStatus &a, const CampaignStatus &b) {
                  return a.id < b.id;
              });
    return all;
}

const char *
CampaignRegistry::cancel(const std::string &id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(id);
    if (it == entries_.end())
        return kErrUnknownCampaign;
    const Entry &entry = *it->second;
    if (entry.state != CampaignState::Queued &&
        entry.state != CampaignState::Running) {
        return kErrNotActive;
    }
    scheduler_.cancel(entry.job);
    return nullptr;
}

ResultOutcome
CampaignRegistry::result(const std::string &id)
{
    ResultOutcome outcome;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(id);
        if (it == entries_.end()) {
            outcome.errorCode = kErrUnknownCampaign;
            return outcome;
        }
        outcome.state = it->second->state;
        outcome.failure = it->second->failure;
    }
    if (outcome.state == CampaignState::Failed) {
        outcome.errorCode = kErrCampaignFailed;
        return outcome;
    }
    if (outcome.state != CampaignState::Complete) {
        outcome.errorCode = kErrNotComplete;
        return outcome;
    }
    outcome.artifact = cache_.fetch(id);
    if (!outcome.artifact)
        outcome.errorCode = kErrNotComplete;
    return outcome;
}

bool
CampaignRegistry::watch(const std::string &id, ClientId client,
                        EventSink sink)
{
    JsonValue immediate;
    bool terminal = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(id);
        if (it == entries_.end())
            return false;
        const EntryPtr &entry = it->second;
        if (entry->state == CampaignState::Queued ||
            entry->state == CampaignState::Running) {
            entry->watchers.push_back(
                {nextWatcherToken_++, client, std::move(sink)});
            return true;
        }
        terminal = true;
        immediate = doneEvent(id, entry->state);
    }
    if (terminal)
        sink(immediate);
    return true;
}

void
CampaignRegistry::disconnect(ClientId client)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[id, entry] : entries_) {
        std::erase_if(entry->watchers, [client](const Watcher &watcher) {
            return watcher.client == client;
        });
        const bool released = entry->clients.erase(client) > 0;
        if (released && entry->clients.empty() && !entry->detached &&
            (entry->state == CampaignState::Queued ||
             entry->state == CampaignState::Running)) {
            // Last interested connection is gone: free the campaign's
            // scheduler share; its checkpoint stays resumable.
            scheduler_.cancel(entry->job);
        }
    }
}

RegistryStats
CampaignRegistry::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

bool
CampaignRegistry::stepOnce()
{
    return scheduler_.runOne();
}

void
CampaignRegistry::shutdown()
{
    std::lock_guard<std::mutex> shutdown_lock(shutdownMutex_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    scheduler_.cancelAll();
    if (schedulerThread_.joinable()) {
        scheduler_.waitIdle();
        scheduler_.stop();
        schedulerThread_.join();
    } else {
        // Manual mode: drain the cancelled jobs ourselves.
        while (scheduler_.runOne()) {
        }
    }
}

exec::QuantumResult
CampaignRegistry::runQuantum(const EntryPtr &entry,
                             exec::CancelToken &cancel)
{
    if (cancel.cancelled()) {
        finalize(entry, CampaignState::Cancelled, {});
        return exec::QuantumResult::Finished;
    }

    // Service-side execution knobs; never campaign identity (schema v4
    // drops them from the artifact), so the served bytes stay equal to
    // a batch run of the same spec.
    fault::CampaignConfig config = entry->spec;
    config.jobs = config_.jobs;
    config.checkpointPath = cache_.checkpointPath(entry->id);
    config.checkpointEvery = config_.checkpointEvery;

    {
        std::lock_guard<std::mutex> lock(mutex_);
        entry->state = CampaignState::Running;
        if (!entry->epochSet) {
            entry->epoch = std::chrono::steady_clock::now();
            entry->epochSet = true;
        }
    }

    fault::FaultCampaign::RunOptions options;
    options.maxNewRuns = config_.quantum;
    options.cancel = &cancel;

    fault::CampaignResult result;
    try {
        // A run-time fatal (e.g. a golden run that cannot drain) is
        // this campaign's failure, not the service's.
        FatalThrowScope guard;
        fault::FaultCampaign campaign(std::move(config));
        result = campaign.run(nullptr, options);
    } catch (const FatalError &failure) {
        finalize(entry, CampaignState::Failed, failure.what());
        return exec::QuantumResult::Finished;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        entry->runsCompleted = result.runs.size();
        entry->runsPlanned = result.shardRunsPlanned;
        if (result.runs.size() > entry->countedRuns) {
            stats_.runsExecuted += result.runs.size() - entry->countedRuns;
            entry->countedRuns = result.runs.size();
        }
    }

    if (result.complete()) {
        const std::string artifact = fault::writeCampaignJson(result);
        std::string error;
        if (!cache_.store(entry->id, artifact, &error)) {
            finalize(entry, CampaignState::Failed,
                     "artifact store failed: " + error);
            return exec::QuantumResult::Finished;
        }
        cache_.dropCheckpoint(entry->id);
        finalize(entry, CampaignState::Complete, {});
        return exec::QuantumResult::Finished;
    }

    if (cancel.cancelled()) {
        // The quantum flushed a resumable checkpoint on its way out.
        finalize(entry, CampaignState::Cancelled, {});
        return exec::QuantumResult::Finished;
    }

    emitTelemetry(entry);
    return exec::QuantumResult::MoreWork;
}

void
CampaignRegistry::scheduleLocked(const EntryPtr &entry)
{
    entry->state = CampaignState::Queued;
    entry->failure.clear();
    entry->job =
        scheduler_.add([this, entry](exec::CancelToken &cancel) {
            return runQuantum(entry, cancel);
        });
}

void
CampaignRegistry::finalize(const EntryPtr &entry, CampaignState state,
                           std::string failure)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entry->state = state;
        entry->failure = std::move(failure);
        switch (state) {
          case CampaignState::Complete:
            ++stats_.campaignsCompleted;
            break;
          case CampaignState::Cancelled:
            ++stats_.campaignsCancelled;
            break;
          case CampaignState::Failed:
            ++stats_.campaignsFailed;
            break;
          default:
            break;
        }
    }
    notifyWatchers(entry, doneEvent(entry->id, state));
    // A watch() arriving after the state flip answers itself with an
    // immediate done event, so clearing cannot strand a subscriber.
    std::lock_guard<std::mutex> lock(mutex_);
    entry->watchers.clear();
}

void
CampaignRegistry::notifyWatchers(const EntryPtr &entry,
                                 const JsonValue &event)
{
    std::vector<Watcher> sinks;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sinks = entry->watchers;
    }
    // Sinks do socket I/O; invoke them outside the registry lock.
    std::vector<std::uint64_t> dead;
    for (const Watcher &watcher : sinks) {
        if (!watcher.sink(event))
            dead.push_back(watcher.token);
    }
    if (dead.empty())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    std::erase_if(entry->watchers, [&dead](const Watcher &watcher) {
        return std::find(dead.begin(), dead.end(), watcher.token) !=
               dead.end();
    });
}

void
CampaignRegistry::emitTelemetry(const EntryPtr &entry)
{
    // Per-quantum hubs restart their clocks, so windowed rates are
    // computed against the registry's own epoch: synthesize the
    // snapshot pair and let deltaBetween apply the finiteness guards.
    exec::TelemetrySnapshot prev;
    exec::TelemetrySnapshot cur;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - entry->epoch)
                .count();
        prev.runsCompleted = entry->lastNotifyRuns;
        prev.elapsedSeconds = entry->lastNotifyElapsed;
        cur.runsCompleted = entry->runsCompleted;
        cur.runsPlanned = entry->runsPlanned;
        cur.elapsedSeconds = elapsed;
        if (elapsed > 0.0) {
            cur.runsPerSecond =
                static_cast<double>(cur.runsCompleted) / elapsed;
        }
        entry->lastNotifyRuns = entry->runsCompleted;
        entry->lastNotifyElapsed = elapsed;
    }
    notifyWatchers(entry,
                   telemetryEvent(entry->id,
                                  exec::deltaBetween(prev, cur)));
}

CampaignStatus
CampaignRegistry::statusOfLocked(const Entry &entry) const
{
    CampaignStatus status;
    status.id = entry.id;
    status.state = entry.state;
    status.runsCompleted = entry.runsCompleted;
    status.runsPlanned = entry.runsPlanned;
    status.cached = entry.cached;
    status.failure = entry.failure;
    return status;
}

} // namespace nocalert::serve
