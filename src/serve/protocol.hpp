/**
 * @file
 * Wire protocol of the campaign service: newline-delimited JSON over a
 * local stream socket.
 *
 * Every request is one JSON object on one line carrying a string
 * "type"; every response is one JSON object on one line, also typed.
 * Campaign specs ride in the same serialized form the schema v4/v5
 * artifacts use (fault::toJson / campaignConfigFromJson), so the
 * service accepts exactly the configs the batch CLIs accept and a
 * client can round-trip an artifact's config block straight back into
 * a submission.
 *
 * The framing layer (LineFramer) is deliberately paranoid: truncated
 * buffers, oversized lines, interleaved chunks and malformed JSON are
 * expected inputs, not exceptional ones. A framing or parse failure
 * maps to a typed `error` response with a machine-readable code and
 * the byte offset of the problem (mirroring the corrupt-checkpoint
 * path-and-offset diagnostics) — the session survives and resyncs at
 * the next newline.
 */

#ifndef NOCALERT_SERVE_PROTOCOL_HPP
#define NOCALERT_SERVE_PROTOCOL_HPP

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "exec/telemetry.hpp"
#include "fault/campaign.hpp"
#include "util/json.hpp"

namespace nocalert::serve {

/** Default per-line ceiling (a campaign spec is a few KiB; anything
 *  near this is hostile or corrupt). */
inline constexpr std::size_t kDefaultMaxLineBytes = 1u << 20;

/**
 * Incremental newline framer with an oversize guard. Feed arbitrary
 * chunks; take complete lines. A line exceeding the ceiling surfaces
 * exactly once (oversized=true, with the byte count dropped so far)
 * and the framer silently discards until the next newline — the
 * stream stays in sync and later requests are unaffected.
 */
class LineFramer
{
  public:
    explicit LineFramer(std::size_t max_line_bytes = kDefaultMaxLineBytes)
        : maxLineBytes_(max_line_bytes)
    {
    }

    struct Line
    {
        std::string text;      ///< Without the terminating newline.
        bool oversized = false; ///< Line exceeded the ceiling.
        std::size_t bytesDropped = 0; ///< Payload discarded (oversized).
    };

    /** Append raw bytes received from the peer. */
    void feed(std::string_view bytes);

    /** Next complete (or oversized) line, if any. */
    std::optional<Line> next();

    /** True when the buffer ends mid-line (diagnoses a truncated
     *  stream at EOF: bytes arrived but no newline ever did). */
    bool partialLine() const { return !buffer_.empty() || discarding_; }

    std::size_t maxLineBytes() const { return maxLineBytes_; }

  private:
    std::size_t maxLineBytes_;
    std::string buffer_;
    /** Oversize mode: dropping until the next newline. */
    bool discarding_ = false;
};

/** Campaign lifecycle as the protocol reports it. */
enum class CampaignState : std::uint8_t {
    Queued,    ///< Accepted, waiting for its first quantum.
    Running,   ///< Has received at least one quantum.
    Complete,  ///< Artifact finished and cached.
    Cancelled, ///< Stopped with a valid resumable checkpoint.
    Failed,    ///< The campaign itself rejected the spec at run time.
};

const char *campaignStateName(CampaignState state);

/** Request types the service accepts. */
enum class RequestType : std::uint8_t {
    Ping,     ///< Liveness probe.
    Submit,   ///< Submit a campaign spec (config payload).
    Status,   ///< One-shot progress/state query by id.
    Watch,    ///< Subscribe to telemetry deltas until terminal.
    Cancel,   ///< Cooperative cancel by id.
    Result,   ///< Fetch the finished artifact bytes by id.
    List,     ///< Enumerate known campaigns.
    Stats,    ///< Server counters (runs executed, cache hits, ...).
    Shutdown, ///< Ask the daemon to exit cleanly.
};

/** One parsed request. */
struct Request
{
    RequestType type = RequestType::Ping;
    std::string id; ///< Campaign id (status/watch/cancel/result).
    std::optional<fault::CampaignConfig> config; ///< Submit payload.
    /**
     * Submit only: detach the campaign from this connection's
     * lifetime. A non-detached submission is cancelled automatically
     * when every interested connection is gone (the abrupt-disconnect
     * contract); a detached one keeps running unattended.
     */
    bool detach = false;
};

/**
 * Parse one request line. On any failure — malformed JSON, a
 * non-object document, a missing or unknown type, a bad payload —
 * returns nullopt and fills @p error with a typed error *response*
 * ready to send (never throws, never aborts).
 */
std::optional<Request> parseRequestLine(std::string_view line,
                                        JsonValue *error);

// ---- Response builders (every response carries "type") ----

/** `{"type":"error","code":...,"message":...}`. */
JsonValue errorResponse(std::string_view code, std::string_view message);

JsonValue pongResponse();

/** Answer to submit: current state plus how the request was served. */
JsonValue submittedResponse(std::string_view id, CampaignState state,
                            bool cached, bool coalesced);

JsonValue statusResponse(std::string_view id, CampaignState state,
                         std::size_t runs_completed,
                         std::size_t runs_planned, bool cached,
                         std::string_view failure);

/** Acknowledges a watch subscription (deltas follow). */
JsonValue watchingResponse(std::string_view id);

/** One telemetry delta on a watch stream; all doubles finite. */
JsonValue telemetryEvent(std::string_view id,
                         const exec::TelemetryDelta &delta);

/** Terminal event closing a watch stream. */
JsonValue doneEvent(std::string_view id, CampaignState state);

JsonValue cancelledResponse(std::string_view id);

/** Artifact bytes embedded as a JSON string (escaping is lossless:
 *  the extracted string is byte-identical to the stored artifact). */
JsonValue resultResponse(std::string_view id, std::string_view artifact);

JsonValue byeResponse();

// ---- Error codes (stable strings, asserted by tests) ----

inline constexpr const char *kErrBadJson = "bad-json";
inline constexpr const char *kErrBadRequest = "bad-request";
inline constexpr const char *kErrUnknownType = "unknown-type";
inline constexpr const char *kErrOversized = "payload-too-large";
inline constexpr const char *kErrUnknownCampaign = "unknown-campaign";
inline constexpr const char *kErrNotComplete = "not-complete";
inline constexpr const char *kErrNotActive = "not-active";
inline constexpr const char *kErrBadSpec = "bad-spec";
inline constexpr const char *kErrCampaignFailed = "campaign-failed";

} // namespace nocalert::serve

#endif // NOCALERT_SERVE_PROTOCOL_HPP
