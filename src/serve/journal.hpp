/**
 * @file
 * Write-ahead submission journal of the campaign service.
 *
 * The daemon's registry is rebuilt from two disk structures after a
 * crash: the artifact cache (finished work) and this journal (work
 * that was promised but not finished). Every state transition that
 * must survive kill -9 is appended — and fsync'd — *before* the
 * in-memory registry acts on it:
 *
 *   submit    id + full serialized spec (+ detach flag)
 *   start     id received its first scheduling quantum
 *   cancel    an explicit client cancel was accepted
 *   complete  the artifact landed in the cache
 *   fail      the campaign retired with a run-time fatal
 *
 * On-disk format: one record per line,
 *
 *   NJ1 <crc32-hex8> <compact-json-payload>\n
 *
 * where the CRC covers exactly the payload bytes. The framing is
 * self-synchronizing (newline-delimited) and every record is
 * independently verifiable, so replay makes only safe moves: a torn
 * tail (the append the crash interrupted) is dropped; a bit-flipped
 * record mid-file is skipped and replay resyncs at the next newline;
 * nothing damaged is ever acted on. Replay folds the surviving
 * records per id — a submit without a terminal record is requeued,
 * everything else is settled — and the caller then compacts the
 * journal down to the live submissions, atomically, so the file
 * neither grows forever nor accumulates corrupt debris.
 */

#ifndef NOCALERT_SERVE_JOURNAL_HPP
#define NOCALERT_SERVE_JOURNAL_HPP

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "util/fsio.hpp"

namespace nocalert::serve {

/** One journalled state transition. */
struct JournalRecord
{
    enum class Op : std::uint8_t { Submit, Start, Cancel, Complete, Fail };

    Op op = Op::Submit;
    std::string id;
    /** Submit only: the full spec, so replay can reconstruct the
     *  campaign without any other state surviving. */
    std::optional<fault::CampaignConfig> config;
    bool detach = true; ///< Submit only.
    std::string message; ///< Fail only: the fatal message.
};

const char *journalOpName(JournalRecord::Op op);

/** A submission the replay decided is still owed an artifact. */
struct PendingSubmission
{
    std::string id;
    fault::CampaignConfig config;
    bool started = false; ///< Saw a start record (has a checkpoint).
};

/** A submission whose terminal record was `complete`. The artifact
 *  is *expected* in the cache; the registry re-verifies and, when the
 *  artifact went missing or corrupt, requeues from the config. */
struct CompletedSubmission
{
    std::string id;
    /** Absent when the submit record predates the last compaction. */
    std::optional<fault::CampaignConfig> config;
};

/** What replay() recovered and what it had to discard. */
struct JournalReplay
{
    /** Unfinished submissions, in original submit order. */
    std::vector<PendingSubmission> pending;
    std::vector<CompletedSubmission> completed;
    std::size_t recordsReplayed = 0;
    /** Records whose CRC or framing failed (skipped, not trusted). */
    std::size_t recordsCorrupt = 0;
    /** Bytes of torn tail dropped (the append a crash interrupted). */
    std::size_t bytesDroppedAtTail = 0;
};

/**
 * The write-ahead journal itself. Thread-safe: appends from the
 * session and scheduler threads serialize internally. See the file
 * comment for the format and crash semantics.
 */
class SubmissionJournal
{
  public:
    /** Attaches to @p path; the file is created on the first append
     *  (or by compact()). Never truncates existing records. */
    explicit SubmissionJournal(std::string path);

    /**
     * Read every decodable record and fold them into the recovery
     * verdict. Never throws and never trusts damaged bytes; see
     * JournalReplay for what was salvaged vs. discarded. Safe to call
     * on a missing file (empty replay).
     */
    JournalReplay replay();

    /** Append one fsync'd record; false + *error on I/O failure. */
    bool append(const JournalRecord &record,
                std::string *error = nullptr);

    /**
     * Atomically rewrite the journal to exactly @p live (normally the
     * pending list replay() returned, re-journalled as submit [+
     * start] records). Clears torn tails and corrupt records from
     * disk and bounds the file's growth across restarts.
     */
    bool compact(const std::vector<PendingSubmission> &live,
                 std::string *error = nullptr);

    const std::string &path() const { return path_; }

    /** Records appended by this process (stats/observability). */
    std::uint64_t appendCount() const;

    /** Encode / decode one record line (exposed for tests and the
     *  chaos harness's corruption injectors). */
    static std::string encodeRecord(const JournalRecord &record);
    static std::optional<JournalRecord> decodeLine(std::string_view line);

  private:
    std::string path_;
    mutable std::mutex mutex_;
    DurableAppender appender_;
    std::uint64_t appends_ = 0;
};

} // namespace nocalert::serve

#endif // NOCALERT_SERVE_JOURNAL_HPP
