#include "serve/journal.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "fault/serialize.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace nocalert::serve {

namespace {

constexpr std::string_view kMagic = "NJ1";

const std::pair<std::string_view, JournalRecord::Op> kOpNames[] = {
    {"submit", JournalRecord::Op::Submit},
    {"start", JournalRecord::Op::Start},
    {"cancel", JournalRecord::Op::Cancel},
    {"complete", JournalRecord::Op::Complete},
    {"fail", JournalRecord::Op::Fail},
};

std::optional<JournalRecord::Op>
opFromName(std::string_view name)
{
    for (const auto &[text, op] : kOpNames) {
        if (text == name)
            return op;
    }
    return std::nullopt;
}

} // namespace

const char *
journalOpName(JournalRecord::Op op)
{
    for (const auto &[text, value] : kOpNames) {
        if (value == op)
            return text.data();
    }
    return "?";
}

SubmissionJournal::SubmissionJournal(std::string path)
    : path_(std::move(path))
{
}

std::string
SubmissionJournal::encodeRecord(const JournalRecord &record)
{
    JsonValue payload;
    payload.set("op", journalOpName(record.op));
    payload.set("id", record.id);
    if (record.op == JournalRecord::Op::Submit) {
        NOCALERT_ASSERT(record.config.has_value(),
                        "submit record without a config");
        payload.set("config", fault::toJson(*record.config));
        payload.set("detach", record.detach);
    }
    if (record.op == JournalRecord::Op::Fail)
        payload.set("message", record.message);

    const std::string json = payload.dump();
    std::string line;
    line.reserve(kMagic.size() + 1 + 8 + 1 + json.size() + 1);
    line.append(kMagic);
    line.push_back(' ');
    line.append(crc32Hex(crc32(json)));
    line.push_back(' ');
    line.append(json);
    line.push_back('\n');
    return line;
}

std::optional<JournalRecord>
SubmissionJournal::decodeLine(std::string_view line)
{
    // "NJ1 <crc8> <json>" — anything that deviates is untrusted.
    if (line.size() < kMagic.size() + 1 + 8 + 1 + 2)
        return std::nullopt;
    if (line.substr(0, kMagic.size()) != kMagic ||
        line[kMagic.size()] != ' ') {
        return std::nullopt;
    }
    const std::string_view crcHex = line.substr(kMagic.size() + 1, 8);
    const auto expected = parseCrc32Hex(crcHex);
    if (!expected || line[kMagic.size() + 1 + 8] != ' ')
        return std::nullopt;
    const std::string_view json = line.substr(kMagic.size() + 1 + 8 + 1);
    if (crc32(json) != *expected)
        return std::nullopt;

    const std::optional<JsonValue> doc = parseJson(json);
    if (!doc || !doc->isObject())
        return std::nullopt;
    const JsonValue *op = doc->find("op");
    const JsonValue *id = doc->find("id");
    if (!op || !op->isString() || !id || !id->isString() ||
        id->string().empty()) {
        return std::nullopt;
    }
    const auto kind = opFromName(op->string());
    if (!kind)
        return std::nullopt;

    JournalRecord record;
    record.op = *kind;
    record.id = id->string();
    if (record.op == JournalRecord::Op::Submit) {
        const JsonValue *config = doc->find("config");
        if (!config)
            return std::nullopt;
        record.config = fault::campaignConfigFromJson(*config);
        if (!record.config)
            return std::nullopt;
        if (const JsonValue *detach = doc->find("detach"))
            record.detach = detach->isBool() && detach->boolean();
    }
    if (record.op == JournalRecord::Op::Fail) {
        if (const JsonValue *message = doc->find("message")) {
            if (message->isString())
                record.message = message->string();
        }
    }
    return record;
}

JournalReplay
SubmissionJournal::replay()
{
    JournalReplay replay;
    const std::optional<std::string> bytes = readFileBytes(path_);
    if (!bytes)
        return replay; // No journal yet: clean first boot.

    // Fold records per id. Order matters only for requeue fairness,
    // so pending submissions keep their original submit order.
    struct Folded
    {
        std::optional<fault::CampaignConfig> config;
        bool started = false;
        bool settled = false; ///< Saw cancel/complete/fail.
        bool completed = false;
        std::size_t order = 0;
    };
    std::unordered_map<std::string, Folded> byId;
    std::size_t nextOrder = 0;

    std::string_view rest = *bytes;
    while (!rest.empty()) {
        const std::size_t newline = rest.find('\n');
        if (newline == std::string_view::npos) {
            // Torn tail: the append a crash interrupted. Expected
            // after kill -9; never acted on.
            replay.bytesDroppedAtTail = rest.size();
            break;
        }
        const std::string_view line = rest.substr(0, newline);
        rest.remove_prefix(newline + 1);
        if (line.empty())
            continue;
        const auto record = decodeLine(line);
        if (!record) {
            ++replay.recordsCorrupt;
            continue; // Resync at the next newline.
        }
        ++replay.recordsReplayed;
        Folded &folded = byId[record->id];
        switch (record->op) {
          case JournalRecord::Op::Submit:
            // A resubmission after cancel/fail reopens the id.
            folded.config = record->config;
            folded.settled = false;
            folded.completed = false;
            folded.order = nextOrder++;
            break;
          case JournalRecord::Op::Start:
            folded.started = true;
            break;
          case JournalRecord::Op::Cancel:
          case JournalRecord::Op::Fail:
            folded.settled = true;
            break;
          case JournalRecord::Op::Complete:
            folded.settled = true;
            folded.completed = true;
            break;
        }
    }

    for (auto &[id, folded] : byId) {
        if (folded.completed) {
            CompletedSubmission done;
            done.id = id;
            done.config = std::move(folded.config);
            replay.completed.push_back(std::move(done));
            continue;
        }
        if (folded.settled || !folded.config)
            continue;
        PendingSubmission pending;
        pending.id = id;
        pending.config = std::move(*folded.config);
        pending.started = folded.started;
        replay.pending.push_back(std::move(pending));
    }
    std::sort(replay.pending.begin(), replay.pending.end(),
              [&byId](const PendingSubmission &a,
                      const PendingSubmission &b) {
                  return byId[a.id].order < byId[b.id].order;
              });
    std::sort(replay.completed.begin(), replay.completed.end(),
              [](const CompletedSubmission &a,
                 const CompletedSubmission &b) { return a.id < b.id; });
    return replay;
}

bool
SubmissionJournal::append(const JournalRecord &record, std::string *error)
{
    const std::string line = encodeRecord(record);
    std::lock_guard<std::mutex> lock(mutex_);
    if (!appender_.isOpen() && !appender_.open(path_, error))
        return false;
    if (!appender_.append(line, error))
        return false;
    ++appends_;
    return true;
}

bool
SubmissionJournal::compact(const std::vector<PendingSubmission> &live,
                          std::string *error)
{
    std::string bytes;
    for (const PendingSubmission &pending : live) {
        JournalRecord submit;
        submit.op = JournalRecord::Op::Submit;
        submit.id = pending.id;
        submit.config = pending.config;
        submit.detach = true; // Recovered work has no client left.
        bytes += encodeRecord(submit);
        if (pending.started) {
            JournalRecord start;
            start.op = JournalRecord::Op::Start;
            start.id = pending.id;
            bytes += encodeRecord(start);
        }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    // Close so the rename below is the only live handle; the next
    // append reopens the compacted file.
    appender_.close();
    return writeFileAtomic(path_, bytes, error);
}

std::uint64_t
SubmissionJournal::appendCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return appends_;
}

} // namespace nocalert::serve
