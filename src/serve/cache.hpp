/**
 * @file
 * Disk-backed artifact cache of the campaign service, keyed by the
 * campaign artifact hash (fault::campaignArtifactHash).
 *
 * The store holds these files per key under one directory:
 *
 *   <key>.json      the finished artifact, byte-identical to what the
 *                   batch CLI writes for the same spec (the value a
 *                   repeated submission is served from)
 *   <key>.crc       CRC-32 of the artifact bytes (hex8 + newline),
 *                   the integrity witness verified on every disk read
 *   <key>.ckpt.json the in-progress checkpoint of a running or
 *                   cancelled campaign (the resume point a
 *                   re-submission continues from)
 *
 * Crash consistency and trust:
 *  - Artifacts and their CRC sidecars are written atomically and
 *    durably (util/fsio: temp + fsync + rename + directory fsync), so
 *    a kill -9 at any instant never leaves a torn file a later lookup
 *    would serve.
 *  - Disk is never trusted blindly: a fetch verifies the sidecar CRC
 *    (or, for sidecar-less entries inherited from an older store, the
 *    artifact's own config block against the key) and *quarantines*
 *    mismatches into a corrupt/ subdirectory — a flipped bit becomes
 *    a cache miss plus a preserved specimen, never served bytes and
 *    never a crash.
 *
 * Capacity: an optional byte budget bounds the store. Eviction is
 * LRU over artifact entries, keys pinned by the registry (campaigns
 * currently live) are exempt, and each eviction removes artifact +
 * sidecar together. CacheStats reports bytes, evictions and
 * quarantines for the stats endpoint and the chaos harness.
 *
 * A small in-memory map shortcuts repeated fetches; disk stays
 * authoritative, so a restarted server inherits the whole store.
 * In-flight request coalescing is the registry's job — the cache only
 * answers "is this spec's artifact already on disk, and intact?".
 */

#ifndef NOCALERT_SERVE_CACHE_HPP
#define NOCALERT_SERVE_CACHE_HPP

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace nocalert::serve {

/** Store placement and capacity. */
struct CacheConfig
{
    std::string directory;
    /** Artifact-byte budget; 0 = unlimited (no eviction). */
    std::uint64_t maxBytes = 0;
};

/** Monotonic counters + current occupancy (stats endpoint). */
struct CacheStats
{
    std::uint64_t entries = 0;     ///< Artifacts currently on disk.
    std::uint64_t bytesStored = 0; ///< Their total size in bytes.
    std::uint64_t evictions = 0;   ///< Entries removed by the budget.
    std::uint64_t quarantined = 0; ///< Entries failing verification.
};

/** Thread-safe artifact store; see file comment for layout. */
class ResultCache
{
  public:
    /** Creates the directory (and parents) when missing, then indexes
     *  surviving artifacts (LRU-seeded by modification time). */
    explicit ResultCache(CacheConfig config);
    explicit ResultCache(std::string directory)
        : ResultCache(CacheConfig{std::move(directory), 0})
    {
    }

    /** Artifact bytes for @p key, from memory or verified disk. A
     *  corrupt disk entry is quarantined and reads as a miss. */
    std::optional<std::string> fetch(const std::string &key);

    /** Persist artifact bytes atomically + durably, write the CRC
     *  sidecar, and evict over-budget entries; false + *error. */
    bool store(const std::string &key, std::string_view artifact,
               std::string *error = nullptr);

    /** True when an artifact for @p key exists (memory or disk).
     *  Existence only — fetch() is what verifies integrity. */
    bool contains(const std::string &key);

    /** Checkpoint file path for @p key (the campaign layer reads and
     *  writes it through CampaignConfig::checkpointPath). */
    std::string checkpointPath(const std::string &key) const;

    /** Remove @p key's checkpoint (called once the artifact landed). */
    void dropCheckpoint(const std::string &key);

    /** Artifact file path for @p key. */
    std::string artifactPath(const std::string &key) const;

    /** CRC sidecar path for @p key. */
    std::string sidecarPath(const std::string &key) const;

    /** Quarantine directory (corrupt specimens live here). */
    std::string corruptDirectory() const;

    /** Exempt @p key from eviction (campaign is live). */
    void pin(const std::string &key);
    void unpin(const std::string &key);

    CacheStats stats() const;

    const std::string &directory() const { return config_.directory; }

    /** Artifacts currently held in memory (test observability). */
    std::size_t memoryEntries() const;

  private:
    /** Move a failed entry (artifact + sidecar) into corrupt/ and
     *  forget it; mutex_ must be held. */
    void quarantineLocked(const std::string &key,
                          const std::string &reason);

    /** Mark @p key most-recently-used, (re)recording @p bytes;
     *  mutex_ must be held. */
    void touchLocked(const std::string &key, std::uint64_t bytes);

    /** Drop LRU-tail entries until the budget holds; mutex_ held. */
    void evictLocked();

    /** Forget @p key's index/memory state; mutex_ must be held. */
    void forgetLocked(const std::string &key);

    CacheConfig config_;
    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::string> memory_;

    /** LRU order, most recent at the front. */
    std::list<std::string> lru_;
    struct IndexEntry
    {
        std::uint64_t bytes = 0;
        std::list<std::string>::iterator lruIt;
    };
    std::unordered_map<std::string, IndexEntry> index_;
    std::unordered_map<std::string, unsigned> pins_;
    std::uint64_t bytesStored_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t quarantined_ = 0;
};

} // namespace nocalert::serve

#endif // NOCALERT_SERVE_CACHE_HPP
