/**
 * @file
 * Disk-backed artifact cache of the campaign service, keyed by the
 * campaign artifact hash (fault::campaignArtifactHash).
 *
 * The store holds two kinds of files per key under one directory:
 *
 *   <key>.json      the finished artifact, byte-identical to what the
 *                   batch CLI writes for the same spec (the value a
 *                   repeated submission is served from)
 *   <key>.ckpt.json the in-progress checkpoint of a running or
 *                   cancelled campaign (the resume point a
 *                   re-submission continues from)
 *
 * Artifacts are written atomically (temp file + rename) so a crashed
 * server never leaves a half-written artifact that a later lookup
 * would serve. A small in-memory map shortcuts repeated fetches; disk
 * stays authoritative, so a restarted server inherits the whole store.
 * In-flight request coalescing is the registry's job — the cache only
 * answers "is this spec's artifact already on disk?".
 */

#ifndef NOCALERT_SERVE_CACHE_HPP
#define NOCALERT_SERVE_CACHE_HPP

#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace nocalert::serve {

/** Thread-safe artifact store; see file comment for layout. */
class ResultCache
{
  public:
    /** Creates @p directory (and parents) when missing. */
    explicit ResultCache(std::string directory);

    /** Artifact bytes for @p key, from memory or disk. */
    std::optional<std::string> fetch(const std::string &key);

    /** Persist artifact bytes atomically; false + *error on failure. */
    bool store(const std::string &key, std::string_view artifact,
               std::string *error = nullptr);

    /** True when an artifact for @p key exists (memory or disk). */
    bool contains(const std::string &key);

    /** Checkpoint file path for @p key (the campaign layer reads and
     *  writes it through CampaignConfig::checkpointPath). */
    std::string checkpointPath(const std::string &key) const;

    /** Remove @p key's checkpoint (called once the artifact landed). */
    void dropCheckpoint(const std::string &key);

    /** Artifact file path for @p key. */
    std::string artifactPath(const std::string &key) const;

    const std::string &directory() const { return directory_; }

    /** Artifacts currently held in memory (test observability). */
    std::size_t memoryEntries() const;

  private:
    std::string directory_;
    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::string> memory_;
};

} // namespace nocalert::serve

#endif // NOCALERT_SERVE_CACHE_HPP
