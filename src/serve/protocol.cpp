#include "serve/protocol.hpp"

#include "fault/serialize.hpp"

namespace nocalert::serve {

void
LineFramer::feed(std::string_view bytes)
{
    if (discarding_) {
        // The oversized line was already reported; swallow its tail
        // up to (and including) the newline that ends it.
        const std::size_t newline = bytes.find('\n');
        if (newline == std::string_view::npos)
            return;
        bytes.remove_prefix(newline + 1);
        discarding_ = false;
    }
    buffer_.append(bytes);
}

std::optional<LineFramer::Line>
LineFramer::next()
{
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
        if (newline <= maxLineBytes_) {
            Line line{buffer_.substr(0, newline), false, 0};
            buffer_.erase(0, newline + 1);
            return line;
        }
        // Complete but over the ceiling: report and resync after it.
        Line line{std::string(), true, newline};
        buffer_.erase(0, newline + 1);
        return line;
    }
    if (buffer_.size() > maxLineBytes_) {
        // Past the ceiling with no end in sight: the line can never
        // become legal. Report once (bytesDropped = bytes seen so
        // far) and discard silently until its newline arrives.
        Line line{std::string(), true, buffer_.size()};
        buffer_.clear();
        discarding_ = true;
        return line;
    }
    return std::nullopt;
}

const char *
campaignStateName(CampaignState state)
{
    switch (state) {
      case CampaignState::Queued: return "queued";
      case CampaignState::Running: return "running";
      case CampaignState::Complete: return "complete";
      case CampaignState::Cancelled: return "cancelled";
      case CampaignState::Failed: return "failed";
    }
    return "?";
}

namespace {

const std::pair<std::string_view, RequestType> kRequestNames[] = {
    {"ping", RequestType::Ping},       {"submit", RequestType::Submit},
    {"status", RequestType::Status},   {"watch", RequestType::Watch},
    {"cancel", RequestType::Cancel},   {"result", RequestType::Result},
    {"list", RequestType::List},       {"stats", RequestType::Stats},
    {"shutdown", RequestType::Shutdown},
};

bool
needsId(RequestType type)
{
    return type == RequestType::Status || type == RequestType::Watch ||
           type == RequestType::Cancel || type == RequestType::Result;
}

} // namespace

std::optional<Request>
parseRequestLine(std::string_view line, JsonValue *error)
{
    std::string parse_error;
    const std::optional<JsonValue> json = parseJson(line, &parse_error);
    if (!json) {
        if (error)
            *error = errorResponse(kErrBadJson, parse_error);
        return std::nullopt;
    }
    if (!json->isObject()) {
        if (error) {
            *error = errorResponse(kErrBadRequest,
                                   "request must be a JSON object");
        }
        return std::nullopt;
    }
    const JsonValue *type = json->find("type");
    if (!type || !type->isString()) {
        if (error) {
            *error = errorResponse(kErrBadRequest,
                                   "missing string member 'type'");
        }
        return std::nullopt;
    }

    Request request;
    bool known = false;
    for (const auto &[name, value] : kRequestNames) {
        if (type->string() == name) {
            request.type = value;
            known = true;
            break;
        }
    }
    if (!known) {
        if (error) {
            *error = errorResponse(kErrUnknownType,
                                   "unknown request type '" +
                                       type->string() + "'");
        }
        return std::nullopt;
    }

    if (needsId(request.type)) {
        const JsonValue *id = json->find("id");
        if (!id || !id->isString() || id->string().empty()) {
            if (error) {
                *error = errorResponse(
                    kErrBadRequest,
                    std::string(type->string()) +
                        " requires a string member 'id'");
            }
            return std::nullopt;
        }
        request.id = id->string();
    }

    if (request.type == RequestType::Submit) {
        const JsonValue *config = json->find("config");
        if (!config) {
            if (error) {
                *error = errorResponse(
                    kErrBadRequest,
                    "submit requires a member 'config'");
            }
            return std::nullopt;
        }
        std::string config_error;
        request.config =
            fault::campaignConfigFromJson(*config, &config_error);
        if (!request.config) {
            if (error)
                *error = errorResponse(kErrBadSpec, config_error);
            return std::nullopt;
        }
        if (const JsonValue *detach = json->find("detach"))
            request.detach = detach->isBool() && detach->boolean();
    }
    return request;
}

JsonValue
errorResponse(std::string_view code, std::string_view message)
{
    JsonValue json;
    json.set("type", "error");
    json.set("code", code);
    json.set("message", message);
    return json;
}

JsonValue
pongResponse()
{
    JsonValue json;
    json.set("type", "pong");
    return json;
}

JsonValue
submittedResponse(std::string_view id, CampaignState state, bool cached,
                  bool coalesced)
{
    JsonValue json;
    json.set("type", "submitted");
    json.set("id", id);
    json.set("state", campaignStateName(state));
    json.set("cached", cached);
    json.set("coalesced", coalesced);
    return json;
}

JsonValue
statusResponse(std::string_view id, CampaignState state,
               std::size_t runs_completed, std::size_t runs_planned,
               bool cached, std::string_view failure)
{
    JsonValue json;
    json.set("type", "status");
    json.set("id", id);
    json.set("state", campaignStateName(state));
    json.set("runsCompleted", runs_completed);
    json.set("runsPlanned", runs_planned);
    json.set("cached", cached);
    if (!failure.empty())
        json.set("failure", failure);
    return json;
}

JsonValue
watchingResponse(std::string_view id)
{
    JsonValue json;
    json.set("type", "watching");
    json.set("id", id);
    return json;
}

JsonValue
telemetryEvent(std::string_view id, const exec::TelemetryDelta &delta)
{
    JsonValue json;
    json.set("type", "telemetry");
    json.set("id", id);
    json.set("runsCompleted", delta.runsCompleted);
    json.set("runsPlanned", delta.runsPlanned);
    json.set("deltaRuns", delta.deltaRuns);
    json.set("windowSeconds", delta.windowSeconds);
    json.set("runsPerSecond", delta.runsPerSecond);
    json.set("etaSeconds", delta.etaSeconds);
    return json;
}

JsonValue
doneEvent(std::string_view id, CampaignState state)
{
    JsonValue json;
    json.set("type", "done");
    json.set("id", id);
    json.set("state", campaignStateName(state));
    return json;
}

JsonValue
cancelledResponse(std::string_view id)
{
    JsonValue json;
    json.set("type", "cancelled");
    json.set("id", id);
    return json;
}

JsonValue
resultResponse(std::string_view id, std::string_view artifact)
{
    JsonValue json;
    json.set("type", "result");
    json.set("id", id);
    json.set("artifact", artifact);
    return json;
}

JsonValue
byeResponse()
{
    JsonValue json;
    json.set("type", "bye");
    return json;
}

} // namespace nocalert::serve
