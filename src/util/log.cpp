#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace nocalert {

namespace {
bool log_quiet = false;
thread_local unsigned fatal_throw_depth = 0;
} // namespace

void
setLogQuiet(bool quiet)
{
    log_quiet = quiet;
}

FatalThrowScope::FatalThrowScope()
{
    ++fatal_throw_depth;
}

FatalThrowScope::~FatalThrowScope()
{
    --fatal_throw_depth;
}

bool
FatalThrowScope::active()
{
    return fatal_throw_depth > 0;
}

void
panicImpl(const char *file, int line, const std::string &message)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", message.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &message)
{
    // Inside a FatalThrowScope the caller asked to survive user-input
    // errors (a service answering a bad request); the message reaches
    // stderr either way so operator logs stay complete.
    if (FatalThrowScope::active()) {
        std::fprintf(stderr, "fatal (recovered): %s\n", message.c_str());
        throw FatalError(message);
    }
    std::fprintf(stderr, "fatal: %s\n", message.c_str());
    std::exit(1);
}

void
warnImpl(const std::string &message)
{
    if (!log_quiet)
        std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
informImpl(const std::string &message)
{
    if (!log_quiet)
        std::fprintf(stdout, "info: %s\n", message.c_str());
}

} // namespace nocalert
