#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace nocalert {

namespace {
bool log_quiet = false;
} // namespace

void
setLogQuiet(bool quiet)
{
    log_quiet = quiet;
}

void
panicImpl(const char *file, int line, const std::string &message)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", message.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &message)
{
    std::fprintf(stderr, "fatal: %s\n", message.c_str());
    std::exit(1);
}

void
warnImpl(const std::string &message)
{
    if (!log_quiet)
        std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
informImpl(const std::string &message)
{
    if (!log_quiet)
        std::fprintf(stdout, "info: %s\n", message.c_str());
}

} // namespace nocalert
