/**
 * @file
 * Small bit-manipulation helpers used throughout the simulator.
 *
 * Control signals in the router model are stored as unsigned integers
 * (request vectors, grant vectors, one-hot selects). These helpers keep
 * the intent of each operation readable at the call site.
 */

#ifndef NOCALERT_UTIL_BITS_HPP
#define NOCALERT_UTIL_BITS_HPP

#include <bit>
#include <cstdint>

namespace nocalert {

/** Return the number of set bits in @p value. */
inline int
popcount(std::uint64_t value)
{
    return std::popcount(value);
}

/** True iff @p value has exactly one bit set. */
inline bool
isOneHot(std::uint64_t value)
{
    return std::has_single_bit(value);
}

/** True iff @p value has at most one bit set (zero or one-hot). */
inline bool
isAtMostOneHot(std::uint64_t value)
{
    return value == 0 || std::has_single_bit(value);
}

/** Return bit @p pos of @p value (0 or 1). */
inline bool
getBit(std::uint64_t value, unsigned pos)
{
    return (value >> pos) & 1ULL;
}

/** Return @p value with bit @p pos set. */
inline std::uint64_t
setBit(std::uint64_t value, unsigned pos)
{
    return value | (1ULL << pos);
}

/** Return @p value with bit @p pos cleared. */
inline std::uint64_t
clearBit(std::uint64_t value, unsigned pos)
{
    return value & ~(1ULL << pos);
}

/** Return @p value with bit @p pos flipped. */
inline std::uint64_t
flipBit(std::uint64_t value, unsigned pos)
{
    return value ^ (1ULL << pos);
}

/** Index of the lowest set bit; undefined for zero input. */
inline int
lowestSetBit(std::uint64_t value)
{
    return std::countr_zero(value);
}

/** Mask with the low @p n bits set. */
inline std::uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

/** Number of bits needed to represent values in [0, n-1]; >= 1. */
inline unsigned
bitsFor(std::uint64_t n)
{
    if (n <= 2)
        return 1;
    return static_cast<unsigned>(std::bit_width(n - 1));
}

} // namespace nocalert

#endif // NOCALERT_UTIL_BITS_HPP
