/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic decision in the simulator (traffic generation,
 * destination selection, site sampling) draws from a Pcg32 instance
 * seeded explicitly by the experiment. Golden-reference comparison
 * depends on the fault-free and faulty runs observing *identical*
 * traffic, so no global or time-based entropy is ever used.
 */

#ifndef NOCALERT_UTIL_RNG_HPP
#define NOCALERT_UTIL_RNG_HPP

#include <cstdint>

namespace nocalert {

/**
 * PCG32 generator (O'Neill, pcg-random.org; XSH-RR variant).
 *
 * Small (two 64-bit words of state), fast, and with far better
 * statistical behaviour than the classic LCGs while remaining fully
 * reproducible across platforms.
 */
class Pcg32
{
  public:
    /** Construct with a seed and an optional stream selector. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** Re-seed the generator, resetting its state. */
    void seed(std::uint64_t seed, std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** Next raw 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59);
        return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
    }

    /** Unbiased uniform integer in [0, bound). @pre bound > 0. */
    std::uint32_t nextBounded(std::uint32_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    int nextRange(int lo, int hi);

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** Bernoulli trial with success probability @p p. */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

    /** Generators compare equal iff their future output is identical. */
    bool operator==(const Pcg32 &other) const = default;

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

/**
 * Base stream selector for counter-mode stream derivation.
 *
 * This is the PCG default multiplier; any odd-spaced family of stream
 * selectors yields independent sequences, and this base is the one the
 * traffic generator has used since the first release, so derived
 * streams are bit-exact with historical campaign artifacts.
 */
inline constexpr std::uint64_t kStreamBase = 0x5851f42d4c957f2dULL;

/**
 * Derive the @p index-th independent generator for a given @p seed.
 *
 * Counter-mode derivation: each index selects the stream
 * `kStreamBase + 2*index`. PCG streams differ in their (odd) increment,
 * so distinct indices can never share a sequence, and no generator
 * state is ever handed between consumers. Used for per-node traffic
 * streams and per-run campaign streams alike.
 *
 * Caveat: the raw derivation is affine in (seed, index) — the first
 * output of (seed, index) equals that of (seed + 4, index - 1),
 * because XSH-RR discards the low 27 state bits where the affine
 * difference lands. Harmless when the seed is fixed across indices
 * (traffic, per-task streams), but any consumer that varies *both*
 * coordinates and draws few values per stream must decorrelate the
 * seed through splitMix64() first (see SampledPlanner::materialize).
 */
Pcg32 deriveStream(std::uint64_t seed, std::uint64_t index);

/**
 * SplitMix64 finalizer: a 64-bit bijective mixer with full avalanche
 * (every input bit flips ~half the output bits). Used to turn
 * structured (seed, counter) pairs into statistically independent
 * stream keys; being a bijection it can never introduce collisions.
 */
constexpr std::uint64_t
splitMix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace nocalert

#endif // NOCALERT_UTIL_RNG_HPP
