/**
 * @file
 * Fixed-width console table and CSV emission for benchmark reports.
 *
 * Every bench binary regenerating a paper figure prints a table with
 * the same rows/series the paper reports; this class keeps that output
 * aligned and optionally mirrors it to CSV for plotting.
 */

#ifndef NOCALERT_UTIL_TABLE_HPP
#define NOCALERT_UTIL_TABLE_HPP

#include <string>
#include <vector>

namespace nocalert {

/** Column-aligned text table with an optional title and CSV export. */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Set a title printed above the table. */
    void setTitle(std::string title);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Render the aligned table to a string. */
    std::string toText() const;

    /** Render as CSV (RFC-4180-ish; quotes cells containing commas). */
    std::string toCsv() const;

    /** Print toText() to stdout. */
    void print() const;

    /** Number of data rows. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Format a double with @p decimals decimal places. */
    static std::string num(double value, int decimals = 2);

    /** Format a percentage (value already in percent units). */
    static std::string pct(double value, int decimals = 2);

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace nocalert

#endif // NOCALERT_UTIL_TABLE_HPP
