/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * - panic():  an internal simulator bug; should never happen regardless
 *             of user input. Aborts (so a debugger/core dump sees it).
 * - fatal():  the simulation cannot continue because of user input
 *             (bad configuration, invalid arguments). Exits cleanly.
 * - warn():   something questionable but survivable happened.
 * - inform(): plain status output.
 */

#ifndef NOCALERT_UTIL_LOG_HPP
#define NOCALERT_UTIL_LOG_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace nocalert {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);
[[noreturn]] void fatalImpl(const std::string &message);
void warnImpl(const std::string &message);
void informImpl(const std::string &message);

/** What fatal() throws inside a FatalThrowScope. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

/**
 * While a FatalThrowScope is alive on a thread, fatal() on that thread
 * throws FatalError instead of exiting the process. Built for
 * long-running services: a fatal() is a *user-input* error by
 * contract, and a daemon must turn one tenant's bad configuration
 * into an error response, not into process death. panic() (internal
 * bugs) still aborts unconditionally.
 *
 * The flag is thread-local, so a scope on a service thread never
 * changes fatal() semantics for worker threads it did not opt in.
 * Scopes nest; the outermost destructor restores exit semantics.
 */
class FatalThrowScope
{
  public:
    FatalThrowScope();
    ~FatalThrowScope();

    FatalThrowScope(const FatalThrowScope &) = delete;
    FatalThrowScope &operator=(const FatalThrowScope &) = delete;

    /** True while any scope is alive on the calling thread. */
    static bool active();
};

/** Enable/disable warn()/inform() output (tests silence it). */
void setLogQuiet(bool quiet);

/** Format a parameter pack into one string via ostringstream. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace nocalert

#define NOCALERT_PANIC(...) \
    ::nocalert::panicImpl(__FILE__, __LINE__, \
                          ::nocalert::formatMessage(__VA_ARGS__))

#define NOCALERT_FATAL(...) \
    ::nocalert::fatalImpl(::nocalert::formatMessage(__VA_ARGS__))

#define NOCALERT_WARN(...) \
    ::nocalert::warnImpl(::nocalert::formatMessage(__VA_ARGS__))

#define NOCALERT_INFORM(...) \
    ::nocalert::informImpl(::nocalert::formatMessage(__VA_ARGS__))

/** Invariant check for simulator-internal consistency (always on). */
#define NOCALERT_ASSERT(cond, ...)                                   \
    do {                                                              \
        if (!(cond)) {                                                \
            NOCALERT_PANIC("assertion failed: " #cond " ",            \
                           ::nocalert::formatMessage(__VA_ARGS__));   \
        }                                                             \
    } while (0)

#endif // NOCALERT_UTIL_LOG_HPP
