/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * - panic():  an internal simulator bug; should never happen regardless
 *             of user input. Aborts (so a debugger/core dump sees it).
 * - fatal():  the simulation cannot continue because of user input
 *             (bad configuration, invalid arguments). Exits cleanly.
 * - warn():   something questionable but survivable happened.
 * - inform(): plain status output.
 */

#ifndef NOCALERT_UTIL_LOG_HPP
#define NOCALERT_UTIL_LOG_HPP

#include <sstream>
#include <string>

namespace nocalert {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);
[[noreturn]] void fatalImpl(const std::string &message);
void warnImpl(const std::string &message);
void informImpl(const std::string &message);

/** Enable/disable warn()/inform() output (tests silence it). */
void setLogQuiet(bool quiet);

/** Format a parameter pack into one string via ostringstream. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace nocalert

#define NOCALERT_PANIC(...) \
    ::nocalert::panicImpl(__FILE__, __LINE__, \
                          ::nocalert::formatMessage(__VA_ARGS__))

#define NOCALERT_FATAL(...) \
    ::nocalert::fatalImpl(::nocalert::formatMessage(__VA_ARGS__))

#define NOCALERT_WARN(...) \
    ::nocalert::warnImpl(::nocalert::formatMessage(__VA_ARGS__))

#define NOCALERT_INFORM(...) \
    ::nocalert::informImpl(::nocalert::formatMessage(__VA_ARGS__))

/** Invariant check for simulator-internal consistency (always on). */
#define NOCALERT_ASSERT(cond, ...)                                   \
    do {                                                              \
        if (!(cond)) {                                                \
            NOCALERT_PANIC("assertion failed: " #cond " ",            \
                           ::nocalert::formatMessage(__VA_ARGS__));   \
        }                                                             \
    } while (0)

#endif // NOCALERT_UTIL_LOG_HPP
