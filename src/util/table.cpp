#include "util/table.hpp"

#include <cstdio>
#include <sstream>

#include "util/log.hpp"

namespace nocalert {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    NOCALERT_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::setTitle(std::string title)
{
    title_ = std::move(title);
}

void
Table::addRow(std::vector<std::string> cells)
{
    NOCALERT_ASSERT(cells.size() == headers_.size(),
                    "row has ", cells.size(), " cells, expected ",
                    headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::toText() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    if (!title_.empty())
        os << title_ << "\n";

    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "| " : " | ");
            os << cells[c];
            os << std::string(widths[c] - cells[c].size(), ' ');
        }
        os << " |\n";
    };

    auto emit_rule = [&]() {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << (c == 0 ? "|-" : "-|-");
            os << std::string(widths[c], '-');
        }
        os << "-|\n";
    };

    emit_rule();
    emit_row(headers_);
    emit_rule();
    for (const auto &row : rows_)
        emit_row(row);
    emit_rule();
    return os.str();
}

std::string
Table::toCsv() const
{
    auto quote = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string out = "\"";
        for (char ch : cell) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };

    std::ostringstream os;
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << (c ? "," : "") << quote(headers_[c]);
    os << "\n";
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << quote(row[c]);
        os << "\n";
    }
    return os.str();
}

void
Table::print() const
{
    std::fputs(toText().c_str(), stdout);
}

std::string
Table::num(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
Table::pct(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, value);
    return buf;
}

} // namespace nocalert
