/**
 * @file
 * Minimal command-line flag parser shared by benches and examples.
 *
 * Supports "--name value" and "--name=value" long options plus bare
 * boolean switches ("--full"). Unrecognized flags are fatal so typos in
 * experiment invocations never silently fall back to defaults.
 */

#ifndef NOCALERT_UTIL_CLI_HPP
#define NOCALERT_UTIL_CLI_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nocalert {

/** Parsed command line with typed accessors and default values. */
class CommandLine
{
  public:
    /**
     * Parse argv. @p known lists every accepted flag name (without the
     * leading dashes); anything else aborts with a usage hint.
     *
     * With @p allow_positionals, non-flag tokens that do not follow a
     * value-less flag are collected into positionals() instead of
     * aborting (used by subcommand CLIs taking file lists).
     */
    CommandLine(int argc, const char *const *argv,
                std::vector<std::string> known,
                bool allow_positionals = false);

    /** True iff the flag was present (with or without a value). */
    bool has(const std::string &name) const;

    /** String value of a flag, or @p fallback when absent. */
    std::string getString(const std::string &name,
                          const std::string &fallback) const;

    /** Integer value of a flag, or @p fallback when absent. */
    std::int64_t getInt(const std::string &name, std::int64_t fallback) const;

    /** Double value of a flag, or @p fallback when absent. */
    double getDouble(const std::string &name, double fallback) const;

    /** Boolean switch: present without value, or =true/=false. */
    bool getBool(const std::string &name, bool fallback) const;

    /** Non-flag arguments, in order (allow_positionals mode only). */
    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positionals_;
};

} // namespace nocalert

#endif // NOCALERT_UTIL_CLI_HPP
