#include "util/fsio.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace nocalert {

namespace fs = std::filesystem;

namespace {

/** CRC-32 lookup table for the reflected IEEE polynomial. */
const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
            t[i] = c;
        }
        return t;
    }();
    return table;
}

void
fillError(std::string *error, const std::string &what)
{
    if (error)
        *error = what + ": " + std::strerror(errno);
}

/** write(2) until done, retrying EINTR and short writes. */
bool
writeAll(int fd, std::string_view bytes)
{
    while (!bytes.empty()) {
        const ssize_t wrote = ::write(fd, bytes.data(), bytes.size());
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        bytes.remove_prefix(static_cast<std::size_t>(wrote));
    }
    return true;
}

} // namespace

std::uint32_t
crc32(std::string_view bytes)
{
    const auto &table = crcTable();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (unsigned char byte : bytes)
        crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

std::string
crc32Hex(std::uint32_t crc)
{
    char hex[9];
    std::snprintf(hex, sizeof(hex), "%08x", crc);
    return std::string(hex);
}

std::optional<std::uint32_t>
parseCrc32Hex(std::string_view hex)
{
    if (hex.size() != 8)
        return std::nullopt;
    std::uint32_t value = 0;
    for (char c : hex) {
        value <<= 4;
        if (c >= '0' && c <= '9')
            value |= static_cast<std::uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            value |= static_cast<std::uint32_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            value |= static_cast<std::uint32_t>(c - 'A' + 10);
        else
            return std::nullopt;
    }
    return value;
}

void
syncParentDirectory(const std::string &path)
{
    fs::path parent = fs::path(path).parent_path();
    if (parent.empty())
        parent = ".";
    const int fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return;
    ::fsync(fd); // Best effort: some filesystems refuse dir fsync.
    ::close(fd);
}

bool
writeFileAtomic(const std::string &path, std::string_view bytes,
                std::string *error)
{
    // The temp name carries the pid so concurrent writers (two
    // daemons pointed at one cache by mistake) never tear each
    // other's staging file.
    const std::string temp =
        path + ".tmp." + std::to_string(::getpid());
    const int fd =
        ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        fillError(error, "cannot open '" + temp + "'");
        return false;
    }
    if (!writeAll(fd, bytes)) {
        fillError(error, "write '" + temp + "'");
        ::close(fd);
        ::unlink(temp.c_str());
        return false;
    }
    if (::fsync(fd) != 0) {
        fillError(error, "fsync '" + temp + "'");
        ::close(fd);
        ::unlink(temp.c_str());
        return false;
    }
    if (::close(fd) != 0) {
        fillError(error, "close '" + temp + "'");
        ::unlink(temp.c_str());
        return false;
    }
    if (::rename(temp.c_str(), path.c_str()) != 0) {
        fillError(error, "rename '" + temp + "' to '" + path + "'");
        ::unlink(temp.c_str());
        return false;
    }
    syncParentDirectory(path);
    return true;
}

std::optional<std::string>
readFileBytes(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return std::nullopt;
    std::string bytes;
    char buffer[1 << 16];
    for (;;) {
        const ssize_t got = ::read(fd, buffer, sizeof(buffer));
        if (got < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            return std::nullopt;
        }
        if (got == 0)
            break;
        bytes.append(buffer, static_cast<std::size_t>(got));
    }
    ::close(fd);
    return bytes;
}

DurableAppender::~DurableAppender() { close(); }

bool
DurableAppender::open(const std::string &path, std::string *error)
{
    close();
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
        fillError(error, "cannot open '" + path + "' for appending");
        return false;
    }
    path_ = path;
    // A freshly created journal must itself survive a crash: make the
    // directory entry durable before the first record relies on it.
    syncParentDirectory(path);
    return true;
}

bool
DurableAppender::append(std::string_view bytes, std::string *error)
{
    if (fd_ < 0) {
        if (error)
            *error = "appender is not open";
        return false;
    }
    if (!writeAll(fd_, bytes)) {
        fillError(error, "append '" + path_ + "'");
        return false;
    }
    if (::fsync(fd_) != 0) {
        fillError(error, "fsync '" + path_ + "'");
        return false;
    }
    return true;
}

void
DurableAppender::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace nocalert
