/**
 * @file
 * Crash-consistent file I/O primitives shared by every layer that
 * persists state the process must be able to trust after a kill -9:
 * the serve journal, the artifact cache, and the chaos harness.
 *
 * The contract of writeFileAtomic is all-or-nothing *and* durable:
 * bytes land in a temporary file in the target's directory, the file
 * is fsync'd, renamed over the target, and the directory entry is
 * fsync'd too — so after the call returns true, a crash at any later
 * instant leaves exactly the new content, and a crash at any earlier
 * instant leaves exactly the old content (or nothing). Readers never
 * observe a torn file through this path.
 *
 * crc32 is the IEEE 802.3 polynomial (the zlib/PNG one), computed in
 * software so artifacts and journal records verify identically on
 * every platform and toolchain.
 */

#ifndef NOCALERT_UTIL_FSIO_HPP
#define NOCALERT_UTIL_FSIO_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace nocalert {

/** CRC-32 (IEEE, reflected, init/final 0xFFFFFFFF) of @p bytes. */
std::uint32_t crc32(std::string_view bytes);

/** @p crc as the fixed-width lowercase hex the stores frame it as. */
std::string crc32Hex(std::uint32_t crc);

/** Parse an 8-digit hex CRC; nullopt on any malformation. */
std::optional<std::uint32_t> parseCrc32Hex(std::string_view hex);

/**
 * Replace @p path with @p bytes atomically and durably (see file
 * comment). False + *error (when non-null) on any failure; the
 * target is untouched in that case and the temp file is cleaned up.
 */
bool writeFileAtomic(const std::string &path, std::string_view bytes,
                     std::string *error = nullptr);

/** Whole file as bytes; nullopt when it cannot be opened or read. */
std::optional<std::string> readFileBytes(const std::string &path);

/** fsync the directory containing @p path (crash-durable renames and
 *  unlinks). Best effort on filesystems without directory fsync. */
void syncParentDirectory(const std::string &path);

/**
 * Append-only file handle with explicit durability: every append is
 * written fully (retrying EINTR/short writes) and fsync'd before
 * returning true — the write-ahead discipline journals need. The
 * file is created when missing; opening never truncates.
 */
class DurableAppender
{
  public:
    DurableAppender() = default;
    ~DurableAppender();

    DurableAppender(const DurableAppender &) = delete;
    DurableAppender &operator=(const DurableAppender &) = delete;

    /** Open (creating if needed) for appending. False + *error. */
    bool open(const std::string &path, std::string *error = nullptr);

    /** Write + fsync @p bytes at the end of the file. */
    bool append(std::string_view bytes, std::string *error = nullptr);

    /** Close the descriptor (also done by the destructor). */
    void close();

    bool isOpen() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
    std::string path_;
};

} // namespace nocalert

#endif // NOCALERT_UTIL_FSIO_HPP
