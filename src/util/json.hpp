/**
 * @file
 * Minimal self-contained JSON document model, writer, and parser —
 * no external dependencies. Built for campaign serialization
 * (serialize.hpp): deterministic output (objects keep insertion
 * order), exact integer round-trips, and shortest-round-trip doubles,
 * so that re-serializing a parsed document reproduces it byte for
 * byte.
 */

#ifndef NOCALERT_UTIL_JSON_HPP
#define NOCALERT_UTIL_JSON_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

namespace nocalert {

/**
 * One JSON value: null, boolean, number, string, array, or object.
 *
 * Numbers distinguish integers from doubles. Integers that fit in
 * int64 are normalized to the signed representation (so a value
 * written from a uint64 and re-parsed compares equal); only values
 * above INT64_MAX use the unsigned alternative.
 */
class JsonValue
{
  public:
    using Array = std::vector<JsonValue>;
    /** Insertion-ordered key/value list: deterministic serialization. */
    using Object = std::vector<std::pair<std::string, JsonValue>>;

    enum class Type { Null, Bool, Int, Uint, Double, String, Array, Object };

    JsonValue() = default;
    JsonValue(std::nullptr_t) {}
    JsonValue(bool value) : value_(value) {}
    JsonValue(double value);
    JsonValue(const char *value) : value_(std::string(value)) {}
    JsonValue(std::string value) : value_(std::move(value)) {}
    JsonValue(std::string_view value) : value_(std::string(value)) {}
    JsonValue(Array value) : value_(std::move(value)) {}
    JsonValue(Object value) : value_(std::move(value)) {}

    /** Any integral type; values that fit in int64 normalize to Int. */
    template <typename T>
        requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
    JsonValue(T value)
    {
        if constexpr (std::is_signed_v<T>) {
            value_ = static_cast<std::int64_t>(value);
        } else {
            const auto u = static_cast<std::uint64_t>(value);
            if (u <= static_cast<std::uint64_t>(INT64_MAX))
                value_ = static_cast<std::int64_t>(u);
            else
                value_ = u;
        }
    }

    Type type() const { return static_cast<Type>(value_.index()); }

    bool isNull() const { return type() == Type::Null; }
    bool isBool() const { return type() == Type::Bool; }
    bool isNumber() const
    {
        return type() == Type::Int || type() == Type::Uint ||
               type() == Type::Double;
    }
    bool isString() const { return type() == Type::String; }
    bool isArray() const { return type() == Type::Array; }
    bool isObject() const { return type() == Type::Object; }

    // Checked accessors; a type mismatch is a programming error and
    // aborts (use type()/find() to validate untrusted documents).
    bool boolean() const;
    std::int64_t asInt() const;   ///< Int, or Uint/Double exactly in range.
    std::uint64_t asUint() const; ///< Non-negative Int, Uint, exact Double.
    double asDouble() const;      ///< Any number.
    const std::string &string() const;
    const Array &array() const;
    const Object &object() const;

    /** Member lookup; nullptr when absent or when this is no object. */
    const JsonValue *find(std::string_view key) const;

    /** Append (or replace) an object member; converts Null to Object. */
    void set(std::string key, JsonValue value);

    /** Append an array element; converts Null to Array. */
    void push(JsonValue value);

    /**
     * Serialize. @p indent 0 emits the compact one-line form; a
     * positive indent pretty-prints with that many spaces per level.
     */
    std::string dump(int indent = 0) const;

    bool operator==(const JsonValue &) const = default;

  private:
    std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t,
                 double, std::string, Array, Object>
        value_ = nullptr;
};

/**
 * Parse one JSON document (trailing garbage is an error). On failure
 * returns nullopt and, when @p error is non-null, stores a message
 * with the byte offset of the problem.
 */
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string *error = nullptr);

} // namespace nocalert

#endif // NOCALERT_UTIL_JSON_HPP
