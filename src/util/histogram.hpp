/**
 * @file
 * Integer-valued histogram used for latency distributions and the
 * cumulative curves of Figures 7 and 9.
 */

#ifndef NOCALERT_UTIL_HISTOGRAM_HPP
#define NOCALERT_UTIL_HISTOGRAM_HPP

#include <cstdint>
#include <map>
#include <vector>

namespace nocalert {

/**
 * Sparse histogram over non-negative integer samples.
 *
 * Keeps exact counts per value (sample spaces here are small: cycle
 * deltas, checker counts), and derives mean / percentiles / CDF.
 */
class Histogram
{
  public:
    /** Record one occurrence of @p value. */
    void add(std::int64_t value, std::uint64_t count = 1);

    /** Merge another histogram into this one. */
    void merge(const Histogram &other);

    /** Total number of recorded samples. */
    std::uint64_t count() const { return total_; }

    /** True iff no samples were recorded. */
    bool empty() const { return total_ == 0; }

    /** Arithmetic mean of the samples. @pre !empty(). */
    double mean() const;

    /** Smallest recorded value. @pre !empty(). */
    std::int64_t min() const;

    /** Largest recorded value. @pre !empty(). */
    std::int64_t max() const;

    /**
     * Smallest value v such that at least @p fraction of the samples
     * are <= v. @pre !empty() and 0 < fraction <= 1.
     */
    std::int64_t percentile(double fraction) const;

    /** Fraction of samples <= @p value (empirical CDF). */
    double cdfAt(std::int64_t value) const;

    /** (value, count) pairs in increasing value order. */
    std::vector<std::pair<std::int64_t, std::uint64_t>> points() const;

  private:
    std::map<std::int64_t, std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace nocalert

#endif // NOCALERT_UTIL_HISTOGRAM_HPP
