#include "util/rng.hpp"

namespace nocalert {

Pcg32::Pcg32(std::uint64_t seed_value, std::uint64_t stream)
{
    seed(seed_value, stream);
}

void
Pcg32::seed(std::uint64_t seed_value, std::uint64_t stream)
{
    state_ = 0;
    inc_ = (stream << 1) | 1;
    next();
    state_ += seed_value;
    next();
}

std::uint32_t
Pcg32::next()
{
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

std::uint32_t
Pcg32::nextBounded(std::uint32_t bound)
{
    // Lemire-style rejection to avoid modulo bias.
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
        std::uint32_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int
Pcg32::nextRange(int lo, int hi)
{
    return lo + static_cast<int>(
        nextBounded(static_cast<std::uint32_t>(hi - lo + 1)));
}

double
Pcg32::nextDouble()
{
    return next() * (1.0 / 4294967296.0);
}

bool
Pcg32::nextBool(double p)
{
    return nextDouble() < p;
}

Pcg32
deriveStream(std::uint64_t seed, std::uint64_t index)
{
    return Pcg32(seed, kStreamBase + 2 * index);
}

} // namespace nocalert
