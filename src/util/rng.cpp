#include "util/rng.hpp"

namespace nocalert {

Pcg32::Pcg32(std::uint64_t seed_value, std::uint64_t stream)
{
    seed(seed_value, stream);
}

void
Pcg32::seed(std::uint64_t seed_value, std::uint64_t stream)
{
    state_ = 0;
    inc_ = (stream << 1) | 1;
    next();
    state_ += seed_value;
    next();
}

std::uint32_t
Pcg32::nextBounded(std::uint32_t bound)
{
    // Lemire-style rejection to avoid modulo bias.
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
        std::uint32_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int
Pcg32::nextRange(int lo, int hi)
{
    return lo + static_cast<int>(
        nextBounded(static_cast<std::uint32_t>(hi - lo + 1)));
}

Pcg32
deriveStream(std::uint64_t seed, std::uint64_t index)
{
    return Pcg32(seed, kStreamBase + 2 * index);
}

} // namespace nocalert
