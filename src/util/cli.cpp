#include "util/cli.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace nocalert {

CommandLine::CommandLine(int argc, const char *const *argv,
                         std::vector<std::string> known,
                         bool allow_positionals)
{
    auto is_known = [&](const std::string &name) {
        return std::find(known.begin(), known.end(), name) != known.end();
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            if (!allow_positionals)
                NOCALERT_FATAL("unexpected positional argument: ", arg);
            positionals_.push_back(std::move(arg));
            continue;
        }
        arg = arg.substr(2);

        std::string name;
        std::string value;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            // "--flag value" form: consume the next token if it does not
            // look like another flag.
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "true";
            }
        }

        if (!is_known(name)) {
            std::string usage = "known flags:";
            for (const auto &k : known)
                usage += " --" + k;
            NOCALERT_FATAL("unknown flag --", name, "; ", usage);
        }
        values_[name] = value;
    }
}

bool
CommandLine::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
CommandLine::getString(const std::string &name,
                       const std::string &fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t
CommandLine::getInt(const std::string &name, std::int64_t fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    try {
        return std::stoll(it->second);
    } catch (...) {
        NOCALERT_FATAL("flag --", name, " expects an integer, got '",
                       it->second, "'");
    }
}

double
CommandLine::getDouble(const std::string &name, double fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    try {
        return std::stod(it->second);
    } catch (...) {
        NOCALERT_FATAL("flag --", name, " expects a number, got '",
                       it->second, "'");
    }
}

bool
CommandLine::getBool(const std::string &name, bool fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    NOCALERT_FATAL("flag --", name, " expects a boolean, got '", v, "'");
}

} // namespace nocalert
