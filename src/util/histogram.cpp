#include "util/histogram.hpp"

#include "util/log.hpp"

namespace nocalert {

void
Histogram::add(std::int64_t value, std::uint64_t count)
{
    counts_[value] += count;
    total_ += count;
}

void
Histogram::merge(const Histogram &other)
{
    for (const auto &[value, count] : other.counts_)
        add(value, count);
}

double
Histogram::mean() const
{
    NOCALERT_ASSERT(total_ > 0, "mean of empty histogram");
    double sum = 0;
    for (const auto &[value, count] : counts_)
        sum += static_cast<double>(value) * static_cast<double>(count);
    return sum / static_cast<double>(total_);
}

std::int64_t
Histogram::min() const
{
    NOCALERT_ASSERT(total_ > 0, "min of empty histogram");
    return counts_.begin()->first;
}

std::int64_t
Histogram::max() const
{
    NOCALERT_ASSERT(total_ > 0, "max of empty histogram");
    return counts_.rbegin()->first;
}

std::int64_t
Histogram::percentile(double fraction) const
{
    NOCALERT_ASSERT(total_ > 0, "percentile of empty histogram");
    NOCALERT_ASSERT(fraction > 0 && fraction <= 1.0,
                    "fraction out of range: ", fraction);
    auto needed = static_cast<std::uint64_t>(
        fraction * static_cast<double>(total_) + 0.999999);
    if (needed == 0)
        needed = 1;
    std::uint64_t seen = 0;
    for (const auto &[value, count] : counts_) {
        seen += count;
        if (seen >= needed)
            return value;
    }
    return counts_.rbegin()->first;
}

double
Histogram::cdfAt(std::int64_t value) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t seen = 0;
    for (const auto &[v, count] : counts_) {
        if (v > value)
            break;
        seen += count;
    }
    return static_cast<double>(seen) / static_cast<double>(total_);
}

std::vector<std::pair<std::int64_t, std::uint64_t>>
Histogram::points() const
{
    return {counts_.begin(), counts_.end()};
}

} // namespace nocalert
