#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/log.hpp"

namespace nocalert {

JsonValue::JsonValue(double value)
{
    if (!std::isfinite(value))
        NOCALERT_FATAL("JSON cannot represent non-finite number");
    value_ = value;
}

bool
JsonValue::boolean() const
{
    NOCALERT_ASSERT(isBool(), "JSON value is not a boolean");
    return std::get<bool>(value_);
}

std::int64_t
JsonValue::asInt() const
{
    switch (type()) {
      case Type::Int:
        return std::get<std::int64_t>(value_);
      case Type::Uint: {
        const auto u = std::get<std::uint64_t>(value_);
        NOCALERT_ASSERT(u <= static_cast<std::uint64_t>(INT64_MAX),
                        "JSON integer out of int64 range");
        return static_cast<std::int64_t>(u);
      }
      case Type::Double: {
        const double d = std::get<double>(value_);
        const auto i = static_cast<std::int64_t>(d);
        NOCALERT_ASSERT(static_cast<double>(i) == d,
                        "JSON number is not an exact integer");
        return i;
      }
      default:
        NOCALERT_PANIC("JSON value is not a number");
    }
}

std::uint64_t
JsonValue::asUint() const
{
    switch (type()) {
      case Type::Int: {
        const auto i = std::get<std::int64_t>(value_);
        NOCALERT_ASSERT(i >= 0, "JSON integer is negative");
        return static_cast<std::uint64_t>(i);
      }
      case Type::Uint:
        return std::get<std::uint64_t>(value_);
      case Type::Double: {
        const double d = std::get<double>(value_);
        const auto u = static_cast<std::uint64_t>(d);
        NOCALERT_ASSERT(d >= 0 && static_cast<double>(u) == d,
                        "JSON number is not an exact unsigned integer");
        return u;
      }
      default:
        NOCALERT_PANIC("JSON value is not a number");
    }
}

double
JsonValue::asDouble() const
{
    switch (type()) {
      case Type::Int:
        return static_cast<double>(std::get<std::int64_t>(value_));
      case Type::Uint:
        return static_cast<double>(std::get<std::uint64_t>(value_));
      case Type::Double:
        return std::get<double>(value_);
      default:
        NOCALERT_PANIC("JSON value is not a number");
    }
}

const std::string &
JsonValue::string() const
{
    NOCALERT_ASSERT(isString(), "JSON value is not a string");
    return std::get<std::string>(value_);
}

const JsonValue::Array &
JsonValue::array() const
{
    NOCALERT_ASSERT(isArray(), "JSON value is not an array");
    return std::get<Array>(value_);
}

const JsonValue::Object &
JsonValue::object() const
{
    NOCALERT_ASSERT(isObject(), "JSON value is not an object");
    return std::get<Object>(value_);
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (!isObject())
        return nullptr;
    for (const auto &[k, v] : std::get<Object>(value_)) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

void
JsonValue::set(std::string key, JsonValue value)
{
    if (isNull())
        value_ = Object{};
    NOCALERT_ASSERT(isObject(), "JSON set() on a non-object");
    auto &members = std::get<Object>(value_);
    for (auto &[k, v] : members) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    members.emplace_back(std::move(key), std::move(value));
}

void
JsonValue::push(JsonValue value)
{
    if (isNull())
        value_ = Array{};
    NOCALERT_ASSERT(isArray(), "JSON push() on a non-array");
    std::get<Array>(value_).push_back(std::move(value));
}

// ---------------------------------------------------------------- writer

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char ch : s) {
        const auto byte = static_cast<unsigned char>(ch);
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (byte < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", byte);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
}

void
appendNumber(std::string &out, double value)
{
    // Shortest representation that round-trips; force a fractional
    // marker so the value re-parses as a double, not an integer.
    char buf[32];
    const auto [end, ec] =
        std::to_chars(buf, buf + sizeof(buf), value);
    NOCALERT_ASSERT(ec == std::errc(), "double formatting failed");
    std::string_view text(buf, static_cast<std::size_t>(end - buf));
    out += text;
    if (text.find_first_of(".eE") == std::string_view::npos)
        out += ".0";
}

void
dumpValue(const JsonValue &value, std::string &out, int indent, int depth)
{
    const std::string_view sep = indent > 0 ? ": " : ":";
    auto newline = [&](int level) {
        if (indent > 0) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent * level), ' ');
        }
    };

    switch (value.type()) {
      case JsonValue::Type::Null:
        out += "null";
        break;
      case JsonValue::Type::Bool:
        out += value.boolean() ? "true" : "false";
        break;
      case JsonValue::Type::Int:
        out += std::to_string(value.asInt());
        break;
      case JsonValue::Type::Uint:
        out += std::to_string(value.asUint());
        break;
      case JsonValue::Type::Double:
        appendNumber(out, value.asDouble());
        break;
      case JsonValue::Type::String:
        appendEscaped(out, value.string());
        break;
      case JsonValue::Type::Array: {
        const auto &items = value.array();
        if (items.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            dumpValue(items[i], out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      }
      case JsonValue::Type::Object: {
        const auto &members = value.object();
        if (members.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < members.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            appendEscaped(out, members[i].first);
            out += sep;
            dumpValue(members[i].second, out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
      }
    }
}

} // namespace

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpValue(*this, out, indent, 0);
    return out;
}

// ---------------------------------------------------------------- parser

namespace {

/** Recursive-descent parser over a string_view with offset errors. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    std::optional<JsonValue> parse(std::string *error)
    {
        JsonValue value;
        if (!parseValue(value, 0)) {
            if (error)
                *error = error_;
            return std::nullopt;
        }
        skipWhitespace();
        if (pos_ != text_.size()) {
            fail("trailing characters after JSON document");
            if (error)
                *error = error_;
            return std::nullopt;
        }
        return value;
    }

  private:
    static constexpr int kMaxDepth = 200;

    bool fail(const std::string &message)
    {
        if (error_.empty())
            error_ = message + " at offset " + std::to_string(pos_);
        return false;
    }

    void skipWhitespace()
    {
        while (pos_ < text_.size()) {
            const char ch = text_[pos_];
            if (ch != ' ' && ch != '\t' && ch != '\n' && ch != '\r')
                break;
            ++pos_;
        }
    }

    bool consume(char expected)
    {
        if (pos_ < text_.size() && text_[pos_] == expected) {
            ++pos_;
            return true;
        }
        return fail(std::string("expected '") + expected + "'");
    }

    bool literal(std::string_view word, JsonValue value, JsonValue &out)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("invalid literal");
        pos_ += word.size();
        out = std::move(value);
        return true;
    }

    bool parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWhitespace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case 'n': return literal("null", JsonValue(nullptr), out);
          case 't': return literal("true", JsonValue(true), out);
          case 'f': return literal("false", JsonValue(false), out);
          case '"': return parseString(out);
          case '[': return parseArray(out, depth);
          case '{': return parseObject(out, depth);
          default: return parseNumber(out);
        }
    }

    bool parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        bool is_integer = true;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size()) {
            const char ch = text_[pos_];
            if (ch >= '0' && ch <= '9') {
                ++pos_;
            } else if (ch == '.' || ch == 'e' || ch == 'E' || ch == '+' ||
                       ch == '-') {
                is_integer = false;
                ++pos_;
            } else {
                break;
            }
        }
        const std::string_view token = text_.substr(start, pos_ - start);
        if (token.empty() || token == "-")
            return fail("invalid number");
        const char *first = token.data();
        const char *last = token.data() + token.size();

        if (is_integer) {
            std::int64_t i = 0;
            auto r = std::from_chars(first, last, i);
            if (r.ec == std::errc() && r.ptr == last) {
                out = JsonValue(i);
                return true;
            }
            if (token[0] != '-') {
                std::uint64_t u = 0;
                r = std::from_chars(first, last, u);
                if (r.ec == std::errc() && r.ptr == last) {
                    out = JsonValue(u);
                    return true;
                }
            }
            // Out of 64-bit range: fall through to double.
        }
        double d = 0.0;
        const auto r = std::from_chars(first, last, d);
        if (r.ec != std::errc() || r.ptr != last || !std::isfinite(d)) {
            pos_ = start;
            return fail("invalid number");
        }
        out = JsonValue(d);
        return true;
    }

    static void appendUtf8(std::string &out, std::uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool parseHex4(std::uint32_t &value)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        value = 0;
        for (int i = 0; i < 4; ++i) {
            const char ch = text_[pos_ + static_cast<std::size_t>(i)];
            value <<= 4;
            if (ch >= '0' && ch <= '9')
                value |= static_cast<std::uint32_t>(ch - '0');
            else if (ch >= 'a' && ch <= 'f')
                value |= static_cast<std::uint32_t>(ch - 'a' + 10);
            else if (ch >= 'A' && ch <= 'F')
                value |= static_cast<std::uint32_t>(ch - 'A' + 10);
            else
                return fail("invalid \\u escape");
        }
        pos_ += 4;
        return true;
    }

    bool parseString(JsonValue &out)
    {
        std::string s;
        if (!parseRawString(s))
            return false;
        out = JsonValue(std::move(s));
        return true;
    }

    bool parseRawString(std::string &s)
    {
        if (!consume('"'))
            return false;
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const char ch = text_[pos_];
            if (ch == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(ch) < 0x20)
                return fail("raw control character in string");
            if (ch != '\\') {
                s += ch;
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size())
                return fail("truncated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': s += '"'; break;
              case '\\': s += '\\'; break;
              case '/': s += '/'; break;
              case 'n': s += '\n'; break;
              case 'r': s += '\r'; break;
              case 't': s += '\t'; break;
              case 'b': s += '\b'; break;
              case 'f': s += '\f'; break;
              case 'u': {
                  std::uint32_t cp = 0;
                  if (!parseHex4(cp))
                      return false;
                  if (cp >= 0xD800 && cp <= 0xDBFF) {
                      // High surrogate: must pair with a low one.
                      if (text_.substr(pos_, 2) != "\\u")
                          return fail("unpaired surrogate");
                      pos_ += 2;
                      std::uint32_t low = 0;
                      if (!parseHex4(low))
                          return false;
                      if (low < 0xDC00 || low > 0xDFFF)
                          return fail("invalid low surrogate");
                      cp = 0x10000 + ((cp - 0xD800) << 10) +
                           (low - 0xDC00);
                  } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                      return fail("unpaired surrogate");
                  }
                  appendUtf8(s, cp);
                  break;
              }
              default:
                return fail("invalid escape character");
            }
        }
    }

    bool parseArray(JsonValue &out, int depth)
    {
        if (!consume('['))
            return false;
        JsonValue::Array items;
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            out = JsonValue(std::move(items));
            return true;
        }
        while (true) {
            JsonValue item;
            if (!parseValue(item, depth + 1))
                return false;
            items.push_back(std::move(item));
            skipWhitespace();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (!consume(']'))
                return false;
            out = JsonValue(std::move(items));
            return true;
        }
    }

    bool parseObject(JsonValue &out, int depth)
    {
        if (!consume('{'))
            return false;
        JsonValue::Object members;
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            out = JsonValue(std::move(members));
            return true;
        }
        while (true) {
            skipWhitespace();
            std::string key;
            if (!parseRawString(key))
                return false;
            skipWhitespace();
            if (!consume(':'))
                return false;
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            members.emplace_back(std::move(key), std::move(value));
            skipWhitespace();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (!consume('}'))
                return false;
            out = JsonValue(std::move(members));
            return true;
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

std::optional<JsonValue>
parseJson(std::string_view text, std::string *error)
{
    return Parser(text).parse(error);
}

} // namespace nocalert
