/**
 * @file
 * The workload engine: a WorkloadModel abstraction over *what traffic
 * drives the network*, with three interchangeable backends behind one
 * value-semantic generator seam (noc::Network holds a
 * WorkloadGenerator where it used to hold the synthetic generator
 * directly):
 *
 *  - Synthetic: today's noc::TrafficGenerator, bit-exact with every
 *    artifact ever produced (per-node sequential PCG streams).
 *  - Phased: a piecewise schedule of (pattern, rate, class-weights)
 *    segments with deterministic transitions, plus an MMPP-style
 *    on/off burst modulator (superposed dyadic layers) for
 *    self-similar arrivals. Draws are counter-mode — each (node,
 *    cycle) keys its own stream — so skipping an idle cycle consumes
 *    nothing and is exactly unobservable.
 *  - Trace: replay of a recorded injection log (tracefile.hpp),
 *    consuming no randomness at all.
 *
 * The load-bearing invariant of noc/traffic.hpp is preserved by every
 * backend: generation is a pure function of (node, cycle, stream) —
 * never network state — so golden and fault-injected runs of one spec
 * see byte-identical packet sequences, and the dense, active, and
 * bitmask kernels stay bit-exact. The active-set kernels' skip-draw
 * contract (TrafficGenerator::stopped) generalizes to idleAt(): a
 * cycle may be skipped when no node can fire in it, which for the
 * counter-mode and trace backends extends from "stopped forever" to
 * any idle segment or gap.
 */

#ifndef NOCALERT_TRAFFIC_WORKLOAD_HPP
#define NOCALERT_TRAFFIC_WORKLOAD_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "noc/traffic.hpp"
#include "traffic/tracefile.hpp"

namespace nocalert::traffic {

/** Which backend drives the network. */
enum class WorkloadKind : std::uint8_t {
    Synthetic, ///< Stationary noc::TrafficGenerator (the legacy model).
    Phased,    ///< Piecewise phase program with optional bursts.
    Trace,     ///< Replay of a recorded injection log.
};

/** Name of a workload kind ("synthetic" / "phased" / "trace"). */
const char *workloadKindName(WorkloadKind kind);

/** Inverse of workloadKindName (nullopt for unknown names). */
std::optional<WorkloadKind> workloadKindFromName(std::string_view name);

/**
 * One phase of a phase program: over cycles [begin, end), every node
 * injects with Bernoulli(rate) under @p pattern. Segments must be
 * non-overlapping and sorted; gaps between segments are idle.
 */
struct PhaseSegment
{
    noc::Cycle begin = 0; ///< First cycle of the phase (inclusive).
    noc::Cycle end = 0;   ///< One past the last cycle (exclusive).
    noc::TrafficPattern pattern = noc::TrafficPattern::UniformRandom;
    double rate = 0.0;    ///< Base injection probability per node/cycle.

    /** Class weights for this phase (empty = equal). */
    std::vector<double> classWeights;

    /** Hotspot parameters (Hotspot pattern only). */
    noc::HotspotSpec hotspot;

    bool operator==(const PhaseSegment &) const = default;
};

/**
 * MMPP-style on/off burst modulator: time is cut into epochs of
 * `period` cycles, and each (node, layer, epoch) is independently
 * "on" with probability onProbability — a hash of the coordinates,
 * never stream state. The segment rate is multiplied by onMultiplier
 * or offMultiplier per layer (layers use dyadic periods: period,
 * 2*period, 4*period, ...), then clamped to [0,1]. Superposing layers
 * produces burst trains at several time scales — the classic
 * self-similar-arrivals construction.
 */
struct BurstSpec
{
    bool enabled = false;
    noc::Cycle period = 64;      ///< Epoch length of the first layer.
    double onProbability = 0.5;  ///< P(epoch is on) per (node, layer).
    double onMultiplier = 2.0;   ///< Rate multiplier in on epochs.
    double offMultiplier = 0.0;  ///< Rate multiplier in off epochs.
    unsigned layers = 1;         ///< Superposed dyadic layers.

    bool operator==(const BurstSpec &) const = default;
};

/** A phase-program workload. */
struct PhasedSpec
{
    /** Sorted, non-overlapping phases. */
    std::vector<PhaseSegment> segments;

    /** Optional burst modulation on top of every phase. */
    BurstSpec burst;

    /** Seed of the counter-mode per-(node, cycle) draw streams. */
    std::uint64_t seed = 1;

    /** Cycle at which generation stops regardless of phases (-1 =
     *  never); pinned by the campaign like TrafficSpec::stopCycle. */
    noc::Cycle stopCycle = -1;

    /** Wrap the program: phase position = cycle mod last segment end. */
    bool repeat = false;

    bool operator==(const PhasedSpec &) const = default;
};

/** A trace-replay workload. */
struct TraceSpec
{
    /** Trace file (tracefile.hpp format). */
    std::string path;

    /**
     * CRC-32 of the whole trace file — the campaign-identity pin. 0
     * means "unstamped"; stampTraceSpec() fills it from the file, and
     * generator construction verifies it so an artifact can never
     * silently describe a different trace than the one replayed.
     */
    std::uint32_t digest = 0;

    /** Record count (informational, stamped with the digest). */
    std::uint64_t records = 0;

    /** Cycle at which replay stops (-1 = never). */
    noc::Cycle stopCycle = -1;

    bool operator==(const TraceSpec &) const = default;
};

/**
 * The full workload description — campaign identity. Exactly one
 * backend (selected by `kind`) is active; the others keep their
 * defaults and are not serialized.
 */
struct WorkloadSpec
{
    WorkloadKind kind = WorkloadKind::Synthetic;
    noc::TrafficSpec synthetic;
    PhasedSpec phased;
    TraceSpec trace;

    /** Wrap a legacy synthetic spec. */
    static WorkloadSpec fromSynthetic(noc::TrafficSpec spec)
    {
        WorkloadSpec workload;
        workload.synthetic = std::move(spec);
        return workload;
    }

    /** The active backend's seed (0 for Trace: replay draws nothing). */
    std::uint64_t seed() const;

    /** Re-seed the seeded backends (sampled campaigns' per-seed
     *  references); a no-op for Trace. */
    void setSeed(std::uint64_t seed);

    /** The active backend's stop cycle. */
    noc::Cycle stopCycle() const;

    /** Pin the active backend's stop cycle (campaign normalization). */
    void setStopCycle(noc::Cycle cycle);

    bool operator==(const WorkloadSpec &) const = default;
};

/**
 * Why @p spec cannot drive @p config (empty = valid); every message
 * names the bad field. Does not touch the filesystem — trace files
 * are opened (and their digest enforced) at generator construction.
 */
std::string validateWorkloadSpec(const noc::NetworkConfig &config,
                                 const WorkloadSpec &spec);

/**
 * Read the trace file named by @p spec.path and stamp digest and
 * record count into @p spec. False + *error when the file is missing
 * or malformed, or when a non-zero pre-set digest disagrees with the
 * file (the caller pinned a different trace).
 */
bool stampTraceSpec(TraceSpec &spec, std::string *error = nullptr);

/**
 * Index of the segment of @p spec covering @p cycle, or -1 (idle gap,
 * past the stop cycle, or past a non-repeating program). The pure
 * schedule lookup shared by PhasedGenerator and the phase-stratified
 * sampled planner.
 */
int phaseSegmentAt(const PhasedSpec &spec, noc::Cycle cycle);

/**
 * Parse a phase-program CLI string into @p spec.segments. Format:
 * comma-separated `begin:end:pattern:rate[:hotspotNode:hotspotFrac]`
 * segments, e.g. "0:2000:uniform:0.05,2000:4000:transpose:0.1".
 * Returns an empty string on success, else an error naming the bad
 * segment and field.
 */
std::string parsePhaseProgram(std::string_view text, PhasedSpec &spec);

/**
 * Parse a burst-modulator CLI string into @p burst. Format:
 * `period:onProb:onMult:offMult[:layers]`, e.g. "64:0.5:2:0:3".
 * Returns an empty string on success, else an error naming the field.
 */
std::string parseBurstSpec(std::string_view text, BurstSpec &burst);

/**
 * The phase-program backend. Counter-mode: the draws for (node,
 * cycle) come from a private stream keyed by (seed, node, cycle), so
 * generation order is irrelevant and skipped idle cycles consume
 * nothing — the property that lets the active-set kernels treat any
 * idle segment like the synthetic backend's permanent stop.
 */
class PhasedGenerator
{
  public:
    PhasedGenerator(const noc::NetworkConfig &config,
                    const PhasedSpec &spec);

    const PhasedSpec &spec() const { return spec_; }

    std::optional<noc::Packet> generate(const noc::NetworkConfig &config,
                                        noc::NodeId node,
                                        noc::Cycle cycle);

    /** No node can fire at @p cycle (idle gap, zero rate, stopped). */
    bool idleAt(noc::Cycle cycle) const;

    std::uint64_t packetsCreated() const { return packets_created_; }

    /** Index of the segment covering @p cycle, or -1 (idle gap /
     *  stopped / past a non-repeating program). Phase stratification
     *  keys on this. */
    int segmentAt(noc::Cycle cycle) const;

    /** The rate multiplier the burst modulator applies for (node,
     *  cycle) — 1.0 when bursts are disabled. Exposed for tests and
     *  the experiment tooling. */
    double burstMultiplier(noc::NodeId node, noc::Cycle cycle) const;

  private:
    PhasedSpec spec_;
    std::vector<std::uint64_t> counts_; // per node packet counter
    std::uint64_t packets_created_ = 0;
};

/**
 * The trace-replay backend. The loaded trace is immutable and shared
 * across network copies; the per-node cursors are value state, so a
 * snapshot resumed later replays from exactly its recorded position.
 * Replay consumes no randomness.
 */
class TraceGenerator
{
  public:
    TraceGenerator(const noc::NetworkConfig &config,
                   const TraceSpec &spec);

    const TraceSpec &spec() const { return spec_; }

    std::optional<noc::Packet> generate(const noc::NetworkConfig &config,
                                        noc::NodeId node,
                                        noc::Cycle cycle);

    /** No record fires at @p cycle (or replay stopped). */
    bool idleAt(noc::Cycle cycle) const;

    std::uint64_t packetsCreated() const { return packets_created_; }

  private:
    struct NodeEvents
    {
        std::vector<TraceRecord> events; ///< Sorted by cycle.
    };

    TraceSpec spec_;
    std::shared_ptr<const std::vector<NodeEvents>> events_; // immutable
    /** Sorted distinct cycles with any record — idleAt is a pure
     *  binary search, consuming no cursor state. */
    std::shared_ptr<const std::vector<noc::Cycle>> cycles_;
    std::vector<std::uint32_t> cursor_;     // per node next event
    std::vector<std::uint64_t> counts_;     // per node packet counter
    std::uint64_t packets_created_ = 0;
};

/**
 * The generator seam noc::Network holds: one of the three backends,
 * dispatched by kind, with the synthetic fast path inline. Value-
 * semantic like every backend.
 */
class WorkloadGenerator
{
  public:
    WorkloadGenerator(const noc::NetworkConfig &config,
                      const WorkloadSpec &spec);

    const WorkloadSpec &spec() const { return spec_; }
    WorkloadKind kind() const { return spec_.kind; }

    /** See TrafficGenerator::generate; dispatches per backend. */
    std::optional<noc::Packet>
    generate(const noc::NetworkConfig &config, noc::NodeId node,
             noc::Cycle cycle)
    {
        if (auto *synthetic =
                std::get_if<noc::TrafficGenerator>(&backend_))
            return synthetic->generate(config, node, cycle);
        if (auto *phased = std::get_if<PhasedGenerator>(&backend_))
            return phased->generate(config, node, cycle);
        return std::get<TraceGenerator>(backend_).generate(config, node,
                                                           cycle);
    }

    /**
     * True iff no generate() call at @p cycle can return a packet, so
     * the active-set kernels may skip the draws entirely. For the
     * synthetic backend this is the *permanent* stop (its sequential
     * streams must otherwise stay aligned with a dense run); the
     * counter-mode and trace backends extend it to any idle segment
     * or gap, because skipping consumes no stream state.
     */
    bool
    idleAt(noc::Cycle cycle) const
    {
        if (const auto *synthetic =
                std::get_if<noc::TrafficGenerator>(&backend_))
            return synthetic->stopped(cycle);
        if (const auto *phased = std::get_if<PhasedGenerator>(&backend_))
            return phased->idleAt(cycle);
        return std::get<TraceGenerator>(backend_).idleAt(cycle);
    }

    /** Packets created so far (all nodes, all backends). */
    std::uint64_t packetsCreated() const;

    /** The phased backend, or nullptr (phase stratification, tests). */
    const PhasedGenerator *phased() const
    {
        return std::get_if<PhasedGenerator>(&backend_);
    }

  private:
    WorkloadSpec spec_;
    std::variant<noc::TrafficGenerator, PhasedGenerator, TraceGenerator>
        backend_;
};

/**
 * Regenerate the packets @p spec would inject over cycles [0,
 * @p cycles) and write them as a trace file at @p path — the
 * `--record-trace` implementation. Because generation is a pure
 * function of the spec, this produces exactly the packets a live run
 * of the same spec injects, with no hooks into any network.
 */
bool recordTrace(const noc::NetworkConfig &config,
                 const WorkloadSpec &spec, noc::Cycle cycles,
                 const std::string &path, std::string *error = nullptr);

} // namespace nocalert::traffic

#endif // NOCALERT_TRAFFIC_WORKLOAD_HPP
