/**
 * @file
 * The injection-trace file format: a CRC-framed binary record of every
 * packet a workload generated, replayable by the trace workload
 * backend (traffic::WorkloadGenerator) bit-exactly on any platform.
 *
 * Layout (all integers little-endian):
 *
 *   offset  size  field
 *        0     8  magic "NOCTRAC1"
 *        8     4  record count (u32)
 *       12     4  CRC-32 (IEEE, util/fsio::crc32) of the record bytes
 *       16   12*N records, sorted by (cycle, src), unique per
 *                 (src, cycle):
 *                   u32 cycle   injection cycle
 *                   u16 src     source node
 *                   u16 dst     destination node
 *                   u8  cls     message class
 *                   u8[3]       zero padding
 *
 * Writes go through util/fsio::writeFileAtomic, so a recorded trace is
 * all-or-nothing on disk; reads verify magic, length, and CRC before
 * trusting a single record, and every rejection names what is wrong.
 * The whole-file CRC-32 doubles as the trace's identity digest inside
 * campaign artifacts (TraceSpec::digest).
 */

#ifndef NOCALERT_TRAFFIC_TRACEFILE_HPP
#define NOCALERT_TRAFFIC_TRACEFILE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "noc/types.hpp"

namespace nocalert::traffic {

/** One recorded injection. */
struct TraceRecord
{
    noc::Cycle cycle = 0; ///< Injection cycle (fits u32 in the file).
    noc::NodeId src = 0;  ///< Source node.
    noc::NodeId dst = 0;  ///< Destination node.
    std::uint8_t cls = 0; ///< Message class.

    bool operator==(const TraceRecord &) const = default;
};

/**
 * Collects records and writes them as one atomic trace file. Records
 * may be added in any order; write() sorts by (cycle, src) and
 * rejects duplicate (src, cycle) pairs — the replay backend injects at
 * most one packet per node per cycle, exactly like the NI accepts.
 */
class TraceWriter
{
  public:
    /** Append one record. */
    void add(const TraceRecord &record) { records_.push_back(record); }

    /** Records collected so far. */
    std::size_t size() const { return records_.size(); }

    /**
     * Sort, validate, frame, and atomically write the trace to
     * @p path. False + *error (naming the offending record or file)
     * on any failure; the target file is untouched in that case.
     */
    bool write(const std::string &path, std::string *error = nullptr);

  private:
    std::vector<TraceRecord> records_;
};

/** A fully loaded, validated trace. */
struct TraceFile
{
    std::vector<TraceRecord> records; ///< Sorted by (cycle, src).
    std::uint32_t digest = 0;         ///< CRC-32 of the whole file.
};

/**
 * Read and validate the trace at @p path: magic, length, CRC frame,
 * record ordering and (src, cycle) uniqueness. nullopt + *error
 * naming the failure otherwise.
 */
std::optional<TraceFile> readTraceFile(const std::string &path,
                                       std::string *error = nullptr);

/**
 * CRC-32 of the whole file at @p path (the digest a TraceSpec pins).
 * nullopt when the file cannot be read.
 */
std::optional<std::uint32_t> traceFileDigest(const std::string &path);

} // namespace nocalert::traffic

#endif // NOCALERT_TRAFFIC_TRACEFILE_HPP
