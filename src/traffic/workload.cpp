#include "traffic/workload.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "util/log.hpp"

namespace nocalert::traffic {

namespace {

/** Hash-to-[0,1): 53 high bits of a splitMix64 output. */
double
hashToUnit(std::uint64_t hash)
{
    return static_cast<double>(hash >> 11) *
           (1.0 / 9007199254740992.0); // 2^-53
}

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kBurstSalt = 0xb5297a4d3f84d5b5ULL;

std::string
validatePhasedSpec(const noc::NetworkConfig &config,
                   const PhasedSpec &spec)
{
    if (spec.segments.empty())
        return "phased.segments must have at least one segment";
    for (std::size_t i = 0; i < spec.segments.size(); ++i) {
        const PhaseSegment &seg = spec.segments[i];
        const std::string where =
            "phased.segments[" + std::to_string(i) + "]";
        if (seg.begin < 0)
            return where + ".begin must be >= 0, got " +
                   std::to_string(seg.begin);
        if (seg.end <= seg.begin)
            return where + ".end (" + std::to_string(seg.end) +
                   ") must be greater than begin (" +
                   std::to_string(seg.begin) + ")";
        if (i > 0 && seg.begin < spec.segments[i - 1].end)
            return where + " [" + std::to_string(seg.begin) + "," +
                   std::to_string(seg.end) +
                   ") overlaps or is out of order with segments[" +
                   std::to_string(i - 1) + "] [" +
                   std::to_string(spec.segments[i - 1].begin) + "," +
                   std::to_string(spec.segments[i - 1].end) + ")";
        // Reuse the synthetic validator for the shared per-segment
        // fields (rate, class weights, hotspot parameters).
        noc::TrafficSpec probe;
        probe.pattern = seg.pattern;
        probe.injectionRate = seg.rate;
        probe.classWeights = seg.classWeights;
        probe.hotspot = seg.hotspot;
        std::string error = validateTrafficSpec(config, probe);
        if (!error.empty()) {
            // The probe's rate field stands in for the segment's.
            const std::string rate_field = "injectionRate";
            if (error.compare(0, rate_field.size(), rate_field) == 0)
                error = "rate" + error.substr(rate_field.size());
            return where + "." + error;
        }
    }
    const BurstSpec &burst = spec.burst;
    if (burst.enabled) {
        if (burst.period < 1)
            return "phased.burst.period must be >= 1, got " +
                   std::to_string(burst.period);
        if (!(burst.onProbability >= 0.0 && burst.onProbability <= 1.0))
            return "phased.burst.onProbability must be in [0,1], got " +
                   std::to_string(burst.onProbability);
        if (!(burst.onMultiplier >= 0.0))
            return "phased.burst.onMultiplier must be >= 0";
        if (!(burst.offMultiplier >= 0.0))
            return "phased.burst.offMultiplier must be >= 0";
        if (burst.layers < 1 || burst.layers > 16)
            return "phased.burst.layers must be in [1,16], got " +
                   std::to_string(burst.layers);
    }
    if (spec.stopCycle < -1)
        return "phased.stopCycle must be a cycle or -1 (never), got " +
               std::to_string(spec.stopCycle);
    return std::string();
}

std::string
validateTraceSpec(const TraceSpec &spec)
{
    if (spec.path.empty())
        return "trace.path must not be empty";
    if (spec.stopCycle < -1)
        return "trace.stopCycle must be a cycle or -1 (never), got " +
               std::to_string(spec.stopCycle);
    return std::string();
}

bool
parseDoubleField(std::string_view text, double &out)
{
    const std::string copy(text);
    char *end = nullptr;
    out = std::strtod(copy.c_str(), &end);
    return end == copy.c_str() + copy.size() && !copy.empty();
}

bool
parseCycleField(std::string_view text, noc::Cycle &out)
{
    const std::string copy(text);
    char *end = nullptr;
    out = std::strtoll(copy.c_str(), &end, 10);
    return end == copy.c_str() + copy.size() && !copy.empty();
}

std::vector<std::string_view>
splitFields(std::string_view text, char sep)
{
    std::vector<std::string_view> fields;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            fields.push_back(text.substr(start));
            return fields;
        }
        fields.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

} // namespace

const char *
workloadKindName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Synthetic: return "synthetic";
      case WorkloadKind::Phased: return "phased";
      case WorkloadKind::Trace: return "trace";
    }
    return "?";
}

std::optional<WorkloadKind>
workloadKindFromName(std::string_view name)
{
    for (int i = 0; i <= static_cast<int>(WorkloadKind::Trace); ++i) {
        const auto kind = static_cast<WorkloadKind>(i);
        if (name == workloadKindName(kind))
            return kind;
    }
    return std::nullopt;
}

std::uint64_t
WorkloadSpec::seed() const
{
    switch (kind) {
      case WorkloadKind::Synthetic: return synthetic.seed;
      case WorkloadKind::Phased: return phased.seed;
      case WorkloadKind::Trace: return 0; // replay draws nothing
    }
    return 0;
}

void
WorkloadSpec::setSeed(std::uint64_t seed)
{
    synthetic.seed = seed;
    phased.seed = seed;
}

noc::Cycle
WorkloadSpec::stopCycle() const
{
    switch (kind) {
      case WorkloadKind::Synthetic: return synthetic.stopCycle;
      case WorkloadKind::Phased: return phased.stopCycle;
      case WorkloadKind::Trace: return trace.stopCycle;
    }
    return -1;
}

void
WorkloadSpec::setStopCycle(noc::Cycle cycle)
{
    synthetic.stopCycle = cycle;
    phased.stopCycle = cycle;
    trace.stopCycle = cycle;
}

std::string
validateWorkloadSpec(const noc::NetworkConfig &config,
                     const WorkloadSpec &spec)
{
    switch (spec.kind) {
      case WorkloadKind::Synthetic:
        return validateTrafficSpec(config, spec.synthetic);
      case WorkloadKind::Phased:
        return validatePhasedSpec(config, spec.phased);
      case WorkloadKind::Trace:
        return validateTraceSpec(spec.trace);
    }
    return "unknown workload kind";
}

bool
stampTraceSpec(TraceSpec &spec, std::string *error)
{
    std::string read_error;
    const std::optional<TraceFile> trace =
        readTraceFile(spec.path, &read_error);
    if (!trace) {
        if (error)
            *error = read_error;
        return false;
    }
    if (spec.digest != 0 && spec.digest != trace->digest) {
        if (error)
            *error = "trace digest mismatch: spec pins " +
                     std::to_string(spec.digest) + " but '" + spec.path +
                     "' has digest " + std::to_string(trace->digest);
        return false;
    }
    spec.digest = trace->digest;
    spec.records = trace->records.size();
    return true;
}

std::string
parsePhaseProgram(std::string_view text, PhasedSpec &spec)
{
    if (text.find_first_not_of(" \t") == std::string_view::npos)
        return "phase program must have at least one segment";
    std::vector<PhaseSegment> segments;
    const std::vector<std::string_view> parts = splitFields(text, ',');
    for (std::size_t i = 0; i < parts.size(); ++i) {
        const std::string where =
            "phase segment " + std::to_string(i);
        const std::vector<std::string_view> fields =
            splitFields(parts[i], ':');
        if (fields.size() != 4 && fields.size() != 6)
            return where + ": expected begin:end:pattern:rate"
                           "[:hotspotNode:hotspotFraction], got " +
                   std::to_string(fields.size()) + " fields";
        PhaseSegment seg;
        if (!parseCycleField(fields[0], seg.begin))
            return where + ": begin '" + std::string(fields[0]) +
                   "' is not a cycle";
        if (!parseCycleField(fields[1], seg.end))
            return where + ": end '" + std::string(fields[1]) +
                   "' is not a cycle";
        const std::optional<noc::TrafficPattern> pattern =
            noc::trafficPatternFromName(fields[2]);
        if (!pattern)
            return where + ": unknown pattern '" +
                   std::string(fields[2]) + "'";
        seg.pattern = *pattern;
        if (!parseDoubleField(fields[3], seg.rate))
            return where + ": rate '" + std::string(fields[3]) +
                   "' is not a number";
        if (fields.size() == 6) {
            noc::Cycle node = 0;
            if (!parseCycleField(fields[4], node))
                return where + ": hotspotNode '" +
                       std::string(fields[4]) + "' is not a node id";
            seg.hotspot.node = static_cast<noc::NodeId>(node);
            if (!parseDoubleField(fields[5], seg.hotspot.fraction))
                return where + ": hotspotFraction '" +
                       std::string(fields[5]) + "' is not a number";
        }
        segments.push_back(std::move(seg));
    }
    if (segments.empty())
        return "phase program must have at least one segment";
    spec.segments = std::move(segments);
    return std::string();
}

std::string
parseBurstSpec(std::string_view text, BurstSpec &burst)
{
    const std::vector<std::string_view> fields = splitFields(text, ':');
    if (fields.size() != 4 && fields.size() != 5)
        return "burst spec: expected period:onProb:onMult:offMult"
               "[:layers], got " +
               std::to_string(fields.size()) + " fields";
    BurstSpec parsed;
    parsed.enabled = true;
    if (!parseCycleField(fields[0], parsed.period))
        return "burst spec: period '" + std::string(fields[0]) +
               "' is not a cycle count";
    if (!parseDoubleField(fields[1], parsed.onProbability))
        return "burst spec: onProbability '" + std::string(fields[1]) +
               "' is not a number";
    if (!parseDoubleField(fields[2], parsed.onMultiplier))
        return "burst spec: onMultiplier '" + std::string(fields[2]) +
               "' is not a number";
    if (!parseDoubleField(fields[3], parsed.offMultiplier))
        return "burst spec: offMultiplier '" + std::string(fields[3]) +
               "' is not a number";
    if (fields.size() == 5) {
        noc::Cycle layers = 0;
        if (!parseCycleField(fields[4], layers) || layers < 1)
            return "burst spec: layers '" + std::string(fields[4]) +
                   "' is not a positive count";
        parsed.layers = static_cast<unsigned>(layers);
    }
    burst = parsed;
    return std::string();
}

PhasedGenerator::PhasedGenerator(const noc::NetworkConfig &config,
                                 const PhasedSpec &spec)
    : spec_(spec)
{
    const std::string error = validatePhasedSpec(config, spec_);
    if (!error.empty())
        NOCALERT_FATAL("invalid workload spec: ", error);
    counts_.assign(static_cast<std::size_t>(config.numNodes()), 0);
}

int
phaseSegmentAt(const PhasedSpec &spec, noc::Cycle cycle)
{
    if (cycle < 0 || spec.segments.empty())
        return -1;
    if (spec.stopCycle >= 0 && cycle >= spec.stopCycle)
        return -1;
    const noc::Cycle program_length = spec.segments.back().end;
    noc::Cycle pos = cycle;
    if (spec.repeat)
        pos = cycle % program_length;
    else if (pos >= program_length)
        return -1;
    // First segment whose end is past pos; segments are sorted and
    // non-overlapping, so it is the only candidate.
    const auto it = std::upper_bound(
        spec.segments.begin(), spec.segments.end(), pos,
        [](noc::Cycle c, const PhaseSegment &seg) { return c < seg.end; });
    if (it == spec.segments.end() || it->begin > pos)
        return -1; // idle gap between segments
    return static_cast<int>(it - spec.segments.begin());
}

int
PhasedGenerator::segmentAt(noc::Cycle cycle) const
{
    return phaseSegmentAt(spec_, cycle);
}

double
PhasedGenerator::burstMultiplier(noc::NodeId node,
                                 noc::Cycle cycle) const
{
    const BurstSpec &burst = spec_.burst;
    if (!burst.enabled)
        return 1.0;
    double multiplier = 1.0;
    for (unsigned layer = 0; layer < burst.layers; ++layer) {
        const noc::Cycle period = burst.period
                                  << static_cast<noc::Cycle>(layer);
        const auto epoch = static_cast<std::uint64_t>(cycle / period);
        // Pure hash of (seed, node, layer, epoch): the on/off state of
        // an epoch never consumes stream state, so skipping idle
        // cycles cannot shift it.
        const std::uint64_t hash = splitMix64(
            splitMix64(spec_.seed ^ kBurstSalt) ^
            splitMix64(static_cast<std::uint64_t>(node) * kGolden +
                       layer) ^
            splitMix64(epoch * kGolden));
        const bool on = hashToUnit(hash) < burst.onProbability;
        multiplier *= on ? burst.onMultiplier : burst.offMultiplier;
    }
    return multiplier;
}

bool
PhasedGenerator::idleAt(noc::Cycle cycle) const
{
    const int segment = segmentAt(cycle);
    if (segment < 0)
        return true;
    // A zero-rate phase can never fire regardless of burst state; a
    // positive rate might (conservatively treat it as active even when
    // the burst multiplier could zero it for some nodes).
    return !(spec_.segments[static_cast<std::size_t>(segment)].rate >
             0.0);
}

std::optional<noc::Packet>
PhasedGenerator::generate(const noc::NetworkConfig &config,
                          noc::NodeId node, noc::Cycle cycle)
{
    const int index = segmentAt(cycle);
    if (index < 0)
        return std::nullopt;
    const PhaseSegment &seg =
        spec_.segments[static_cast<std::size_t>(index)];

    double rate = seg.rate * burstMultiplier(node, cycle);
    rate = std::clamp(rate, 0.0, 1.0);

    // Counter-mode: a private stream keyed by (seed, cycle) with the
    // node as the stream selector. No sequential state survives the
    // call, so generation at (node, cycle) is independent of which
    // other cycles were ever generated — the property that makes
    // idle-segment skipping exactly unobservable.
    Pcg32 rng = deriveStream(
        splitMix64(spec_.seed ^
                   splitMix64(static_cast<std::uint64_t>(cycle) *
                              kGolden)),
        static_cast<std::uint64_t>(node));
    if (!rng.nextBool(rate))
        return std::nullopt;

    const noc::NodeId dst = noc::trafficDestination(
        config, seg.pattern, seg.hotspot, node, rng);
    if (dst == node)
        return std::nullopt; // self-directed permutation slot: idle

    const std::uint8_t cls =
        noc::trafficMessageClass(config, seg.classWeights, rng);

    noc::Packet pkt;
    pkt.id = (static_cast<std::uint64_t>(node) << 40) |
             counts_[static_cast<std::size_t>(node)];
    ++counts_[static_cast<std::size_t>(node)];
    ++packets_created_;
    pkt.src = node;
    pkt.dst = dst;
    pkt.msgClass = cls;
    pkt.length = config.router.classLength(cls);
    pkt.created = cycle;
    return pkt;
}

TraceGenerator::TraceGenerator(const noc::NetworkConfig &config,
                               const TraceSpec &spec)
    : spec_(spec)
{
    std::string error = validateTraceSpec(spec_);
    if (!error.empty())
        NOCALERT_FATAL("invalid workload spec: ", error);

    const std::optional<TraceFile> trace =
        readTraceFile(spec_.path, &error);
    if (!trace)
        NOCALERT_FATAL("invalid workload spec: ", error);
    if (spec_.digest != 0 && spec_.digest != trace->digest) {
        NOCALERT_FATAL("invalid workload spec: trace digest mismatch: "
                       "spec pins ",
                       spec_.digest, " but '", spec_.path,
                       "' has digest ", trace->digest);
    }
    spec_.digest = trace->digest;
    spec_.records = trace->records.size();

    const int nodes = config.numNodes();
    const auto num_classes =
        static_cast<std::uint8_t>(config.router.classes.size());
    auto events =
        std::make_shared<std::vector<NodeEvents>>(std::size_t(nodes));
    auto cycles = std::make_shared<std::vector<noc::Cycle>>();
    for (std::size_t i = 0; i < trace->records.size(); ++i) {
        const TraceRecord &record = trace->records[i];
        if (record.src >= nodes || record.dst >= nodes) {
            NOCALERT_FATAL("invalid workload spec: trace record ", i,
                           " names node ",
                           std::max(record.src, record.dst),
                           " but the mesh has ", nodes, " nodes");
        }
        if (record.cls >= num_classes) {
            NOCALERT_FATAL("invalid workload spec: trace record ", i,
                           " uses message class ", int(record.cls),
                           " but the router is configured with ",
                           int(num_classes), " classes");
        }
        (*events)[static_cast<std::size_t>(record.src)]
            .events.push_back(record);
        if (cycles->empty() || cycles->back() != record.cycle)
            cycles->push_back(record.cycle); // records sorted by cycle
    }
    events_ = std::move(events);
    cycles_ = std::move(cycles);
    cursor_.assign(std::size_t(nodes), 0);
    counts_.assign(std::size_t(nodes), 0);
}

bool
TraceGenerator::idleAt(noc::Cycle cycle) const
{
    if (spec_.stopCycle >= 0 && cycle >= spec_.stopCycle)
        return true;
    return !std::binary_search(cycles_->begin(), cycles_->end(), cycle);
}

std::optional<noc::Packet>
TraceGenerator::generate(const noc::NetworkConfig &config,
                         noc::NodeId node, noc::Cycle cycle)
{
    if (spec_.stopCycle >= 0 && cycle >= spec_.stopCycle)
        return std::nullopt;
    const std::vector<TraceRecord> &events =
        (*events_)[static_cast<std::size_t>(node)].events;
    std::uint32_t &cur = cursor_[static_cast<std::size_t>(node)];
    while (cur < events.size() && events[cur].cycle < cycle)
        ++cur; // defensive: step over records the run never asked about
    if (cur >= events.size() || events[cur].cycle != cycle)
        return std::nullopt;
    const TraceRecord &record = events[cur];
    ++cur;
    if (record.dst == node)
        return std::nullopt; // self-directed record: nothing to inject

    noc::Packet pkt;
    pkt.id = (static_cast<std::uint64_t>(node) << 40) |
             counts_[static_cast<std::size_t>(node)];
    ++counts_[static_cast<std::size_t>(node)];
    ++packets_created_;
    pkt.src = node;
    pkt.dst = record.dst;
    pkt.msgClass = record.cls;
    pkt.length = config.router.classLength(record.cls);
    pkt.created = cycle;
    return pkt;
}

namespace {

std::variant<noc::TrafficGenerator, PhasedGenerator, TraceGenerator>
makeBackend(const noc::NetworkConfig &config, const WorkloadSpec &spec)
{
    switch (spec.kind) {
      case WorkloadKind::Synthetic:
        return noc::TrafficGenerator(config, spec.synthetic);
      case WorkloadKind::Phased:
        return PhasedGenerator(config, spec.phased);
      case WorkloadKind::Trace:
        return TraceGenerator(config, spec.trace);
    }
    NOCALERT_PANIC("unknown workload kind");
}

} // namespace

WorkloadGenerator::WorkloadGenerator(const noc::NetworkConfig &config,
                                     const WorkloadSpec &spec)
    : spec_(spec), backend_(makeBackend(config, spec))
{
    // The trace backend stamps digest and record count at load; mirror
    // them so spec() reports the verified identity.
    if (const auto *trace = std::get_if<TraceGenerator>(&backend_))
        spec_.trace = trace->spec();
}

std::uint64_t
WorkloadGenerator::packetsCreated() const
{
    return std::visit(
        [](const auto &backend) { return backend.packetsCreated(); },
        backend_);
}

bool
recordTrace(const noc::NetworkConfig &config, const WorkloadSpec &spec,
            noc::Cycle cycles, const std::string &path,
            std::string *error)
{
    const std::string invalid = validateWorkloadSpec(config, spec);
    if (!invalid.empty()) {
        if (error)
            *error = invalid;
        return false;
    }
    if (cycles < 1) {
        if (error)
            *error = "trace length must be at least one cycle";
        return false;
    }

    // Generation is a pure function of (node, cycle, stream), so a
    // fresh generator swept over the window reproduces exactly the
    // packets a live run of the same spec injects.
    WorkloadGenerator generator(config, spec);
    TraceWriter writer;
    for (noc::Cycle cycle = 0; cycle < cycles; ++cycle) {
        if (generator.idleAt(cycle))
            continue;
        for (noc::NodeId node = 0; node < config.numNodes(); ++node) {
            const std::optional<noc::Packet> pkt =
                generator.generate(config, node, cycle);
            if (!pkt)
                continue;
            TraceRecord record;
            record.cycle = cycle;
            record.src = pkt->src;
            record.dst = pkt->dst;
            record.cls = pkt->msgClass;
            writer.add(record);
        }
    }
    return writer.write(path, error);
}

} // namespace nocalert::traffic
