#include "traffic/tracefile.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/fsio.hpp"

namespace nocalert::traffic {

namespace {

constexpr char kMagic[8] = {'N', 'O', 'C', 'T', 'R', 'A', 'C', '1'};
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kRecordBytes = 12;

void
putU32(std::string &out, std::uint32_t value)
{
    out.push_back(static_cast<char>(value & 0xff));
    out.push_back(static_cast<char>((value >> 8) & 0xff));
    out.push_back(static_cast<char>((value >> 16) & 0xff));
    out.push_back(static_cast<char>((value >> 24) & 0xff));
}

void
putU16(std::string &out, std::uint16_t value)
{
    out.push_back(static_cast<char>(value & 0xff));
    out.push_back(static_cast<char>((value >> 8) & 0xff));
}

std::uint32_t
getU32(const unsigned char *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint16_t
getU16(const unsigned char *p)
{
    return static_cast<std::uint16_t>(
        p[0] | (static_cast<std::uint16_t>(p[1]) << 8));
}

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

} // namespace

bool
TraceWriter::write(const std::string &path, std::string *error)
{
    std::sort(records_.begin(), records_.end(),
              [](const TraceRecord &a, const TraceRecord &b) {
                  if (a.cycle != b.cycle)
                      return a.cycle < b.cycle;
                  return a.src < b.src;
              });

    std::string payload;
    payload.reserve(records_.size() * kRecordBytes);
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const TraceRecord &r = records_[i];
        if (r.cycle < 0 ||
            r.cycle > std::numeric_limits<std::uint32_t>::max()) {
            return fail(error, "trace record " + std::to_string(i) +
                                   ": cycle " + std::to_string(r.cycle) +
                                   " does not fit the u32 frame");
        }
        if (r.src < 0 || r.src > std::numeric_limits<std::uint16_t>::max() ||
            r.dst < 0 || r.dst > std::numeric_limits<std::uint16_t>::max()) {
            return fail(error, "trace record " + std::to_string(i) +
                                   ": node ids must fit u16");
        }
        if (i > 0 && records_[i - 1].cycle == r.cycle &&
            records_[i - 1].src == r.src) {
            return fail(error,
                        "trace has two records for node " +
                            std::to_string(r.src) + " at cycle " +
                            std::to_string(r.cycle) +
                            " (one injection per node per cycle)");
        }
        putU32(payload, static_cast<std::uint32_t>(r.cycle));
        putU16(payload, static_cast<std::uint16_t>(r.src));
        putU16(payload, static_cast<std::uint16_t>(r.dst));
        payload.push_back(static_cast<char>(r.cls));
        payload.append(3, '\0');
    }

    std::string bytes;
    bytes.reserve(kHeaderBytes + payload.size());
    bytes.append(kMagic, sizeof(kMagic));
    putU32(bytes, static_cast<std::uint32_t>(records_.size()));
    putU32(bytes, crc32(payload));
    bytes.append(payload);

    return writeFileAtomic(path, bytes, error);
}

std::optional<TraceFile>
readTraceFile(const std::string &path, std::string *error)
{
    const std::optional<std::string> bytes = readFileBytes(path);
    if (!bytes) {
        fail(error, "cannot read trace file '" + path + "'");
        return std::nullopt;
    }
    if (bytes->size() < kHeaderBytes ||
        std::memcmp(bytes->data(), kMagic, sizeof(kMagic)) != 0) {
        fail(error, "'" + path + "' is not a trace file (bad magic)");
        return std::nullopt;
    }
    const auto *data =
        reinterpret_cast<const unsigned char *>(bytes->data());
    const std::uint32_t count = getU32(data + 8);
    const std::uint32_t stored_crc = getU32(data + 12);
    const std::size_t expected =
        kHeaderBytes + static_cast<std::size_t>(count) * kRecordBytes;
    if (bytes->size() != expected) {
        fail(error, "'" + path + "' is truncated or oversized: header "
                                 "promises " +
                        std::to_string(count) + " records (" +
                        std::to_string(expected) + " bytes), file has " +
                        std::to_string(bytes->size()));
        return std::nullopt;
    }
    const std::string_view payload(bytes->data() + kHeaderBytes,
                                   bytes->size() - kHeaderBytes);
    if (crc32(payload) != stored_crc) {
        fail(error, "'" + path + "' fails its CRC frame (corrupt "
                                 "record bytes)");
        return std::nullopt;
    }

    TraceFile trace;
    trace.digest = crc32(*bytes);
    trace.records.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        const unsigned char *p = data + kHeaderBytes + i * kRecordBytes;
        TraceRecord record;
        record.cycle = static_cast<noc::Cycle>(getU32(p));
        record.src = static_cast<noc::NodeId>(getU16(p + 4));
        record.dst = static_cast<noc::NodeId>(getU16(p + 6));
        record.cls = p[8];
        if (!trace.records.empty()) {
            const TraceRecord &prev = trace.records.back();
            if (record.cycle < prev.cycle ||
                (record.cycle == prev.cycle && record.src <= prev.src)) {
                fail(error, "'" + path + "' record " + std::to_string(i) +
                                " breaks (cycle, src) ordering");
                return std::nullopt;
            }
        }
        trace.records.push_back(record);
    }
    return trace;
}

std::optional<std::uint32_t>
traceFileDigest(const std::string &path)
{
    const std::optional<std::string> bytes = readFileBytes(path);
    if (!bytes)
        return std::nullopt;
    return crc32(*bytes);
}

} // namespace nocalert::traffic
