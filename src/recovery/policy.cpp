#include "recovery/policy.hpp"

namespace nocalert::recovery {

const char *
responseLevelName(ResponseLevel level)
{
    switch (level) {
      case ResponseLevel::None: return "none";
      case ResponseLevel::Cautious: return "cautious";
      case ResponseLevel::Triggered: return "triggered";
    }
    return "?";
}

RecoveryController::RecoveryController(RecoveryConfig config)
    : config_(config)
{
}

void
RecoveryController::escalate(ResponseLevel level,
                             const core::Assertion &assertion)
{
    if (level <= level_)
        return;
    level_ = level;
    events_.push_back({assertion.cycle, level, assertion.id,
                       assertion.router, assertion.port, assertion.vc});
    if (level == ResponseLevel::Triggered && callback_)
        callback_(events_.back());
}

void
RecoveryController::onAlert(const core::Assertion &assertion)
{
    last_cycle_ = assertion.cycle;
    if (level_ == ResponseLevel::Triggered)
        return;

    const core::InvariantInfo &info = core::invariantInfo(assertion.id);
    switch (info.risk) {
      case core::RiskLevel::Low:
        if (config_.deferLowRisk) {
            // Observation 2: benign when alone; arm the cautious state
            // and wait for corroboration.
            cautious_since_ = assertion.cycle;
            escalate(ResponseLevel::Cautious, assertion);
            return;
        }
        break;

      case core::RiskLevel::PermanentSensitive: {
        // Observation 3: a transient "grant to nobody" is a pipeline
        // NOP; only persistence from the same router means a stuck
        // arbiter.
        if (assertion.router == persistent_router_ &&
            assertion.cycle - persistent_last_ <=
                config_.cautiousTimeout) {
            ++persistent_count_;
        } else {
            persistent_router_ = assertion.router;
            persistent_count_ = 1;
        }
        persistent_last_ = assertion.cycle;
        if (persistent_count_ >= config_.persistenceThreshold) {
            escalate(ResponseLevel::Triggered, assertion);
        } else {
            cautious_since_ = assertion.cycle;
            escalate(ResponseLevel::Cautious, assertion);
        }
        return;
      }

      case core::RiskLevel::Standard:
        break;
    }

    escalate(ResponseLevel::Triggered, assertion);
}

void
RecoveryController::onCycle(noc::Cycle cycle)
{
    last_cycle_ = cycle;
    // A cautious state armed at cycle C expires once cautiousTimeout
    // cycles have fully elapsed, i.e. at C + cautiousTimeout — ">="
    // rather than ">", so a state armed exactly cautiousTimeout cycles
    // ago times out instead of lingering forever when no later
    // onCycle() call happens to overshoot the boundary.
    if (level_ == ResponseLevel::Cautious &&
        cycle - cautious_since_ >= config_.cautiousTimeout) {
        // The low-risk assertion was never corroborated: stand down
        // (the paper's benign RC-misdirection case).
        level_ = ResponseLevel::None;
        persistent_count_ = 0;
    }
}

std::optional<RecoveryEvent>
RecoveryController::trigger() const
{
    for (const RecoveryEvent &event : events_)
        if (event.level == ResponseLevel::Triggered)
            return event;
    return std::nullopt;
}

void
RecoveryController::reset()
{
    level_ = ResponseLevel::None;
    persistent_count_ = 0;
    persistent_router_ = noc::kInvalidNode;
}

} // namespace nocalert::recovery
