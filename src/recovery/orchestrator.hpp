/**
 * @file
 * Recovery orchestrator: turns the policy engine's Triggered decision
 * into concrete in-network actions, closing the detection->recovery
 * loop the paper positions NoCAlert inside (Section 1, contribution 2).
 *
 * On each trigger the orchestrator
 *  1. collects the suspect packets implicated by the triggering
 *     assertion's (router, port) locus,
 *  2. quarantines the implicated link(s) so quarantine-aware routing
 *     (RoutingAlgo::QAdaptive) detours subsequent traffic, and
 *  3. purges the suspect packets' flits network-wide, repairing
 *     credits; the sources' end-to-end retransmission layer
 *     (NetworkConfig::retransmit) re-delivers the purged payloads.
 *
 * Actions run at end-of-cycle (the network's cycle observer) so the
 * mid-cycle wire evaluation both kernels agree on is never disturbed —
 * this keeps recovery bit-exact between the dense and active-set
 * kernels. After each action the policy controller is reset so later,
 * independent faults can trigger again, up to a configurable cap.
 */

#ifndef NOCALERT_RECOVERY_ORCHESTRATOR_HPP
#define NOCALERT_RECOVERY_ORCHESTRATOR_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/nocalert.hpp"
#include "noc/network.hpp"
#include "recovery/policy.hpp"

namespace nocalert::recovery {

/** Orchestrator parameters. */
struct OrchestratorConfig
{
    /** Escalation policy driving the trigger decision. */
    RecoveryConfig policy;

    /** Maximum recovery actions per run (bounds purge/retry churn). */
    unsigned maxActions = 32;

    /** Quarantine implicated ports (requires QAdaptive to matter). */
    bool quarantineEnabled = true;

    /**
     * Repeated triggers at the same router mean the fault outlives a
     * single-port quarantine (the permanent-fault signature); from
     * this many triggers on, the whole router is quarantined and
     * purged so traffic detours around it entirely.
     */
    unsigned escalateThreshold = 2;
};

/** Counters describing what recovery did during a run. */
struct OrchestratorStats
{
    unsigned actions = 0;          ///< Triggers acted upon.
    unsigned quarantinedPorts = 0; ///< (node, port) pairs quarantined.
    std::uint64_t purgedFlits = 0; ///< Flits removed by purges.
    noc::Cycle firstActionCycle = -1; ///< Cycle of the first action.
};

/**
 * Wires a RecoveryController to a network and a NoCAlert engine and
 * executes quarantine-and-purge actions when the policy triggers.
 *
 * The orchestrator installs itself as the engine's alert callback;
 * the owner must forward end-of-cycle control to onCycleEnd() (e.g.
 * from the network's cycle observer, composed with any other
 * end-of-cycle consumers).
 */
class RecoveryOrchestrator
{
  public:
    RecoveryOrchestrator(noc::Network &network, core::NoCAlertEngine &engine,
                         OrchestratorConfig config = {});

    /** Policy engine (for inspection in tests). */
    const RecoveryController &controller() const { return controller_; }

    /** What recovery has done so far. */
    const OrchestratorStats &stats() const { return stats_; }

    /** Recovery actions taken, in order (trigger loci). */
    const std::vector<RecoveryEvent> &actions() const { return actions_; }

    /**
     * Advance the policy clock and execute a pending trigger. Call
     * once per cycle after all state is committed.
     */
    void onCycleEnd(noc::Cycle cycle);

  private:
    void act(const RecoveryEvent &event);

    noc::Network &network_;
    OrchestratorConfig config_;
    RecoveryController controller_;
    OrchestratorStats stats_;
    std::vector<RecoveryEvent> actions_;
    std::unordered_map<noc::NodeId, unsigned> router_triggers_;
};

} // namespace nocalert::recovery

#endif // NOCALERT_RECOVERY_ORCHESTRATOR_HPP
