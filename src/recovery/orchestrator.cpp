#include "recovery/orchestrator.hpp"

#include "util/log.hpp"

namespace nocalert::recovery {

RecoveryOrchestrator::RecoveryOrchestrator(noc::Network &network,
                                           core::NoCAlertEngine &engine,
                                           OrchestratorConfig config)
    : network_(network), config_(config), controller_(config.policy)
{
    engine.onAlert([this](const core::Assertion &assertion) {
        controller_.onAlert(assertion);
    });
}

void
RecoveryOrchestrator::onCycleEnd(noc::Cycle cycle)
{
    controller_.onCycle(cycle);
    if (!controller_.triggered())
        return;
    const auto event = controller_.trigger();
    if (event.has_value() && stats_.actions < config_.maxActions)
        act(*event);
    // Stand down either way: re-arming lets later, independent faults
    // trigger again (a permanent fault simply re-triggers until the
    // action cap is reached).
    controller_.reset();
}

void
RecoveryOrchestrator::act(const RecoveryEvent &event)
{
    ++stats_.actions;
    if (stats_.actions == 1)
        stats_.firstActionCycle = event.cycle;
    actions_.push_back(event);

    // A router that keeps triggering after its implicated port was
    // quarantined hosts a fault the first action did not isolate;
    // escalate to the whole router so traffic detours around it.
    const unsigned triggers = ++router_triggers_[event.router];
    const int port =
        triggers >= config_.escalateThreshold ? -1 : event.port;

    const auto suspects =
        network_.implicatedPackets(event.router, port);
    if (config_.quarantineEnabled) {
        stats_.quarantinedPorts += static_cast<unsigned>(
            network_.quarantinePort(event.router, port));
    }
    stats_.purgedFlits += network_.purgePackets(suspects);
}

} // namespace nocalert::recovery
