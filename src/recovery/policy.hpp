/**
 * @file
 * Recovery reaction policy driven by NoCAlert assertions.
 *
 * The paper positions NoCAlert as the detection half of a
 * detection+recovery pair (Section 1, contribution 2) and derives the
 * reaction policy from its observations:
 *
 *  - Observation 2: invariances 1 and 3 (RC misdirections) asserted
 *    *alone* never led to network-level incorrectness — a recovery
 *    mechanism should enter a "cautious" state and defer until
 *    corroborated.
 *  - Observation 3: invariance 5 (grant to nobody) is a NOP-like
 *    hiccup when transient but catastrophic when permanent — react
 *    only to persistence.
 *  - Everything else warrants an immediate trigger, with the
 *    assertion's (router, port, vc) giving module-level localization.
 *
 * The controller is a policy engine only: what "recovery" does
 * (reconfiguration, rerouting, draining) is the user's callback.
 */

#ifndef NOCALERT_RECOVERY_POLICY_HPP
#define NOCALERT_RECOVERY_POLICY_HPP

#include <functional>
#include <optional>
#include <vector>

#include "core/alert.hpp"

namespace nocalert::recovery {

/** Escalation level of the recovery controller. */
enum class ResponseLevel : std::uint8_t {
    None,     ///< No suspicious activity.
    Cautious, ///< Low-risk/unconfirmed assertions seen; deferring.
    Triggered,///< Recovery invoked.
};

/** Name of a response level. */
const char *responseLevelName(ResponseLevel level);

/** Policy parameters. */
struct RecoveryConfig
{
    /** Defer on low-risk checkers (invariants 1 and 3). */
    bool deferLowRisk = true;

    /**
     * Assertions of a permanent-sensitive checker (invariant 5) from
     * the same router within the window needed before triggering.
     */
    unsigned persistenceThreshold = 3;

    /** Cycles a cautious state survives without corroboration. */
    noc::Cycle cautiousTimeout = 64;
};

/** One recorded policy decision. */
struct RecoveryEvent
{
    noc::Cycle cycle = 0;
    ResponseLevel level = ResponseLevel::None;
    core::InvariantId trigger = core::InvariantId::IllegalTurn;
    noc::NodeId router = noc::kInvalidNode;
    int port = -1;
    int vc = -1;
};

/** Assertion-driven recovery policy engine. */
class RecoveryController
{
  public:
    /** Invoked exactly once when the policy escalates to Triggered. */
    using TriggerCallback = std::function<void(const RecoveryEvent &)>;

    explicit RecoveryController(RecoveryConfig config = {});

    /** Feed an assertion (wire to NoCAlertEngine::onAlert). */
    void onAlert(const core::Assertion &assertion);

    /** Advance time (cautious-state decay); call once per cycle, or
     *  at least whenever the current cycle is known. */
    void onCycle(noc::Cycle cycle);

    /** Current escalation level. */
    ResponseLevel level() const { return level_; }

    /** True once recovery has been invoked. */
    bool triggered() const { return level_ == ResponseLevel::Triggered; }

    /**
     * Module-level fault localization: the locus of the triggering
     * assertion (router, port, vc), once triggered.
     */
    std::optional<RecoveryEvent> trigger() const;

    /** Every escalation decision taken, in order. */
    const std::vector<RecoveryEvent> &events() const { return events_; }

    /** Register the recovery action. */
    void onTrigger(TriggerCallback callback)
    {
        callback_ = std::move(callback);
    }

    /** Reset to None (e.g. after the recovery action completed). */
    void reset();

  private:
    void escalate(ResponseLevel level, const core::Assertion &assertion);

    RecoveryConfig config_;
    ResponseLevel level_ = ResponseLevel::None;
    TriggerCallback callback_;
    std::vector<RecoveryEvent> events_;

    noc::Cycle cautious_since_ = 0;
    noc::Cycle last_cycle_ = 0;

    // Persistence tracking for the permanent-sensitive checker.
    noc::NodeId persistent_router_ = noc::kInvalidNode;
    unsigned persistent_count_ = 0;
    noc::Cycle persistent_last_ = 0;
};

} // namespace nocalert::recovery

#endif // NOCALERT_RECOVERY_POLICY_HPP
