/**
 * @file
 * Inter-router links: registered flit and credit channels.
 *
 * A Link is one *directed* flit channel plus the credit channel
 * flowing in the opposite direction. Both have one cycle of latency
 * (the LT pipeline stage): values written during cycle t become
 * visible to the consumer at cycle t+1 when the network ticks all
 * links simultaneously, which keeps the whole system synchronous
 * regardless of router evaluation order.
 */

#ifndef NOCALERT_NOC_LINK_HPP
#define NOCALERT_NOC_LINK_HPP

#include <cstdint>

#include "noc/flit.hpp"

namespace nocalert::noc {

/** One directed link with its reverse credit channel. */
struct Link
{
    // ---- Forward flit channel (producer -> consumer) ----
    bool sendValid = false; ///< Producer wrote a flit this cycle.
    Flit sendFlit;          ///< The flit being transmitted.
    bool recvValid = false; ///< A flit is arriving this cycle.
    Flit recvFlit;          ///< The arriving flit.

    // ---- Reverse credit channel (consumer -> producer) ----
    /** Per-VC credit bits written by the consumer this cycle. */
    std::uint32_t creditSend = 0;
    /** Per-VC credit bits arriving at the producer this cycle. */
    std::uint32_t creditRecv = 0;

    /**
     * True iff anything is in flight on either channel. A non-busy
     * link carries no information: ticking it is a no-op apart from
     * refreshing the (never observed) stale flit payload, which is
     * what lets the active-set kernel skip it.
     */
    bool
    busy() const
    {
        return sendValid || recvValid || creditSend != 0 ||
               creditRecv != 0;
    }

    /** Advance one cycle: move written values to the arrival side. */
    void
    tick()
    {
        recvValid = sendValid;
        recvFlit = sendFlit;
        sendValid = false;

        creditRecv = creditSend;
        creditSend = 0;
    }

    /** Drop any in-flight values (used when resetting a network). */
    void clear();
};

} // namespace nocalert::noc

#endif // NOCALERT_NOC_LINK_HPP
