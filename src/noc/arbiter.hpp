/**
 * @file
 * Round-robin and matrix arbiters.
 *
 * Arbiters are the workhorses of the VA and SA pipeline stages. The
 * grant computation is exposed as a pure function of (request vector,
 * priority state) so the router can place both vectors on the cycle's
 * wire record, where fault injection and the NoCAlert checkers
 * (invariances 4-6) can see them.
 */

#ifndef NOCALERT_NOC_ARBITER_HPP
#define NOCALERT_NOC_ARBITER_HPP

#include <cstdint>

#include "util/bits.hpp"

namespace nocalert::noc {

/**
 * Round-robin arbiter over up to 64 clients.
 *
 * The rotating priority pointer is architectural state (a fault
 * injection target). Grants are one-hot; a zero request vector yields
 * a zero grant vector.
 */
class RoundRobinArbiter
{
  public:
    /** Construct for @p num_clients clients. */
    explicit RoundRobinArbiter(unsigned num_clients = 1);

    /** Number of clients. */
    unsigned numClients() const { return num_clients_; }

    /** Current priority pointer (client index searched first). */
    unsigned pointer() const { return pointer_; }

    /** Overwrite the priority pointer (fault injection hook). */
    void setPointer(unsigned pointer) { pointer_ = pointer; }

    /**
     * Pure grant computation: the first requesting client at or after
     * @p pointer (mod @p num_clients) wins. Returns a one-hot grant
     * vector, or 0 when @p requests is 0.
     */
    static std::uint64_t compute(std::uint64_t requests, unsigned pointer,
                                 unsigned num_clients)
    {
        requests &= lowMask(num_clients);
        if (requests == 0)
            return 0;
        // First requesting client at or after the pointer (mod
        // num_clients), wrapping once around. A corrupted pointer
        // >= num_clients behaves like pointer % num_clients, as the
        // wrap logic in hardware would. Branch-free search: mask off
        // the clients below the pointer, fall back to the full vector
        // when nothing at-or-above requests, take the lowest set bit.
        std::uint64_t at_or_above =
            requests & ~lowMask(pointer % num_clients);
        std::uint64_t candidates = at_or_above ? at_or_above : requests;
        return candidates & (~candidates + 1);
    }

    /**
     * Commit the pointer update implied by @p grant (the winner's
     * successor gains top priority). Non-one-hot grants — possible
     * only under fault injection — leave the pointer unchanged, as a
     * corrupted grant vector would feed garbage into the pointer
     * update logic in hardware; keeping it stable is the benign
     * modelling choice.
     */
    void commit(std::uint64_t grant)
    {
        grant &= lowMask(num_clients_);
        if (!isOneHot(grant))
            return;
        unsigned winner = static_cast<unsigned>(lowestSetBit(grant));
        pointer_ = (winner + 1) % num_clients_;
    }

  private:
    unsigned num_clients_;
    unsigned pointer_ = 0;
};

/**
 * Matrix arbiter over up to 16 clients: maintains a least-recently-
 * granted priority matrix. Functionally interchangeable with the
 * round-robin arbiter; provided as an alternative implementation for
 * the hardware model and for arbiter unit tests.
 */
class MatrixArbiter
{
  public:
    /** Construct for @p num_clients clients (<= 16). */
    explicit MatrixArbiter(unsigned num_clients = 1);

    /** Number of clients. */
    unsigned numClients() const { return num_clients_; }

    /** Compute the grant for @p requests and update priorities. */
    std::uint64_t arbitrate(std::uint64_t requests);

    /** True iff client @p row currently has priority over @p col. */
    bool hasPriority(unsigned row, unsigned col) const;

  private:
    unsigned num_clients_;
    /** matrix_[i] bit j set => client i beats client j. */
    std::uint64_t matrix_[16] = {};
};

} // namespace nocalert::noc

#endif // NOCALERT_NOC_ARBITER_HPP
