/**
 * @file
 * The five-stage pipelined virtual-channel wormhole router
 * (paper Section 3.1, Figure 1).
 *
 * Pipeline: BW+RC (buffer write / routing computation, header flits),
 * VA (VA1 local / VA2 global virtual-channel allocation, header
 * flits), SA (SA1 local / SA2 global switch arbitration), ST (switch
 * traversal), LT (link traversal, modelled by the registered links).
 *
 * Within a cycle the stages are evaluated in *reverse* pipeline order
 * (ST, SA, VA, BW+RC), which yields exact one-stage-per-cycle
 * progression without duplicating every pipeline register: a flit
 * whose state advances in stage k this cycle is first seen by stage
 * k+1 next cycle. Under the speculative variant (Section 4.4) VA is
 * evaluated before SA so a header can win both in the same cycle.
 *
 * Every control decision is computed into the RouterWires record and
 * then *read back* from it when the router commits state, so fault
 * injection on the wires genuinely alters machine behaviour.
 */

#ifndef NOCALERT_NOC_ROUTER_HPP
#define NOCALERT_NOC_ROUTER_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "noc/arbiter.hpp"
#include "noc/buffer.hpp"
#include "noc/config.hpp"
#include "noc/packed.hpp"
#include "noc/routing.hpp"
#include "noc/signals.hpp"

namespace nocalert::noc {

/**
 * Allocation and credit state of one output VC, tracked by the
 * upstream router (this is the "credits" half of credit-based flow
 * control plus the output-VC occupancy table VA consults).
 */
struct OutVcState
{
    bool free = true;      ///< No packet currently holds this output VC.
    int ownerPort = -1;    ///< Input port of the holder (-1 when free).
    int ownerVc = -1;      ///< Input VC of the holder (-1 when free).
    std::uint8_t credits = 0; ///< Free flit slots downstream.
};

/**
 * Pipeline register between SA and ST: the crossbar schedule for the
 * next cycle's switch traversal, one entry per input port.
 */
struct XbarSchedule
{
    bool valid = false;       ///< A read is scheduled for this port.
    std::uint8_t vc = 0;      ///< Input VC to read.
    std::uint32_t rowMask = 0; ///< Output ports to drive (1-hot normally).
    std::uint8_t outVcWire = 0; ///< VC id stamped on the departing flit.
};

/** Five-port mesh router. */
class Router
{
  public:
    /** Per-evaluation context shared by all routers of a network. */
    struct Context
    {
        const NetworkConfig *config = nullptr;
        const RoutingAlgorithm *routing = nullptr;
    };

    /** Flit/credit exchange with the incident links for one cycle. */
    struct LinkIo
    {
        /** Arriving flit per input port. */
        std::array<bool, kNumPorts> inValid = {};
        std::array<Flit, kNumPorts> inFlit = {};

        /**
         * Bit p set iff inValid[p] (maintained by the bitmask
         * kernel's gather; evaluateFast iterates its set bits instead
         * of scanning all ports). The branchy pipeline ignores it.
         */
        std::uint8_t inMask = 0;

        /** Credits arriving per output port (per-VC bitmask). */
        std::array<std::uint32_t, kNumPorts> creditIn = {};

        /** Departing flit per output port (filled by evaluate). */
        std::array<bool, kNumPorts> outValid = {};
        std::array<Flit, kNumPorts> outFlit = {};

        /** Credits returned upstream per input port (filled). */
        std::array<std::uint32_t, kNumPorts> creditOut = {};

        /**
         * Bit o set iff outValid[o] and bit p set iff creditOut[p]
         * nonzero — filled by evaluateFast only, so the bitmask
         * kernel's drive side touches just the ports that carry
         * something. Meaningless after the branchy pipeline.
         */
        std::uint8_t outMask = 0;
        std::uint8_t creditOutMask = 0;
    };

    /**
     * Observer invoked at each tap point during evaluation. The hook
     * may mutate the wires (fault injection) and, through the router
     * reference, the architectural state.
     */
    using TapHook =
        std::function<void(Router &, TapPoint, RouterWires &)>;

    /** Construct a router for node @p node of @p config. */
    Router(const NetworkConfig &config, NodeId node);

    /** Node id of this router. */
    NodeId node() const { return node_; }

    /** Micro-architectural parameters. */
    const RouterParams &params() const { return params_; }

    /**
     * Evaluate one clock cycle.
     *
     * @param ctx   Network-wide configuration and routing algorithm.
     * @param cycle Current simulation time.
     * @param io    Link inputs (filled by the caller) and outputs
     *              (filled here).
     * @param hook  Optional tap observer (fault injection / tracing).
     */
    void evaluate(const Context &ctx, Cycle cycle, LinkIo &io,
                  const TapHook *hook);

    /**
     * Bitmask-kernel fast path: evaluate one cycle operating only on
     * the set bits of @p ps, skipping the wire record, the snapshots,
     * and the branchy checker bank (whose only possible fires are
     * computed inline into @p ev — see PackedCheck).
     *
     * A read-only eligibility screen runs first; if any condition a
     * Table-1 checker could trip on is not provably absent (suspect
     * state, malformed schedule, anomalous buffer write), the call
     * returns false WITHOUT mutating anything and the caller must
     * fall back to evaluate(). On a true return, the architectural
     * state transition is bit-identical to evaluate() with no hook:
     * same flits moved, same arbiter pointer updates, same credits —
     * the three-way kernel-equivalence property tests pin this. @p ps
     * is updated incrementally and stays authoritative; @p scratch is
     * caller-provided reusable VA workspace.
     */
    bool evaluateFast(const Context &ctx, Cycle cycle, LinkIo &io,
                      PackedRouterState &ps, PackedScratch &scratch,
                      PackedCycleEvents &ev);

    /** Rebuild @p ps from the architectural state (slow, exact). */
    void recomputePacked(const NetworkConfig &config,
                         PackedRouterState &ps) const;

    /** Wire record of the most recently evaluated cycle. */
    const RouterWires &wires() const { return wires_; }

    /** True iff no flits are buffered and no reads are scheduled. */
    bool idle() const;

    /**
     * True iff evaluating this router with no link inputs is provably
     * a no-op on architectural state: every buffer empty, every VC
     * state machine Idle, and no switch traversal scheduled. Stronger
     * than idle(), which tolerates RouteWait/VcAllocWait records that
     * would still drive the RC and VA pipelines. The active-set
     * kernel skips quiescent routers until a link carries a flit or a
     * credit back into them.
     */
    bool quiescent() const;

    /**
     * Credit-only fast path for the active-set kernel: apply arriving
     * credits (@p credit_in, per-output-port per-VC masks) to a
     * quiescent router without evaluating the pipeline. For a
     * quiescent router with no arriving flits this is the *only*
     * state change a full evaluate() would make — every other stage
     * finds nothing to do and every checker input stays zero — and it
     * leaves the router quiescent, so the caller need not re-examine
     * liveness. Must not be used on non-quiescent routers.
     */
    void applyCreditIncrements(
        const std::array<std::uint32_t, kNumPorts> &credit_in);

    // ------------------------------------------------------------------
    // Architectural state surface (unit tests and fault injection).
    // ------------------------------------------------------------------

    /** Status record of input VC (@p port, @p vc). */
    VcRecord &vcRecord(int port, unsigned vc);
    const VcRecord &vcRecord(int port, unsigned vc) const;

    /** FIFO buffer of input VC (@p port, @p vc). */
    VcFifo &fifo(int port, unsigned vc);
    const VcFifo &fifo(int port, unsigned vc) const;

    /** Allocation/credit state of output VC (@p port, @p vc). */
    OutVcState &outVcState(int port, unsigned vc);
    const OutVcState &outVcState(int port, unsigned vc) const;

    /** SA1 arbiter of input port @p port. */
    RoundRobinArbiter &sa1Arbiter(int port) { return sa1Arb_[port]; }

    /** SA2 arbiter of output port @p port. */
    RoundRobinArbiter &sa2Arbiter(int port) { return sa2Arb_[port]; }

    /** VA2 arbiter of output VC (@p port, @p vc). */
    RoundRobinArbiter &va2Arbiter(int port, unsigned vc);

    /** RC service arbiter of input port @p port. */
    RoundRobinArbiter &rcArbiter(int port) { return rcArb_[port]; }

    /** VA1 candidate-selection pointer of input VC (@p port, @p vc). */
    std::uint8_t &va1Pointer(int port, unsigned vc);

    /** SA->ST schedule register of input port @p port. */
    XbarSchedule &schedule(int port) { return sched_[port]; }
    const XbarSchedule &schedule(int port) const { return sched_[port]; }

    /**
     * Recovery purge: remove every buffered flit belonging to a packet
     * in @p suspects and release the pipeline state those packets hold
     * — input VC records, the SA->ST schedule entry (restoring the
     * credits its SA2 grant reserved), and output VC allocations.
     * @p removed_upstream is invoked once per (input port, vc) with
     * the number of flits removed so the caller can return the freed
     * buffer slots' credits to whoever is upstream of that port.
     * Returns the total number of flits removed. Best-effort by
     * design: under fault-corrupted state some references may dangle,
     * in which case they are skipped rather than repaired.
     */
    std::uint64_t purgePackets(
        const std::unordered_set<PacketId> &suspects,
        const std::function<void(int port, unsigned vc, unsigned removed)>
            &removed_upstream);

    /** Grant @p count credits to output VC (@p port, @p vc), capped. */
    void addOutputCredits(int port, unsigned vc, unsigned count);

  private:
    /** Flattened [port][vc] index (hot path: no bounds checks). */
    unsigned
    vcIndex(int port, unsigned vc) const
    {
        return static_cast<unsigned>(port) * params_.numVcs + vc;
    }

    void takeSnapshots();
    void applyCredits(const Context &ctx);
    void doSwitchTraversal(const Context &ctx, LinkIo &io);
    void doSwitchArbitration(const Context &ctx, const TapHook *hook);
    void doVcAllocation(const Context &ctx, const TapHook *hook);
    void doBufferWriteAndRc(const Context &ctx, const TapHook *hook);
    void tap(TapPoint point, const TapHook *hook);

    /** Truncate an output-VC register value to the link wire width. */
    std::uint8_t
    vcWireValue(int out_vc) const
    {
        // The VC id field on the link is bitsFor(numVcs) wires wide;
        // whatever the register holds is truncated to that width.
        return static_cast<std::uint8_t>(
            static_cast<unsigned>(out_vc) &
            lowMask(bitsFor(params_.numVcs)));
    }

    /** Deterministic garbage destination for illegal RC reads. */
    static NodeId garbageDst(const Flit &flit, NodeId router,
                             int num_nodes);

    /** Group-9 predicate: out-VC allocation table self-consistent. */
    bool outVcTableConsistent() const;

    NodeId node_;
    RouterParams params_;

    std::vector<VcFifo> fifos_;          // [port][vc]
    std::vector<VcRecord> records_;      // [port][vc]
    std::vector<OutVcState> outVcs_;     // [port][vc]
    std::array<XbarSchedule, kNumPorts> sched_ = {};

    std::array<RoundRobinArbiter, kNumPorts> sa1Arb_;
    std::array<RoundRobinArbiter, kNumPorts> sa2Arb_;
    std::array<RoundRobinArbiter, kNumPorts> rcArb_;
    std::vector<RoundRobinArbiter> va2Arb_; // [port][vc]
    std::vector<std::uint8_t> va1Ptr_;      // [port][vc]

    RouterWires wires_;
};

} // namespace nocalert::noc

#endif // NOCALERT_NOC_ROUTER_HPP
