#include "noc/signals.hpp"

namespace nocalert::noc {

void
RouterWires::clear(Cycle new_cycle, NodeId new_router)
{
    *this = RouterWires{};
    cycle = new_cycle;
    router = new_router;
}

bool
inputPortQuiescent(const InputPortWires &in, unsigned num_vcs)
{
    if (in.inValid || in.writeEnable != 0 || in.writeDropped != 0 ||
        in.rcWaiting != 0 || in.rcDone != 0 || in.sa1Req != 0 ||
        in.sa1Grant != 0 || in.readEnable != 0 || in.readEmpty != 0 ||
        in.creditSend != 0)
        return false;
    for (unsigned v = 0; v < num_vcs; ++v) {
        const VcSnapshot &vc = in.vc[v];
        if (vc.state != VcState::Idle || vc.occupancy != 0 ||
            vc.headValid || vc.va1CandidateVc >= 0)
            return false;
    }
    return true;
}

bool
outputPortQuiescent(const OutputPortWires &out)
{
    if (out.sa2Req != 0 || out.sa2Grant != 0 || out.outValid ||
        out.creditRecv != 0)
        return false;
    for (unsigned w = 0; w < kMaxVcs; ++w)
        if (out.va2Req[w] != 0 || out.va2Grant[w] != 0)
            return false;
    return true;
}

bool
routerWiresQuiescent(const RouterWires &wires, unsigned num_vcs)
{
    if (wires.ejectValid || wires.xbarFlitsIn != 0 ||
        wires.xbarFlitsOut != 0)
        return false;
    for (int p = 0; p < kNumPorts; ++p) {
        if (wires.xbarRow[p] != 0 || wires.xbarCol[p] != 0)
            return false;
        if (!inputPortQuiescent(wires.in[p], num_vcs))
            return false;
        if (!outputPortQuiescent(wires.out[p]))
            return false;
    }
    return true;
}

const char *
tapPointName(TapPoint tap)
{
    switch (tap) {
      case TapPoint::CycleStart: return "CycleStart";
      case TapPoint::AfterInputs: return "AfterInputs";
      case TapPoint::AfterSt: return "AfterSt";
      case TapPoint::AfterSa1Req: return "AfterSa1Req";
      case TapPoint::AfterSa1: return "AfterSa1";
      case TapPoint::AfterSa2Req: return "AfterSa2Req";
      case TapPoint::AfterSa2: return "AfterSa2";
      case TapPoint::AfterVa1: return "AfterVa1";
      case TapPoint::AfterVa2Req: return "AfterVa2Req";
      case TapPoint::AfterVa2: return "AfterVa2";
      case TapPoint::AfterRcReq: return "AfterRcReq";
      case TapPoint::AfterRc: return "AfterRc";
      case TapPoint::CycleEnd: return "CycleEnd";
    }
    return "?";
}

} // namespace nocalert::noc
