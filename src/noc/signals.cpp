#include "noc/signals.hpp"

namespace nocalert::noc {

void
RouterWires::clear(Cycle new_cycle, NodeId new_router)
{
    *this = RouterWires{};
    cycle = new_cycle;
    router = new_router;
}

const char *
tapPointName(TapPoint tap)
{
    switch (tap) {
      case TapPoint::CycleStart: return "CycleStart";
      case TapPoint::AfterInputs: return "AfterInputs";
      case TapPoint::AfterSt: return "AfterSt";
      case TapPoint::AfterSa1Req: return "AfterSa1Req";
      case TapPoint::AfterSa1: return "AfterSa1";
      case TapPoint::AfterSa2Req: return "AfterSa2Req";
      case TapPoint::AfterSa2: return "AfterSa2";
      case TapPoint::AfterVa1: return "AfterVa1";
      case TapPoint::AfterVa2Req: return "AfterVa2Req";
      case TapPoint::AfterVa2: return "AfterVa2";
      case TapPoint::AfterRcReq: return "AfterRcReq";
      case TapPoint::AfterRc: return "AfterRc";
      case TapPoint::CycleEnd: return "CycleEnd";
    }
    return "?";
}

} // namespace nocalert::noc
