#include "noc/config.hpp"

#include <cstdlib>

#include "util/log.hpp"

namespace nocalert::noc {

const char *
routingAlgoName(RoutingAlgo algo)
{
    switch (algo) {
      case RoutingAlgo::XY: return "XY";
      case RoutingAlgo::YX: return "YX";
      case RoutingAlgo::WestFirst: return "WestFirst";
      case RoutingAlgo::O1Turn: return "O1Turn";
      case RoutingAlgo::QAdaptive: return "QAdaptive";
    }
    return "?";
}

std::optional<RoutingAlgo>
routingAlgoFromName(std::string_view name)
{
    for (int i = 0; i <= static_cast<int>(RoutingAlgo::QAdaptive); ++i) {
        const auto algo = static_cast<RoutingAlgo>(i);
        if (name == routingAlgoName(algo))
            return algo;
    }
    return std::nullopt;
}

unsigned
RouterParams::vcClass(unsigned vc) const
{
    NOCALERT_ASSERT(vc < numVcs, "vc ", vc, " out of range");
    NOCALERT_ASSERT(!classes.empty(), "no message classes configured");
    // Contiguous partition: with C classes and V VCs, class c owns VCs
    // [c*V/C, (c+1)*V/C).
    auto c = static_cast<unsigned>(classes.size());
    return static_cast<unsigned>(
        (static_cast<std::uint64_t>(vc) * c) / numVcs);
}

std::vector<unsigned>
RouterParams::classVcs(unsigned cls) const
{
    std::vector<unsigned> vcs;
    for (unsigned v = 0; v < numVcs; ++v)
        if (vcClass(v) == cls)
            vcs.push_back(v);
    return vcs;
}

std::uint16_t
RouterParams::classLength(unsigned cls) const
{
    NOCALERT_ASSERT(cls < classes.size(), "class ", cls, " out of range");
    return classes[cls].packetLength;
}

void
RouterParams::validate() const
{
    if (numVcs < 1 || numVcs > 8)
        NOCALERT_FATAL("numVcs must be in [1,8], got ", numVcs);
    if (bufferDepth < 1 || bufferDepth > 15)
        NOCALERT_FATAL("bufferDepth must be in [1,15], got ", bufferDepth);
    if (classes.empty())
        NOCALERT_FATAL("at least one message class is required");
    if (classes.size() > numVcs)
        NOCALERT_FATAL("more message classes (", classes.size(),
                       ") than VCs (", numVcs, ")");
    for (const auto &cls : classes) {
        if (cls.packetLength < 1)
            NOCALERT_FATAL("message class '", cls.name,
                           "' has zero packet length");
        if (cls.packetLength > bufferDepth)
            NOCALERT_FATAL("message class '", cls.name, "' packets (",
                           cls.packetLength, " flits) exceed the VC depth (",
                           bufferDepth, "); atomic VCs could deadlock");
    }
}

Coord
NetworkConfig::coordOf(NodeId node) const
{
    NOCALERT_ASSERT(node >= 0 && node < numNodes(), "bad node ", node);
    return {node % width, node / width};
}

NodeId
NetworkConfig::nodeAt(Coord c) const
{
    NOCALERT_ASSERT(c.x >= 0 && c.x < width && c.y >= 0 && c.y < height,
                    "bad coord ", toString(c));
    return c.y * width + c.x;
}

NodeId
NetworkConfig::neighborOf(NodeId node, int port) const
{
    Coord c = coordOf(node);
    switch (static_cast<Port>(port)) {
      case Port::North: c.y += 1; break;
      case Port::South: c.y -= 1; break;
      case Port::East: c.x += 1; break;
      case Port::West: c.x -= 1; break;
      default: return kInvalidNode;
    }
    if (c.x < 0 || c.x >= width || c.y < 0 || c.y >= height)
        return kInvalidNode;
    return nodeAt(c);
}

bool
NetworkConfig::portConnected(NodeId node, int port) const
{
    if (port == portIndex(Port::Local))
        return true;
    return neighborOf(node, port) != kInvalidNode;
}

int
NetworkConfig::hopDistance(NodeId a, NodeId b) const
{
    Coord ca = coordOf(a);
    Coord cb = coordOf(b);
    return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

void
NetworkConfig::validate() const
{
    if (width < 2 || height < 2)
        NOCALERT_FATAL("mesh must be at least 2x2, got ",
                       width, "x", height);
    router.validate();
    if (retransmit.enabled) {
        if (retransmit.ackTimeout < 1)
            NOCALERT_FATAL("retransmit.ackTimeout must be positive");
        if (retransmit.backoffCap < 1)
            NOCALERT_FATAL("retransmit.backoffCap must be at least 1");
    }
}

} // namespace nocalert::noc
