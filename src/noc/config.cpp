#include "noc/config.hpp"

#include <cstdlib>

#include "util/log.hpp"

namespace nocalert::noc {

const char *
routingAlgoName(RoutingAlgo algo)
{
    switch (algo) {
      case RoutingAlgo::XY: return "XY";
      case RoutingAlgo::YX: return "YX";
      case RoutingAlgo::WestFirst: return "WestFirst";
      case RoutingAlgo::O1Turn: return "O1Turn";
      case RoutingAlgo::QAdaptive: return "QAdaptive";
    }
    return "?";
}

std::optional<RoutingAlgo>
routingAlgoFromName(std::string_view name)
{
    for (int i = 0; i <= static_cast<int>(RoutingAlgo::QAdaptive); ++i) {
        const auto algo = static_cast<RoutingAlgo>(i);
        if (name == routingAlgoName(algo))
            return algo;
    }
    return std::nullopt;
}

std::vector<unsigned>
RouterParams::classVcs(unsigned cls) const
{
    std::vector<unsigned> vcs;
    for (unsigned v = 0; v < numVcs; ++v)
        if (vcClass(v) == cls)
            vcs.push_back(v);
    return vcs;
}

void
RouterParams::validate() const
{
    if (numVcs < 1 || numVcs > 8)
        NOCALERT_FATAL("numVcs must be in [1,8], got ", numVcs);
    if (bufferDepth < 1 || bufferDepth > 15)
        NOCALERT_FATAL("bufferDepth must be in [1,15], got ", bufferDepth);
    if (classes.empty())
        NOCALERT_FATAL("at least one message class is required");
    if (classes.size() > numVcs)
        NOCALERT_FATAL("more message classes (", classes.size(),
                       ") than VCs (", numVcs, ")");
    for (const auto &cls : classes) {
        if (cls.packetLength < 1)
            NOCALERT_FATAL("message class '", cls.name,
                           "' has zero packet length");
        if (cls.packetLength > bufferDepth)
            NOCALERT_FATAL("message class '", cls.name, "' packets (",
                           cls.packetLength, " flits) exceed the VC depth (",
                           bufferDepth, "); atomic VCs could deadlock");
    }
}




void
NetworkConfig::validate() const
{
    if (width < 2 || height < 2)
        NOCALERT_FATAL("mesh must be at least 2x2, got ",
                       width, "x", height);
    router.validate();
    if (retransmit.enabled) {
        if (retransmit.ackTimeout < 1)
            NOCALERT_FATAL("retransmit.ackTimeout must be positive");
        if (retransmit.backoffCap < 1)
            NOCALERT_FATAL("retransmit.backoffCap must be at least 1");
    }
}

} // namespace nocalert::noc
