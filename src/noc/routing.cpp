#include "noc/routing.hpp"

#include <cstdlib>

#include "util/log.hpp"

namespace nocalert::noc {

namespace {

/** True iff @p node is a valid id in @p config. */
bool
validNode(const NetworkConfig &config, NodeId node)
{
    return node >= 0 && node < config.numNodes();
}

/** Dimension-ordered route: X first iff @p x_first. */
int
dorRoute(const NetworkConfig &config, NodeId here, const Flit &flit,
         bool x_first)
{
    if (!validNode(config, flit.dst))
        return kInvalidPort; // garbage header; RC emits an invalid output
    if (flit.dst == here)
        return portIndex(Port::Local);

    Coord hc = config.coordOf(here);
    Coord dc = config.coordOf(flit.dst);
    int dx = dc.x - hc.x;
    int dy = dc.y - hc.y;

    if (x_first) {
        if (dx > 0)
            return portIndex(Port::East);
        if (dx < 0)
            return portIndex(Port::West);
        return dy > 0 ? portIndex(Port::North) : portIndex(Port::South);
    }
    if (dy > 0)
        return portIndex(Port::North);
    if (dy < 0)
        return portIndex(Port::South);
    return dx > 0 ? portIndex(Port::East) : portIndex(Port::West);
}

/** Shared structural rules: U-turns and malformed ports are illegal. */
bool
structurallyLegal(int in_port, int out_port)
{
    if (out_port < 0 || out_port >= kNumPorts)
        return false;
    if (in_port < 0 || in_port >= kNumPorts)
        return false;
    // A mesh-port U-turn sends the flit straight back where it came
    // from; no minimal deadlock-free algorithm permits it.
    if (isMeshPort(out_port) && out_port == in_port)
        return false;
    return true;
}

/** DOR turn rule: under X-first, Y-axis input must not turn to X. */
bool
dorLegalTurn(bool x_first, int in_port, int out_port)
{
    if (!structurallyLegal(in_port, out_port))
        return false;
    if (out_port == portIndex(Port::Local) ||
        in_port == portIndex(Port::Local)) {
        return true;
    }
    Axis in_axis = portAxis(in_port);
    Axis out_axis = portAxis(out_port);
    if (x_first && in_axis == Axis::Y && out_axis == Axis::X)
        return false;
    if (!x_first && in_axis == Axis::X && out_axis == Axis::Y)
        return false;
    return true;
}

} // namespace

bool
RoutingAlgorithm::minimalStep(const NetworkConfig &config, NodeId here,
                              const Flit &flit, int out_port) const
{
    if (!validNode(config, flit.dst))
        return false;
    if (out_port == portIndex(Port::Local))
        return flit.dst == here;
    NodeId next = config.neighborOf(here, out_port);
    if (next == kInvalidNode)
        return false;
    return config.hopDistance(next, flit.dst) <
           config.hopDistance(here, flit.dst);
}

void
RoutingAlgorithm::quarantine(NodeId node, int port)
{
    if (node < 0 || port < 0 || port >= kNumPorts)
        return;
    quarantined_.insert(static_cast<long long>(node) * kNumPorts + port);
}

bool
RoutingAlgorithm::isQuarantined(NodeId node, int port) const
{
    if (quarantined_.empty() || node < 0 || port < 0 || port >= kNumPorts)
        return false;
    return quarantined_.count(static_cast<long long>(node) * kNumPorts +
                              port) != 0;
}

std::unique_ptr<RoutingAlgorithm>
makeRouting(RoutingAlgo algo)
{
    switch (algo) {
      case RoutingAlgo::XY:
        return std::make_unique<DimensionOrderRouting>(true);
      case RoutingAlgo::YX:
        return std::make_unique<DimensionOrderRouting>(false);
      case RoutingAlgo::WestFirst:
        return std::make_unique<WestFirstRouting>();
      case RoutingAlgo::O1Turn:
        return std::make_unique<O1TurnRouting>();
      case RoutingAlgo::QAdaptive:
        return std::make_unique<QAdaptiveRouting>();
    }
    NOCALERT_PANIC("unknown routing algorithm");
}

DimensionOrderRouting::DimensionOrderRouting(bool x_first)
    : x_first_(x_first)
{
}

RoutingAlgo
DimensionOrderRouting::kind() const
{
    return x_first_ ? RoutingAlgo::XY : RoutingAlgo::YX;
}

int
DimensionOrderRouting::route(const NetworkConfig &config, NodeId here,
                             const Flit &flit, int /*in_port*/) const
{
    return dorRoute(config, here, flit, x_first_);
}

bool
DimensionOrderRouting::legalTurn(const Flit & /*flit*/, int in_port,
                                 int out_port) const
{
    return dorLegalTurn(x_first_, in_port, out_port);
}

int
WestFirstRouting::route(const NetworkConfig &config, NodeId here,
                        const Flit &flit, int /*in_port*/) const
{
    if (!validNode(config, flit.dst))
        return kInvalidPort;
    if (flit.dst == here)
        return portIndex(Port::Local);

    Coord hc = config.coordOf(here);
    Coord dc = config.coordOf(flit.dst);
    int dx = dc.x - hc.x;
    int dy = dc.y - hc.y;

    if (dx < 0)
        return portIndex(Port::West);
    // Adaptive among the productive non-west directions; deterministic
    // selection: larger remaining offset first, X breaking ties.
    if (dx > 0 && std::abs(dx) >= std::abs(dy))
        return portIndex(Port::East);
    if (dy > 0)
        return portIndex(Port::North);
    if (dy < 0)
        return portIndex(Port::South);
    return portIndex(Port::East);
}

bool
WestFirstRouting::legalTurn(const Flit & /*flit*/, int in_port,
                            int out_port) const
{
    if (!structurallyLegal(in_port, out_port))
        return false;
    // Turning *into* West is forbidden unless the packet was already
    // travelling west (entered through the East port) or is being
    // injected locally.
    if (out_port == portIndex(Port::West)) {
        return in_port == portIndex(Port::East) ||
               in_port == portIndex(Port::Local);
    }
    return true;
}

bool
O1TurnRouting::xFirst(const Flit &flit)
{
    return (flit.packet & 1ULL) == 0;
}

int
O1TurnRouting::route(const NetworkConfig &config, NodeId here,
                     const Flit &flit, int /*in_port*/) const
{
    return dorRoute(config, here, flit, xFirst(flit));
}

bool
O1TurnRouting::legalTurn(const Flit &flit, int in_port, int out_port) const
{
    return dorLegalTurn(xFirst(flit), in_port, out_port);
}

int
QAdaptiveRouting::route(const NetworkConfig &config, NodeId here,
                        const Flit &flit, int in_port) const
{
    if (!validNode(config, flit.dst))
        return kInvalidPort;
    if (flit.dst == here)
        return portIndex(Port::Local);

    Coord hc = config.coordOf(here);
    Coord dc = config.coordOf(flit.dst);
    int dx = dc.x - hc.x;
    int dy = dc.y - hc.y;

    // Westward hops come first and are mandatory under the west-first
    // turn model: a detour would need a later turn into West, the one
    // forbidden turn. A quarantined West port is used anyway (the
    // purge already cleaned it; best-effort degraded service).
    if (dx < 0)
        return portIndex(Port::West);

    const int north = portIndex(Port::North);
    const int south = portIndex(Port::South);

    // Once dx == 0, only the productive Y direction can ever reach the
    // destination without a forbidden west hop, so there is no escape.
    if (dx == 0)
        return dy > 0 ? north : south;

    // dx > 0: prefer exactly XY's choice (East), then the productive
    // perpendicular direction, then a non-minimal perpendicular escape.
    const int candidates[3] = {
        portIndex(Port::East),
        dy >= 0 ? north : south,
        dy >= 0 ? south : north,
    };
    for (int c : candidates) {
        if (c == in_port || !config.portConnected(here, c))
            continue;
        if (isQuarantined(here, c))
            continue;
        return c;
    }
    // Everything usable is quarantined: take the first structurally
    // possible candidate anyway rather than emit an invalid route.
    for (int c : candidates) {
        if (c == in_port || !config.portConnected(here, c))
            continue;
        return c;
    }
    return candidates[0];
}

bool
QAdaptiveRouting::legalTurn(const Flit & /*flit*/, int in_port,
                            int out_port) const
{
    if (!structurallyLegal(in_port, out_port))
        return false;
    // West-first rule, as in WestFirstRouting: turning into West is
    // only legal for packets already travelling west or injecting.
    if (out_port == portIndex(Port::West)) {
        return in_port == portIndex(Port::East) ||
               in_port == portIndex(Port::Local);
    }
    return true;
}

} // namespace nocalert::noc
