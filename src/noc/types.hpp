/**
 * @file
 * Elementary vocabulary of the on-chip network model: ports,
 * directions, node coordinates, cycle counts.
 *
 * The baseline router (paper Section 3.1) has five ports: the four
 * cardinal mesh directions plus the local port connecting the
 * processing element's network interface.
 */

#ifndef NOCALERT_NOC_TYPES_HPP
#define NOCALERT_NOC_TYPES_HPP

#include <cstdint>
#include <string>

namespace nocalert::noc {

/** Simulation time in clock cycles. */
using Cycle = std::int64_t;

/** Flat node / router identifier (y * width + x). */
using NodeId = int;

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode = -1;

/** Router port indices. Ports double as direction identifiers. */
enum class Port : int {
    North = 0,
    East = 1,
    South = 2,
    West = 3,
    Local = 4,
};

/** Number of ports on the baseline mesh router. */
inline constexpr int kNumPorts = 5;

/** Sentinel port value meaning "not assigned / invalid". */
inline constexpr int kInvalidPort = -1;

/** Convert a port enum to its integer index. */
constexpr int
portIndex(Port p)
{
    return static_cast<int>(p);
}

/** Convert an integer index to a Port. @pre 0 <= index < kNumPorts. */
constexpr Port
portFromIndex(int index)
{
    return static_cast<Port>(index);
}

/** Human-readable port name ("N", "E", "S", "W", "L", or "?"). */
const char *portName(int port);

/** True iff the port is one of the four mesh directions. */
constexpr bool
isMeshPort(int port)
{
    return port >= 0 && port < 4;
}

/** The mesh direction opposite to @p port (N<->S, E<->W). */
int oppositePort(int port);

/** 2-D mesh coordinate. */
struct Coord
{
    int x = 0;
    int y = 0;

    bool operator==(const Coord &) const = default;
};

/** Format a coordinate as "(x,y)". */
std::string toString(const Coord &c);

/**
 * Classification of the mesh dimension a port belongs to, used by
 * routing-turn legality checks (X = East/West, Y = North/South).
 */
enum class Axis { X, Y, None };

/** Axis of a port (Local and invalid ports map to Axis::None). */
inline Axis
portAxis(int port)
{
    switch (static_cast<Port>(port)) {
      case Port::East:
      case Port::West:
        return Axis::X;
      case Port::North:
      case Port::South:
        return Axis::Y;
      default:
        return Axis::None;
    }
}

} // namespace nocalert::noc

#endif // NOCALERT_NOC_TYPES_HPP
