#include "noc/types.hpp"

#include "util/log.hpp"

namespace nocalert::noc {

const char *
portName(int port)
{
    switch (port) {
      case 0: return "N";
      case 1: return "E";
      case 2: return "S";
      case 3: return "W";
      case 4: return "L";
      default: return "?";
    }
}

int
oppositePort(int port)
{
    switch (static_cast<Port>(port)) {
      case Port::North: return portIndex(Port::South);
      case Port::South: return portIndex(Port::North);
      case Port::East: return portIndex(Port::West);
      case Port::West: return portIndex(Port::East);
      default:
        NOCALERT_PANIC("no opposite for port ", port);
    }
}

std::string
toString(const Coord &c)
{
    return "(" + std::to_string(c.x) + "," + std::to_string(c.y) + ")";
}


} // namespace nocalert::noc
