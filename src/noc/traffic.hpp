/**
 * @file
 * Synthetic traffic generation (paper Section 5.1: uniform random at
 * various injection rates; classic permutation patterns are provided
 * for broader stress testing).
 *
 * Generation is a pure function of (node, cycle, per-node RNG stream):
 * it never observes network state, so a golden run and a fault-
 * injected run of the same seed see byte-identical packet sequences —
 * the property the golden-reference comparison rests on. Every other
 * workload backend (src/traffic) preserves the same contract.
 */

#ifndef NOCALERT_NOC_TRAFFIC_HPP
#define NOCALERT_NOC_TRAFFIC_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "noc/config.hpp"
#include "noc/flit.hpp"
#include "util/rng.hpp"

namespace nocalert::noc {

/** Spatial traffic patterns. */
enum class TrafficPattern {
    UniformRandom, ///< Destination uniform over all other nodes.
    Transpose,     ///< (x,y) -> (y,x).
    BitComplement, ///< (x,y) -> (W-1-x, H-1-y).
    Hotspot,       ///< Uniform, with extra probability mass on one node.
    Tornado,       ///< (x,y) -> ((x + W/2) mod W, y).
    Shuffle,       ///< Node-id left-rotate by one bit (power-of-two meshes).
    BitReverse,    ///< Node-id bit reversal (power-of-two meshes).
    Neighbor,      ///< (x,y) -> ((x+1) mod W, y): nearest-neighbor.
};

/** Name of a traffic pattern. */
const char *trafficPatternName(TrafficPattern pattern);

/** Inverse of trafficPatternName (nullopt for unknown names). */
std::optional<TrafficPattern> trafficPatternFromName(std::string_view name);

/**
 * Parameters of the Hotspot pattern, and only that pattern: folding
 * them into their own sub-spec keeps pattern-specific knobs out of the
 * shared TrafficSpec surface (they used to leak into every spec as
 * top-level fields). The JSON serialization still emits the legacy
 * flat `hotspot` / `hotspotFraction` keys, so old artifacts round-trip
 * unchanged.
 */
struct HotspotSpec
{
    /** Node receiving the extra probability mass. */
    NodeId node = 0;

    /** Probability a packet targets the hotspot. */
    double fraction = 0.2;

    bool operator==(const HotspotSpec &) const = default;
};

/** Traffic generator parameters. */
struct TrafficSpec
{
    TrafficPattern pattern = TrafficPattern::UniformRandom;

    /** Packet injection probability per node per cycle. */
    double injectionRate = 0.05;

    /** RNG seed; per-node streams are derived from it. */
    std::uint64_t seed = 1;

    /** Cycle at which generation stops (-1 = never). */
    Cycle stopCycle = -1;

    /**
     * Relative weights of the message classes; empty = equal weights.
     * Must match the number of classes configured on the routers.
     */
    std::vector<double> classWeights;

    /** Hotspot-pattern parameters (ignored by every other pattern). */
    HotspotSpec hotspot;

    bool operator==(const TrafficSpec &) const = default;
};

/**
 * Why @p spec cannot drive @p config (empty = valid). Every message
 * names the offending field, so a bad spec is rejected at construction
 * instead of deep inside generation.
 */
std::string validateTrafficSpec(const NetworkConfig &config,
                                const TrafficSpec &spec);

/**
 * Destination of a packet from @p node under @p pattern, consuming the
 * draws the pattern needs from @p rng. Shared by the synthetic
 * generator and the phase-program workload backend so both pick
 * byte-identical destinations from the same stream position. May
 * return @p node itself (self-directed permutation slot = idle).
 */
NodeId trafficDestination(const NetworkConfig &config,
                          TrafficPattern pattern,
                          const HotspotSpec &hotspot, NodeId node,
                          Pcg32 &rng);

/**
 * Message-class pick by @p weights (empty = equal weights), consuming
 * exactly one draw from @p rng. Shared like trafficDestination.
 */
std::uint8_t trafficMessageClass(const NetworkConfig &config,
                                 const std::vector<double> &weights,
                                 Pcg32 &rng);

/**
 * Deterministic per-node traffic source.
 *
 * Value-semantic: copying a Network copies the generator state, so a
 * snapshot resumed later produces exactly the traffic the original
 * would have.
 */
class TrafficGenerator
{
  public:
    /** Construct for @p config with parameters @p spec. */
    TrafficGenerator(const NetworkConfig &config, const TrafficSpec &spec);

    /** The parameters this generator runs with. */
    const TrafficSpec &spec() const { return spec_; }

    /**
     * Decide whether node @p node creates a packet at @p cycle, and
     * build it if so. Draws a fixed number of random values per call
     * so generator state stays aligned across runs. The Bernoulli
     * miss — the overwhelmingly common outcome at realistic rates —
     * stays inline; packet construction is out of line.
     */
    std::optional<Packet>
    generate(const NetworkConfig &config, NodeId node, Cycle cycle)
    {
        Pcg32 &rng = rngs_[static_cast<std::size_t>(node)];
        if (!rng.nextBool(spec_.injectionRate))
            return std::nullopt;
        return generateFire(config, node, cycle, rng);
    }

    /** Packets created so far (all nodes). */
    std::uint64_t packetsCreated() const { return packets_created_; }

    /**
     * True iff generation has permanently stopped by @p cycle: every
     * later generate() call returns nullopt regardless of its draws.
     * The active-set kernel then skips the draws entirely; the RNG
     * streams diverge from a dense run's, but they are never consulted
     * again, so every observable (packets, ejections, stats) is
     * unaffected.
     */
    bool
    stopped(Cycle cycle) const
    {
        return spec_.stopCycle >= 0 && cycle >= spec_.stopCycle;
    }

  private:
    std::optional<Packet> generateFire(const NetworkConfig &config,
                                       NodeId node, Cycle cycle,
                                       Pcg32 &rng);

    TrafficSpec spec_;
    std::vector<Pcg32> rngs_;            // per node
    std::vector<std::uint64_t> counts_;  // per node packet counter
    std::uint64_t packets_created_ = 0;
};

} // namespace nocalert::noc

#endif // NOCALERT_NOC_TRAFFIC_HPP
