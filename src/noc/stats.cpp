#include "noc/stats.hpp"

#include <sstream>

namespace nocalert::noc {

double
NetworkStats::avgPacketLatency() const
{
    if (packetsEjected == 0)
        return 0.0;
    return static_cast<double>(latencySum) /
           static_cast<double>(packetsEjected);
}

double
NetworkStats::throughput(int num_nodes) const
{
    if (cycles <= 0 || num_nodes <= 0)
        return 0.0;
    return static_cast<double>(flitsEjected) /
           (static_cast<double>(cycles) * num_nodes);
}

std::string
NetworkStats::summary() const
{
    std::ostringstream os;
    os << "cycles=" << cycles
       << " pkts(created/injected/ejected)=" << packetsCreated << "/"
       << packetsInjected << "/" << packetsEjected
       << " flits(in/out)=" << flitsInjected << "/" << flitsEjected
       << " avgLat=" << avgPacketLatency();
    return os.str();
}

} // namespace nocalert::noc
