/**
 * @file
 * Routing algorithms and the legality predicates the checkers use.
 *
 * Each algorithm provides (a) the routing function proper (consumed by
 * the RC pipeline stage) and (b) the functional rules it is governed
 * by — turn legality and minimality — from which the RC invariances
 * (1-3 in Table 1) are derived. The checkers deliberately do NOT
 * recompute the route (that would be modular redundancy); they only
 * test the cheap necessary conditions every legal output satisfies.
 */

#ifndef NOCALERT_NOC_ROUTING_HPP
#define NOCALERT_NOC_ROUTING_HPP

#include <memory>

#include "noc/config.hpp"
#include "noc/flit.hpp"
#include "noc/types.hpp"

namespace nocalert::noc {

/**
 * Abstract routing algorithm.
 *
 * All provided algorithms are minimal and deterministic (adaptivity,
 * where present, uses a deterministic selection function so that
 * golden-reference runs are exactly reproducible).
 */
class RoutingAlgorithm
{
  public:
    virtual ~RoutingAlgorithm() = default;

    /** Algorithm identifier. */
    virtual RoutingAlgo kind() const = 0;

    /**
     * Compute the output port for @p flit (a header) located at router
     * @p here having entered through @p in_port. Returns a port index;
     * Local when @p here is the destination.
     */
    virtual int route(const NetworkConfig &config, NodeId here,
                      const Flit &flit, int in_port) const = 0;

    /**
     * Turn legality rule (invariance 1). True iff a packet of @p flit
     * entering through @p in_port may legally leave through
     * @p out_port under this algorithm's deadlock-avoidance rules.
     * U-turns (out_port == in_port on a mesh port) are illegal for
     * every algorithm.
     */
    virtual bool legalTurn(const Flit &flit, int in_port,
                           int out_port) const = 0;

    /**
     * True iff the algorithm guarantees minimal paths, enabling the
     * non-minimal-routing invariance (3).
     */
    virtual bool minimalRequired() const { return true; }

    /**
     * Minimal-step rule (invariance 3): true iff sending the flit
     * through @p out_port from @p here strictly decreases the hop
     * distance to its destination (or ejects it at the destination).
     * Only meaningful when minimalRequired().
     */
    bool minimalStep(const NetworkConfig &config, NodeId here,
                     const Flit &flit, int out_port) const;
};

/** Instantiate a routing algorithm by id. */
std::unique_ptr<RoutingAlgorithm> makeRouting(RoutingAlgo algo);

/**
 * Dimension-ordered routing: X fully first (XY) or Y fully first (YX).
 * XY is the paper's baseline. Forbidden turns: XY forbids any
 * Y-dimension input turning to an X-dimension output; YX the converse.
 */
class DimensionOrderRouting : public RoutingAlgorithm
{
  public:
    /** @param x_first true for XY, false for YX. */
    explicit DimensionOrderRouting(bool x_first);

    RoutingAlgo kind() const override;
    int route(const NetworkConfig &config, NodeId here, const Flit &flit,
              int in_port) const override;
    bool legalTurn(const Flit &flit, int in_port,
                   int out_port) const override;

  private:
    bool x_first_;
};

/**
 * West-first turn-model routing (Glass & Ni). All westward hops are
 * taken first; afterwards the packet may move adaptively among the
 * remaining productive directions (selection here: largest remaining
 * offset, deterministic). Forbidden turns: any turn into West.
 */
class WestFirstRouting : public RoutingAlgorithm
{
  public:
    RoutingAlgo kind() const override { return RoutingAlgo::WestFirst; }
    int route(const NetworkConfig &config, NodeId here, const Flit &flit,
              int in_port) const override;
    bool legalTurn(const Flit &flit, int in_port,
                   int out_port) const override;
};

/**
 * O1Turn: each packet independently uses XY or YX, chosen by packet-id
 * parity (deterministic stand-in for the random coin of the original
 * proposal). Turn legality depends on the packet's chosen order, which
 * invariance 1 recovers from the flit's packet id.
 */
class O1TurnRouting : public RoutingAlgorithm
{
  public:
    RoutingAlgo kind() const override { return RoutingAlgo::O1Turn; }
    int route(const NetworkConfig &config, NodeId here, const Flit &flit,
              int in_port) const override;
    bool legalTurn(const Flit &flit, int in_port,
                   int out_port) const override;

    /** True iff @p flit routes X-first. */
    static bool xFirst(const Flit &flit);
};

} // namespace nocalert::noc

#endif // NOCALERT_NOC_ROUTING_HPP
