/**
 * @file
 * Routing algorithms and the legality predicates the checkers use.
 *
 * Each algorithm provides (a) the routing function proper (consumed by
 * the RC pipeline stage) and (b) the functional rules it is governed
 * by — turn legality and minimality — from which the RC invariances
 * (1-3 in Table 1) are derived. The checkers deliberately do NOT
 * recompute the route (that would be modular redundancy); they only
 * test the cheap necessary conditions every legal output satisfies.
 */

#ifndef NOCALERT_NOC_ROUTING_HPP
#define NOCALERT_NOC_ROUTING_HPP

#include <cstddef>
#include <memory>
#include <unordered_set>

#include "noc/config.hpp"
#include "noc/flit.hpp"
#include "noc/types.hpp"

namespace nocalert::noc {

/**
 * Abstract routing algorithm.
 *
 * All provided algorithms are minimal and deterministic (adaptivity,
 * where present, uses a deterministic selection function so that
 * golden-reference runs are exactly reproducible).
 */
class RoutingAlgorithm
{
  public:
    virtual ~RoutingAlgorithm() = default;

    /** Algorithm identifier. */
    virtual RoutingAlgo kind() const = 0;

    /**
     * Compute the output port for @p flit (a header) located at router
     * @p here having entered through @p in_port. Returns a port index;
     * Local when @p here is the destination.
     */
    virtual int route(const NetworkConfig &config, NodeId here,
                      const Flit &flit, int in_port) const = 0;

    /**
     * Turn legality rule (invariance 1). True iff a packet of @p flit
     * entering through @p in_port may legally leave through
     * @p out_port under this algorithm's deadlock-avoidance rules.
     * U-turns (out_port == in_port on a mesh port) are illegal for
     * every algorithm.
     */
    virtual bool legalTurn(const Flit &flit, int in_port,
                           int out_port) const = 0;

    /**
     * True iff the algorithm guarantees minimal paths, enabling the
     * non-minimal-routing invariance (3).
     */
    virtual bool minimalRequired() const { return true; }

    /**
     * Minimal-step rule (invariance 3): true iff sending the flit
     * through @p out_port from @p here strictly decreases the hop
     * distance to its destination (or ejects it at the destination).
     * Only meaningful when minimalRequired().
     */
    bool minimalStep(const NetworkConfig &config, NodeId here,
                     const Flit &flit, int out_port) const;

    /**
     * Mark output port @p port of router @p node quarantined. Only
     * quarantine-aware algorithms (QAdaptive) consult the set; for the
     * others this is inert bookkeeping. Quarantine is runtime state of
     * the routing instance — a Network copy recreates its routing and
     * therefore starts with an empty quarantine set.
     */
    void quarantine(NodeId node, int port);

    /** True iff (node, port) has been quarantined. */
    bool isQuarantined(NodeId node, int port) const;

    /** Number of quarantined (node, port) pairs. */
    std::size_t quarantinedCount() const { return quarantined_.size(); }

    /** Lift every quarantine. */
    void clearQuarantine() { quarantined_.clear(); }

  private:
    std::unordered_set<long long> quarantined_;
};

/** Instantiate a routing algorithm by id. */
std::unique_ptr<RoutingAlgorithm> makeRouting(RoutingAlgo algo);

/**
 * Dimension-ordered routing: X fully first (XY) or Y fully first (YX).
 * XY is the paper's baseline. Forbidden turns: XY forbids any
 * Y-dimension input turning to an X-dimension output; YX the converse.
 */
class DimensionOrderRouting : public RoutingAlgorithm
{
  public:
    /** @param x_first true for XY, false for YX. */
    explicit DimensionOrderRouting(bool x_first);

    RoutingAlgo kind() const override;
    int route(const NetworkConfig &config, NodeId here, const Flit &flit,
              int in_port) const override;
    bool legalTurn(const Flit &flit, int in_port,
                   int out_port) const override;

  private:
    bool x_first_;
};

/**
 * West-first turn-model routing (Glass & Ni). All westward hops are
 * taken first; afterwards the packet may move adaptively among the
 * remaining productive directions (selection here: largest remaining
 * offset, deterministic). Forbidden turns: any turn into West.
 */
class WestFirstRouting : public RoutingAlgorithm
{
  public:
    RoutingAlgo kind() const override { return RoutingAlgo::WestFirst; }
    int route(const NetworkConfig &config, NodeId here, const Flit &flit,
              int in_port) const override;
    bool legalTurn(const Flit &flit, int in_port,
                   int out_port) const override;
};

/**
 * O1Turn: each packet independently uses XY or YX, chosen by packet-id
 * parity (deterministic stand-in for the random coin of the original
 * proposal). Turn legality depends on the packet's chosen order, which
 * invariance 1 recovers from the flit's packet id.
 */
class O1TurnRouting : public RoutingAlgorithm
{
  public:
    RoutingAlgo kind() const override { return RoutingAlgo::O1Turn; }
    int route(const NetworkConfig &config, NodeId here, const Flit &flit,
              int in_port) const override;
    bool legalTurn(const Flit &flit, int in_port,
                   int out_port) const override;

    /** True iff @p flit routes X-first. */
    static bool xFirst(const Flit &flit);
};

/**
 * Quarantine-aware adaptive routing for fault recovery.
 *
 * Built on the west-first turn model so it stays deadlock-free even
 * when taking non-minimal detours: all westward hops are taken first
 * (mandatory — turning into West is the forbidden turn, so no legal
 * detour around a quarantined West port exists); once west progress is
 * done the packet prefers the exact XY choice, falling through to the
 * other productive direction and then to non-minimal North/South
 * escape hops when the preferred ports are quarantined. East is never
 * taken when dx == 0 (overshooting would require a forbidden west
 * hop later). With an empty quarantine set the selected port is
 * exactly XY's, so fault-free traffic is undisturbed. Because escapes
 * are non-minimal, minimalRequired() is false and invariance 3 is
 * disarmed for this algorithm.
 */
class QAdaptiveRouting : public RoutingAlgorithm
{
  public:
    RoutingAlgo kind() const override { return RoutingAlgo::QAdaptive; }
    int route(const NetworkConfig &config, NodeId here, const Flit &flit,
              int in_port) const override;
    bool legalTurn(const Flit &flit, int in_port,
                   int out_port) const override;
    bool minimalRequired() const override { return false; }
};

} // namespace nocalert::noc

#endif // NOCALERT_NOC_ROUTING_HPP
