#include "noc/buffer.hpp"

#include "util/log.hpp"

namespace nocalert::noc {

VcFifo::VcFifo(unsigned depth)
    : slots_(depth), depth_(depth)
{
    NOCALERT_ASSERT(depth >= 1, "FIFO depth must be positive");
}

bool
VcFifo::push(const Flit &flit)
{
    if (full())
        return false;
    slots_[(head_ + count_) % depth_] = flit;
    ++count_;
    return true;
}

Flit
VcFifo::pop()
{
    Flit flit = slots_[head_];
    if (count_ > 0) {
        head_ = (head_ + 1) % depth_;
        --count_;
    }
    return flit;
}

const Flit &
VcFifo::peek(unsigned offset) const
{
    return slots_[(head_ + offset) % depth_];
}

void
VcFifo::clear()
{
    head_ = 0;
    count_ = 0;
}

unsigned
VcFifo::removePacket(PacketId id)
{
    unsigned kept = 0;
    unsigned removed = 0;
    for (unsigned i = 0; i < count_; ++i) {
        const Flit flit = slots_[(head_ + i) % depth_];
        if (flit.packet == id) {
            ++removed;
        } else {
            slots_[(head_ + kept) % depth_] = flit;
            ++kept;
        }
    }
    count_ = kept;
    return removed;
}

const char *
vcStateName(VcState state)
{
    switch (state) {
      case VcState::Idle: return "Idle";
      case VcState::RouteWait: return "RouteWait";
      case VcState::VcAllocWait: return "VcAllocWait";
      case VcState::Active: return "Active";
    }
    return "?";
}

void
VcRecord::reset()
{
    state = VcState::Idle;
    outPort = kInvalidPort;
    outVc = -1;
    msgClass = 0;
    flitsArrived = 0;
    expectedLength = 0;
    lastWrittenType = FlitType::Tail;
    tailArrived = false;
    packet = kInvalidPacket;
}

} // namespace nocalert::noc
