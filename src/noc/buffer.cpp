#include "noc/buffer.hpp"

#include "util/log.hpp"

namespace nocalert::noc {

VcFifo::VcFifo(unsigned depth)
    : slots_(depth), depth_(depth)
{
    NOCALERT_ASSERT(depth >= 1, "FIFO depth must be positive");
}

void
VcFifo::clear()
{
    head_ = 0;
    count_ = 0;
}

unsigned
VcFifo::removePacket(PacketId id)
{
    unsigned kept = 0;
    unsigned removed = 0;
    for (unsigned i = 0; i < count_; ++i) {
        const Flit flit = slots_[(head_ + i) % depth_];
        if (flit.packet == id) {
            ++removed;
        } else {
            slots_[(head_ + kept) % depth_] = flit;
            ++kept;
        }
    }
    count_ = kept;
    return removed;
}

const char *
vcStateName(VcState state)
{
    switch (state) {
      case VcState::Idle: return "Idle";
      case VcState::RouteWait: return "RouteWait";
      case VcState::VcAllocWait: return "VcAllocWait";
      case VcState::Active: return "Active";
    }
    return "?";
}


} // namespace nocalert::noc
