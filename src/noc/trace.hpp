/**
 * @file
 * Human-readable event tracing for debugging router behaviour.
 *
 * A TraceRecorder attaches to a network as (one of) its observers and
 * converts the per-cycle wire records into a compact textual event
 * stream: flit movements, pipeline-stage completions, allocations,
 * and credit returns. Filters keep the output focused on a router,
 * a packet, or a cycle window.
 *
 * This is developer tooling: the fault campaign never uses it, but
 * diagnosing *why* a particular injected fault cascaded the way it
 * did is much faster with a trace of the cycles around the injection.
 */

#ifndef NOCALERT_NOC_TRACE_HPP
#define NOCALERT_NOC_TRACE_HPP

#include <functional>
#include <string>
#include <vector>

#include "noc/interface.hpp"
#include "noc/router.hpp"
#include "noc/signals.hpp"

namespace nocalert::noc {

/** Categories of trace events. */
enum class TraceKind : std::uint8_t {
    BufferWrite, ///< Flit written into an input VC.
    RcDone,      ///< Routing computed for a VC.
    VaGrant,     ///< Output VC allocated.
    SaGrant,     ///< Switch traversal granted.
    FlitOut,     ///< Flit left through an output port.
    Eject,       ///< Flit delivered to the local NI.
    Inject,      ///< Flit entered from the local NI.
    Credit,      ///< Credit returned upstream.
};

/** Name of a trace kind. */
const char *traceKindName(TraceKind kind);

/** One trace event. */
struct TraceEvent
{
    TraceKind kind = TraceKind::BufferWrite;
    Cycle cycle = 0;
    NodeId router = kInvalidNode;
    int port = -1;
    int vc = -1;
    Flit flit; ///< Valid for flit-carrying events.

    /** Single-line rendering, e.g. "c=120 r5 SA p=E vc=2 pkt=7.3". */
    std::string toString() const;
};

/** Event filter; return true to keep the event. */
using TraceFilter = std::function<bool(const TraceEvent &)>;

/** Collects (and optionally filters) events from a network. */
class TraceRecorder
{
  public:
    TraceRecorder() = default;

    /** Keep only events accepted by @p filter. */
    void setFilter(TraceFilter filter) { filter_ = std::move(filter); }

    /** Bound memory use: keep at most @p limit events (0 = unlimited,
     *  older events are dropped first when bounded). */
    void setLimit(std::size_t limit) { limit_ = limit; }

    /** Feed one router cycle (compose into the network observer). */
    void observeRouter(const Router &router, const RouterWires &wires);

    /** Feed one NI cycle. */
    void observeNi(const NetworkInterface &ni, const NiWires &wires);

    /** Recorded events in order. */
    const std::vector<TraceEvent> &events() const { return events_; }

    /** Drop all events. */
    void clear() { events_.clear(); }

    /** Render all events, one per line. */
    std::string dump() const;

    // ---- Convenience filters ----

    /** Keep events of one router. */
    static TraceFilter routerFilter(NodeId node);

    /** Keep events of one packet. */
    static TraceFilter packetFilter(PacketId packet);

    /** Keep events inside [first, last]. */
    static TraceFilter windowFilter(Cycle first, Cycle last);

  private:
    void record(TraceEvent event);

    TraceFilter filter_;
    std::size_t limit_ = 0;
    std::vector<TraceEvent> events_;
};

} // namespace nocalert::noc

#endif // NOCALERT_NOC_TRACE_HPP
