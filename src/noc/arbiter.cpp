#include "noc/arbiter.hpp"

#include "util/bits.hpp"
#include "util/log.hpp"

namespace nocalert::noc {

RoundRobinArbiter::RoundRobinArbiter(unsigned num_clients)
    : num_clients_(num_clients)
{
    NOCALERT_ASSERT(num_clients >= 1 && num_clients <= 64,
                    "arbiter clients out of range: ", num_clients);
}

MatrixArbiter::MatrixArbiter(unsigned num_clients)
    : num_clients_(num_clients)
{
    NOCALERT_ASSERT(num_clients >= 1 && num_clients <= 16,
                    "matrix arbiter clients out of range: ", num_clients);
    // Initial total order: lower index beats higher index.
    for (unsigned i = 0; i < num_clients_; ++i)
        for (unsigned j = i + 1; j < num_clients_; ++j)
            matrix_[i] = setBit(matrix_[i], j);
}

std::uint64_t
MatrixArbiter::arbitrate(std::uint64_t requests)
{
    requests &= lowMask(num_clients_);
    if (requests == 0)
        return 0;

    for (unsigned i = 0; i < num_clients_; ++i) {
        if (!getBit(requests, i))
            continue;
        // Client i wins iff no other requester has priority over it.
        bool beaten = false;
        for (unsigned j = 0; j < num_clients_ && !beaten; ++j) {
            if (j != i && getBit(requests, j) && getBit(matrix_[j], i))
                beaten = true;
        }
        if (!beaten) {
            // Winner drops priority against everyone.
            for (unsigned j = 0; j < num_clients_; ++j) {
                if (j != i) {
                    matrix_[i] = clearBit(matrix_[i], j);
                    matrix_[j] = setBit(matrix_[j], i);
                }
            }
            return 1ULL << i;
        }
    }
    return 0; // unreachable for a consistent priority matrix
}

bool
MatrixArbiter::hasPriority(unsigned row, unsigned col) const
{
    return getBit(matrix_[row], col);
}

} // namespace nocalert::noc
