/**
 * @file
 * Struct-of-arrays packed router state for the bitmask kernel.
 *
 * The branchy per-object pipeline walks five ports times numVcs VC
 * records, arbiters, and checker instances every cycle. The bitmask
 * kernel instead keeps one word per *kind* of state — a 64-bit mask
 * over the router's flattened (port, vc) slots per VC pipeline stage,
 * one 5-bit word of scheduled crossbar reads — and evaluates both the
 * pipeline and the Table-1 invariant catalog as bitwise operations
 * over those words. A healthy router's cycle then touches only the
 * set bits; the 32 checker outcomes collapse into one `uint32_t`
 * violation mask per router per cycle (see PackedCycleEvents).
 *
 * The packing is a *cache*, not a second source of truth: the masks
 * are derived from the architectural VC records and re-derivable at
 * any time (Router::recomputePacked). Whenever state changes behind
 * the kernel's back — direct mutation through Network::router(),
 * recovery purges, kernel switches — the cache is marked stale and
 * lazily rebuilt. Anything the masks cannot prove healthy (the
 * `suspect` mask, a non-idle `suspectOut` table) routes the router
 * back through the branchy pipeline + full checker bank, so fault
 * behaviour is bit-identical to the dense kernel by construction.
 */

#ifndef NOCALERT_NOC_PACKED_HPP
#define NOCALERT_NOC_PACKED_HPP

#include <array>
#include <cstdint>

#include "noc/signals.hpp"
#include "noc/types.hpp"

namespace nocalert::noc {

/**
 * Packed mirror of one router's VC pipeline state.
 *
 * Bit i of each mask is the flattened slot port * numVcs + vc — the
 * same flattening the router's own record/fifo arrays use, at most
 * 5 * 8 = 40 bits. A slot appears in at most one of the three stage
 * masks (Idle slots appear in none); `suspect` marks slots whose
 * state would trip a continuous consistency checker (invariants 2,
 * 17, 19 over the pre-cycle snapshot) and therefore disqualifies the
 * whole router from the fast path.
 */
struct PackedRouterState
{
    std::uint64_t routeWait = 0;   ///< Slots in VcState::RouteWait.
    std::uint64_t vcAllocWait = 0; ///< Slots in VcState::VcAllocWait.
    std::uint64_t active = 0;      ///< Slots in VcState::Active.
    std::uint64_t suspect = 0;     ///< Slots failing a continuous check.

    /** Ports with a valid SA->ST schedule entry (bit = port). */
    std::uint32_t schedPorts = 0;

    /**
     * Output-VC allocation table fails the extended (group-9)
     * consistency check. Only maintained when extendedChecks is on;
     * always false otherwise.
     */
    bool suspectOut = false;

    /** Masks no longer reflect the router; rebuild before use. */
    bool stale = true;

    /**
     * Packed equivalent of Router::quiescent(): every record Idle,
     * every buffer empty, no read scheduled. A suspect slot is by
     * definition non-Idle or non-empty, so it participates; the
     * extended-table flag does not (quiescent() ignores out-VC
     * allocations, which persist without needing evaluation).
     */
    bool
    quiescentPacked() const
    {
        return (routeWait | vcAllocWait | active | suspect) == 0 &&
               schedPorts == 0;
    }
};

/**
 * Invariant codes a fast-path evaluation can emit.
 *
 * The noc layer cannot name core::InvariantId (layering), so the
 * codes are numerically equal to the Table-1 invariant numbers; the
 * core-side alert matrix (core/alert_matrix.hpp) static-asserts the
 * correspondence and expands events into engine assertions. Only the
 * checks the fast path cannot rule out by construction appear here:
 * routing-computation outputs depend on the routing algorithm and on
 * (possibly stale) buffer heads, and a local ejection can carry a
 * misrouted destination; every other Table-1 checker is provably
 * silent under the fast path's eligibility screen.
 */
enum class PackedCheck : std::uint8_t {
    IllegalTurn = 1,
    InvalidRcOutput = 2,
    NonMinimalRoute = 3,
    RcOnNonHeaderFlit = 20,
    RcOnEmptyVc = 21,
    EjectionAtWrongDestination = 32,
};

/** One fast-path checker fire: code plus (port, vc) tags. */
struct PackedViolation
{
    PackedCheck check = PackedCheck::IllegalTurn;
    std::int8_t port = -1;
    std::int8_t vc = -1;
};

/**
 * Upper bound on fast-path fires in one router-cycle: each of the
 * five RC units can emit at most three codes, plus one ejection
 * check.
 */
inline constexpr unsigned kMaxPackedViolations = 16;

/**
 * Everything one fast-path router evaluation reports: the per-router
 * violation word (bit id-1 set iff invariant id fired — the paper's
 * one-wire-per-checker alert bundle) and the individual fires in the
 * exact order the branchy checker bank would have emitted them.
 */
struct PackedCycleEvents
{
    Cycle cycle = 0;
    NodeId router = kInvalidNode;

    /** Violation bitmask: bit (id - 1) per Table-1 invariant id. */
    std::uint32_t mask = 0;

    unsigned count = 0;
    std::array<PackedViolation, kMaxPackedViolations> items{};

    /** Record one fire (order of calls = checker emission order). */
    void
    fire(PackedCheck check, int port, int vc)
    {
        mask |= 1u << (static_cast<unsigned>(check) - 1u);
        if (count < kMaxPackedViolations) {
            items[count++] = {check, static_cast<std::int8_t>(port),
                              static_cast<std::int8_t>(vc)};
        }
    }
};

/**
 * Reusable VA scratch for fast-path evaluations (one per network,
 * not per router: cleared via the touched list after each use).
 * Indexed by output slot o * kMaxVcs + w.
 */
struct PackedScratch
{
    /** VA2 request word per output VC slot. */
    std::array<std::uint64_t, kNumPorts * kMaxVcs> va2Req{};

    /** Output VC slots with at least one request this evaluation. */
    std::array<std::uint8_t, kNumPorts * kMaxVcs> touched{};
    unsigned numTouched = 0;
};

} // namespace nocalert::noc

#endif // NOCALERT_NOC_PACKED_HPP
