/**
 * @file
 * Bitmask-kernel fast path of the router (see packed.hpp).
 *
 * evaluateFast() re-implements one pipeline cycle as sparse bitmask
 * iteration over the packed state words, with no RouterWires record,
 * no per-VC snapshots, and no branchy checker bank. Exactness rests
 * on the eligibility screen plus a handful of lemmas about the
 * branchy pipeline, each noted at the relevant stage:
 *
 *  - ST unconditionally consumes every valid schedule entry, so
 *    during SA1 request building the "pending read" count is always
 *    zero — the schedule register was cleared this very cycle.
 *  - RoundRobinArbiter::commit is a no-op unless the grant is
 *    one-hot, and compute() of a non-zero request vector is always
 *    one-hot, so skipping compute+commit entirely when a request
 *    word is zero is exact (pointer untouched either way).
 *  - Clean arbiter outputs (grant subseteq requests, one-hot) can
 *    never trip the arbiter/VA/SA/crossbar/buffer checker groups
 *    when the screen's preconditions hold, so only the RC codes and
 *    the ejection-destination check need inline evaluation.
 *  - Interleaving compute and commit per arbiter instance is exact
 *    because computes read only the pre-built request words and the
 *    instance's own pointer — with one exception the code preserves:
 *    all VA1 candidate selections are computed before any VA2 commit
 *    (a commit flips `free` bits VA1 reads), and all RC waiting
 *    masks are latched before any RC serve.
 */

#include "noc/packed.hpp"
#include "noc/router.hpp"
#include "util/bits.hpp"

namespace nocalert::noc {

namespace {

/**
 * Continuous-consistency predicate of one input VC: true iff the
 * branchy bank's group-8 checkers (invariants 2, 17, 19 over the
 * pre-cycle snapshot) would fire for this record/buffer pair. The
 * packed `suspect` mask is exactly the set of slots where this holds.
 */
bool
vcSuspect(const NetworkConfig &config, NodeId node, const VcRecord &rec,
          const VcFifo &fifo, unsigned num_vcs)
{
    const bool routed = rec.state == VcState::VcAllocWait ||
                        rec.state == VcState::Active;
    if (routed) {
        const bool ok = rec.outPort >= 0 && rec.outPort < kNumPorts &&
                        config.portConnected(node, rec.outPort);
        if (!ok)
            return true;
    }
    if (rec.state == VcState::Active &&
        (rec.outVc < 0 || rec.outVc >= static_cast<int>(num_vcs)))
        return true;
    if (rec.state == VcState::RouteWait ||
        rec.state == VcState::VcAllocWait) {
        if (fifo.empty() || !isHead(fifo.peek(0).type))
            return true;
    }
    if (rec.state == VcState::Idle && fifo.size() > 0)
        return true;
    return false;
}

} // namespace

bool
Router::outVcTableConsistent() const
{
    const unsigned num_vcs = params_.numVcs;
    for (int o = 0; o < kNumPorts; ++o) {
        for (unsigned w = 0; w < num_vcs; ++w) {
            const OutVcState &ov = outVcs_[vcIndex(o, w)];
            if (ov.free)
                continue;
            bool consistent = ov.ownerPort >= 0 &&
                              ov.ownerPort < kNumPorts &&
                              ov.ownerVc >= 0 &&
                              ov.ownerVc < static_cast<int>(num_vcs);
            if (consistent) {
                const VcRecord &owner = records_[vcIndex(
                    ov.ownerPort,
                    static_cast<unsigned>(ov.ownerVc))];
                consistent = owner.state == VcState::Active &&
                             owner.outPort == o &&
                             owner.outVc == static_cast<int>(w);
            }
            if (!consistent)
                return false;
        }
    }
    return true;
}

void
Router::recomputePacked(const NetworkConfig &config,
                        PackedRouterState &ps) const
{
    ps = PackedRouterState{};
    ps.stale = false;
    const unsigned num_vcs = params_.numVcs;
    for (int p = 0; p < kNumPorts; ++p) {
        if (sched_[p].valid)
            ps.schedPorts |= 1u << static_cast<unsigned>(p);
        for (unsigned v = 0; v < num_vcs; ++v) {
            const unsigned i = vcIndex(p, v);
            const VcRecord &rec = records_[i];
            switch (rec.state) {
            case VcState::RouteWait:
                ps.routeWait = setBit(ps.routeWait, i);
                break;
            case VcState::VcAllocWait:
                ps.vcAllocWait = setBit(ps.vcAllocWait, i);
                break;
            case VcState::Active:
                ps.active = setBit(ps.active, i);
                break;
            case VcState::Idle:
                break;
            }
            if (vcSuspect(config, node_, rec, fifos_[i], num_vcs))
                ps.suspect = setBit(ps.suspect, i);
        }
    }
    if (params_.extendedChecks)
        ps.suspectOut = !outVcTableConsistent();
}

bool
Router::evaluateFast(const Context &ctx, Cycle cycle, LinkIo &io,
                     PackedRouterState &ps, PackedScratch &scratch,
                     PackedCycleEvents &ev)
{
    const unsigned num_vcs = params_.numVcs;
    const auto depth = static_cast<std::uint8_t>(params_.bufferDepth);
    const unsigned num_classes =
        static_cast<unsigned>(params_.classes.size());
    const std::uint64_t vc_mask = lowMask(num_vcs);
    const std::uint64_t vc_sel_mask = lowMask(bitsFor(num_vcs));
    const std::uint32_t port_mask =
        static_cast<std::uint32_t>(lowMask(kNumPorts));

    ev.cycle = cycle;
    ev.router = node_;
    ev.mask = 0;
    ev.count = 0;

    // ================================================================
    // Eligibility screen — strictly read-only. Anything a Table-1
    // checker might fire on (beyond the inline RC/ejection codes)
    // bounces the router to the branchy pipeline instead.
    // ================================================================
    if (ps.suspect != 0 || ps.suspectOut)
        return false;

    // Scheduled crossbar reads must be well-formed: a one-hot row with
    // no output collisions (crossbar invariants 14-16), a non-empty
    // buffer (invariant 24), and an Active record (whose tail release
    // is then guaranteed valid by the absent suspect bits).
    std::uint32_t used_outputs = 0;
    for (std::uint32_t m = ps.schedPorts; m != 0;) {
        const int p = lowestSetBit(m);
        m = static_cast<std::uint32_t>(clearBit(m, static_cast<unsigned>(p)));
        const XbarSchedule &entry = sched_[p];
        const unsigned v = entry.vc % num_vcs;
        const std::uint32_t row =
            entry.rowMask & port_mask;
        if (!isOneHot(row) || (used_outputs & row) != 0)
            return false;
        used_outputs |= row;
        const unsigned i = vcIndex(p, v);
        if (fifos_[i].empty() || records_[i].state != VcState::Active)
            return false;
    }

    // Arriving flits must pass every buffer-write invariant (18,
    // 25-28). The screen mirrors the checker conditions exactly, on
    // the same pre-cycle state the snapshots would have captured.
    for (std::uint32_t pm = io.inMask; pm != 0;) {
        const int p = lowestSetBit(pm);
        pm = static_cast<std::uint32_t>(
            clearBit(pm, static_cast<unsigned>(p)));
        const Flit &flit = io.inFlit[p];
        const unsigned sel = flit.vc & vc_sel_mask;
        if (sel >= num_vcs)
            continue; // demux drops the flit; no write occurs
        const unsigned i = vcIndex(p, sel);
        const VcRecord &rec = records_[i];
        const unsigned occ = fifos_[i].size();
        const bool head = isHead(flit.type);
        if (occ >= depth)
            return false; // invariant 25
        if (rec.state == VcState::Idle && !head)
            return false; // invariant 18
        if (params_.atomicBuffers) {
            if (head && (rec.state != VcState::Idle || occ > 0))
                return false; // invariant 26
        } else {
            const bool stream_open =
                rec.flitsArrived > 0 && !rec.tailArrived;
            if (head && stream_open)
                return false; // invariant 27
            if (!head && !stream_open && occ > 0)
                return false; // invariant 27
        }
        const unsigned expected = head
            ? (flit.msgClass < num_classes
                   ? params_.classLength(flit.msgClass) : 0)
            : rec.expectedLength;
        const unsigned count = head ? 1 : rec.flitsArrived + 1;
        if (expected != 0 &&
            (isTail(flit.type) ? count != expected : count >= expected))
            return false; // invariant 28
    }

    // ================================================================
    // Commit — stages in the branchy pipeline's order. From here on
    // the evaluation always completes.
    // ================================================================

    // ---- Credits (applyCredits, fed from the link wires) ----
    for (int o = 0; o < kNumPorts; ++o) {
        std::uint64_t mask = io.creditIn[o] & vc_mask;
        while (mask != 0) {
            const unsigned v =
                static_cast<unsigned>(lowestSetBit(mask));
            mask = clearBit(mask, v);
            OutVcState &ov = outVcs_[vcIndex(o, v)];
            if (ov.credits < depth)
                ++ov.credits;
        }
    }

    // ---- ST: drain the schedule register through the crossbar ----
    bool eject_wrong = false;
    for (std::uint32_t m = ps.schedPorts; m != 0;) {
        const int p = lowestSetBit(m);
        m = static_cast<std::uint32_t>(clearBit(m, static_cast<unsigned>(p)));
        XbarSchedule &entry = sched_[p];
        const unsigned v = entry.vc % num_vcs;
        const unsigned i = vcIndex(p, v);
        VcFifo &fifo = fifos_[i];
        VcRecord &rec = records_[i];

        const int o = lowestSetBit(
            entry.rowMask & port_mask);
        // Read the head straight into the output register and advance
        // (pop() minus one flit copy; the buffer was screened
        // non-empty).
        Flit &flit = io.outFlit[o];
        flit = fifo.peek(0);
        fifo.dropHead();
        io.creditOut[p] = static_cast<std::uint32_t>(
            setBit(io.creditOut[p], v));
        io.creditOutMask |= static_cast<std::uint8_t>(1u << p);
        flit.vc = entry.outVcWire;
        io.outValid[o] = true;
        io.outMask |= static_cast<std::uint8_t>(1u << o);
        if (o == portIndex(Port::Local)) {
            // Invariant 32 is the only checker that can observe a
            // fast-path ejection; the branchy bank fires it last, so
            // record it and emit after the RC codes.
            if (isHead(flit.type) && flit.dst != node_)
                eject_wrong = true;
        }

        if (isTail(flit.type)) {
            if (rec.outPort >= 0 && rec.outPort < kNumPorts &&
                rec.outVc >= 0 &&
                rec.outVc < static_cast<int>(num_vcs)) {
                OutVcState &ov = outVcs_[vcIndex(
                    rec.outPort, static_cast<unsigned>(rec.outVc))];
                ov.free = true;
                ov.ownerPort = -1;
                ov.ownerVc = -1;
            }
            ps.active = clearBit(ps.active, i);
            if (fifo.empty()) {
                rec.reset();
            } else {
                rec.state = VcState::RouteWait;
                rec.outPort = kInvalidPort;
                rec.outVc = -1;
                rec.packet = fifo.peek(0).packet;
                ps.routeWait = setBit(ps.routeWait, i);
                // Residue whose new head is not a header: RC may
                // examine it this very cycle (handled inline below)
                // and the continuous checkers fire from next cycle
                // on — mark suspect so the router goes branchy.
                if (!isHead(fifo.peek(0).type))
                    ps.suspect = setBit(ps.suspect, i);
            }
        }
        entry = XbarSchedule{};
    }
    ps.schedPorts = 0;

    // ---- SA: switch arbitration over the active mask ----
    const auto do_sa = [&]() {
        if (ps.active == 0)
            return;
        // sa1_winner[p] is read only for granted ports, and a port can
        // only be granted if it requested (grant subseteq requests),
        // which always stores the winner first — no init needed.
        std::array<int, kNumPorts> sa1_winner;
        std::array<std::uint64_t, kNumPorts> sa2_req = {};
        std::uint32_t sa2_any = 0;
        for (int p = 0; p < kNumPorts; ++p) {
            std::uint64_t port_active =
                (ps.active >> (static_cast<unsigned>(p) * num_vcs)) &
                vc_mask;
            std::uint64_t requests = 0;
            while (port_active != 0) {
                const unsigned v = static_cast<unsigned>(
                    lowestSetBit(port_active));
                port_active = clearBit(port_active, v);
                const unsigned i = vcIndex(p, v);
                if (fifos_[i].empty())
                    continue; // nothing unscheduled (pending == 0)
                const VcRecord &rec = records_[i];
                // Non-suspect Active records have in-range routes.
                const OutVcState &ov = outVcs_[vcIndex(
                    rec.outPort, static_cast<unsigned>(rec.outVc))];
                if (ov.credits == 0)
                    continue; // downstream buffer full
                requests = setBit(requests, v);
            }
            if (requests == 0)
                continue;
            const std::uint64_t grant = RoundRobinArbiter::compute(
                requests, sa1Arb_[p].pointer(), num_vcs);
            sa1Arb_[p].commit(grant);
            const int v = lowestSetBit(grant);
            sa1_winner[p] = v;
            const int o = records_[vcIndex(
                p, static_cast<unsigned>(v))].outPort;
            sa2_req[o] = setBit(sa2_req[o], static_cast<unsigned>(p));
            sa2_any |= 1u << static_cast<unsigned>(o);
        }
        for (std::uint32_t m = sa2_any; m != 0;) {
            const int o = lowestSetBit(m);
            m = static_cast<std::uint32_t>(
                clearBit(m, static_cast<unsigned>(o)));
            const std::uint64_t grant = RoundRobinArbiter::compute(
                sa2_req[o], sa2Arb_[o].pointer(), kNumPorts);
            sa2Arb_[o].commit(grant);
            const int p = lowestSetBit(grant);
            const unsigned v = static_cast<unsigned>(sa1_winner[p]);
            const VcRecord &rec = records_[vcIndex(p, v)];

            XbarSchedule &entry = sched_[p];
            entry.valid = true;
            entry.vc = static_cast<std::uint8_t>(v);
            entry.rowMask = static_cast<std::uint32_t>(
                setBit(entry.rowMask, static_cast<unsigned>(o)));
            entry.outVcWire = vcWireValue(rec.outVc);
            ps.schedPorts |= 1u << static_cast<unsigned>(p);

            const std::uint8_t vcw = entry.outVcWire;
            if (vcw < num_vcs) {
                OutVcState &ov = outVcs_[vcIndex(o, vcw)];
                if (ov.credits > 0)
                    --ov.credits;
            }
        }
    };

    // ---- VA: virtual-channel allocation over the waiting mask ----
    const auto do_va = [&]() {
        if (ps.vcAllocWait == 0)
            return;
        scratch.numTouched = 0;
        // VA1 for every waiting slot first: commits below flip `free`
        // bits that VA1 candidate selection reads.
        for (std::uint64_t m = ps.vcAllocWait; m != 0;) {
            const unsigned i = static_cast<unsigned>(lowestSetBit(m));
            m = clearBit(m, i);
            const int p = static_cast<int>(i / num_vcs);
            const unsigned v = i % num_vcs;
            const VcRecord &rec = records_[i];
            const int o = rec.outPort; // in range: slot not suspect
            const unsigned cls =
                rec.msgClass < num_classes ? rec.msgClass : 0;

            // vcClass() = floor(w * C / V) is monotone in w, so class
            // cls owns the contiguous VC range [lo, hi) — iterate it
            // directly instead of classifying every VC.
            const unsigned lo = num_classes != 0
                ? (cls * num_vcs + num_classes - 1) / num_classes : 0;
            const unsigned hi = num_classes != 0
                ? ((cls + 1) * num_vcs + num_classes - 1) / num_classes
                : num_vcs;
            std::uint64_t candidates = 0;
            for (unsigned w = lo; w < hi; ++w) {
                const OutVcState &ov = outVcs_[vcIndex(o, w)];
                if (!ov.free)
                    continue;
                if (params_.atomicBuffers ? ov.credits != depth
                                          : ov.credits == 0)
                    continue;
                candidates = setBit(candidates, w);
            }
            const std::uint64_t sel = RoundRobinArbiter::compute(
                candidates, va1Ptr_[i], num_vcs);
            if (sel == 0)
                continue;
            const unsigned w = static_cast<unsigned>(lowestSetBit(sel));
            const unsigned slot =
                static_cast<unsigned>(o) * kMaxVcs + w;
            if (scratch.va2Req[slot] == 0)
                scratch.touched[scratch.numTouched++] =
                    static_cast<std::uint8_t>(slot);
            scratch.va2Req[slot] =
                setBit(scratch.va2Req[slot], vaClient(p, v));
        }
        // VA2 per requested output VC. Commit order across slots is
        // immaterial: every client requested exactly one slot, and
        // each commit touches only its own arbiter, winner, and
        // out-VC entry.
        for (unsigned t = 0; t < scratch.numTouched; ++t) {
            const unsigned slot = scratch.touched[t];
            const int o = static_cast<int>(slot / kMaxVcs);
            const unsigned w = slot % kMaxVcs;
            const std::uint64_t requests = scratch.va2Req[slot];
            scratch.va2Req[slot] = 0;
            RoundRobinArbiter &arb = va2Arb_[vcIndex(o, w)];
            const std::uint64_t grant = RoundRobinArbiter::compute(
                requests, arb.pointer(), kNumPorts * kMaxVcs);
            arb.commit(grant);
            const int client = lowestSetBit(grant);
            const int p = client / static_cast<int>(kMaxVcs);
            const unsigned v = static_cast<unsigned>(client) % kMaxVcs;
            const unsigned i = vcIndex(p, v);
            VcRecord &rec = records_[i];
            rec.outVc = static_cast<int>(w);
            rec.state = VcState::Active;
            va1Ptr_[i] = static_cast<std::uint8_t>((w + 1) % num_vcs);

            OutVcState &ov = outVcs_[vcIndex(o, w)];
            ov.free = false;
            ov.ownerPort = p;
            ov.ownerVc = static_cast<int>(v);

            ps.vcAllocWait = clearBit(ps.vcAllocWait, i);
            ps.active = setBit(ps.active, i);
        }
    };

    if (params_.speculative) {
        do_va();
        do_sa();
    } else {
        do_sa();
        do_va();
    }

    // ---- BW: commit arriving flits (screened clean above) ----
    for (std::uint32_t pm = io.inMask; pm != 0;) {
        const int p = lowestSetBit(pm);
        pm = static_cast<std::uint32_t>(
            clearBit(pm, static_cast<unsigned>(p)));
        const Flit &flit = io.inFlit[p];
        const unsigned sel = flit.vc & vc_sel_mask;
        if (sel >= num_vcs)
            continue;
        const unsigned i = vcIndex(p, sel);
        VcRecord &rec = records_[i];
        fifos_[i].push(flit); // cannot fail: occupancy screened
        rec.lastWrittenType = flit.type;
        if (isHead(flit.type)) {
            rec.flitsArrived = 1;
            rec.tailArrived = isTail(flit.type);
            rec.expectedLength =
                flit.msgClass < params_.classes.size()
                    ? params_.classLength(flit.msgClass) : 0;
            if (rec.state == VcState::Idle) {
                rec.state = VcState::RouteWait;
                rec.outPort = kInvalidPort;
                rec.outVc = -1;
                rec.msgClass = flit.msgClass;
                rec.packet = flit.packet;
                ps.routeWait = setBit(ps.routeWait, i);
            }
        } else {
            ++rec.flitsArrived;
            if (isTail(flit.type))
                rec.tailArrived = true;
        }
    }

    // ---- RC: serve one route-waiting VC per input port ----
    // Latch all waiting masks before any serve (the branchy pipeline
    // builds every rcWaiting word first); serves on different ports
    // are independent.
    const std::uint64_t route_wait_latched = ps.routeWait;
    for (int p = 0; route_wait_latched != 0 && p < kNumPorts; ++p) {
        const std::uint64_t waiting =
            (route_wait_latched >> (static_cast<unsigned>(p) * num_vcs)) &
            vc_mask;
        if (waiting == 0)
            continue;
        const std::uint64_t grant = RoundRobinArbiter::compute(
            waiting, rcArb_[p].pointer(), num_vcs);
        const unsigned v = static_cast<unsigned>(lowestSetBit(grant));
        const unsigned i = vcIndex(p, v);
        const VcFifo &fifo = fifos_[i];
        const bool head_valid = !fifo.empty();
        const Flit &rc_flit = fifo.peek(0); // stale-capable
        const bool head_is_header = isHead(rc_flit.type);

        Flit routed = rc_flit;
        if (!head_valid || !head_is_header)
            routed.dst = garbageDst(routed, node_,
                                    ctx.config->numNodes());
        const int o =
            ctx.routing->route(*ctx.config, node_, routed, p);

        // Inline RC checker group (invariants 1-3, 20, 21): same
        // conditions, same emission order as the branchy bank. The
        // turn/minimality checks see the original peeked flit, only
        // route() sees the garbage destination — exactly as the
        // wires would have carried them.
        const bool in_range = o >= 0 && o < kNumPorts;
        const bool connected =
            in_range && ctx.config->portConnected(node_, o);
        if (!in_range || !connected) {
            ev.fire(PackedCheck::InvalidRcOutput, p,
                    static_cast<int>(v));
        } else {
            if (!ctx.routing->legalTurn(rc_flit, p, o))
                ev.fire(PackedCheck::IllegalTurn, p,
                        static_cast<int>(v));
            if (ctx.routing->minimalRequired() && head_valid &&
                head_is_header &&
                !ctx.routing->minimalStep(*ctx.config, node_, rc_flit,
                                          o))
                ev.fire(PackedCheck::NonMinimalRoute, p,
                        static_cast<int>(v));
        }
        if (!head_valid)
            ev.fire(PackedCheck::RcOnEmptyVc, p, static_cast<int>(v));
        else if (!head_is_header)
            ev.fire(PackedCheck::RcOnNonHeaderFlit, p,
                    static_cast<int>(v));

        rcArb_[p].commit(grant);
        VcRecord &rec = records_[i];
        rec.state = VcState::VcAllocWait;
        rec.outPort = o;
        rec.outVc = -1;
        if (rc_flit.msgClass < params_.classes.size())
            rec.msgClass = rc_flit.msgClass;
        ps.routeWait = clearBit(ps.routeWait, i);
        ps.vcAllocWait = setBit(ps.vcAllocWait, i);
        // New VcAllocWait state that a continuous checker would flag
        // (bad route register, or the ST-residue anomaly resolved
        // into a routed state) keeps the slot suspect.
        if (!in_range || !connected || !head_valid || !head_is_header)
            ps.suspect = setBit(ps.suspect, i);
    }

    if (eject_wrong)
        ev.fire(PackedCheck::EjectionAtWrongDestination,
                portIndex(Port::Local), -1);

    // Fast transitions preserve the allocation-table invariants the
    // extended (group-9) check reads, but recompute when armed so the
    // flag can never rot across mixed fast/slow sequences.
    if (params_.extendedChecks)
        ps.suspectOut = !outVcTableConsistent();

    return true;
}

} // namespace nocalert::noc
