#include "noc/network.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace nocalert::noc {

Network::Network(const NetworkConfig &config,
                 const nocalert::traffic::WorkloadSpec &workload)
    : config_(config),
      routing_(makeRouting(config.routing)),
      traffic_(config, workload)
{
    config_.validate();
    const int nodes = config_.numNodes();
    routers_.reserve(nodes);
    nis_.reserve(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        routers_.emplace_back(config_, n);
        nis_.emplace_back(config_, n);
    }
    buildTopology();
    router_live_.assign(static_cast<std::size_t>(nodes), 0);
    force_active_.assign(static_cast<std::size_t>(nodes), 0);
    packed_.assign(static_cast<std::size_t>(nodes), PackedRouterState{});
}

Network::Network(const NetworkConfig &config, const TrafficSpec &traffic)
    : Network(config,
              nocalert::traffic::WorkloadSpec::fromSynthetic(traffic))
{
}

Network::Network(const Network &other)
    : config_(other.config_),
      routing_(makeRouting(other.config_.routing)),
      routers_(other.routers_),
      nis_(other.nis_),
      links_(other.links_),
      in_link_(other.in_link_),
      out_link_(other.out_link_),
      traffic_(other.traffic_),
      cycle_(other.cycle_),
      kernel_mode_(other.kernel_mode_)
{
    // Hooks and observers intentionally not copied: they are bound to
    // engines observing the original instance. The activity pins that
    // exist for their benefit (tap_force_all_, force_active_) reset
    // with them; liveness is recomputed from the copied state.
    force_active_.assign(
        static_cast<std::size_t>(config_.numNodes()), 0);
    recomputeLiveness();
}

Network &
Network::operator=(const Network &other)
{
    if (this == &other)
        return *this;
    config_ = other.config_;
    routing_ = makeRouting(other.config_.routing);
    routers_ = other.routers_;
    nis_ = other.nis_;
    links_ = other.links_;
    in_link_ = other.in_link_;
    out_link_ = other.out_link_;
    traffic_ = other.traffic_;
    cycle_ = other.cycle_;
    kernel_mode_ = other.kernel_mode_;
    tap_force_all_ = false;
    force_active_.assign(
        static_cast<std::size_t>(config_.numNodes()), 0);
    recomputeLiveness();
    router_evals_ = 0;
    ni_evals_ = 0;
    tap_hook_ = nullptr;
    router_observer_ = nullptr;
    ni_observer_ = nullptr;
    cycle_observer_ = nullptr;
    packed_observer_ = nullptr;
    return *this;
}

void
Network::setKernelMode(KernelMode mode)
{
    kernel_mode_ = mode;
    // The packed caches may have rotted while another kernel ran
    // (they are only maintained by stepBitmask); force a rebuild.
    for (PackedRouterState &ps : packed_)
        ps.stale = true;
}

void
Network::recomputeLiveness()
{
    const std::size_t nodes =
        static_cast<std::size_t>(config_.numNodes());
    router_live_.resize(nodes);
    for (std::size_t n = 0; n < nodes; ++n)
        router_live_[n] = routers_[n].quiescent() ? 0 : 1;
    // Anything that invalidates liveness certificates (copies,
    // purges) invalidates the packed mirrors and the cached link
    // arrival flags too (a purge can pull a flit off a link after
    // the flags were computed; a copy may have a different topology).
    packed_.assign(nodes, PackedRouterState{});
    link_flit_dst_.clear();
    link_credit_dst_.clear();
    io_flags_cycle_ = -1;
}

void
Network::forceRouterActive(NodeId node)
{
    force_active_[static_cast<std::size_t>(node)] = 1;
}

void
Network::setTapFocus(const std::vector<NodeId> &nodes)
{
    tap_force_all_ = false;
    for (NodeId n : nodes)
        if (n >= 0 && n < config_.numNodes())
            force_active_[static_cast<std::size_t>(n)] = 1;
}

void
Network::buildTopology()
{
    const int nodes = config_.numNodes();
    in_link_.assign(static_cast<std::size_t>(nodes) * kNumPorts, -1);
    out_link_.assign(static_cast<std::size_t>(nodes) * kNumPorts, -1);

    auto add_link = [&]() {
        links_.emplace_back();
        return static_cast<int>(links_.size() - 1);
    };

    for (NodeId n = 0; n < nodes; ++n) {
        // Mesh links: one directed link into each connected input port.
        for (int p = 0; p < 4; ++p) {
            const NodeId m = config_.neighborOf(n, p);
            if (m == kInvalidNode)
                continue;
            const int link = add_link();
            in_link_[static_cast<std::size_t>(n) * kNumPorts +
                     static_cast<std::size_t>(p)] = link;
            out_link_[static_cast<std::size_t>(m) * kNumPorts +
                      static_cast<std::size_t>(oppositePort(p))] = link;
        }
        // Local links: NI -> router (injection) and router -> NI.
        const int lp = portIndex(Port::Local);
        in_link_[static_cast<std::size_t>(n) * kNumPorts +
                 static_cast<std::size_t>(lp)] = add_link();
        out_link_[static_cast<std::size_t>(n) * kNumPorts +
                  static_cast<std::size_t>(lp)] = add_link();
    }
}

int
Network::inLinkIndex(NodeId node, int port) const
{
    return in_link_[static_cast<std::size_t>(node) * kNumPorts +
                    static_cast<std::size_t>(port)];
}

int
Network::outLinkIndex(NodeId node, int port) const
{
    return out_link_[static_cast<std::size_t>(node) * kNumPorts +
                     static_cast<std::size_t>(port)];
}

Router &
Network::router(NodeId node)
{
    // The caller may mutate architectural state behind the kernel's
    // back; drop the router's quiescence certificate so the active
    // kernel re-evaluates it, and its packed mirror so the bitmask
    // kernel rebuilds before trusting the masks.
    router_live_[static_cast<std::size_t>(node)] = 1;
    packed_[static_cast<std::size_t>(node)].stale = true;
    return routers_[static_cast<std::size_t>(node)];
}

const Router &
Network::router(NodeId node) const
{
    return routers_[static_cast<std::size_t>(node)];
}

NetworkInterface &
Network::ni(NodeId node)
{
    return nis_[static_cast<std::size_t>(node)];
}

const NetworkInterface &
Network::ni(NodeId node) const
{
    return nis_[static_cast<std::size_t>(node)];
}

void
Network::step()
{
    switch (kernel_mode_) {
    case KernelMode::Dense:
        stepDense();
        break;
    case KernelMode::Bitmask:
        stepBitmask();
        break;
    case KernelMode::Active:
        stepActive();
        break;
    }
}

void
Network::stepDense()
{
    const int nodes = config_.numNodes();
    const int lp = portIndex(Port::Local);

    // ---- Network interfaces: traffic generation, inject, eject ----
    for (NodeId n = 0; n < nodes; ++n) {
        if (auto pkt = traffic_.generate(config_, n, cycle_))
            nis_[static_cast<std::size_t>(n)].enqueue(*pkt);

        Link &inj = links_[static_cast<std::size_t>(inLinkIndex(n, lp))];
        Link &ejc = links_[static_cast<std::size_t>(outLinkIndex(n, lp))];

        NetworkInterface::LinkIo io;
        io.inValid = ejc.recvValid;
        io.inFlit = ejc.recvFlit;
        io.creditIn = inj.creditRecv;

        NetworkInterface &ni = nis_[static_cast<std::size_t>(n)];
        ni.evaluate(cycle_, io);
        ++ni_evals_;

        if (io.outValid) {
            inj.sendValid = true;
            inj.sendFlit = io.outFlit;
        }
        ejc.creditSend |= io.creditOut;

        if (ni_observer_)
            ni_observer_(ni, ni.wires());
    }

    // ---- Routers ----
    Router::Context ctx{&config_, routing_.get()};
    for (NodeId n = 0; n < nodes; ++n) {
        Router::LinkIo io;
        for (int p = 0; p < kNumPorts; ++p) {
            const int li = inLinkIndex(n, p);
            if (li >= 0) {
                const Link &link = links_[static_cast<std::size_t>(li)];
                io.inValid[p] = link.recvValid;
                io.inFlit[p] = link.recvFlit;
            }
            const int lo = outLinkIndex(n, p);
            if (lo >= 0)
                io.creditIn[p] =
                    links_[static_cast<std::size_t>(lo)].creditRecv;
        }

        Router &router = routers_[static_cast<std::size_t>(n)];
        router.evaluate(ctx, cycle_, io,
                        tap_hook_ ? &tap_hook_ : nullptr);
        ++router_evals_;
        router_live_[static_cast<std::size_t>(n)] =
            router.quiescent() ? 0 : 1;

        for (int p = 0; p < kNumPorts; ++p) {
            const int lo = outLinkIndex(n, p);
            if (lo >= 0 && io.outValid[p]) {
                Link &link = links_[static_cast<std::size_t>(lo)];
                link.sendValid = true;
                link.sendFlit = io.outFlit[p];
            }
            const int li = inLinkIndex(n, p);
            if (li >= 0)
                links_[static_cast<std::size_t>(li)].creditSend |=
                    io.creditOut[p];
        }

        if (router_observer_)
            router_observer_(router, router.wires());
    }

    // ---- Links advance ----
    for (Link &link : links_)
        link.tick();

    ++cycle_;

    if (cycle_observer_)
        cycle_observer_(*this);
}

void
Network::stepActive()
{
    const int nodes = config_.numNodes();
    const int lp = portIndex(Port::Local);

    // ---- Network interfaces ----
    //
    // An NI whose queue is empty, that is not streaming, and whose
    // links carry neither a flit nor a credit cannot change state or
    // drive outputs; its wires would show no injection, no ejection
    // and zero anomalies, so skipping evaluation (and its observer) is
    // unobservable. An idle NI woken only by returning credits takes
    // the credit fast path (NetworkInterface::applyCreditIncrements)
    // instead of a full evaluation. Workload draws are skipped only
    // on cycles where no node can fire (see WorkloadGenerator::idleAt:
    // a permanent stop for the synthetic backend, whose sequential
    // streams must stay aligned with a dense run while they still
    // matter; any idle segment or gap for the counter-mode phased and
    // trace backends, which keep no sequential stream state).
    const bool idle = traffic_.idleAt(cycle_);
    for (NodeId n = 0; n < nodes; ++n) {
        std::optional<Packet> pkt;
        if (!idle)
            pkt = traffic_.generate(config_, n, cycle_);

        Link &inj = links_[static_cast<std::size_t>(inLinkIndex(n, lp))];
        Link &ejc = links_[static_cast<std::size_t>(outLinkIndex(n, lp))];
        NetworkInterface &ni = nis_[static_cast<std::size_t>(n)];

        const bool active =
            pkt.has_value() || !ni.idle() || ejc.recvValid;
        if (pkt)
            ni.enqueue(*pkt);
        if (!active) {
            if (inj.creditRecv != 0)
                ni.applyCreditIncrements(inj.creditRecv);
            continue;
        }

        NetworkInterface::LinkIo io;
        io.inValid = ejc.recvValid;
        io.inFlit = ejc.recvFlit;
        io.creditIn = inj.creditRecv;

        ni.evaluate(cycle_, io);
        ++ni_evals_;

        if (io.outValid) {
            inj.sendValid = true;
            inj.sendFlit = io.outFlit;
        }
        ejc.creditSend |= io.creditOut;

        if (ni_observer_)
            ni_observer_(ni, ni.wires());
    }

    // ---- Routers ----
    //
    // A quiescent router (Router::quiescent) with no arriving flit and
    // no arriving credit performs no state transition and drives no
    // output; its checkers see all-zero wires (the start-up invariant
    // core::verifyQuiescentInvariant certifies they pass trivially).
    // Such routers are skipped until a link wakes them; a quiescent
    // router woken *only* by returning credits takes the credit fast
    // path (Router::applyCreditIncrements) and stays out of the
    // active set. Pins override: a tap hook may inject a fault into
    // an otherwise idle router.
    Router::Context ctx{&config_, routing_.get()};
    const bool hook_all = tap_force_all_ && tap_hook_;
    for (NodeId n = 0; n < nodes; ++n) {
        const std::size_t idx = static_cast<std::size_t>(n);

        Router::LinkIo io;
        bool flit_in = false;
        std::uint32_t credit_any = 0;
        for (int p = 0; p < kNumPorts; ++p) {
            const int li = inLinkIndex(n, p);
            if (li >= 0) {
                const Link &link = links_[static_cast<std::size_t>(li)];
                io.inValid[p] = link.recvValid;
                io.inFlit[p] = link.recvFlit;
                flit_in |= link.recvValid;
            }
            const int lo = outLinkIndex(n, p);
            if (lo >= 0) {
                io.creditIn[p] =
                    links_[static_cast<std::size_t>(lo)].creditRecv;
                credit_any |= io.creditIn[p];
            }
        }

        if (!flit_in && !router_live_[idx] && !force_active_[idx] &&
            !hook_all) {
            if (credit_any != 0)
                routers_[idx].applyCreditIncrements(io.creditIn);
            continue;
        }

        Router &router = routers_[idx];
        router.evaluate(ctx, cycle_, io,
                        tap_hook_ ? &tap_hook_ : nullptr);
        ++router_evals_;
        router_live_[idx] = router.quiescent() ? 0 : 1;

        for (int p = 0; p < kNumPorts; ++p) {
            const int lo = outLinkIndex(n, p);
            if (lo >= 0 && io.outValid[p]) {
                Link &link = links_[static_cast<std::size_t>(lo)];
                link.sendValid = true;
                link.sendFlit = io.outFlit[p];
            }
            const int li = inLinkIndex(n, p);
            if (li >= 0)
                links_[static_cast<std::size_t>(li)].creditSend |=
                    io.creditOut[p];
        }

        if (router_observer_)
            router_observer_(router, router.wires());
    }

    // ---- Links advance (idle links carry nothing to move) ----
    for (Link &link : links_)
        if (link.busy())
            link.tick();

    ++cycle_;

    if (cycle_observer_)
        cycle_observer_(*this);
}

void
Network::stepBitmask()
{
    const int nodes = config_.numNodes();
    const int lp = portIndex(Port::Local);

    // ---- Batched link delivery ----
    // One sweep over the links derives, for every node, whether
    // anything arrived: bit 0 - a flit on some router input port,
    // bit 1 - a credit on some router output port, bit 2 - a flit on
    // the ejection link (for the NI), bit 3 - a credit on the
    // injection link (for the NI). The recv sides the sweep reads are
    // registered - only tick() at end of cycle moves send to recv,
    // and the NI loop below writes send sides only - so the flags
    // stay valid for both module loops, and a node with clear flags
    // is scheduled without loading any of its link slots. Ordinarily
    // the flags were already computed for free by the previous
    // cycle's link pass; the sweep here only runs when something
    // invalidated them (another kernel ran, a copy, a purge).
    // Links whose send side gets written this cycle join the busy
    // set; the end-of-cycle pass visits only busy links.
    const auto mark_busy = [this](int li) {
        link_busy_bits_[static_cast<std::size_t>(li) >> 6] |=
            std::uint64_t{1} << (static_cast<unsigned>(li) & 63u);
    };

    if (io_flags_cycle_ != cycle_) {
        if (link_flit_dst_.size() != links_.size()) {
            // Every link has exactly one flit and one credit
            // consumer; router consumers are stored as the node id,
            // NI consumers (ejection flits, injection credits) as
            // ~node.
            link_flit_dst_.assign(links_.size(), -1);
            link_credit_dst_.assign(links_.size(), -1);
            for (NodeId n = 0; n < nodes; ++n) {
                for (int p = 0; p < kNumPorts; ++p) {
                    const int li = inLinkIndex(n, p);
                    if (li >= 0)
                        link_flit_dst_[static_cast<std::size_t>(li)] = n;
                    const int lo = outLinkIndex(n, p);
                    if (lo >= 0)
                        link_credit_dst_[static_cast<std::size_t>(lo)] =
                            n;
                }
                link_flit_dst_[static_cast<std::size_t>(
                    outLinkIndex(n, lp))] = ~n;
                link_credit_dst_[static_cast<std::size_t>(
                    inLinkIndex(n, lp))] = ~n;
            }
        }
        node_io_flags_.assign(static_cast<std::size_t>(nodes), 0);
        link_busy_bits_.assign((links_.size() + 63) / 64, 0);
        for (std::size_t li = 0; li < links_.size(); ++li) {
            const Link &link = links_[li];
            if (link.busy())
                mark_busy(static_cast<int>(li));
            if (link.recvValid) {
                const int d = link_flit_dst_[li];
                if (d >= 0)
                    node_io_flags_[static_cast<std::size_t>(d)] |= 1;
                else
                    node_io_flags_[static_cast<std::size_t>(~d)] |= 4;
            }
            if (link.creditRecv != 0) {
                const int d = link_credit_dst_[li];
                if (d >= 0)
                    node_io_flags_[static_cast<std::size_t>(d)] |= 2;
                else
                    node_io_flags_[static_cast<std::size_t>(~d)] |= 8;
            }
        }
        io_flags_cycle_ = cycle_;
    }

    // ---- Network interfaces: identical to the active kernel ----
    // (same skip predicate, same credit fast path, same RNG draws, so
    // the workload streams stay aligned with an active run; the flag
    // bits stand in for the link loads the active kernel does).
    const bool idle = traffic_.idleAt(cycle_);
    for (NodeId n = 0; n < nodes; ++n) {
        std::optional<Packet> pkt;
        if (!idle)
            pkt = traffic_.generate(config_, n, cycle_);

        NetworkInterface &ni = nis_[static_cast<std::size_t>(n)];
        const std::uint8_t nflags =
            node_io_flags_[static_cast<std::size_t>(n)];

        const bool active =
            pkt.has_value() || !ni.idle() || (nflags & 4) != 0;
        if (pkt)
            ni.enqueue(*pkt);
        if (!active) {
            if (nflags & 8)
                ni.applyCreditIncrements(
                    links_[static_cast<std::size_t>(inLinkIndex(n, lp))]
                        .creditRecv);
            continue;
        }

        Link &inj = links_[static_cast<std::size_t>(inLinkIndex(n, lp))];
        Link &ejc = links_[static_cast<std::size_t>(outLinkIndex(n, lp))];

        NetworkInterface::LinkIo io;
        io.inValid = ejc.recvValid;
        io.inFlit = ejc.recvFlit;
        io.creditIn = inj.creditRecv;

        ni.evaluate(cycle_, io);
        ++ni_evals_;

        if (io.outValid) {
            inj.sendValid = true;
            inj.sendFlit = io.outFlit;
            mark_busy(inLinkIndex(n, lp));
        }
        if (io.creditOut != 0) {
            ejc.creditSend |= io.creditOut;
            mark_busy(outLinkIndex(n, lp));
        }

        if (ni_observer_)
            ni_observer_(ni, ni.wires());
    }

    // ---- Routers: active-set scheduling + packed fast path ----
    // Scheduling (skip / credit fast path / evaluate) is exactly the
    // active kernel's. An evaluated router tries the struct-of-arrays
    // fast path unless it is pinned (tap hooks and forced-active
    // routers need the wire record and tap delivery, so they always
    // take the branchy pipeline); a rejected screen falls back to the
    // branchy pipeline with the full checker bank.
    Router::Context ctx{&config_, routing_.get()};
    const bool hook_all = tap_force_all_ && tap_hook_;
    PackedCycleEvents ev;
    Router::LinkIo io;
    for (NodeId n = 0; n < nodes; ++n) {
        const std::size_t idx = static_cast<std::size_t>(n);
        const std::uint8_t flags = node_io_flags_[idx];

        const bool pinned = hook_all || force_active_[idx];
        if ((flags & 1) == 0 && !router_live_[idx] && !pinned) {
            if (flags & 2) {
                std::array<std::uint32_t, kNumPorts> credits = {};
                for (int p = 0; p < kNumPorts; ++p) {
                    const int lo = outLinkIndex(n, p);
                    if (lo >= 0)
                        credits[p] =
                            links_[static_cast<std::size_t>(lo)]
                                .creditRecv;
                }
                routers_[idx].applyCreditIncrements(credits);
            }
            continue;
        }

        // Fill the reused LinkIo: flag-gated gathers, and only the
        // output fields evaluate() writes conditionally need
        // clearing (flit payloads are guarded by their valid bits).
        io.outValid = {};
        io.creditOut = {};
        io.inValid = {};
        io.creditIn = {};
        io.inMask = 0;
        io.outMask = 0;
        io.creditOutMask = 0;
        if (flags & 1) {
            for (int p = 0; p < kNumPorts; ++p) {
                const int li = inLinkIndex(n, p);
                if (li >= 0) {
                    const Link &link =
                        links_[static_cast<std::size_t>(li)];
                    if (link.recvValid) {
                        io.inValid[p] = true;
                        io.inFlit[p] = link.recvFlit;
                        io.inMask |= static_cast<std::uint8_t>(1u << p);
                    }
                }
            }
        }
        if (flags & 2) {
            for (int p = 0; p < kNumPorts; ++p) {
                const int lo = outLinkIndex(n, p);
                if (lo >= 0)
                    io.creditIn[p] =
                        links_[static_cast<std::size_t>(lo)].creditRecv;
            }
        }

        Router &router = routers_[idx];
        bool fast = false;
        if (!pinned) {
            PackedRouterState &ps = packed_[idx];
            if (ps.stale)
                router.recomputePacked(config_, ps);
            fast = router.evaluateFast(ctx, cycle_, io, ps,
                                       packed_scratch_, ev);
            if (fast) {
                ++router_evals_;
                router_live_[idx] = ps.quiescentPacked() ? 0 : 1;
                if (ev.mask != 0 && packed_observer_)
                    packed_observer_(router, ev);
            }
        }
        if (!fast) {
            router.evaluate(ctx, cycle_, io,
                            tap_hook_ ? &tap_hook_ : nullptr);
            ++router_evals_;
            router_live_[idx] = router.quiescent() ? 0 : 1;
            packed_[idx].stale = true;

            if (router_observer_)
                router_observer_(router, router.wires());
        }

        if (fast) {
            // The fast path reports exactly which ports it drove;
            // only those links need touching. (A corrupted schedule
            // can aim at a disconnected port — mirror the slow
            // path's index guards so the flit just vanishes.)
            for (std::uint32_t m = io.outMask; m != 0;) {
                const int p = lowestSetBit(m);
                m = static_cast<std::uint32_t>(
                    clearBit(m, static_cast<unsigned>(p)));
                const int lo = outLinkIndex(n, p);
                if (lo >= 0) {
                    Link &link = links_[static_cast<std::size_t>(lo)];
                    link.sendValid = true;
                    link.sendFlit = io.outFlit[p];
                    mark_busy(lo);
                }
            }
            for (std::uint32_t m = io.creditOutMask; m != 0;) {
                const int p = lowestSetBit(m);
                m = static_cast<std::uint32_t>(
                    clearBit(m, static_cast<unsigned>(p)));
                const int li = inLinkIndex(n, p);
                if (li >= 0) {
                    links_[static_cast<std::size_t>(li)].creditSend |=
                        io.creditOut[p];
                    mark_busy(li);
                }
            }
            continue;
        }

        for (int p = 0; p < kNumPorts; ++p) {
            const int lo = outLinkIndex(n, p);
            if (lo >= 0 && io.outValid[p]) {
                Link &link = links_[static_cast<std::size_t>(lo)];
                link.sendValid = true;
                link.sendFlit = io.outFlit[p];
                mark_busy(lo);
            }
            const int li = inLinkIndex(n, p);
            if (li >= 0 && io.creditOut[p] != 0) {
                links_[static_cast<std::size_t>(li)].creditSend |=
                    io.creditOut[p];
                mark_busy(li);
            }
        }
    }

    // ---- Links advance; next cycle's arrival flags fall out of the
    // same pass (the freshly ticked recv sides are exactly what the
    // dedicated sweep above would read at the top of the next step).
    // Only busy links are visited: a link outside the set has nothing
    // on either side, so ticking it is a no-op and it contributes no
    // flags. A bit survives into the next cycle exactly while the
    // freshly ticked recv side still carries something (the clearing
    // tick is then next cycle's visit).
    std::fill(node_io_flags_.begin(), node_io_flags_.end(), 0);
    for (std::size_t w = 0; w < link_busy_bits_.size(); ++w) {
        std::uint64_t bits = link_busy_bits_[w];
        if (bits == 0)
            continue;
        std::uint64_t keep = 0;
        while (bits != 0) {
            const unsigned b =
                static_cast<unsigned>(lowestSetBit(bits));
            bits = clearBit(bits, b);
            const std::size_t li = w * 64 + b;
            Link &link = links_[li];
            link.tick();
            bool still = false;
            if (link.recvValid) {
                const int d = link_flit_dst_[li];
                if (d >= 0)
                    node_io_flags_[static_cast<std::size_t>(d)] |= 1;
                else
                    node_io_flags_[static_cast<std::size_t>(~d)] |= 4;
                still = true;
            }
            if (link.creditRecv != 0) {
                const int d = link_credit_dst_[li];
                if (d >= 0)
                    node_io_flags_[static_cast<std::size_t>(d)] |= 2;
                else
                    node_io_flags_[static_cast<std::size_t>(~d)] |= 8;
                still = true;
            }
            if (still)
                keep |= std::uint64_t{1} << b;
        }
        link_busy_bits_[w] = keep;
    }

    ++cycle_;
    io_flags_cycle_ = cycle_;

    if (cycle_observer_)
        cycle_observer_(*this);
}

std::vector<std::uint64_t>
Network::countInFlightFlitsPerDst(bool include_queued) const
{
    std::vector<std::uint64_t> counts(
        static_cast<std::size_t>(config_.numNodes()), 0);
    auto tally = [&](NodeId dst, std::uint64_t n) {
        if (dst >= 0 && dst < config_.numNodes())
            counts[static_cast<std::size_t>(dst)] += n;
    };

    for (const NetworkInterface &ni : nis_)
        for (const auto &[dst, n] : ni.pendingFlitsByDst(include_queued))
            tally(dst, n);

    for (const Router &router : routers_) {
        for (int p = 0; p < kNumPorts; ++p) {
            for (unsigned v = 0; v < config_.router.numVcs; ++v) {
                const VcFifo &fifo = router.fifo(p, v);
                for (unsigned i = 0; i < fifo.size(); ++i)
                    tally(fifo.peek(i).dst, 1);
            }
        }
    }

    for (const Link &link : links_) {
        if (link.sendValid)
            tally(link.sendFlit.dst, 1);
        if (link.recvValid)
            tally(link.recvFlit.dst, 1);
    }
    return counts;
}

void
Network::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        step();
}

bool
Network::drain(Cycle max_cycles)
{
    for (Cycle i = 0; i < max_cycles; ++i) {
        if (quiescent())
            return true;
        step();
    }
    return quiescent();
}

bool
Network::quiescent() const
{
    for (const Router &router : routers_)
        if (!router.idle())
            return false;
    for (const NetworkInterface &ni : nis_)
        if (!ni.idle())
            return false;
    for (const Link &link : links_)
        if (link.sendValid || link.recvValid)
            return false;
    return true;
}

std::size_t
Network::quarantinePort(NodeId node, int port)
{
    if (node < 0 || node >= config_.numNodes())
        return 0;
    std::size_t added = 0;
    auto mark = [&](NodeId n, int p) {
        if (p < 0 || p >= kNumPorts || p == portIndex(Port::Local))
            return;
        if (!config_.portConnected(n, p))
            return;
        if (routing_->isQuarantined(n, p))
            return;
        routing_->quarantine(n, p);
        ++added;
    };
    auto both_directions = [&](int p) {
        mark(node, p);
        const NodeId m = config_.neighborOf(node, p);
        if (m != kInvalidNode)
            mark(m, oppositePort(p));
    };
    if (port >= 0) {
        both_directions(port);
    } else {
        for (int p = 0; p < 4; ++p)
            both_directions(p);
    }
    return added;
}

std::unordered_set<PacketId>
Network::implicatedPackets(NodeId node, int port) const
{
    std::unordered_set<PacketId> ids;
    if (node < 0 || node >= config_.numNodes())
        return ids;
    const Router &r = routers_[static_cast<std::size_t>(node)];
    const unsigned num_vcs = config_.router.numVcs;

    auto add_flit = [&](const Flit &flit) {
        if (flit.packet != kInvalidPacket)
            ids.insert(flit.packet);
    };
    auto add_link = [&](int index) {
        if (index < 0)
            return;
        const Link &link = links_[static_cast<std::size_t>(index)];
        if (link.sendValid)
            add_flit(link.sendFlit);
        if (link.recvValid)
            add_flit(link.recvFlit);
    };
    auto add_port = [&](int p) {
        if (p < 0 || p >= kNumPorts)
            return;
        for (unsigned v = 0; v < num_vcs; ++v) {
            const VcRecord &rec = r.vcRecord(p, v);
            if (rec.state != VcState::Idle &&
                rec.packet != kInvalidPacket) {
                ids.insert(rec.packet);
            }
            const VcFifo &fifo = r.fifo(p, v);
            for (unsigned i = 0; i < fifo.size(); ++i)
                add_flit(fifo.peek(i));
            const OutVcState &ov = r.outVcState(p, v);
            if (!ov.free && ov.ownerPort >= 0 &&
                ov.ownerPort < kNumPorts && ov.ownerVc >= 0 &&
                ov.ownerVc < static_cast<int>(num_vcs)) {
                const VcRecord &owner = r.vcRecord(
                    ov.ownerPort, static_cast<unsigned>(ov.ownerVc));
                if (owner.packet != kInvalidPacket)
                    ids.insert(owner.packet);
            }
        }
        add_link(inLinkIndex(node, p));
        add_link(outLinkIndex(node, p));
    };

    if (port >= 0 && port < kNumPorts) {
        add_port(port);
    } else {
        for (int p = 0; p < kNumPorts; ++p)
            add_port(p);
    }
    return ids;
}

std::uint64_t
Network::purgePackets(const std::unordered_set<PacketId> &suspects)
{
    if (suspects.empty())
        return 0;
    std::uint64_t removed = 0;
    const int nodes = config_.numNodes();
    const int lp = portIndex(Port::Local);

    // Router buffers and pipeline state; freed buffer slots hand their
    // credits back to whoever sits upstream of the port.
    for (NodeId n = 0; n < nodes; ++n) {
        Router &r = routers_[static_cast<std::size_t>(n)];
        removed += r.purgePackets(
            suspects, [&](int p, unsigned v, unsigned count) {
                if (p == lp) {
                    nis_[static_cast<std::size_t>(n)].restoreCredits(
                        v, count);
                } else {
                    const NodeId m = config_.neighborOf(n, p);
                    if (m != kInvalidNode) {
                        routers_[static_cast<std::size_t>(m)]
                            .addOutputCredits(oppositePort(p), v, count);
                    }
                }
            });
    }

    // In-flight link flits. Iterating every (node, input port) link
    // plus each node's ejection link touches every link exactly once;
    // the sender whose flit vanishes gets its credit back.
    auto purge_stage = [&](bool &valid, Flit &flit, const auto &restore) {
        if (valid && suspects.count(flit.packet) != 0) {
            restore(flit);
            valid = false;
            ++removed;
        }
    };
    for (NodeId n = 0; n < nodes; ++n) {
        for (int p = 0; p < kNumPorts; ++p) {
            const int li = inLinkIndex(n, p);
            if (li < 0)
                continue;
            Link &link = links_[static_cast<std::size_t>(li)];
            auto restore = [&](const Flit &flit) {
                if (p == lp) {
                    nis_[static_cast<std::size_t>(n)].restoreCredits(
                        flit.vc, 1);
                } else {
                    const NodeId m = config_.neighborOf(n, p);
                    if (m != kInvalidNode) {
                        routers_[static_cast<std::size_t>(m)]
                            .addOutputCredits(oppositePort(p), flit.vc,
                                              1);
                    }
                }
            };
            purge_stage(link.sendValid, link.sendFlit, restore);
            purge_stage(link.recvValid, link.recvFlit, restore);
        }
        const int lo = outLinkIndex(n, lp);
        if (lo >= 0) {
            Link &link = links_[static_cast<std::size_t>(lo)];
            auto restore = [&](const Flit &flit) {
                routers_[static_cast<std::size_t>(n)].addOutputCredits(
                    lp, flit.vc, 1);
            };
            purge_stage(link.sendValid, link.sendFlit, restore);
            purge_stage(link.recvValid, link.recvFlit, restore);
        }
    }

    // Source/destination NI state (aborted streams, staged ejections).
    for (NetworkInterface &ni : nis_)
        ni.purgePackets(suspects);

    // Purging changes quiescence both ways; recertify everything.
    recomputeLiveness();
    return removed;
}

NetworkStats
Network::stats() const
{
    NetworkStats stats;
    stats.cycles = cycle_;
    stats.packetsCreated = traffic_.packetsCreated();
    for (const NetworkInterface &ni : nis_) {
        stats.packetsInjected += ni.packetsInjected();
        stats.packetsEjected += ni.packetsEjected();
        stats.flitsInjected += ni.flitsInjected();
        stats.flitsEjected += ni.flitsEjected();
        stats.latencySum += ni.latencySum();
    }
    return stats;
}

std::vector<EjectionRecord>
Network::collectEjections() const
{
    std::vector<EjectionRecord> all;
    for (const NetworkInterface &ni : nis_) {
        all.insert(all.end(), ni.ejectionLog().begin(),
                   ni.ejectionLog().end());
    }
    return all;
}

void
Network::clearEjectionLogs()
{
    for (NetworkInterface &ni : nis_)
        ni.clearLog();
}

} // namespace nocalert::noc
