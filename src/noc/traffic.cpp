#include "noc/traffic.hpp"

#include "util/bits.hpp"
#include "util/log.hpp"

namespace nocalert::noc {

const char *
trafficPatternName(TrafficPattern pattern)
{
    switch (pattern) {
      case TrafficPattern::UniformRandom: return "uniform";
      case TrafficPattern::Transpose: return "transpose";
      case TrafficPattern::BitComplement: return "bit-complement";
      case TrafficPattern::Hotspot: return "hotspot";
      case TrafficPattern::Tornado: return "tornado";
      case TrafficPattern::Shuffle: return "shuffle";
      case TrafficPattern::BitReverse: return "bit-reverse";
      case TrafficPattern::Neighbor: return "neighbor";
    }
    return "?";
}

std::optional<TrafficPattern>
trafficPatternFromName(std::string_view name)
{
    for (int i = 0; i <= static_cast<int>(TrafficPattern::Neighbor); ++i) {
        const auto pattern = static_cast<TrafficPattern>(i);
        if (name == trafficPatternName(pattern))
            return pattern;
    }
    return std::nullopt;
}

std::string
validateTrafficSpec(const NetworkConfig &config, const TrafficSpec &spec)
{
    if (!(spec.injectionRate >= 0.0 && spec.injectionRate <= 1.0)) {
        return "injectionRate must be in [0,1], got " +
               std::to_string(spec.injectionRate);
    }
    if (!spec.classWeights.empty()) {
        if (spec.classWeights.size() != config.router.classes.size()) {
            return "classWeights has " +
                   std::to_string(spec.classWeights.size()) +
                   " entries but the router is configured with " +
                   std::to_string(config.router.classes.size()) +
                   " classes";
        }
        double total = 0.0;
        for (double w : spec.classWeights) {
            if (!(w >= 0.0))
                return "classWeights entries must be non-negative";
            total += w;
        }
        if (!(total > 0.0))
            return "classWeights must have a positive sum";
    }
    if (spec.stopCycle < -1)
        return "stopCycle must be a cycle or -1 (never), got " +
               std::to_string(spec.stopCycle);
    if (spec.pattern == TrafficPattern::Hotspot) {
        if (spec.hotspot.node < 0 || spec.hotspot.node >= config.numNodes())
            return "hotspot.node " + std::to_string(spec.hotspot.node) +
                   " is outside the mesh (" +
                   std::to_string(config.numNodes()) + " nodes)";
        if (!(spec.hotspot.fraction >= 0.0 &&
              spec.hotspot.fraction <= 1.0))
            return "hotspot.fraction must be in [0,1], got " +
                   std::to_string(spec.hotspot.fraction);
    }
    return std::string();
}

TrafficGenerator::TrafficGenerator(const NetworkConfig &config,
                                   const TrafficSpec &spec)
    : spec_(spec)
{
    const std::string error = validateTrafficSpec(config, spec_);
    if (!error.empty())
        NOCALERT_FATAL("invalid traffic spec: ", error);

    const int nodes = config.numNodes();
    rngs_.reserve(nodes);
    for (int n = 0; n < nodes; ++n)
        rngs_.push_back(
            deriveStream(spec_.seed, static_cast<std::uint64_t>(n)));
    counts_.assign(nodes, 0);
}

NodeId
trafficDestination(const NetworkConfig &config, TrafficPattern pattern,
                   const HotspotSpec &hotspot, NodeId node, Pcg32 &rng)
{
    const Coord c = config.coordOf(node);
    switch (pattern) {
      case TrafficPattern::UniformRandom: {
        // Uniform over the other numNodes-1 nodes.
        auto pick = rng.nextBounded(
            static_cast<std::uint32_t>(config.numNodes() - 1));
        NodeId dst = static_cast<NodeId>(pick);
        if (dst >= node)
            ++dst;
        return dst;
      }
      case TrafficPattern::Transpose:
        return config.nodeAt({c.y % config.width, c.x % config.height});
      case TrafficPattern::BitComplement:
        return config.nodeAt({config.width - 1 - c.x,
                              config.height - 1 - c.y});
      case TrafficPattern::Hotspot: {
        if (rng.nextBool(hotspot.fraction) && hotspot.node != node) {
            return hotspot.node;
        }
        auto pick = rng.nextBounded(
            static_cast<std::uint32_t>(config.numNodes() - 1));
        NodeId dst = static_cast<NodeId>(pick);
        if (dst >= node)
            ++dst;
        return dst;
      }
      case TrafficPattern::Tornado:
        return config.nodeAt({(c.x + config.width / 2) % config.width,
                              c.y});
      case TrafficPattern::Shuffle: {
        // Classic perfect shuffle on the node id: left-rotate by one
        // bit within bitsFor(numNodes) bits. Exact for power-of-two
        // node counts; off-mesh rotations wrap via modulo.
        const unsigned bits = bitsFor(
            static_cast<std::uint64_t>(config.numNodes()));
        const auto id = static_cast<std::uint64_t>(node);
        const std::uint64_t rotated =
            ((id << 1) | (id >> (bits - 1))) & lowMask(bits);
        return static_cast<NodeId>(
            rotated % static_cast<std::uint64_t>(config.numNodes()));
      }
      case TrafficPattern::BitReverse: {
        const unsigned bits = bitsFor(
            static_cast<std::uint64_t>(config.numNodes()));
        std::uint64_t reversed = 0;
        for (unsigned b = 0; b < bits; ++b)
            if (getBit(static_cast<std::uint64_t>(node), b))
                reversed = setBit(reversed, bits - 1 - b);
        return static_cast<NodeId>(
            reversed % static_cast<std::uint64_t>(config.numNodes()));
      }
      case TrafficPattern::Neighbor:
        return config.nodeAt({(c.x + 1) % config.width, c.y});
    }
    NOCALERT_PANIC("unknown traffic pattern");
}

std::uint8_t
trafficMessageClass(const NetworkConfig &config,
                    const std::vector<double> &weights, Pcg32 &rng)
{
    const std::size_t num_classes = config.router.classes.size();
    std::uint8_t cls = 0;
    const double roll = rng.nextDouble();
    if (weights.empty()) {
        cls = static_cast<std::uint8_t>(
            static_cast<std::size_t>(roll * static_cast<double>(
                num_classes)) % num_classes);
    } else {
        double total = 0;
        for (double w : weights)
            total += w;
        double acc = 0;
        for (std::size_t i = 0; i < num_classes; ++i) {
            acc += weights[i] / total;
            if (roll < acc) {
                cls = static_cast<std::uint8_t>(i);
                break;
            }
            if (i + 1 == num_classes)
                cls = static_cast<std::uint8_t>(i);
        }
    }
    return cls;
}

std::optional<Packet>
TrafficGenerator::generateFire(const NetworkConfig &config,
                               NodeId node, Cycle cycle, Pcg32 &rng)
{
    // The Bernoulli trial already succeeded in the inline wrapper;
    // packet parameters are drawn here (the success path is identical
    // across golden/faulty runs because it depends only on the RNG).
    if (spec_.stopCycle >= 0 && cycle >= spec_.stopCycle)
        return std::nullopt;

    const NodeId dst = trafficDestination(config, spec_.pattern,
                                          spec_.hotspot, node, rng);
    if (dst == node)
        return std::nullopt; // self-directed permutation slot: idle node

    const std::uint8_t cls =
        trafficMessageClass(config, spec_.classWeights, rng);

    Packet pkt;
    pkt.id = (static_cast<std::uint64_t>(node) << 40) |
             counts_[static_cast<std::size_t>(node)];
    ++counts_[static_cast<std::size_t>(node)];
    ++packets_created_;
    pkt.src = node;
    pkt.dst = dst;
    pkt.msgClass = cls;
    pkt.length = config.router.classLength(cls);
    pkt.created = cycle;
    return pkt;
}

} // namespace nocalert::noc
