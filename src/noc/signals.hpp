/**
 * @file
 * Per-cycle wire record of one router: every control signal the
 * pipeline produces or consumes in a clock cycle.
 *
 * This struct is the contract between three parties:
 *  - the router, which fills it while evaluating a cycle and *acts on
 *    its contents* (so a corrupted wire really changes behaviour);
 *  - the fault injector, which mutates it at well-defined tap points
 *    (the inputs/outputs of each module — the paper's fault model);
 *  - the NoCAlert checkers, which are pure combinational functions of
 *    this record plus the pre-cycle architectural snapshots it embeds.
 *
 * Flit *contents* (destination, packet id, payload) are assumed to be
 * protected by error-detecting codes (paper Section 3.3), so they are
 * not fault-injection targets; the control fields derived from them
 * (enables, grants, selects, state registers) are.
 */

#ifndef NOCALERT_NOC_SIGNALS_HPP
#define NOCALERT_NOC_SIGNALS_HPP

#include <array>
#include <cstdint>

#include "noc/buffer.hpp"
#include "noc/flit.hpp"
#include "noc/types.hpp"

namespace nocalert::noc {

/** Maximum supported VCs per port (hardware sweep upper bound). */
inline constexpr unsigned kMaxVcs = 8;

/** Flattened (input port, input VC) client index for VA2 arbiters. */
constexpr unsigned
vaClient(int port, unsigned vc)
{
    return static_cast<unsigned>(port) * kMaxVcs + vc;
}

/** Pre-cycle snapshot of one input VC's architectural state. */
struct VcSnapshot
{
    VcState state = VcState::Idle;
    int outPort = kInvalidPort;   ///< RC result register.
    int outVc = -1;               ///< VA result register.
    unsigned occupancy = 0;       ///< Buffered flits before this cycle.
    bool headValid = false;       ///< occupancy > 0.
    FlitType headType = FlitType::Head; ///< Type of head slot (stale-capable).
    unsigned flitsArrived = 0;    ///< Flits of current packet so far.
    unsigned expectedLength = 0;  ///< Class packet length (0 = unknown).
    FlitType lastWrittenType = FlitType::Tail; ///< Write-side history.
    bool tailArrived = false;     ///< Current packet's tail was written.

    /** VA1 stage: candidate output VC requested this cycle (-1 none). */
    int va1CandidateVc = -1;
};

/** Wire bundle of one input port for one cycle. */
struct InputPortWires
{
    // ---- Link input / buffer write (BW) ----
    bool inValid = false;         ///< A flit arrived on the link.
    Flit inFlit;                  ///< Its contents (vc field = demux select).
    std::uint32_t writeEnable = 0; ///< Per-VC write-enable (normally 1-hot).
    std::uint32_t writeDropped = 0; ///< Writes that hit a full buffer.

    // ---- Routing computation (RC) ----
    std::uint32_t rcWaiting = 0;  ///< Per-VC mask: VCs awaiting routing.
    std::uint32_t rcDone = 0;     ///< Per-VC mask: RC completed this cycle.
    int rcVc = -1;                ///< VC the RC unit served (-1 = none).
    int rcOutPort = kInvalidPort; ///< RC unit output direction.
    bool rcHeadValid = false;     ///< The served VC had a buffered flit.
    FlitType rcHeadType = FlitType::Head; ///< Type of the flit RC saw.
    Flit rcFlit;                  ///< The flit the RC unit examined.

    // ---- Switch arbitration, local stage (SA1) ----
    std::uint64_t sa1Req = 0;     ///< Request vector over VCs.
    std::uint64_t sa1Grant = 0;   ///< Grant vector over VCs.

    // ---- Buffer read (ST stage, scheduled by last cycle's SA) ----
    std::uint32_t readEnable = 0; ///< Per-VC read-enable (normally <=1-hot).
    std::uint32_t readEmpty = 0;  ///< Reads that hit an empty buffer.

    // ---- Credit return to the upstream router ----
    std::uint32_t creditSend = 0; ///< Per-VC credits sent upstream.

    /** Pre-cycle snapshots of this port's VCs. */
    std::array<VcSnapshot, kMaxVcs> vc;
};

/** Per-output-VC credit/allocation snapshot (pre-cycle). */
struct OutVcSnapshot
{
    bool free = true;             ///< Not currently allocated to a packet.
    std::uint8_t credits = 0;     ///< Free slots in the downstream buffer.
};

/** Wire bundle of one output port for one cycle. */
struct OutputPortWires
{
    // ---- Virtual-channel allocation, global stage (VA2) ----
    /** Request vector per output VC, over vaClient(port, vc) clients. */
    std::array<std::uint64_t, kMaxVcs> va2Req = {};
    /** Grant vector per output VC (normally <=1-hot). */
    std::array<std::uint64_t, kMaxVcs> va2Grant = {};

    // ---- Switch arbitration, global stage (SA2) ----
    std::uint64_t sa2Req = 0;     ///< Request vector over input ports.
    std::uint64_t sa2Grant = 0;   ///< Grant vector over input ports.

    // ---- Link output (result of ST) ----
    bool outValid = false;        ///< A flit leaves through this port.
    Flit outFlit;                 ///< Its contents.

    // ---- Incoming credits from downstream ----
    std::uint32_t creditRecv = 0; ///< Per-VC credits received this cycle.

    /** Pre-cycle snapshots of this port's output VC state. */
    std::array<OutVcSnapshot, kMaxVcs> outVc;
};

/** Complete wire record of one router for one cycle. */
struct RouterWires
{
    Cycle cycle = 0;
    NodeId router = kInvalidNode;

    std::array<InputPortWires, kNumPorts> in;
    std::array<OutputPortWires, kNumPorts> out;

    // ---- Crossbar control ----
    /** Row control: per input port, 1-hot select over output ports. */
    std::array<std::uint32_t, kNumPorts> xbarRow = {};
    /** Column control: per output port, 1-hot select over input ports. */
    std::array<std::uint32_t, kNumPorts> xbarCol = {};
    /** Flits presented to the crossbar this cycle. */
    int xbarFlitsIn = 0;
    /** Flits leaving the crossbar this cycle. */
    int xbarFlitsOut = 0;

    // ---- Ejection (local port delivery, network-level checks) ----
    bool ejectValid = false;      ///< A flit was delivered to the local NI.
    Flit ejectFlit;               ///< Its contents.

    /** Reset all wires for a new cycle (snapshots refreshed by router). */
    void clear(Cycle cycle, NodeId router);
};

// ---------------------------------------------------------------------
// Quiescence predicates (active-set kernel / checker short-circuit).
//
// A port is *quiescent* when its wire bundle proves that no module
// guarding it did any work this cycle; every Table-1 checker instance
// of a quiescent port is then trivially satisfied (verified once at
// start-up by core::verifyQuiescentInvariant). The predicates read only
// the wire record — they are as cheap as the hardware idle-detect tree
// they model.
// ---------------------------------------------------------------------

/** True iff @p in carries no activity: no arriving flit, no buffer
 *  write/read, no RC service, no SA1 traffic, no credit return, and
 *  every VC snapshot Idle and empty with no VA1 candidate. */
bool inputPortQuiescent(const InputPortWires &in, unsigned num_vcs);

/** True iff @p out carries no activity: no SA2 traffic, no VA2
 *  requests or grants, no departing flit, no arriving credit. */
bool outputPortQuiescent(const OutputPortWires &out);

/** True iff every port of @p wires is quiescent and nothing ejected. */
bool routerWiresQuiescent(const RouterWires &wires, unsigned num_vcs);

/**
 * Tap points at which the fault injector may mutate wires or state.
 * Listed in the order the router visits them within one cycle.
 */
enum class TapPoint : std::uint8_t {
    CycleStart,   ///< Before anything: architectural-state faults.
    AfterInputs,  ///< Link inputs latched; write enables derived.
    AfterSt,      ///< Switch traversal done; output/eject wires final.
    AfterSa1Req,  ///< SA local request vectors built (module inputs).
    AfterSa1,     ///< SA local grants computed (module outputs).
    AfterSa2Req,  ///< SA global request vectors built.
    AfterSa2,     ///< SA global grants computed (feeds the ST schedule).
    AfterVa1,     ///< VA candidate selections computed.
    AfterVa2Req,  ///< VA global request vectors built.
    AfterVa2,     ///< VA global grants computed.
    AfterRcReq,   ///< RC service requests (route-waiting masks) built.
    AfterRc,      ///< Routing computation outputs final.
    CycleEnd,     ///< All wires final; checkers evaluate here.
};

/** Number of tap points. */
inline constexpr unsigned kNumTapPoints = 13;

/** Name of a tap point. */
const char *tapPointName(TapPoint tap);

} // namespace nocalert::noc

#endif // NOCALERT_NOC_SIGNALS_HPP
