/**
 * @file
 * Network interface (NI): the boundary between a processing element
 * and its router.
 *
 * The injection side segments queued packets into flits and streams
 * them into the router's local input port, playing the role an
 * upstream router would: it picks a free input VC of the packet's
 * message class and respects credit-based flow control.
 *
 * The ejection side reassembles arriving flits into packets, returns
 * credits, keeps the per-flit ejection log the golden-reference
 * comparator consumes, and evaluates the network-level (end-to-end)
 * invariances: delivery to the wrong destination, flits without an
 * open packet, intra-packet order violations, and packet length
 * violations (Table 1, invariances 28 and 32).
 */

#ifndef NOCALERT_NOC_INTERFACE_HPP
#define NOCALERT_NOC_INTERFACE_HPP

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "noc/config.hpp"
#include "noc/flit.hpp"
#include "noc/types.hpp"

namespace nocalert::noc {

/** One delivered flit, as recorded by the ejection log. */
struct EjectionRecord
{
    Cycle cycle = 0;
    NodeId node = kInvalidNode; ///< Node the flit was ejected at.
    Flit flit;
};

/** End-to-end anomaly bits raised by the ejection-side checks. */
enum NiAnomaly : std::uint32_t {
    kNiWrongDestination = 1u << 0, ///< Header ejected at dst != node.
    kNiUnexpectedFlit = 1u << 1,   ///< Flit without a matching open packet.
    kNiOrderViolation = 1u << 2,   ///< Packet id / sequence mismatch.
    kNiCountViolation = 1u << 3,   ///< Packet length differs from its class.
};

/** Per-cycle observable signals of an NI (for the checker engines). */
struct NiWires
{
    Cycle cycle = 0;
    NodeId node = kInvalidNode;
    bool injectValid = false;
    Flit injectFlit;
    bool ejectValid = false;
    Flit ejectFlit;
    std::uint32_t anomalies = 0;
};

/**
 * Bit set in the packet id of end-to-end acknowledgement packets so
 * ACK ids can never collide with traffic-generator ids (which are
 * (node << 40) | count).
 */
inline constexpr PacketId kAckPacketBit = 1ULL << 63;

/** Network interface of one node. */
class NetworkInterface
{
  public:
    /** Flit/credit exchange with the local links for one cycle. */
    struct LinkIo
    {
        bool inValid = false;      ///< Flit arriving from the router.
        Flit inFlit;
        std::uint32_t creditIn = 0; ///< Credits returning from the router.
        bool outValid = false;     ///< Flit injected toward the router.
        Flit outFlit;
        std::uint32_t creditOut = 0; ///< Credits returned for ejected flits.
    };

    /** Construct the NI of node @p node. */
    NetworkInterface(const NetworkConfig &config, NodeId node);

    /** Node this NI belongs to. */
    NodeId node() const { return node_; }

    /** Queue a packet for injection. */
    void enqueue(const Packet &packet);

    /** Packets waiting (not yet fully streamed into the router). */
    std::size_t queueDepth() const { return queue_.size(); }

    /**
     * True iff nothing is queued, streaming, or awaiting an end-to-end
     * ACK. Pending retransmission state keeps the NI non-idle so the
     * active-set kernel evaluates it every cycle (retry timers must
     * fire on schedule) and drain() waits for retransmission closure.
     */
    bool idle() const
    {
        return queue_.empty() && !streaming_ && pending_.empty();
    }

    /** Evaluate one cycle of injection and ejection. */
    void evaluate(Cycle cycle, LinkIo &io);

    /**
     * Credit-only fast path for the active-set kernel: apply credits
     * returning from the router (@p credit_in, per-VC mask) to an
     * idle NI without evaluating it. For an idle NI with no arriving
     * flit this is the only state change evaluate() would make —
     * nothing can inject or eject — so the skip is unobservable.
     */
    void applyCreditIncrements(std::uint32_t credit_in);

    /** Observable signals of the most recent cycle. */
    const NiWires &wires() const { return wires_; }

    /** Every flit delivered to this node, in arrival order. */
    const std::vector<EjectionRecord> &ejectionLog() const { return log_; }

    /** Discard the ejection log (keeps counters). */
    void clearLog() { log_.clear(); }

    /** Total packets fully injected. */
    std::uint64_t packetsInjected() const { return packets_injected_; }

    /** Total flits injected. */
    std::uint64_t flitsInjected() const { return flits_injected_; }

    /** Total flits ejected. */
    std::uint64_t flitsEjected() const { return flits_ejected_; }

    /** Total packets whose tail was ejected cleanly. */
    std::uint64_t packetsEjected() const { return packets_ejected_; }

    /** Sum over ejected packets of (tail ejection - injection) cycles. */
    std::uint64_t latencySum() const { return latency_sum_; }

    // ------------------------------------------------------------------
    // End-to-end retransmission (recovery subsystem). All of this is
    // inert unless NetworkConfig::retransmit.enabled.
    // ------------------------------------------------------------------

    /** Packets awaiting an ACK (including queued/streaming retries). */
    std::size_t pendingAcks() const { return pending_.size(); }

    /** Packets re-injected after an ACK timeout or a recovery purge. */
    std::uint64_t retransmits() const { return retransmits_; }

    /** Acknowledgement packets sent by the ejection side. */
    std::uint64_t acksSent() const { return acks_sent_; }

    /** Cleanly delivered packets suppressed as duplicates. */
    std::uint64_t duplicatesSuppressed() const
    {
        return duplicates_suppressed_;
    }

    /** Packets given up on after maxRetries timeouts. */
    std::uint64_t packetsAbandoned() const { return packets_abandoned_; }

    /** Grant back @p count injection credits on VC @p vc (capped). */
    void restoreCredits(unsigned vc, unsigned count);

    /**
     * Recovery purge: abort the outgoing stream if it belongs to a
     * suspect packet (re-queueing it for retransmission when enabled)
     * and discard staged ejection state of suspect packets. Buffer and
     * link flits are handled by Network::purgePackets.
     */
    void purgePackets(const std::unordered_set<PacketId> &suspects);

    /**
     * Flits not yet handed to the router, grouped as (destination,
     * count) pairs: the unsent remainder of the streaming packet, plus
     * — when @p include_queued — the packets still waiting in the
     * injection queue.
     */
    std::vector<std::pair<NodeId, unsigned>>
    pendingFlitsByDst(bool include_queued = true) const;

  private:
    /** Mirror of one local-input VC's availability at the router. */
    struct VcTracker
    {
        bool free = true;
        std::uint8_t credits = 0;
    };

    /** Reassembly state of one ejection-side VC. */
    struct Reassembly
    {
        bool open = false;
        PacketId packet = kInvalidPacket;
        std::uint16_t nextSeq = 0;

        /** Recovery mode: an anomaly hit the open packet. */
        bool dirty = false;

        /**
         * Recovery mode: flits of the open packet, committed to the
         * ejection log only when its tail arrives clean — a corrupted
         * or duplicate delivery must leave no trace in the log the
         * golden comparator reads.
         */
        std::vector<EjectionRecord> staged;
    };

    /** One packet awaiting its end-to-end acknowledgement. */
    struct PendingAck
    {
        Packet packet;
        Cycle deadline = 0;    ///< Next retry time (once not queued).
        unsigned attempts = 0; ///< Retransmissions performed so far.
        bool queued = false;   ///< A copy is in queue_ or streaming.
        bool acked = false;    ///< ACK arrived while still streaming.
    };

    void doInject(Cycle cycle, LinkIo &io);
    void doEject(Cycle cycle, LinkIo &io);
    void doRetryTimeouts(Cycle cycle);
    void onTailInjected(Cycle cycle);
    void handleAck(PacketId id);
    void sendAck(const Flit &tail, Cycle cycle);
    Cycle retryDelay(unsigned attempts) const;
    PendingAck *findPending(PacketId id);
    void erasePending(PacketId id);

    NodeId node_;
    RouterParams params_;
    RetransmitParams retransmit_;
    int num_nodes_ = 0;

    std::deque<Packet> queue_;
    bool streaming_ = false;
    Packet current_;
    std::uint16_t next_seq_ = 0;
    unsigned stream_vc_ = 0;

    std::vector<VcTracker> trackers_;    // [vc]
    std::vector<Reassembly> reassembly_; // [vc]
    std::vector<std::uint8_t> class_rr_; // next VC to try per class

    NiWires wires_;
    std::vector<EjectionRecord> log_;

    std::uint64_t packets_injected_ = 0;
    std::uint64_t flits_injected_ = 0;
    std::uint64_t flits_ejected_ = 0;
    std::uint64_t packets_ejected_ = 0;
    std::uint64_t latency_sum_ = 0;

    std::vector<PendingAck> pending_;        ///< Awaiting end-to-end ACK.
    std::unordered_set<PacketId> delivered_; ///< Duplicate suppression.
    std::uint64_t ack_count_ = 0;
    std::uint64_t retransmits_ = 0;
    std::uint64_t acks_sent_ = 0;
    std::uint64_t duplicates_suppressed_ = 0;
    std::uint64_t packets_abandoned_ = 0;
};

} // namespace nocalert::noc

#endif // NOCALERT_NOC_INTERFACE_HPP
