/**
 * @file
 * Virtual-channel FIFO buffers and per-VC architectural state.
 *
 * The FIFO models the SRAM/flop array of a real router buffer: slots
 * retain stale contents after a pop, and a (faulty) read from an empty
 * buffer returns whatever the head slot last held — this is how a
 * control fault can forward "garbage" and effectively generate a new
 * flit in the network (paper Section 4.1, invariance 17 discussion).
 */

#ifndef NOCALERT_NOC_BUFFER_HPP
#define NOCALERT_NOC_BUFFER_HPP

#include <cstdint>
#include <vector>

#include "noc/flit.hpp"

namespace nocalert::noc {

/**
 * Circular flit FIFO with stale-slot semantics.
 */
class VcFifo
{
  public:
    /** Construct with a fixed @p depth (number of flit slots). */
    explicit VcFifo(unsigned depth = 1);

    /** Number of flits currently stored. */
    unsigned size() const { return count_; }

    /** Capacity in flits. */
    unsigned depth() const { return depth_; }

    /** True iff no flits are stored. */
    bool empty() const { return count_ == 0; }

    /** True iff the buffer is at capacity. */
    bool full() const { return count_ == depth_; }

    /**
     * Append a flit. Returns false (dropping the flit) when full — the
     * hardware analogue of a write-enable asserted on a full buffer,
     * which invariant 25 flags.
     */
    bool
    push(const Flit &flit)
    {
        if (full())
            return false;
        // head_ < depth_ and count_ <= depth_, so one conditional
        // subtraction wraps exactly (cheaper than % on the hot path).
        unsigned slot = head_ + count_;
        if (slot >= depth_)
            slot -= depth_;
        slots_[slot] = flit;
        ++count_;
        return true;
    }

    /**
     * Remove and return the head flit. When empty, returns the stale
     * contents of the head slot *without* moving pointers — the
     * hardware analogue of a read-enable on an empty buffer
     * (invariant 24).
     */
    Flit
    pop()
    {
        Flit flit = slots_[head_];
        if (count_ > 0) {
            ++head_;
            if (head_ >= depth_)
                head_ = 0;
            --count_;
        }
        return flit;
    }

    /**
     * Advance past the head flit without reading it: pop() minus the
     * copy, for callers that already peeked. No-op when empty.
     */
    void
    dropHead()
    {
        if (count_ > 0) {
            ++head_;
            if (head_ >= depth_)
                head_ = 0;
            --count_;
        }
    }

    /**
     * Contents of the slot @p offset positions past the head. Stale
     * data is visible beyond size(); offset wraps within the depth.
     */
    const Flit &
    peek(unsigned offset = 0) const
    {
        return slots_[(head_ + offset) % depth_];
    }

    /** Drop all stored flits (pointers reset; slot contents remain). */
    void clear();

    /**
     * Remove every stored flit whose packet id is @p id, preserving
     * the order of the survivors. Returns the number removed. Used by
     * recovery purges; unlike pop(), removal compacts the live region
     * (recovery is a maintenance action, not a hardware read).
     */
    unsigned removePacket(PacketId id);

  private:
    std::vector<Flit> slots_;
    unsigned depth_;
    unsigned head_ = 0;
    unsigned count_ = 0;
};

/**
 * Pipeline state of a virtual channel (paper Figure 2(b) status table).
 *
 * The progression Idle -> RouteWait -> VcAllocWait -> Active mirrors
 * the RC -> VA -> SA pipeline; invariances 17 and 20-23 assert that
 * stage actions only ever observe the matching state.
 */
enum class VcState : std::uint8_t {
    Idle,        ///< Free: no packet allocated to this VC.
    RouteWait,   ///< Header present, waiting for routing computation.
    VcAllocWait, ///< Route known, waiting for an output VC.
    Active,      ///< Output VC held; flits compete in switch arbitration.
};

/** Name of a VC state. */
const char *vcStateName(VcState state);

/** Number of distinct VcState values. */
inline constexpr unsigned kNumVcStates = 4;

/**
 * Architectural record of one input VC (the "VC status table").
 *
 * All fields are fault-injection targets: they are the outputs of the
 * VC state module in the paper's fault model.
 */
struct VcRecord
{
    VcState state = VcState::Idle;

    /** Output port computed by RC; kInvalidPort until then. */
    int outPort = kInvalidPort;

    /** Output VC granted by VA; -1 until then. */
    int outVc = -1;

    /** Message class of the packet holding this VC. */
    std::uint8_t msgClass = 0;

    /** Flits of the current packet written so far (invariant 28). */
    unsigned flitsArrived = 0;

    /** Expected length of the current packet (from its class). */
    unsigned expectedLength = 0;

    /** Type of the most recently written flit (invariant 27). */
    FlitType lastWrittenType = FlitType::Tail;

    /** True once the tail of the current packet has been written. */
    bool tailArrived = false;

    /**
     * Id of the packet currently holding this VC (kInvalidPacket when
     * Idle). Not a fault-injection target — bookkeeping that lets the
     * recovery purge identify which VCs a suspect packet owns without
     * walking allocation chains.
     */
    PacketId packet = kInvalidPacket;

    /** Reset to the idle state (buffer contents handled separately). */
    void
    reset()
    {
        state = VcState::Idle;
        outPort = kInvalidPort;
        outVc = -1;
        msgClass = 0;
        flitsArrived = 0;
        expectedLength = 0;
        lastWrittenType = FlitType::Tail;
        tailArrived = false;
        packet = kInvalidPacket;
    }
};

} // namespace nocalert::noc

#endif // NOCALERT_NOC_BUFFER_HPP
