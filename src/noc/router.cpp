#include "noc/router.hpp"

#include "noc/crossbar.hpp"
#include "util/bits.hpp"
#include "util/log.hpp"

namespace nocalert::noc {

/**
 * Deterministic stand-in for the garbage destination bits the RC unit
 * would latch when (illegally) examining a non-header flit or an empty
 * buffer slot. Real hardware reads whatever happens to be on those
 * wires; we derive a repeatable value so golden/faulty runs stay
 * comparable. Static member so the bitmask fast path (router_fast.cpp)
 * produces identical routes.
 */
NodeId
Router::garbageDst(const Flit &flit, NodeId router, int num_nodes)
{
    std::uint64_t h = flit.packet * 0x9E3779B97F4A7C15ULL +
                      static_cast<std::uint64_t>(flit.seq) * 31 +
                      static_cast<std::uint64_t>(router) * 7 + 13;
    return static_cast<NodeId>(h % static_cast<std::uint64_t>(num_nodes));
}

Router::Router(const NetworkConfig &config, NodeId node)
    : node_(node), params_(config.router)
{
    params_.validate();
    const unsigned num_vcs = params_.numVcs;

    fifos_.reserve(kNumPorts * num_vcs);
    for (unsigned i = 0; i < kNumPorts * num_vcs; ++i)
        fifos_.emplace_back(params_.bufferDepth);
    records_.resize(kNumPorts * num_vcs);
    outVcs_.resize(kNumPorts * num_vcs);
    for (auto &ov : outVcs_)
        ov.credits = static_cast<std::uint8_t>(params_.bufferDepth);

    for (int p = 0; p < kNumPorts; ++p) {
        sa1Arb_[p] = RoundRobinArbiter(num_vcs);
        sa2Arb_[p] = RoundRobinArbiter(kNumPorts);
        rcArb_[p] = RoundRobinArbiter(num_vcs);
    }
    va2Arb_.assign(kNumPorts * num_vcs,
                   RoundRobinArbiter(kNumPorts * kMaxVcs));
    va1Ptr_.assign(kNumPorts * num_vcs, 0);
}

VcRecord &
Router::vcRecord(int port, unsigned vc)
{
    NOCALERT_ASSERT(port >= 0 && port < kNumPorts && vc < params_.numVcs,
                    "bad vc index ", port, "/", vc);
    return records_[vcIndex(port, vc)];
}

const VcRecord &
Router::vcRecord(int port, unsigned vc) const
{
    return records_[vcIndex(port, vc)];
}

VcFifo &
Router::fifo(int port, unsigned vc)
{
    return fifos_[vcIndex(port, vc)];
}

const VcFifo &
Router::fifo(int port, unsigned vc) const
{
    return fifos_[vcIndex(port, vc)];
}

OutVcState &
Router::outVcState(int port, unsigned vc)
{
    return outVcs_[vcIndex(port, vc)];
}

const OutVcState &
Router::outVcState(int port, unsigned vc) const
{
    return outVcs_[vcIndex(port, vc)];
}

RoundRobinArbiter &
Router::va2Arbiter(int port, unsigned vc)
{
    return va2Arb_[vcIndex(port, vc)];
}

std::uint8_t &
Router::va1Pointer(int port, unsigned vc)
{
    return va1Ptr_[vcIndex(port, vc)];
}

bool
Router::idle() const
{
    for (const auto &fifo : fifos_)
        if (!fifo.empty())
            return false;
    for (const auto &entry : sched_)
        if (entry.valid)
            return false;
    return true;
}

bool
Router::quiescent() const
{
    // VC records first: a RouteWait record requests RC service and a
    // VcAllocWait record bids in VA even with an empty buffer, so
    // idle() alone is not a no-op certificate.
    for (const auto &rec : records_)
        if (rec.state != VcState::Idle)
            return false;
    // Out-VC credit deficits and allocations need no evaluation to
    // persist: they only change on credit arrival (a link wake-up) or
    // on local VA/ST activity, which the records above rule out.
    return idle();
}


void
Router::tap(TapPoint point, const TapHook *hook)
{
    if (hook && *hook)
        (*hook)(*this, point, wires_);
}

void
Router::takeSnapshots()
{
    const unsigned num_vcs = params_.numVcs;
    for (int p = 0; p < kNumPorts; ++p) {
        for (unsigned v = 0; v < num_vcs; ++v) {
            const VcRecord &rec = records_[vcIndex(p, v)];
            const VcFifo &fifo = fifos_[vcIndex(p, v)];
            VcSnapshot &snap = wires_.in[p].vc[v];
            snap.state = rec.state;
            snap.outPort = rec.outPort;
            snap.outVc = rec.outVc;
            snap.occupancy = fifo.size();
            snap.headValid = !fifo.empty();
            snap.headType = fifo.peek(0).type;
            snap.flitsArrived = rec.flitsArrived;
            snap.expectedLength = rec.expectedLength;
            snap.lastWrittenType = rec.lastWrittenType;
            snap.tailArrived = rec.tailArrived;

            const OutVcState &ov = outVcs_[vcIndex(p, v)];
            OutVcSnapshot &osnap = wires_.out[p].outVc[v];
            osnap.free = ov.free;
            osnap.credits = ov.credits;
        }
    }
}

void
Router::applyCredits(const Context & /*ctx*/)
{
    const unsigned num_vcs = params_.numVcs;
    const auto depth = static_cast<std::uint8_t>(params_.bufferDepth);
    for (int o = 0; o < kNumPorts; ++o) {
        std::uint32_t mask = wires_.out[o].creditRecv;
        for (unsigned v = 0; v < num_vcs; ++v) {
            if (getBit(mask, v)) {
                OutVcState &ov = outVcs_[vcIndex(o, v)];
                if (ov.credits < depth)
                    ++ov.credits;
            }
        }
    }
}

void
Router::applyCreditIncrements(
    const std::array<std::uint32_t, kNumPorts> &credit_in)
{
    // Mirror of applyCredits(), fed directly from the link wires
    // instead of the evaluated wire record: the capped per-VC
    // increment is the entire architectural effect of a credit
    // arriving at a quiescent router.
    const unsigned num_vcs = params_.numVcs;
    const auto depth = static_cast<std::uint8_t>(params_.bufferDepth);
    for (int o = 0; o < kNumPorts; ++o) {
        const std::uint32_t mask = credit_in[o];
        if (mask == 0)
            continue;
        for (unsigned v = 0; v < num_vcs; ++v) {
            if (getBit(mask, v)) {
                OutVcState &ov = outVcs_[vcIndex(o, v)];
                if (ov.credits < depth)
                    ++ov.credits;
            }
        }
    }
}

void
Router::addOutputCredits(int port, unsigned vc, unsigned count)
{
    if (port < 0 || port >= kNumPorts || vc >= params_.numVcs)
        return;
    const auto depth = static_cast<std::uint8_t>(params_.bufferDepth);
    OutVcState &ov = outVcs_[vcIndex(port, vc)];
    for (unsigned i = 0; i < count && ov.credits < depth; ++i)
        ++ov.credits;
}

std::uint64_t
Router::purgePackets(
    const std::unordered_set<PacketId> &suspects,
    const std::function<void(int port, unsigned vc, unsigned removed)>
        &removed_upstream)
{
    const unsigned num_vcs = params_.numVcs;
    const auto depth = static_cast<std::uint8_t>(params_.bufferDepth);
    std::uint64_t removed_total = 0;

    for (int p = 0; p < kNumPorts; ++p) {
        for (unsigned v = 0; v < num_vcs; ++v) {
            VcFifo &fifo = fifos_[vcIndex(p, v)];
            VcRecord &rec = records_[vcIndex(p, v)];

            unsigned removed = 0;
            for (PacketId id : suspects)
                removed += fifo.removePacket(id);
            if (removed > 0) {
                removed_total += removed;
                if (removed_upstream)
                    removed_upstream(p, v, removed);
            }

            if (rec.state == VcState::Idle ||
                suspects.count(rec.packet) == 0) {
                continue;
            }

            // A pending crossbar read for this VC holds credits its
            // SA2 grant reserved; hand them back and cancel the read.
            XbarSchedule &entry = sched_[p];
            if (entry.valid && entry.vc % num_vcs == v) {
                for (int o = 0; o < kNumPorts; ++o) {
                    if (!getBit(entry.rowMask, o))
                        continue;
                    if (entry.outVcWire < num_vcs) {
                        OutVcState &ov =
                            outVcs_[vcIndex(o, entry.outVcWire)];
                        if (ov.credits < depth)
                            ++ov.credits;
                    }
                }
                entry = XbarSchedule{};
            }

            // Release the output VC the purged packet was granted.
            if (rec.state == VcState::Active && rec.outPort >= 0 &&
                rec.outPort < kNumPorts && rec.outVc >= 0 &&
                rec.outVc < static_cast<int>(num_vcs)) {
                OutVcState &ov = outVcs_[vcIndex(
                    rec.outPort, static_cast<unsigned>(rec.outVc))];
                if (!ov.free && ov.ownerPort == p &&
                    ov.ownerVc == static_cast<int>(v)) {
                    ov.free = true;
                    ov.ownerPort = -1;
                    ov.ownerVc = -1;
                }
            }

            if (fifo.empty()) {
                rec.reset();
            } else {
                // Survivors of a (non-atomic) mixed buffer: restart
                // the VC state machine on the new head packet.
                const Flit &head = fifo.peek(0);
                rec.reset();
                rec.state = VcState::RouteWait;
                rec.msgClass = head.msgClass;
                rec.packet = head.packet;
                rec.flitsArrived = fifo.size();
                rec.expectedLength =
                    head.msgClass < params_.classes.size()
                        ? params_.classLength(head.msgClass) : 0;
                rec.lastWrittenType = fifo.peek(fifo.size() - 1).type;
                rec.tailArrived = isTail(rec.lastWrittenType);
            }
        }
    }
    return removed_total;
}

void
Router::doSwitchTraversal(const Context & /*ctx*/, LinkIo & /*io*/)
{
    const unsigned num_vcs = params_.numVcs;

    std::array<std::optional<Flit>, kNumPorts> xbar_in;
    std::array<std::uint32_t, kNumPorts> rows = {};

    for (int p = 0; p < kNumPorts; ++p) {
        XbarSchedule &entry = sched_[p];
        if (!entry.valid)
            continue;

        const unsigned v = entry.vc % num_vcs;
        VcFifo &fifo = fifos_[vcIndex(p, v)];
        VcRecord &rec = records_[vcIndex(p, v)];

        wires_.in[p].readEnable =
            static_cast<std::uint32_t>(
                setBit(wires_.in[p].readEnable, v));

        const bool was_empty = fifo.empty();
        Flit flit = fifo.pop();
        if (was_empty)
            wires_.in[p].readEmpty = static_cast<std::uint32_t>(
                setBit(wires_.in[p].readEmpty, v));

        // The credit return is driven by the read-enable control
        // signal, so a (faulty) stale read still emits a credit —
        // exactly the over-count a real router would produce.
        wires_.in[p].creditSend = static_cast<std::uint32_t>(
            setBit(wires_.in[p].creditSend, v));

        flit.vc = entry.outVcWire;
        xbar_in[p] = flit;
        rows[p] = entry.rowMask &
                  static_cast<std::uint32_t>(lowMask(kNumPorts));

        if (!was_empty && isTail(flit.type)) {
            // The wormhole ends: release the output VC this packet
            // held and move the input VC to its next packet (if any).
            if (rec.outPort >= 0 && rec.outPort < kNumPorts &&
                rec.outVc >= 0 &&
                rec.outVc < static_cast<int>(num_vcs)) {
                OutVcState &ov = outVcs_[vcIndex(rec.outPort,
                                                 static_cast<unsigned>(
                                                     rec.outVc))];
                ov.free = true;
                ov.ownerPort = -1;
                ov.ownerVc = -1;
            }
            if (fifo.empty()) {
                rec.reset();
            } else {
                rec.state = VcState::RouteWait;
                rec.outPort = kInvalidPort;
                rec.outVc = -1;
                rec.packet = fifo.peek(0).packet;
            }
        }

        entry = XbarSchedule{};
    }

    const Crossbar::Result result = Crossbar::transfer(xbar_in, rows);
    wires_.xbarRow = rows;
    wires_.xbarCol = result.col;
    wires_.xbarFlitsIn = result.flitsIn;
    wires_.xbarFlitsOut = result.flitsOut;

    for (int o = 0; o < kNumPorts; ++o) {
        if (result.output[o].has_value()) {
            wires_.out[o].outValid = true;
            wires_.out[o].outFlit = *result.output[o];
            if (o == portIndex(Port::Local)) {
                wires_.ejectValid = true;
                wires_.ejectFlit = *result.output[o];
            }
        }
    }
}

void
Router::doSwitchArbitration(const Context &ctx, const TapHook *hook)
{
    const unsigned num_vcs = params_.numVcs;

    // ---- SA1: per input port, pick one competing VC ----
    for (int p = 0; p < kNumPorts; ++p) {
        std::uint64_t requests = 0;
        for (unsigned v = 0; v < num_vcs; ++v) {
            const VcRecord &rec = records_[vcIndex(p, v)];
            if (rec.state != VcState::Active)
                continue;
            const VcFifo &fifo = fifos_[vcIndex(p, v)];
            // A flit already committed to the ST pipeline register is
            // no longer available for arbitration: "pending reads" are
            // derived from the schedule register itself, exactly as
            // the hardware's availability logic would.
            const XbarSchedule &entry = sched_[p];
            const unsigned pending =
                entry.valid && entry.vc % num_vcs == v ? 1 : 0;
            if (fifo.size() <= pending)
                continue; // no unscheduled flit available
            if (rec.outPort < 0 || rec.outPort >= kNumPorts ||
                rec.outVc < 0 ||
                rec.outVc >= static_cast<int>(num_vcs)) {
                continue; // corrupted route state: cannot request
            }
            const OutVcState &ov =
                outVcs_[vcIndex(rec.outPort,
                                static_cast<unsigned>(rec.outVc))];
            if (ov.credits == 0)
                continue; // downstream buffer full
            requests = setBit(requests, v);
        }
        wires_.in[p].sa1Req = requests;
    }
    tap(TapPoint::AfterSa1Req, hook);
    for (int p = 0; p < kNumPorts; ++p) {
        wires_.in[p].sa1Grant = RoundRobinArbiter::compute(
            wires_.in[p].sa1Req, sa1Arb_[p].pointer(), num_vcs);
    }
    tap(TapPoint::AfterSa1, hook);
    for (int p = 0; p < kNumPorts; ++p)
        sa1Arb_[p].commit(wires_.in[p].sa1Grant & lowMask(num_vcs));

    // ---- SA2: per output port, pick one input port ----
    // The SA1 winner multiplexer: with a non-one-hot grant (possible
    // only under faults) the lowest selected VC wins the mux; with a
    // zero grant the mux output is undefined and reads as VC 0.
    std::array<int, kNumPorts> sa1_winner;
    for (int p = 0; p < kNumPorts; ++p) {
        std::uint64_t grant = wires_.in[p].sa1Grant & lowMask(num_vcs);
        sa1_winner[p] = grant ? lowestSetBit(grant) : -1;
    }

    for (int o = 0; o < kNumPorts; ++o) {
        std::uint64_t requests = 0;
        for (int p = 0; p < kNumPorts; ++p) {
            const int v = sa1_winner[p];
            if (v < 0)
                continue;
            const VcRecord &rec =
                records_[vcIndex(p, static_cast<unsigned>(v))];
            if (rec.outPort == o)
                requests = setBit(requests, static_cast<unsigned>(p));
        }
        wires_.out[o].sa2Req = requests;
    }
    tap(TapPoint::AfterSa2Req, hook);
    for (int o = 0; o < kNumPorts; ++o) {
        wires_.out[o].sa2Grant = RoundRobinArbiter::compute(
            wires_.out[o].sa2Req, sa2Arb_[o].pointer(), kNumPorts);
    }
    tap(TapPoint::AfterSa2, hook);

    // ---- Commit: pipeline the winners into the ST schedule ----
    std::array<bool, kNumPorts> port_scheduled = {};
    for (int o = 0; o < kNumPorts; ++o) {
        std::uint64_t grant = wires_.out[o].sa2Grant & lowMask(kNumPorts);
        sa2Arb_[o].commit(grant);
        while (grant != 0) {
            const int p = lowestSetBit(grant);
            grant = clearBit(grant, static_cast<unsigned>(p));

            // A grant without an SA1 winner (fault) steers the winner
            // mux's undefined output: VC 0's flit gets forwarded.
            const unsigned v = sa1_winner[p] >= 0
                ? static_cast<unsigned>(sa1_winner[p]) : 0u;
            VcRecord &rec = records_[vcIndex(p, v)];

            XbarSchedule &entry = sched_[p];
            entry.valid = true;
            entry.vc = static_cast<std::uint8_t>(v);
            entry.rowMask = static_cast<std::uint32_t>(
                setBit(entry.rowMask, static_cast<unsigned>(o)));
            entry.outVcWire = vcWireValue(rec.outVc);
            port_scheduled[p] = true;

            // Credit reservation at the granting output port.
            const std::uint8_t vcw = entry.outVcWire;
            if (vcw < num_vcs) {
                OutVcState &ov = outVcs_[vcIndex(o, vcw)];
                if (ov.credits > 0)
                    --ov.credits;
            }
        }
    }
    (void)ctx;
}

void
Router::doVcAllocation(const Context &ctx, const TapHook *hook)
{
    const unsigned num_vcs = params_.numVcs;
    const auto depth = static_cast<std::uint8_t>(params_.bufferDepth);

    // Snapshot the allocation table as the VA module sees it (after
    // this cycle's credit updates and releases): invariance 7 checks
    // the allocator against its actual inputs.
    for (int o = 0; o < kNumPorts; ++o) {
        for (unsigned w = 0; w < num_vcs; ++w) {
            const OutVcState &ov = outVcs_[vcIndex(o, w)];
            wires_.out[o].outVc[w].free = ov.free;
            wires_.out[o].outVc[w].credits = ov.credits;
        }
    }

    // ---- VA1: each waiting input VC selects a candidate output VC ----
    for (int p = 0; p < kNumPorts; ++p) {
        for (unsigned v = 0; v < num_vcs; ++v) {
            const VcRecord &rec = records_[vcIndex(p, v)];
            if (rec.state != VcState::VcAllocWait)
                continue;
            const int o = rec.outPort;
            if (o < 0 || o >= kNumPorts)
                continue; // corrupted route register: no candidate
            const unsigned cls =
                rec.msgClass < params_.classes.size() ? rec.msgClass : 0;

            std::uint64_t candidates = 0;
            for (unsigned w = 0; w < num_vcs; ++w) {
                if (params_.vcClass(w) != cls)
                    continue;
                const OutVcState &ov = outVcs_[vcIndex(o, w)];
                if (!ov.free)
                    continue;
                if (params_.atomicBuffers
                        ? ov.credits != depth
                        : ov.credits == 0) {
                    continue;
                }
                candidates = setBit(candidates, w);
            }
            const std::uint64_t sel = RoundRobinArbiter::compute(
                candidates, va1Ptr_[vcIndex(p, v)], num_vcs);
            if (sel != 0)
                wires_.in[p].vc[v].va1CandidateVc = lowestSetBit(sel);
        }
    }
    tap(TapPoint::AfterVa1, hook);

    // ---- Build VA2 requests from the (possibly corrupted) candidates ----
    for (int p = 0; p < kNumPorts; ++p) {
        for (unsigned v = 0; v < num_vcs; ++v) {
            const int cand = wires_.in[p].vc[v].va1CandidateVc;
            if (cand < 0 || cand >= static_cast<int>(kMaxVcs))
                continue;
            const VcRecord &rec = records_[vcIndex(p, v)];
            const int o = rec.outPort;
            if (o < 0 || o >= kNumPorts)
                continue;
            wires_.out[o].va2Req[static_cast<unsigned>(cand)] = setBit(
                wires_.out[o].va2Req[static_cast<unsigned>(cand)],
                vaClient(p, v));
        }
    }

    tap(TapPoint::AfterVa2Req, hook);

    // ---- VA2: per output VC, arbitrate among requesting input VCs ----
    for (int o = 0; o < kNumPorts; ++o) {
        for (unsigned w = 0; w < num_vcs; ++w) {
            const std::uint64_t requests = wires_.out[o].va2Req[w];
            wires_.out[o].va2Grant[w] = RoundRobinArbiter::compute(
                requests, va2Arb_[vcIndex(o, w)].pointer(),
                kNumPorts * kMaxVcs);
        }
    }
    tap(TapPoint::AfterVa2, hook);

    // ---- Commit allocations ----
    for (int o = 0; o < kNumPorts; ++o) {
        for (unsigned w = 0; w < num_vcs; ++w) {
            std::uint64_t grant = wires_.out[o].va2Grant[w] &
                                  lowMask(kNumPorts * kMaxVcs);
            va2Arb_[vcIndex(o, w)].commit(grant);
            while (grant != 0) {
                const int client = lowestSetBit(grant);
                grant = clearBit(grant, static_cast<unsigned>(client));
                const int p = client / static_cast<int>(kMaxVcs);
                const unsigned v =
                    static_cast<unsigned>(client) % kMaxVcs;
                if (p >= kNumPorts || v >= num_vcs)
                    continue;
                VcRecord &rec = records_[vcIndex(p, v)];
                rec.outVc = static_cast<int>(w);
                rec.state = VcState::Active;
                va1Ptr_[vcIndex(p, v)] =
                    static_cast<std::uint8_t>((w + 1) % num_vcs);

                OutVcState &ov = outVcs_[vcIndex(o, w)];
                ov.free = false;
                ov.ownerPort = p;
                ov.ownerVc = static_cast<int>(v);
            }
        }
    }
    (void)ctx;
}

void
Router::doBufferWriteAndRc(const Context &ctx, const TapHook *hook)
{
    const unsigned num_vcs = params_.numVcs;

    // ---- BW: commit the (possibly corrupted) write enables ----
    for (int p = 0; p < kNumPorts; ++p) {
        InputPortWires &ipw = wires_.in[p];
        std::uint32_t enables =
            ipw.writeEnable & static_cast<std::uint32_t>(lowMask(num_vcs));
        while (enables != 0) {
            const unsigned v =
                static_cast<unsigned>(lowestSetBit(enables));
            enables = static_cast<std::uint32_t>(clearBit(enables, v));

            VcRecord &rec = records_[vcIndex(p, v)];
            VcFifo &fifo = fifos_[vcIndex(p, v)];
            const Flit &flit = ipw.inFlit;

            if (!fifo.push(flit)) {
                ipw.writeDropped = static_cast<std::uint32_t>(
                    setBit(ipw.writeDropped, v));
                continue;
            }

            rec.lastWrittenType = flit.type;
            if (isHead(flit.type)) {
                rec.flitsArrived = 1;
                rec.tailArrived = isTail(flit.type);
                rec.expectedLength =
                    flit.msgClass < params_.classes.size()
                        ? params_.classLength(flit.msgClass) : 0;
                if (rec.state == VcState::Idle) {
                    rec.state = VcState::RouteWait;
                    rec.outPort = kInvalidPort;
                    rec.outVc = -1;
                    rec.msgClass = flit.msgClass;
                    rec.packet = flit.packet;
                }
                // A header landing in a non-idle VC is an atomicity /
                // mixing anomaly: the flits pile into the buffer and
                // the checkers flag it; state is left untouched, as
                // the VC state machine only reacts to legal starts.
            } else {
                ++rec.flitsArrived;
                if (isTail(flit.type))
                    rec.tailArrived = true;
            }
        }
    }

    // ---- RC: serve one route-waiting VC per input port ----
    for (int p = 0; p < kNumPorts; ++p) {
        std::uint64_t waiting = 0;
        for (unsigned v = 0; v < num_vcs; ++v)
            if (records_[vcIndex(p, v)].state == VcState::RouteWait)
                waiting = setBit(waiting, v);
        wires_.in[p].rcWaiting = static_cast<std::uint32_t>(waiting);
    }
    tap(TapPoint::AfterRcReq, hook);
    for (int p = 0; p < kNumPorts; ++p) {
        const std::uint64_t waiting =
            wires_.in[p].rcWaiting & lowMask(num_vcs);
        if (waiting == 0)
            continue;

        const std::uint64_t grant = RoundRobinArbiter::compute(
            waiting, rcArb_[p].pointer(), num_vcs);
        const unsigned v = static_cast<unsigned>(lowestSetBit(grant));
        const VcFifo &fifo = fifos_[vcIndex(p, v)];

        InputPortWires &ipw = wires_.in[p];
        ipw.rcVc = static_cast<int>(v);
        ipw.rcDone = static_cast<std::uint32_t>(grant);
        ipw.rcHeadValid = !fifo.empty();
        ipw.rcHeadType = fifo.peek(0).type;
        ipw.rcFlit = fifo.peek(0);

        Flit routed = ipw.rcFlit;
        if (fifo.empty() || !isHead(routed.type)) {
            // RC examining garbage: the destination wires carry stale
            // bits (deterministically modelled).
            routed.dst =
                garbageDst(routed, node_, ctx.config->numNodes());
        }
        ipw.rcOutPort = ctx.routing->route(*ctx.config, node_, routed, p);
    }
    tap(TapPoint::AfterRc, hook);

    // ---- Commit routing results ----
    for (int p = 0; p < kNumPorts; ++p) {
        const InputPortWires &ipw = wires_.in[p];
        std::uint32_t done =
            ipw.rcDone & static_cast<std::uint32_t>(lowMask(num_vcs));
        if (done == 0)
            continue;
        rcArb_[p].commit(done);
        while (done != 0) {
            const unsigned v = static_cast<unsigned>(lowestSetBit(done));
            done = static_cast<std::uint32_t>(clearBit(done, v));
            VcRecord &rec = records_[vcIndex(p, v)];
            rec.state = VcState::VcAllocWait;
            rec.outPort = ipw.rcOutPort;
            rec.outVc = -1;
            if (ipw.rcFlit.msgClass < params_.classes.size())
                rec.msgClass = ipw.rcFlit.msgClass;
        }
    }
}

void
Router::evaluate(const Context &ctx, Cycle cycle, LinkIo &io,
                 const TapHook *hook)
{
    NOCALERT_ASSERT(ctx.config && ctx.routing, "router context incomplete");

    wires_.clear(cycle, node_);
    tap(TapPoint::CycleStart, hook);
    takeSnapshots();

    // Latch link inputs onto the wires.
    const unsigned num_vcs = params_.numVcs;
    for (int p = 0; p < kNumPorts; ++p) {
        InputPortWires &ipw = wires_.in[p];
        ipw.inValid = io.inValid[p];
        if (ipw.inValid) {
            ipw.inFlit = io.inFlit[p];
            // Input demultiplexer: the flit's VC id field selects the
            // buffer; the field is bitsFor(numVcs) wires wide.
            const unsigned sel = ipw.inFlit.vc &
                                 lowMask(bitsFor(num_vcs));
            if (sel < num_vcs)
                ipw.writeEnable = 1u << sel;
        }
    }
    for (int o = 0; o < kNumPorts; ++o)
        wires_.out[o].creditRecv = io.creditIn[o];
    tap(TapPoint::AfterInputs, hook);

    applyCredits(ctx);
    doSwitchTraversal(ctx, io);
    tap(TapPoint::AfterSt, hook);

    if (params_.speculative) {
        doVcAllocation(ctx, hook);
        doSwitchArbitration(ctx, hook);
    } else {
        doSwitchArbitration(ctx, hook);
        doVcAllocation(ctx, hook);
    }

    doBufferWriteAndRc(ctx, hook);
    tap(TapPoint::CycleEnd, hook);

    // Drive the outgoing links from the final wire values.
    for (int o = 0; o < kNumPorts; ++o) {
        io.outValid[o] = wires_.out[o].outValid;
        io.outFlit[o] = wires_.out[o].outFlit;
    }
    for (int p = 0; p < kNumPorts; ++p)
        io.creditOut[p] = wires_.in[p].creditSend;
}

} // namespace nocalert::noc
