/**
 * @file
 * The P x P crossbar switch.
 *
 * Modelled as one multiplexer per output column driven by a column
 * control vector (derived from the row selects the switch allocator
 * produces). Under fault injection a row select may be zero (the flit
 * read from its buffer vanishes), multi-hot (unwanted multicast —
 * invariance 15), or two rows may target one column (flit collision —
 * invariance 14): the transfer function models all of these
 * faithfully so the network-level consequences are real.
 */

#ifndef NOCALERT_NOC_CROSSBAR_HPP
#define NOCALERT_NOC_CROSSBAR_HPP

#include <array>
#include <cstdint>
#include <optional>

#include "noc/flit.hpp"
#include "noc/types.hpp"

namespace nocalert::noc {

/** Stateless crossbar transfer function. */
class Crossbar
{
  public:
    /** Outcome of one cycle's traversal. */
    struct Result
    {
        /** Flit driven onto each output port (if any). */
        std::array<std::optional<Flit>, kNumPorts> output;

        /** Column control vectors (per output, over inputs). */
        std::array<std::uint32_t, kNumPorts> col = {};

        /** Number of valid input flits presented. */
        int flitsIn = 0;

        /** Number of output ports driven. */
        int flitsOut = 0;
    };

    /**
     * Drive the switch.
     *
     * @param inputs Flit presented by each input row (nullopt = idle).
     * @param rows   Row control vector per input (bit j = drive output j).
     *
     * When several rows select the same column, the lowest-numbered
     * row wins the output multiplexer and the other flits are lost on
     * the switch — the hardware analogue of a collision.
     */
    static Result transfer(
        const std::array<std::optional<Flit>, kNumPorts> &inputs,
        const std::array<std::uint32_t, kNumPorts> &rows);
};

} // namespace nocalert::noc

#endif // NOCALERT_NOC_CROSSBAR_HPP
