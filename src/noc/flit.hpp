/**
 * @file
 * Flits and packets — the units of data movement in the network.
 *
 * Packets are segmented into flits by the source network interface.
 * The head flit carries routing information (destination); body and
 * tail flits follow the wormhole set up by the head. Every flit carries
 * its packet id and sequence number so the golden-reference comparator
 * can detect drops, duplicates, mixing, and reordering exactly.
 */

#ifndef NOCALERT_NOC_FLIT_HPP
#define NOCALERT_NOC_FLIT_HPP

#include <cstdint>
#include <string>

#include "noc/types.hpp"

namespace nocalert::noc {

/** Position of a flit inside its packet. */
enum class FlitType : std::uint8_t {
    Head,     ///< First flit of a multi-flit packet.
    Body,     ///< Middle flit.
    Tail,     ///< Last flit of a multi-flit packet.
    HeadTail, ///< Sole flit of a single-flit packet.
};

/** Name of a flit type ("H", "B", "T", "HT"). */
const char *flitTypeName(FlitType type);

/** True for Head and HeadTail flits. */
constexpr bool
isHead(FlitType type)
{
    return type == FlitType::Head || type == FlitType::HeadTail;
}

/** True for Tail and HeadTail flits. */
constexpr bool
isTail(FlitType type)
{
    return type == FlitType::Tail || type == FlitType::HeadTail;
}

/** Globally unique packet identifier. */
using PacketId = std::uint64_t;

/** Sentinel for "no packet". */
inline constexpr PacketId kInvalidPacket = ~0ULL;

/**
 * One flit on a wire or in a buffer.
 *
 * The @c vc field models the virtual-channel identifier that travels
 * with the flit on the link: it selects the input VC buffer at the
 * downstream router (the input demultiplexer in Figure 1). It is
 * rewritten during switch traversal to the output VC allocated by VA.
 */
struct Flit
{
    FlitType type = FlitType::Head;
    PacketId packet = kInvalidPacket;
    std::uint16_t seq = 0;        ///< Position within the packet (0-based).
    NodeId src = kInvalidNode;    ///< Source node.
    NodeId dst = kInvalidNode;    ///< Destination node (head flits route on it).
    std::uint8_t msgClass = 0;    ///< Protocol-level message class.
    std::uint8_t vc = 0;          ///< VC id on the current link.
    Cycle injected = 0;           ///< Cycle the packet entered the source NI.

    /**
     * kInvalidPacket for ordinary data flits. For end-to-end
     * acknowledgement packets (recovery subsystem), the id of the
     * packet being acknowledged. ACKs travel as regular ctrl-class
     * packets; only the destination NI interprets this field.
     */
    PacketId ackFor = kInvalidPacket;

    bool operator==(const Flit &) const = default;

    /** Compact debug representation. */
    std::string toString() const;
};

/**
 * A packet awaiting injection at a network interface.
 */
struct Packet
{
    PacketId id = kInvalidPacket;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::uint8_t msgClass = 0;
    std::uint16_t length = 1;     ///< Number of flits.
    Cycle created = 0;            ///< Cycle the traffic generator made it.

    /** Packet id this packet acknowledges (kInvalidPacket for data). */
    PacketId ackFor = kInvalidPacket;

    /** Build flit number @p seq of this packet. */
    Flit makeFlit(std::uint16_t seq) const;
};

} // namespace nocalert::noc

#endif // NOCALERT_NOC_FLIT_HPP
