#include "noc/trace.hpp"

#include <sstream>

#include "util/bits.hpp"

namespace nocalert::noc {

const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::BufferWrite: return "BW";
      case TraceKind::RcDone: return "RC";
      case TraceKind::VaGrant: return "VA";
      case TraceKind::SaGrant: return "SA";
      case TraceKind::FlitOut: return "OUT";
      case TraceKind::Eject: return "EJ";
      case TraceKind::Inject: return "IN";
      case TraceKind::Credit: return "CR";
    }
    return "?";
}

std::string
TraceEvent::toString() const
{
    std::ostringstream os;
    os << "c=" << cycle << " r" << router << " "
       << traceKindName(kind);
    if (port >= 0)
        os << " p=" << portName(port);
    if (vc >= 0)
        os << " vc=" << vc;
    if (kind != TraceKind::Credit && flit.packet != kInvalidPacket) {
        os << " " << flitTypeName(flit.type) << " pkt=" << flit.packet
           << "." << flit.seq << " ->" << flit.dst;
    }
    return os.str();
}

void
TraceRecorder::record(TraceEvent event)
{
    if (filter_ && !filter_(event))
        return;
    if (limit_ != 0 && events_.size() >= limit_)
        events_.erase(events_.begin());
    events_.push_back(std::move(event));
}

void
TraceRecorder::observeRouter(const Router &router,
                             const RouterWires &wires)
{
    const unsigned num_vcs = router.params().numVcs;
    const Cycle cycle = wires.cycle;
    const NodeId node = wires.router;

    for (int p = 0; p < kNumPorts; ++p) {
        const InputPortWires &ipw = wires.in[p];

        if (ipw.inValid) {
            const int vc = ipw.writeEnable
                ? lowestSetBit(ipw.writeEnable) : -1;
            record({TraceKind::BufferWrite, cycle, node, p, vc,
                    ipw.inFlit});
        }
        if (ipw.rcDone != 0) {
            TraceEvent event{TraceKind::RcDone, cycle, node, p,
                             ipw.rcVc, ipw.rcFlit};
            record(std::move(event));
        }
        // Credits returned upstream.
        std::uint32_t credits =
            ipw.creditSend & static_cast<std::uint32_t>(lowMask(num_vcs));
        while (credits != 0) {
            const int vc = lowestSetBit(credits);
            credits = static_cast<std::uint32_t>(
                clearBit(credits, static_cast<unsigned>(vc)));
            record({TraceKind::Credit, cycle, node, p, vc, Flit{}});
        }
    }

    for (int o = 0; o < kNumPorts; ++o) {
        const OutputPortWires &opw = wires.out[o];
        for (unsigned w = 0; w < num_vcs; ++w) {
            std::uint64_t grant = opw.va2Grant[w];
            while (grant != 0) {
                const int client = lowestSetBit(grant);
                grant = clearBit(grant, static_cast<unsigned>(client));
                record({TraceKind::VaGrant, cycle, node, o,
                        static_cast<int>(w), Flit{}});
            }
        }
        if (opw.sa2Grant != 0)
            record({TraceKind::SaGrant, cycle, node, o,
                    opw.outValid ? opw.outFlit.vc : -1, Flit{}});
        if (opw.outValid) {
            const TraceKind kind = o == portIndex(Port::Local)
                ? TraceKind::Eject : TraceKind::FlitOut;
            record({kind, cycle, node, o, opw.outFlit.vc, opw.outFlit});
        }
    }
}

void
TraceRecorder::observeNi(const NetworkInterface &ni, const NiWires &wires)
{
    if (wires.injectValid) {
        record({TraceKind::Inject, wires.cycle, ni.node(),
                portIndex(Port::Local), wires.injectFlit.vc,
                wires.injectFlit});
    }
}

std::string
TraceRecorder::dump() const
{
    std::ostringstream os;
    for (const TraceEvent &event : events_)
        os << event.toString() << "\n";
    return os.str();
}

TraceFilter
TraceRecorder::routerFilter(NodeId node)
{
    return [node](const TraceEvent &event) {
        return event.router == node;
    };
}

TraceFilter
TraceRecorder::packetFilter(PacketId packet)
{
    return [packet](const TraceEvent &event) {
        return event.flit.packet == packet;
    };
}

TraceFilter
TraceRecorder::windowFilter(Cycle first, Cycle last)
{
    return [first, last](const TraceEvent &event) {
        return event.cycle >= first && event.cycle <= last;
    };
}

} // namespace nocalert::noc
