#include "noc/crossbar.hpp"

#include "util/bits.hpp"

namespace nocalert::noc {

Crossbar::Result
Crossbar::transfer(const std::array<std::optional<Flit>, kNumPorts> &inputs,
                   const std::array<std::uint32_t, kNumPorts> &rows)
{
    Result result;

    for (int i = 0; i < kNumPorts; ++i)
        if (inputs[i].has_value())
            ++result.flitsIn;

    // Column vectors are the transpose of the row vectors.
    for (int i = 0; i < kNumPorts; ++i) {
        for (int j = 0; j < kNumPorts; ++j) {
            if (getBit(rows[i], static_cast<unsigned>(j)))
                result.col[j] = static_cast<std::uint32_t>(
                    setBit(result.col[j], static_cast<unsigned>(i)));
        }
    }

    // Each output multiplexer forwards the lowest-numbered selected
    // input that actually carries a flit.
    for (int j = 0; j < kNumPorts; ++j) {
        std::uint32_t selects = result.col[j];
        while (selects != 0) {
            int i = lowestSetBit(selects);
            selects = static_cast<std::uint32_t>(
                clearBit(selects, static_cast<unsigned>(i)));
            if (inputs[i].has_value()) {
                result.output[j] = inputs[i];
                ++result.flitsOut;
                break;
            }
        }
    }

    return result;
}

} // namespace nocalert::noc
