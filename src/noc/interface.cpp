#include "noc/interface.hpp"

#include "util/bits.hpp"
#include "util/log.hpp"

namespace nocalert::noc {

NetworkInterface::NetworkInterface(const NetworkConfig &config, NodeId node)
    : node_(node), params_(config.router)
{
    trackers_.resize(params_.numVcs);
    for (auto &tracker : trackers_)
        tracker.credits = static_cast<std::uint8_t>(params_.bufferDepth);
    reassembly_.resize(params_.numVcs);
    class_rr_.assign(params_.classes.size(), 0);
}

void
NetworkInterface::enqueue(const Packet &packet)
{
    NOCALERT_ASSERT(packet.src == node_, "packet src ", packet.src,
                    " queued at node ", node_);
    queue_.push_back(packet);
}

void
NetworkInterface::evaluate(Cycle cycle, LinkIo &io)
{
    wires_ = NiWires{};
    wires_.cycle = cycle;
    wires_.node = node_;

    // Credits returned by the router's local input port.
    for (unsigned v = 0; v < params_.numVcs; ++v) {
        if (getBit(io.creditIn, v)) {
            VcTracker &tracker = trackers_[v];
            if (tracker.credits < params_.bufferDepth)
                ++tracker.credits;
        }
    }

    doEject(cycle, io);
    doInject(cycle, io);
}

void
NetworkInterface::applyCreditIncrements(std::uint32_t credit_in)
{
    for (unsigned v = 0; v < params_.numVcs; ++v) {
        if (getBit(credit_in, v)) {
            VcTracker &tracker = trackers_[v];
            if (tracker.credits < params_.bufferDepth)
                ++tracker.credits;
        }
    }
}

std::vector<std::pair<NodeId, unsigned>>
NetworkInterface::pendingFlitsByDst(bool include_queued) const
{
    std::vector<std::pair<NodeId, unsigned>> pending;
    if (streaming_) {
        pending.emplace_back(
            current_.dst,
            static_cast<unsigned>(current_.length - next_seq_));
    }
    if (include_queued) {
        // The streaming packet (if any) is still queue_.front().
        for (std::size_t i = streaming_ ? 1 : 0; i < queue_.size(); ++i)
            pending.emplace_back(queue_[i].dst, queue_[i].length);
    }
    return pending;
}

void
NetworkInterface::doInject(Cycle cycle, LinkIo &io)
{
    (void)cycle;
    if (!streaming_ && !queue_.empty()) {
        const Packet &pkt = queue_.front();
        const unsigned cls =
            pkt.msgClass < params_.classes.size() ? pkt.msgClass : 0;
        // Pick a free VC of the packet's class; atomic VCs additionally
        // require the downstream buffer to be fully drained.
        const auto vcs = params_.classVcs(cls);
        const unsigned start = class_rr_[cls] % vcs.size();
        for (std::size_t i = 0; i < vcs.size(); ++i) {
            const unsigned v = vcs[(start + i) % vcs.size()];
            const VcTracker &tracker = trackers_[v];
            const bool drained =
                tracker.credits == params_.bufferDepth;
            if (tracker.free &&
                (params_.atomicBuffers ? drained
                                       : tracker.credits > 0)) {
                streaming_ = true;
                current_ = pkt;
                next_seq_ = 0;
                stream_vc_ = v;
                trackers_[v].free = false;
                class_rr_[cls] =
                    static_cast<std::uint8_t>((start + i + 1) % vcs.size());
                break;
            }
        }
    }

    if (!streaming_)
        return;

    VcTracker &tracker = trackers_[stream_vc_];
    if (tracker.credits == 0)
        return; // downstream buffer full; retry next cycle

    Flit flit = current_.makeFlit(next_seq_);
    flit.vc = static_cast<std::uint8_t>(stream_vc_);
    io.outValid = true;
    io.outFlit = flit;
    --tracker.credits;
    ++flits_injected_;
    wires_.injectValid = true;
    wires_.injectFlit = flit;

    ++next_seq_;
    if (next_seq_ == current_.length) {
        streaming_ = false;
        tracker.free = true; // reallocation still gated by credits
        queue_.pop_front();
        ++packets_injected_;
    }
}

void
NetworkInterface::doEject(Cycle cycle, LinkIo &io)
{
    if (!io.inValid)
        return;

    const Flit &flit = io.inFlit;
    ++flits_ejected_;
    log_.push_back({cycle, node_, flit});
    wires_.ejectValid = true;
    wires_.ejectFlit = flit;

    // Return a credit for the router's local-output path. The credit
    // is indexed by the VC the flit arrived on.
    const unsigned v = flit.vc & lowMask(bitsFor(params_.numVcs));
    if (v < params_.numVcs)
        io.creditOut = static_cast<std::uint32_t>(
            setBit(io.creditOut, v));

    // ---- End-to-end (network-level) invariance checks ----
    Reassembly &asm_state =
        reassembly_[v < params_.numVcs ? v : 0];

    if (isHead(flit.type)) {
        if (flit.dst != node_)
            wires_.anomalies |= kNiWrongDestination;
        if (asm_state.open)
            wires_.anomalies |= kNiUnexpectedFlit; // previous unfinished
        asm_state.open = true;
        asm_state.packet = flit.packet;
        asm_state.nextSeq = 1;
        if (flit.seq != 0)
            wires_.anomalies |= kNiOrderViolation;
    } else {
        if (!asm_state.open) {
            wires_.anomalies |= kNiUnexpectedFlit;
        } else if (flit.packet != asm_state.packet ||
                   flit.seq != asm_state.nextSeq) {
            wires_.anomalies |= kNiOrderViolation;
            asm_state.nextSeq =
                static_cast<std::uint16_t>(flit.seq + 1);
        } else {
            ++asm_state.nextSeq;
        }
    }

    if (isTail(flit.type)) {
        const unsigned expected =
            flit.msgClass < params_.classes.size()
                ? params_.classLength(flit.msgClass) : 0;
        if (expected != 0 &&
            static_cast<unsigned>(flit.seq) + 1 != expected) {
            wires_.anomalies |= kNiCountViolation;
        }
        if (asm_state.open && flit.packet == asm_state.packet &&
            wires_.anomalies == 0) {
            ++packets_ejected_;
            latency_sum_ +=
                static_cast<std::uint64_t>(cycle - flit.injected);
        }
        asm_state.open = false;
        asm_state.packet = kInvalidPacket;
        asm_state.nextSeq = 0;
    }
}

} // namespace nocalert::noc
