#include "noc/interface.hpp"

#include "util/bits.hpp"
#include "util/log.hpp"

namespace nocalert::noc {

NetworkInterface::NetworkInterface(const NetworkConfig &config, NodeId node)
    : node_(node), params_(config.router), retransmit_(config.retransmit),
      num_nodes_(config.numNodes())
{
    trackers_.resize(params_.numVcs);
    for (auto &tracker : trackers_)
        tracker.credits = static_cast<std::uint8_t>(params_.bufferDepth);
    reassembly_.resize(params_.numVcs);
    class_rr_.assign(params_.classes.size(), 0);
}

void
NetworkInterface::enqueue(const Packet &packet)
{
    NOCALERT_ASSERT(packet.src == node_, "packet src ", packet.src,
                    " queued at node ", node_);
    queue_.push_back(packet);
}

void
NetworkInterface::evaluate(Cycle cycle, LinkIo &io)
{
    wires_ = NiWires{};
    wires_.cycle = cycle;
    wires_.node = node_;

    // Credits returned by the router's local input port.
    for (unsigned v = 0; v < params_.numVcs; ++v) {
        if (getBit(io.creditIn, v)) {
            VcTracker &tracker = trackers_[v];
            if (tracker.credits < params_.bufferDepth)
                ++tracker.credits;
        }
    }

    doEject(cycle, io);
    doRetryTimeouts(cycle);
    doInject(cycle, io);
}

void
NetworkInterface::applyCreditIncrements(std::uint32_t credit_in)
{
    for (unsigned v = 0; v < params_.numVcs; ++v) {
        if (getBit(credit_in, v)) {
            VcTracker &tracker = trackers_[v];
            if (tracker.credits < params_.bufferDepth)
                ++tracker.credits;
        }
    }
}

std::vector<std::pair<NodeId, unsigned>>
NetworkInterface::pendingFlitsByDst(bool include_queued) const
{
    std::vector<std::pair<NodeId, unsigned>> pending;
    if (streaming_) {
        pending.emplace_back(
            current_.dst,
            static_cast<unsigned>(current_.length - next_seq_));
    }
    if (include_queued) {
        // The streaming packet (if any) is still queue_.front().
        for (std::size_t i = streaming_ ? 1 : 0; i < queue_.size(); ++i)
            pending.emplace_back(queue_[i].dst, queue_[i].length);
    }
    return pending;
}

void
NetworkInterface::doInject(Cycle cycle, LinkIo &io)
{
    if (!streaming_ && !queue_.empty()) {
        const Packet &pkt = queue_.front();
        const unsigned cls =
            pkt.msgClass < params_.classes.size() ? pkt.msgClass : 0;
        // Pick a free VC of the packet's class; atomic VCs additionally
        // require the downstream buffer to be fully drained.
        const auto vcs = params_.classVcs(cls);
        const unsigned start = class_rr_[cls] % vcs.size();
        for (std::size_t i = 0; i < vcs.size(); ++i) {
            const unsigned v = vcs[(start + i) % vcs.size()];
            const VcTracker &tracker = trackers_[v];
            const bool drained =
                tracker.credits == params_.bufferDepth;
            if (tracker.free &&
                (params_.atomicBuffers ? drained
                                       : tracker.credits > 0)) {
                streaming_ = true;
                current_ = pkt;
                next_seq_ = 0;
                stream_vc_ = v;
                trackers_[v].free = false;
                class_rr_[cls] =
                    static_cast<std::uint8_t>((start + i + 1) % vcs.size());
                break;
            }
        }
    }

    if (!streaming_)
        return;

    VcTracker &tracker = trackers_[stream_vc_];
    if (tracker.credits == 0)
        return; // downstream buffer full; retry next cycle

    Flit flit = current_.makeFlit(next_seq_);
    flit.vc = static_cast<std::uint8_t>(stream_vc_);
    io.outValid = true;
    io.outFlit = flit;
    --tracker.credits;
    ++flits_injected_;
    wires_.injectValid = true;
    wires_.injectFlit = flit;

    ++next_seq_;
    if (next_seq_ == current_.length) {
        streaming_ = false;
        tracker.free = true; // reallocation still gated by credits
        queue_.pop_front();
        ++packets_injected_;
        if (retransmit_.enabled)
            onTailInjected(cycle);
    }
}

Cycle
NetworkInterface::retryDelay(unsigned attempts) const
{
    const unsigned shift = attempts < 16 ? attempts : 16;
    std::uint64_t mult = 1ULL << shift;
    if (mult > retransmit_.backoffCap)
        mult = retransmit_.backoffCap;
    return static_cast<Cycle>(
        static_cast<std::uint64_t>(retransmit_.ackTimeout) * mult);
}

NetworkInterface::PendingAck *
NetworkInterface::findPending(PacketId id)
{
    for (auto &entry : pending_)
        if (entry.packet.id == id)
            return &entry;
    return nullptr;
}

void
NetworkInterface::erasePending(PacketId id)
{
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->packet.id == id) {
            pending_.erase(it);
            return;
        }
    }
}

void
NetworkInterface::onTailInjected(Cycle cycle)
{
    if (current_.ackFor != kInvalidPacket)
        return; // ACKs are fire-and-forget; a lost ACK causes a
                // retransmit, which the destination suppresses.
    PendingAck *entry = findPending(current_.id);
    if (entry == nullptr) {
        PendingAck fresh;
        fresh.packet = current_;
        fresh.deadline = cycle + retryDelay(0);
        pending_.push_back(fresh);
        return;
    }
    if (entry->acked) {
        // Acknowledged while the retransmission was still streaming.
        erasePending(current_.id);
        return;
    }
    entry->queued = false;
    entry->deadline = cycle + retryDelay(entry->attempts);
}

void
NetworkInterface::doRetryTimeouts(Cycle cycle)
{
    if (!retransmit_.enabled || pending_.empty())
        return;
    for (std::size_t i = 0; i < pending_.size();) {
        PendingAck &entry = pending_[i];
        if (entry.queued || entry.acked || cycle < entry.deadline) {
            ++i;
            continue;
        }
        if (entry.attempts >= retransmit_.maxRetries) {
            ++packets_abandoned_;
            pending_.erase(pending_.begin() +
                           static_cast<std::ptrdiff_t>(i));
            continue;
        }
        ++entry.attempts;
        ++retransmits_;
        entry.queued = true;
        queue_.push_back(entry.packet);
        ++i;
    }
}

void
NetworkInterface::handleAck(PacketId id)
{
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        PendingAck &entry = pending_[i];
        if (entry.packet.id != id)
            continue;
        if (streaming_ && current_.id == id) {
            // Mid-retransmit: never abort a worm in flight — let the
            // stream finish (the destination suppresses the duplicate)
            // and drop the entry when the tail goes out.
            entry.acked = true;
            return;
        }
        if (entry.queued) {
            // A retry copy is still waiting in the queue; cancel it.
            for (auto it = queue_.begin(); it != queue_.end(); ++it) {
                if (it->id == id) {
                    queue_.erase(it);
                    break;
                }
            }
        }
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
    }
    // No entry: stale ACK for an already-closed packet; ignore.
}

void
NetworkInterface::sendAck(const Flit &tail, Cycle cycle)
{
    if (tail.src < 0 || tail.src >= num_nodes_ || tail.src == node_)
        return; // corrupted source field; nothing sensible to ACK
    Packet ack;
    ack.id = kAckPacketBit |
             (static_cast<PacketId>(node_) << 40) | (ack_count_++);
    ack.src = node_;
    ack.dst = tail.src;
    ack.msgClass = 0;
    ack.length = params_.classLength(0);
    ack.created = cycle;
    ack.ackFor = tail.packet;
    queue_.push_back(ack);
    ++acks_sent_;
}

void
NetworkInterface::restoreCredits(unsigned vc, unsigned count)
{
    if (vc >= params_.numVcs)
        return;
    VcTracker &tracker = trackers_[vc];
    for (unsigned i = 0; i < count && tracker.credits < params_.bufferDepth;
         ++i) {
        ++tracker.credits;
    }
}

void
NetworkInterface::purgePackets(const std::unordered_set<PacketId> &suspects)
{
    if (streaming_ && suspects.count(current_.id) != 0) {
        // Abort the outgoing worm (its already-sent flits have been
        // purged from the network) and release the stream VC.
        streaming_ = false;
        trackers_[stream_vc_].free = true;
        if (!queue_.empty())
            queue_.pop_front(); // current_ is a copy of the front
        if (retransmit_.enabled && current_.ackFor == kInvalidPacket) {
            PendingAck *entry = findPending(current_.id);
            if (entry == nullptr) {
                PendingAck fresh;
                fresh.packet = current_;
                fresh.queued = true;
                pending_.push_back(fresh);
                queue_.push_back(current_);
                ++retransmits_;
            } else if (!entry->acked) {
                entry->queued = true;
                queue_.push_back(current_);
                ++retransmits_;
            } else {
                erasePending(current_.id);
            }
        } else if (current_.ackFor != kInvalidPacket) {
            queue_.push_back(current_); // resend the aborted ACK
        }
    }
    for (auto &asm_state : reassembly_) {
        if (asm_state.open && suspects.count(asm_state.packet) != 0) {
            asm_state.open = false;
            asm_state.packet = kInvalidPacket;
            asm_state.nextSeq = 0;
            asm_state.dirty = false;
            asm_state.staged.clear();
        }
    }
}

void
NetworkInterface::doEject(Cycle cycle, LinkIo &io)
{
    if (!io.inValid)
        return;

    const Flit &flit = io.inFlit;
    ++flits_ejected_;
    // Recovery mode stages flits per packet and only commits a clean,
    // non-duplicate delivery to the log (see Reassembly::staged); the
    // plain path logs every flit immediately, as the comparator's
    // fault-evidence stream.
    if (!retransmit_.enabled)
        log_.push_back({cycle, node_, flit});
    wires_.ejectValid = true;
    wires_.ejectFlit = flit;

    // Return a credit for the router's local-output path. The credit
    // is indexed by the VC the flit arrived on.
    const unsigned v = flit.vc & lowMask(bitsFor(params_.numVcs));
    if (v < params_.numVcs)
        io.creditOut = static_cast<std::uint32_t>(
            setBit(io.creditOut, v));

    // Acknowledgement packets are consumed here: never logged, never
    // reassembled, never re-ACKed.
    if (retransmit_.enabled && flit.ackFor != kInvalidPacket) {
        if (flit.dst != node_)
            wires_.anomalies |= kNiWrongDestination;
        else if (isHead(flit.type))
            handleAck(flit.ackFor);
        return;
    }

    // ---- End-to-end (network-level) invariance checks ----
    Reassembly &asm_state =
        reassembly_[v < params_.numVcs ? v : 0];

    if (isHead(flit.type)) {
        if (flit.dst != node_)
            wires_.anomalies |= kNiWrongDestination;
        if (asm_state.open)
            wires_.anomalies |= kNiUnexpectedFlit; // previous unfinished
        asm_state.open = true;
        asm_state.packet = flit.packet;
        asm_state.nextSeq = 1;
        if (flit.seq != 0)
            wires_.anomalies |= kNiOrderViolation;
        if (retransmit_.enabled) {
            asm_state.staged.clear();
            asm_state.dirty = flit.dst != node_ || flit.seq != 0;
            asm_state.staged.push_back({cycle, node_, flit});
        }
    } else {
        if (!asm_state.open) {
            wires_.anomalies |= kNiUnexpectedFlit;
        } else if (flit.packet != asm_state.packet ||
                   flit.seq != asm_state.nextSeq) {
            wires_.anomalies |= kNiOrderViolation;
            asm_state.nextSeq =
                static_cast<std::uint16_t>(flit.seq + 1);
            asm_state.dirty = true;
        } else {
            ++asm_state.nextSeq;
        }
        if (retransmit_.enabled && asm_state.open)
            asm_state.staged.push_back({cycle, node_, flit});
    }

    if (isTail(flit.type)) {
        const unsigned expected =
            flit.msgClass < params_.classes.size()
                ? params_.classLength(flit.msgClass) : 0;
        const bool count_bad =
            expected != 0 &&
            static_cast<unsigned>(flit.seq) + 1 != expected;
        if (count_bad)
            wires_.anomalies |= kNiCountViolation;

        if (!retransmit_.enabled) {
            if (asm_state.open && flit.packet == asm_state.packet &&
                wires_.anomalies == 0) {
                ++packets_ejected_;
                latency_sum_ +=
                    static_cast<std::uint64_t>(cycle - flit.injected);
            }
        } else if (asm_state.open && flit.packet == asm_state.packet) {
            if (count_bad)
                asm_state.dirty = true;
            if (!asm_state.dirty) {
                if (delivered_.count(flit.packet) != 0) {
                    // Retransmitted copy of a packet already
                    // delivered: suppress it, but re-ACK (the first
                    // ACK may have been lost).
                    ++duplicates_suppressed_;
                    sendAck(flit, cycle);
                } else {
                    delivered_.insert(flit.packet);
                    for (const auto &rec : asm_state.staged)
                        log_.push_back(rec);
                    ++packets_ejected_;
                    latency_sum_ += static_cast<std::uint64_t>(
                        cycle - flit.injected);
                    sendAck(flit, cycle);
                }
            }
            // A dirty delivery leaves no trace: the sender's timeout
            // will retransmit it.
        }
        asm_state.open = false;
        asm_state.packet = kInvalidPacket;
        asm_state.nextSeq = 0;
        if (retransmit_.enabled) {
            asm_state.dirty = false;
            asm_state.staged.clear();
        }
    }
}

} // namespace nocalert::noc
