/**
 * @file
 * Aggregated network performance statistics.
 */

#ifndef NOCALERT_NOC_STATS_HPP
#define NOCALERT_NOC_STATS_HPP

#include <cstdint>
#include <string>

#include "noc/types.hpp"

namespace nocalert::noc {

/** Whole-network counters collected from the network interfaces. */
struct NetworkStats
{
    std::uint64_t packetsCreated = 0;
    std::uint64_t packetsInjected = 0;
    std::uint64_t packetsEjected = 0;
    std::uint64_t flitsInjected = 0;
    std::uint64_t flitsEjected = 0;
    std::uint64_t latencySum = 0;
    Cycle cycles = 0;

    /** Mean packet latency in cycles (0 when nothing was delivered). */
    double avgPacketLatency() const;

    /** Delivered flits per node per cycle. */
    double throughput(int num_nodes) const;

    /** One-line human-readable summary. */
    std::string summary() const;
};

} // namespace nocalert::noc

#endif // NOCALERT_NOC_STATS_HPP
