#include "noc/link.hpp"

namespace nocalert::noc {

void
Link::tick()
{
    recvValid = sendValid;
    recvFlit = sendFlit;
    sendValid = false;

    creditRecv = creditSend;
    creditSend = 0;
}

void
Link::clear()
{
    *this = Link{};
}

} // namespace nocalert::noc
