#include "noc/link.hpp"

namespace nocalert::noc {

void
Link::clear()
{
    *this = Link{};
}

} // namespace nocalert::noc
