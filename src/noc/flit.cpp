#include "noc/flit.hpp"

#include <sstream>

#include "util/log.hpp"

namespace nocalert::noc {

const char *
flitTypeName(FlitType type)
{
    switch (type) {
      case FlitType::Head: return "H";
      case FlitType::Body: return "B";
      case FlitType::Tail: return "T";
      case FlitType::HeadTail: return "HT";
    }
    return "?";
}

std::string
Flit::toString() const
{
    std::ostringstream os;
    os << "flit{" << flitTypeName(type) << " pkt=" << packet
       << " seq=" << seq << " " << src << "->" << dst
       << " cls=" << int(msgClass) << " vc=" << int(vc) << "}";
    return os.str();
}

Flit
Packet::makeFlit(std::uint16_t seq) const
{
    NOCALERT_ASSERT(seq < length, "flit seq ", seq, " out of range for "
                    "packet of length ", length);
    Flit flit;
    if (length == 1)
        flit.type = FlitType::HeadTail;
    else if (seq == 0)
        flit.type = FlitType::Head;
    else if (seq + 1 == length)
        flit.type = FlitType::Tail;
    else
        flit.type = FlitType::Body;
    flit.packet = id;
    flit.seq = seq;
    flit.src = src;
    flit.dst = dst;
    flit.msgClass = msgClass;
    flit.injected = created;
    flit.ackFor = ackFor;
    return flit;
}

} // namespace nocalert::noc
