/**
 * @file
 * Static configuration of routers and the network.
 *
 * The defaults reproduce the paper's evaluation platform (Section 5.1):
 * an 8x8 mesh of five-stage pipelined routers with four 5-flit-deep
 * atomic VCs per input port, 128-bit links, wormhole switching,
 * credit-based flow control, and deterministic XY routing.
 */

#ifndef NOCALERT_NOC_CONFIG_HPP
#define NOCALERT_NOC_CONFIG_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "noc/types.hpp"

namespace nocalert::noc {

/** Selectable routing algorithms (see routing.hpp). */
enum class RoutingAlgo {
    XY,        ///< Dimension-ordered, X first (paper baseline).
    YX,        ///< Dimension-ordered, Y first.
    WestFirst, ///< Turn-model adaptive: west hops first, then adaptive.
    O1Turn,    ///< Per-packet random choice between XY and YX.
    QAdaptive, ///< Quarantine-aware west-first: XY when fault-free,
               ///< detours around quarantined ports after recovery.
};

/** Name of a routing algorithm. */
const char *routingAlgoName(RoutingAlgo algo);

/** Inverse of routingAlgoName (nullopt for unknown names). */
std::optional<RoutingAlgo> routingAlgoFromName(std::string_view name);

/**
 * One protocol-level message class.
 *
 * Classes model the cache-coherence message types sharing the network;
 * VCs are statically partitioned among classes so protocol deadlock is
 * avoided, and every packet of a class has the same fixed length
 * (which invariant 28 checks).
 */
struct MessageClassSpec
{
    std::string name;
    std::uint16_t packetLength = 1; ///< Flits per packet of this class.
};

/** Per-router micro-architectural parameters. */
struct RouterParams
{
    /** Virtual channels per input port. */
    unsigned numVcs = 4;

    /** Buffer depth (flits) of each VC. */
    unsigned bufferDepth = 5;

    /**
     * Atomic VCs: a buffer may hold flits of only one packet at a
     * time, and an output VC is only granted when the downstream
     * buffer is completely empty. Non-atomic VCs may interleave whole
     * packets back-to-back (invariant 27 applies instead of 26).
     */
    bool atomicBuffers = true;

    /**
     * Speculative pipeline (Section 4.4 variant): SA may be won in the
     * same cycle VA completes, shortening the pipeline by one stage
     * and relaxing the VA-before-SA ordering invariant.
     */
    bool speculative = false;

    /** Flit (and link) width in bits; used by the hardware model. */
    unsigned flitWidthBits = 128;

    /**
     * Arm the extension checkers beyond the paper's Table-1 set:
     * cross-module allocation-consistency assertions (an occupied
     * output VC must have a live owner whose route registers point
     * back at it). Off by default — the faithful 32-checker
     * configuration. These close part of the silent-starvation gap
     * that single-VC designs expose (see EXPERIMENTS.md).
     */
    bool extendedChecks = false;

    /** Protocol message classes sharing the network. */
    std::vector<MessageClassSpec> classes = {
        {"ctrl", 1},
        {"data", 5},
    };

    /** Message class a VC belongs to (contiguous partition). */
    unsigned
    vcClass(unsigned vc) const
    {
        // Contiguous partition: with C classes and V VCs, class c
        // owns VCs [c*V/C, (c+1)*V/C).
        auto c = static_cast<unsigned>(classes.size());
        return static_cast<unsigned>(
            (static_cast<std::uint64_t>(vc) * c) / numVcs);
    }

    /** VCs belonging to message class @p cls, in increasing order. */
    std::vector<unsigned> classVcs(unsigned cls) const;

    /** Packet length of message class @p cls. */
    std::uint16_t
    classLength(unsigned cls) const
    {
        return classes[cls].packetLength;
    }

    /** Abort with a message if the parameters are inconsistent. */
    void validate() const;
};

/**
 * End-to-end retransmission parameters (the recovery subsystem's
 * network-interface half). When enabled, every injected packet is
 * held by its source NI until the destination NI acknowledges a
 * clean, complete delivery; on timeout the packet is re-injected
 * with capped exponential backoff, and the destination suppresses
 * duplicate deliveries so the ejection log sees each packet once.
 */
struct RetransmitParams
{
    /** Master switch; everything below is inert when false. */
    bool enabled = false;

    /** Base cycles to wait for an ACK after the tail is injected. */
    Cycle ackTimeout = 600;

    /** Retransmissions attempted before a packet is abandoned. */
    unsigned maxRetries = 3;

    /** Cap on the exponential backoff multiplier (1, 2, 4, ...). */
    unsigned backoffCap = 4;
};

/** Whole-network configuration. */
struct NetworkConfig
{
    /** Mesh width (columns). */
    int width = 8;

    /** Mesh height (rows). */
    int height = 8;

    /** Router micro-architecture. */
    RouterParams router;

    /** Routing algorithm. */
    RoutingAlgo routing = RoutingAlgo::XY;

    /** End-to-end retransmission (recovery support). */
    RetransmitParams retransmit;

    /** Number of nodes in the mesh. */
    int numNodes() const { return width * height; }

    /** Coordinate of a node id. */
    Coord
    coordOf(NodeId node) const
    {
        return {node % width, node / width};
    }

    /** Node id of a coordinate. */
    NodeId
    nodeAt(Coord c) const
    {
        return c.y * width + c.x;
    }

    /** Neighbor of @p node through mesh port @p port, or kInvalidNode. */
    NodeId
    neighborOf(NodeId node, int port) const
    {
        Coord c = coordOf(node);
        switch (static_cast<Port>(port)) {
          case Port::North: c.y += 1; break;
          case Port::South: c.y -= 1; break;
          case Port::East: c.x += 1; break;
          case Port::West: c.x -= 1; break;
          default: return kInvalidNode;
        }
        if (c.x < 0 || c.x >= width || c.y < 0 || c.y >= height)
            return kInvalidNode;
        return nodeAt(c);
    }

    /** True iff @p node has a link on mesh port @p port. */
    bool
    portConnected(NodeId node, int port) const
    {
        if (port == portIndex(Port::Local))
            return true;
        return neighborOf(node, port) != kInvalidNode;
    }

    /** Minimal hop distance between two nodes. */
    int
    hopDistance(NodeId a, NodeId b) const
    {
        const Coord ca = coordOf(a);
        const Coord cb = coordOf(b);
        const int dx = ca.x - cb.x;
        const int dy = ca.y - cb.y;
        return (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy);
    }

    /** Abort with a message if the configuration is inconsistent. */
    void validate() const;
};

} // namespace nocalert::noc

#endif // NOCALERT_NOC_CONFIG_HPP
