/**
 * @file
 * The mesh network: routers, links, network interfaces, and the
 * synchronous cycle loop.
 *
 * The network is value-semantic: copying it snapshots the *entire*
 * machine state (buffers, credits, arbiter pointers, in-flight link
 * values, NI queues, traffic-generator RNG streams). The fault
 * campaign warms one network up and then copies it once per injection
 * run, which is what makes thousands of injections affordable.
 *
 * Observers (the NoCAlert engine, the ForEVeR model, fault injectors)
 * attach to a network instance and are deliberately *not* copied.
 */

#ifndef NOCALERT_NOC_NETWORK_HPP
#define NOCALERT_NOC_NETWORK_HPP

#include <cstddef>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "noc/config.hpp"
#include "noc/interface.hpp"
#include "noc/link.hpp"
#include "noc/router.hpp"
#include "noc/stats.hpp"
#include "noc/traffic.hpp"
#include "traffic/workload.hpp"

namespace nocalert::noc {

/**
 * Simulation kernel selection.
 *
 * Active (default) maintains an active set: a cycle only evaluates
 * routers with flit stimulus or non-quiescent state, NIs with work or
 * arriving flits, and busy links; a quiescent router or idle NI woken
 * only by returning credits takes a credit fast path (the capped
 * counter increment is the evaluation's entire effect). Provably
 * bit-exact with Dense on every observable (ejection logs, stats,
 * alert streams) — the differential kernel-equivalence tests assert
 * it — because a skipped module's evaluation is an architectural
 * no-op and its observers could only see quiescent wires. Two
 * *non*-observables differ: the traffic RNG streams stop advancing
 * once generation stopped, and per-router/per-NI observers do not
 * fire for skipped modules.
 *
 * Dense evaluates everything every cycle — the original kernel. Use
 * it when an external observer must see every router every cycle
 * (e.g. whole-network tracing) or to cross-check the active kernel.
 *
 * Bitmask keeps the active kernel's scheduling and adds the
 * struct-of-arrays fast path (Router::evaluateFast): an evaluated
 * router whose packed state passes the eligibility screen commits
 * its cycle by sparse bitmask iteration — no wire record, no
 * snapshots, no branchy checker bank — and reports any invariant
 * fires as one violation word through the packed observer. Routers
 * the screen rejects (suspect state, anomalous stimulus) and pinned
 * routers (tap hooks, forced-active) take the branchy path with the
 * full checker bank, so behaviour under faults is bit-identical to
 * Dense/Active; the three-way kernel-equivalence tests pin this.
 * Like Active, per-router observers do not fire for fast-path
 * routers (install a packed observer to receive their violations),
 * and tap hooks are only delivered to pinned routers.
 */
enum class KernelMode : std::uint8_t {
    Active,
    Dense,
    Bitmask,
};

/** A complete mesh NoC with attached traffic sources. */
class Network
{
  public:
    /**
     * Called once per router per cycle after the router finished
     * evaluating (all wires final). Checker engines live here.
     */
    using RouterObserver =
        std::function<void(const Router &, const RouterWires &)>;

    /** Called once per NI per cycle after it evaluated. */
    using NiObserver =
        std::function<void(const NetworkInterface &, const NiWires &)>;

    /** Called once at the end of every step() (all state committed). */
    using CycleObserver = std::function<void(const Network &)>;

    /**
     * Called for a fast-path router evaluation that fired at least
     * one invariant (bitmask kernel only), at the router's position
     * in the per-cycle observer sequence. Fast-path evaluations with
     * an empty violation mask are not reported.
     */
    using PackedObserver =
        std::function<void(const Router &, const PackedCycleEvents &)>;

    /** Build a network for @p config driven by @p workload. */
    Network(const NetworkConfig &config,
            const nocalert::traffic::WorkloadSpec &workload);

    /** Convenience: a network driven by legacy synthetic traffic. */
    Network(const NetworkConfig &config, const TrafficSpec &traffic);

    /** Deep copy; hooks and observers are NOT carried over. */
    Network(const Network &other);
    Network &operator=(const Network &other);

    Network(Network &&) = default;
    Network &operator=(Network &&) = default;

    /** Configuration the network was built with. */
    const NetworkConfig &config() const { return config_; }

    /** The routing algorithm instance in use. */
    const RoutingAlgorithm &routing() const { return *routing_; }

    /** Current simulation time (cycles completed). */
    Cycle cycle() const { return cycle_; }

    /** Kernel in use. Copies inherit the mode. */
    KernelMode kernelMode() const { return kernel_mode_; }

    /** Select the kernel. Safe to switch at any cycle boundary. */
    void setKernelMode(KernelMode mode);

    /** Routers evaluated so far (kernel-effort instrumentation). */
    std::uint64_t routerEvaluations() const { return router_evals_; }

    /** NIs evaluated so far (kernel-effort instrumentation). */
    std::uint64_t niEvaluations() const { return ni_evals_; }

    /**
     * Pin router @p node into the active set: it evaluates every
     * cycle even while quiescent. Used for routers carrying an armed
     * fault site, so an injection on an idle router still fires at
     * exactly its scheduled cycle. Cleared by copies.
     */
    void forceRouterActive(NodeId node);

    /**
     * Narrow tap delivery to @p nodes. setTapHook() conservatively
     * pins *every* router active (a hook may need to see any router's
     * taps); callers that only tap specific routers — the fault
     * injector taps the armed sites — call this afterwards so the
     * remaining routers can be scheduled out again.
     */
    void setTapFocus(const std::vector<NodeId> &nodes);

    /** Advance one clock cycle. */
    void step();

    /** Advance @p cycles clock cycles. */
    void run(Cycle cycles);

    /**
     * Run until no traffic remains anywhere (delivered or stuck) or
     * @p max_cycles additional cycles elapse. Returns true iff the
     * network fully drained. Traffic generation should have stopped
     * (TrafficSpec::stopCycle) for this to terminate.
     */
    bool drain(Cycle max_cycles);

    /** True iff no flit is buffered, queued, scheduled, or in flight. */
    bool quiescent() const;

    /**
     * Router of node @p node. The non-const accessor also wakes the
     * router: callers may mutate architectural state directly (tests,
     * fault models), which can turn a scheduled-out router live again.
     */
    Router &router(NodeId node);
    const Router &router(NodeId node) const;

    /** Network interface of node @p node. */
    NetworkInterface &ni(NodeId node);
    const NetworkInterface &ni(NodeId node) const;

    /** Workload generator (shared by all nodes). */
    nocalert::traffic::WorkloadGenerator &workload() { return traffic_; }
    const nocalert::traffic::WorkloadGenerator &workload() const
    {
        return traffic_;
    }

    /**
     * Install the per-router tap hook (fault injection). A non-null
     * hook pins every router active (see setTapFocus to narrow); a
     * null hook releases the pin.
     */
    void setTapHook(Router::TapHook hook)
    {
        tap_hook_ = std::move(hook);
        tap_force_all_ = static_cast<bool>(tap_hook_);
    }

    /** Install the per-router cycle observer (checker engines). */
    void setRouterObserver(RouterObserver obs)
    {
        router_observer_ = std::move(obs);
    }

    /** Install the per-NI cycle observer. */
    void setNiObserver(NiObserver obs) { ni_observer_ = std::move(obs); }

    /** Install the fast-path violation observer (bitmask kernel). */
    void setPackedObserver(PackedObserver obs)
    {
        packed_observer_ = std::move(obs);
    }

    /** Install the end-of-cycle observer. */
    void setCycleObserver(CycleObserver obs)
    {
        cycle_observer_ = std::move(obs);
    }

    /**
     * Count in-flight flits grouped by destination node: flits in
     * router buffers, on links, and the unsent remainder of packets
     * already streaming out of an NI. With @p include_queued, packets
     * still waiting in NI queues are counted too. Used to initialize
     * end-to-end monitors attached to a warmed-up network.
     */
    std::vector<std::uint64_t>
    countInFlightFlitsPerDst(bool include_queued = true) const;

    // ------------------------------------------------------------------
    // Recovery actions (quarantine and purge). These are maintenance
    // operations driven by the recovery orchestrator at end-of-cycle,
    // not architectural behaviour of the modelled hardware.
    // ------------------------------------------------------------------

    /**
     * Quarantine both directions of the physical channel(s) at
     * (@p node, @p port) in the routing algorithm's quarantine set:
     * the port itself plus the neighbor's opposite port. A negative
     * @p port quarantines all four mesh ports of the node (whole
     * router implicated). The Local port is never quarantined — there
     * is no detour around a node's own NI. Only quarantine-aware
     * routing (RoutingAlgo::QAdaptive) changes behaviour. Quarantine
     * lives in the routing instance, so a Network copy starts clean.
     * Returns the number of (node, port) pairs newly quarantined.
     */
    std::size_t quarantinePort(NodeId node, int port);

    /**
     * Packets implicated by a fault at (@p node, @p port): packets
     * holding the port's input VCs or buffered in them, packets
     * holding the port's output VCs, and flits in flight on the links
     * incident to the port. A negative @p port implicates the whole
     * router. Corrupted (garbage) packet ids are included on purpose:
     * purging them removes the corrupt flits themselves.
     */
    std::unordered_set<PacketId> implicatedPackets(NodeId node,
                                                   int port) const;

    /**
     * Network-wide purge of every flit belonging to the @p suspects
     * packets — router buffers, pipeline state, link stages, and NI
     * streams — repairing credits along the way. Sources re-queue
     * aborted streams when retransmission is enabled. Returns the
     * number of flits removed.
     */
    std::uint64_t
    purgePackets(const std::unordered_set<PacketId> &suspects);

    /** Aggregate statistics collected so far. */
    NetworkStats stats() const;

    /** Concatenated ejection logs of all NIs, by node then time. */
    std::vector<EjectionRecord> collectEjections() const;

    /** Discard all NI ejection logs (e.g. after warmup). */
    void clearEjectionLogs();

  private:
    void buildTopology();
    void stepDense();
    void stepActive();
    void stepBitmask();
    void recomputeLiveness();
    int inLinkIndex(NodeId node, int port) const;
    int outLinkIndex(NodeId node, int port) const;

    NetworkConfig config_;
    std::unique_ptr<RoutingAlgorithm> routing_;

    std::vector<Router> routers_;
    std::vector<NetworkInterface> nis_;
    std::vector<Link> links_;
    std::vector<int> in_link_;  // [node * kNumPorts + port]
    std::vector<int> out_link_; // [node * kNumPorts + port]

    /**
     * Batched link delivery (bitmask kernel): per-link consumer nodes
     * (inverse of in_link_/out_link_, built lazily) and the per-node
     * arrival flags one link sweep per cycle derives from them —
     * bit 0: a flit arrived on some input port, bit 1: a credit
     * arrived on some output port. Routers whose flags are clear are
     * scheduled without touching any of their ten link slots.
     */
    std::vector<int> link_flit_dst_;
    std::vector<int> link_credit_dst_;
    std::vector<std::uint8_t> node_io_flags_;
    /**
     * Cycle node_io_flags_ describes, or -1 when invalid. The flags
     * for cycle c+1 are computed for free while the links advance at
     * the end of bitmask cycle c; a dedicated sweep is only needed
     * when the previous cycle ran on another kernel or something else
     * touched the links in between (copies, purges — anything through
     * recomputeLiveness()).
     */
    Cycle io_flags_cycle_ = -1;
    /**
     * Bit li set iff links_[li] may hold any in-flight state (send or
     * recv side). The end-of-cycle pass ticks only these links instead
     * of scanning the whole array; drive sites set a link's bit when
     * they write its send side, the pass keeps a bit while the recv
     * side stays non-empty. Valid exactly when io_flags_cycle_ ==
     * cycle_ (rebuilt by the same sweep that rebuilds the flags).
     */
    std::vector<std::uint64_t> link_busy_bits_;

    nocalert::traffic::WorkloadGenerator traffic_;
    Cycle cycle_ = 0;

    KernelMode kernel_mode_ = KernelMode::Active;
    /** Per router: last evaluation left it non-quiescent. */
    std::vector<char> router_live_;
    /** Per router: packed state cache (bitmask kernel). */
    std::vector<PackedRouterState> packed_;
    /** Shared VA scratch for fast-path evaluations. */
    PackedScratch packed_scratch_;
    /** Per router: pinned active (fault sites, direct mutation). */
    std::vector<char> force_active_;
    /** Tap hook present and not narrowed: pin all routers active. */
    bool tap_force_all_ = false;
    std::uint64_t router_evals_ = 0;
    std::uint64_t ni_evals_ = 0;

    Router::TapHook tap_hook_;
    RouterObserver router_observer_;
    NiObserver ni_observer_;
    CycleObserver cycle_observer_;
    PackedObserver packed_observer_;
};

} // namespace nocalert::noc

#endif // NOCALERT_NOC_NETWORK_HPP
