#include "forever/checknet.hpp"

namespace nocalert::forever {

CheckerNetwork::CheckerNetwork(const noc::NetworkConfig &config,
                               noc::Cycle hop_latency)
    : config_(&config), hop_latency_(hop_latency)
{
}

noc::Cycle
CheckerNetwork::send(noc::Cycle now, noc::NodeId src, noc::NodeId dst,
                     std::uint32_t flits)
{
    const noc::Cycle arrival =
        now + config_->hopDistance(src, dst) * hop_latency_ + 1;
    pending_.emplace(arrival, Notification{dst, flits});
    ++pending_count_;
    return arrival;
}

std::vector<Notification>
CheckerNetwork::deliverUpTo(noc::Cycle now)
{
    std::vector<Notification> delivered;
    auto it = pending_.begin();
    while (it != pending_.end() && it->first <= now) {
        delivered.push_back(it->second);
        it = pending_.erase(it);
        --pending_count_;
    }
    return delivered;
}

} // namespace nocalert::forever
