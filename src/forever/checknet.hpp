/**
 * @file
 * The ForEVeR checker network (Parikh & Bertacco, MICRO 2011): a
 * lightweight, assumed-100%-reliable secondary mesh that carries
 * ahead-of-time notifications from packet sources to destinations.
 *
 * Modelled behaviourally: a notification sent at cycle t from s to d
 * arrives at t + hops(s,d) * hopLatency + 1. The checker network is
 * single-flit, low-bandwidth, and contention is negligible at the
 * notification rates of interest, so no per-hop queueing is modelled
 * (the paper's own evaluation treats it as reliable and fast).
 */

#ifndef NOCALERT_FOREVER_CHECKNET_HPP
#define NOCALERT_FOREVER_CHECKNET_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "noc/config.hpp"
#include "noc/types.hpp"

namespace nocalert::forever {

/** One notification in flight on the checker network. */
struct Notification
{
    noc::NodeId dst = noc::kInvalidNode;
    std::uint32_t flits = 0; ///< Expected flit count of the packet.
};

/** Behavioural checker-network model. */
class CheckerNetwork
{
  public:
    /** @param hop_latency Cycles per checker-network hop. */
    CheckerNetwork(const noc::NetworkConfig &config,
                   noc::Cycle hop_latency);

    /** Send a notification; returns its arrival cycle. */
    noc::Cycle send(noc::Cycle now, noc::NodeId src, noc::NodeId dst,
                    std::uint32_t flits);

    /** Pop every notification with arrival cycle <= @p now. */
    std::vector<Notification> deliverUpTo(noc::Cycle now);

    /** Notifications still in flight. */
    std::size_t inFlight() const { return pending_count_; }

  private:
    const noc::NetworkConfig *config_;
    noc::Cycle hop_latency_;
    std::multimap<noc::Cycle, Notification> pending_;
    std::size_t pending_count_ = 0;
};

} // namespace nocalert::forever

#endif // NOCALERT_FOREVER_CHECKNET_HPP
