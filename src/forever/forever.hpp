/**
 * @file
 * Behavioural model of the ForEVeR fault-detection framework (Parikh
 * & Bertacco, MICRO 2011), the paper's comparison baseline
 * (Sections 2.2 and 5).
 *
 * Three detectors cooperate:
 *  1. Destination counters fed by checker-network notifications: every
 *     source notifies the destination of an incoming packet's flit
 *     count ahead of time; the destination decrements per ejected
 *     flit. Time is split into epochs (default 1,500 cycles — the
 *     shortest the paper found free of excessive false positives);
 *     an alarm is raised when a counter fails to touch zero within an
 *     epoch, or ever goes negative.
 *  2. The Allocation Comparator (Shamshiri et al.): instantaneous
 *     detection of invalid arbiter operations (grants without
 *     requests, non-one-hot grants).
 *  3. An end-to-end checker at the ejection interface.
 *
 * Detection latency is dominated by the epoch quantization, which is
 * exactly the behaviour Figure 7 of the NoCAlert paper contrasts with
 * NoCAlert's same-cycle assertions.
 */

#ifndef NOCALERT_FOREVER_FOREVER_HPP
#define NOCALERT_FOREVER_FOREVER_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "forever/checknet.hpp"
#include "noc/network.hpp"

namespace nocalert::forever {

/** ForEVeR parameters. */
struct ForeverConfig
{
    noc::Cycle epochLength = 1500;
    noc::Cycle hopLatency = 1;
    bool useAllocationComparator = true;
    bool useEndToEnd = true;
};

/** One ForEVeR detection event. */
struct ForeverAlert
{
    enum class Source : std::uint8_t {
        CounterEpoch,        ///< Counter failed to reach zero in an epoch.
        NegativeCounter,     ///< More flits arrived than were notified.
        AllocationComparator,///< Invalid arbiter operation.
        EndToEnd,            ///< Ejection-interface check.
    };

    Source source = Source::CounterEpoch;
    noc::Cycle cycle = 0;
    noc::NodeId node = noc::kInvalidNode;
};

/** Name of an alert source. */
const char *foreverSourceName(ForeverAlert::Source source);

/** ForEVeR attached to one network instance. */
class ForeverModel
{
  public:
    /**
     * Construct over @p network. Counters are synchronized to the
     * network's current in-flight traffic so the model can attach to
     * a warmed-up snapshot without spurious alarms.
     *
     * With @p attach_now the model installs itself as the network's
     * router/NI/cycle observer; otherwise compose the observe* calls
     * manually (as the fault campaign does to run ForEVeR alongside
     * NoCAlert on one run).
     */
    ForeverModel(noc::Network &network, const ForeverConfig &config,
                 bool attach_now = true);

    /** Allocation-comparator tap on a router's finished cycle. */
    void observeRouter(const noc::Router &router,
                       const noc::RouterWires &wires);

    /** Notification/counter/end-to-end tap on an NI's cycle. */
    void observeNi(const noc::NetworkInterface &ni,
                   const noc::NiWires &wires);

    /** Epoch bookkeeping; call once per completed network cycle. */
    void onCycleEnd(const noc::Network &network);

    /** All detection events so far. */
    const std::vector<ForeverAlert> &alerts() const { return alerts_; }

    /** Cycle of the first detection event, if any. */
    std::optional<noc::Cycle> firstDetection() const;

    /** Drop accumulated alerts. */
    void clearAlerts() { alerts_.clear(); }

    /** Current counter value of node @p node (tests). */
    std::int64_t counter(noc::NodeId node) const
    {
        return counters_[static_cast<std::size_t>(node)];
    }

  private:
    void recordAlert(ForeverAlert::Source source, noc::Cycle cycle,
                     noc::NodeId node);

    noc::Network &network_;
    ForeverConfig config_;
    CheckerNetwork checknet_;

    std::vector<std::int64_t> counters_;
    std::vector<std::int64_t> epoch_min_;

    /**
     * Nodes whose counter was decremented since the last cycle end.
     * The per-cycle epoch-minimum update only visits these: a minimum
     * can only drop when its counter dropped, and counters drop only
     * on ejections (notifications strictly increment). Replaces an
     * O(nodes) every-cycle sweep with work proportional to actual
     * ejection activity — behaviour-identical by construction.
     */
    std::vector<std::uint8_t> touched_;
    std::vector<noc::NodeId> touched_list_;

    noc::Cycle start_cycle_ = 0;

    std::vector<ForeverAlert> alerts_;
};

} // namespace nocalert::forever

#endif // NOCALERT_FOREVER_FOREVER_HPP
