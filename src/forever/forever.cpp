#include "forever/forever.hpp"

#include "util/bits.hpp"

namespace nocalert::forever {

using noc::kMaxVcs;
using noc::kNumPorts;

const char *
foreverSourceName(ForeverAlert::Source source)
{
    switch (source) {
      case ForeverAlert::Source::CounterEpoch: return "counter-epoch";
      case ForeverAlert::Source::NegativeCounter: return "neg-counter";
      case ForeverAlert::Source::AllocationComparator: return "alloc-cmp";
      case ForeverAlert::Source::EndToEnd: return "end-to-end";
    }
    return "?";
}

ForeverModel::ForeverModel(noc::Network &network,
                           const ForeverConfig &config, bool attach_now)
    : network_(network),
      config_(config),
      checknet_(network.config(), config.hopLatency),
      start_cycle_(network.cycle())
{
    // Counters start at the number of flits already heading to each
    // node: those packets' notifications predate our attachment.
    const auto in_flight =
        network.countInFlightFlitsPerDst(/*include_queued=*/false);
    counters_.assign(in_flight.begin(), in_flight.end());
    epoch_min_ = counters_;
    touched_.assign(counters_.size(), 0);
    touched_list_.reserve(counters_.size());

    if (attach_now) {
        network.setRouterObserver(
            [this](const noc::Router &router,
                   const noc::RouterWires &wires) {
                observeRouter(router, wires);
            });
        network.setNiObserver(
            [this](const noc::NetworkInterface &ni,
                   const noc::NiWires &wires) { observeNi(ni, wires); });
        network.setCycleObserver(
            [this](const noc::Network &net) { onCycleEnd(net); });
    }
}

void
ForeverModel::recordAlert(ForeverAlert::Source source, noc::Cycle cycle,
                          noc::NodeId node)
{
    alerts_.push_back({source, cycle, node});
}

void
ForeverModel::observeRouter(const noc::Router &router,
                            const noc::RouterWires &wires)
{
    if (!config_.useAllocationComparator)
        return;

    const unsigned num_vcs = router.params().numVcs;
    auto invalid = [](std::uint64_t req, std::uint64_t grant,
                      unsigned clients) {
        req &= lowMask(clients);
        grant &= lowMask(clients);
        return (grant & ~req) != 0 || !isAtMostOneHot(grant);
    };

    bool fired = false;
    for (int p = 0; p < kNumPorts && !fired; ++p)
        fired = invalid(wires.in[p].sa1Req, wires.in[p].sa1Grant, num_vcs);
    for (int o = 0; o < kNumPorts && !fired; ++o)
        fired = invalid(wires.out[o].sa2Req, wires.out[o].sa2Grant,
                        kNumPorts);
    for (int o = 0; o < kNumPorts && !fired; ++o)
        for (unsigned w = 0; w < num_vcs && !fired; ++w)
            fired = invalid(wires.out[o].va2Req[w],
                            wires.out[o].va2Grant[w],
                            kNumPorts * kMaxVcs);

    if (fired) {
        recordAlert(ForeverAlert::Source::AllocationComparator,
                    wires.cycle, wires.router);
    }
}

void
ForeverModel::observeNi(const noc::NetworkInterface &ni,
                        const noc::NiWires &wires)
{
    // Ahead-of-time notification when a packet's header is injected.
    if (wires.injectValid && noc::isHead(wires.injectFlit.type)) {
        const auto &classes = network_.config().router.classes;
        const unsigned cls = wires.injectFlit.msgClass < classes.size()
            ? wires.injectFlit.msgClass : 0;
        checknet_.send(wires.cycle, ni.node(), wires.injectFlit.dst,
                       classes[cls].packetLength);
    }

    if (wires.ejectValid) {
        const auto node = static_cast<std::size_t>(ni.node());
        std::int64_t &counter = counters_[node];
        --counter;
        if (!touched_[node]) {
            touched_[node] = 1;
            touched_list_.push_back(ni.node());
        }
        if (counter < 0) {
            recordAlert(ForeverAlert::Source::NegativeCounter,
                        wires.cycle, ni.node());
        }
    }

    if (config_.useEndToEnd && wires.anomalies != 0)
        recordAlert(ForeverAlert::Source::EndToEnd, wires.cycle,
                    ni.node());
}

void
ForeverModel::onCycleEnd(const noc::Network &network)
{
    // network.cycle() counts completed cycles; the one that just ran:
    const noc::Cycle completed = network.cycle() - 1;

    for (const Notification &note : checknet_.deliverUpTo(completed)) {
        if (note.dst >= 0 &&
            note.dst < static_cast<noc::NodeId>(counters_.size())) {
            counters_[static_cast<std::size_t>(note.dst)] +=
                note.flits;
        }
    }

    // Activity-gated minimum maintenance: only nodes that ejected
    // flits this cycle can have lowered their counter (notification
    // increments never lower a minimum), so only they need the update.
    for (const noc::NodeId node : touched_list_) {
        const auto n = static_cast<std::size_t>(node);
        epoch_min_[n] = std::min(epoch_min_[n], counters_[n]);
        touched_[n] = 0;
    }
    touched_list_.clear();

    const auto nodes = counters_.size();
    const noc::Cycle elapsed = completed - start_cycle_ + 1;
    if (elapsed > 0 && elapsed % config_.epochLength == 0) {
        for (std::size_t n = 0; n < nodes; ++n) {
            if (epoch_min_[n] > 0) {
                recordAlert(ForeverAlert::Source::CounterEpoch,
                            completed, static_cast<noc::NodeId>(n));
            }
        }
        epoch_min_ = counters_;
    }
}

std::optional<noc::Cycle>
ForeverModel::firstDetection() const
{
    if (alerts_.empty())
        return std::nullopt;
    noc::Cycle first = alerts_.front().cycle;
    for (const ForeverAlert &alert : alerts_)
        first = std::min(first, alert.cycle);
    return first;
}

} // namespace nocalert::forever
