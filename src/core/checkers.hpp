/**
 * @file
 * The NoCAlert checker bank: one lightweight combinational predicate
 * per Table-1 invariant, evaluated over a router's per-cycle wire
 * record (paper Section 4).
 *
 * Checkers observe the inputs and outputs of the module they guard;
 * they never recompute the module's function (that would be modular
 * redundancy) — they only test the cheap necessary conditions every
 * legal output satisfies. They also never influence router behaviour.
 */

#ifndef NOCALERT_CORE_CHECKERS_HPP
#define NOCALERT_CORE_CHECKERS_HPP

#include <vector>

#include "core/invariant.hpp"
#include "noc/interface.hpp"
#include "noc/network.hpp"
#include "noc/router.hpp"
#include "noc/signals.hpp"

namespace nocalert::core {

/** One raised assertion (a checker firing in a particular cycle). */
struct Assertion
{
    InvariantId id = InvariantId::IllegalTurn;
    noc::Cycle cycle = 0;
    noc::NodeId router = noc::kInvalidNode;
    int port = -1; ///< Port the checker instance guards (-1 = router-wide).
    int vc = -1;   ///< VC involved (-1 when not applicable).
};

/** Static configuration shared by all checker banks of a network. */
struct CheckerContext
{
    const noc::NetworkConfig *config = nullptr;
    const noc::RoutingAlgorithm *routing = nullptr;
};

/**
 * Evaluate all applicable invariance checkers of one router for the
 * cycle described by @p wires, appending raised assertions to @p out.
 *
 * Pure: no state is kept between cycles; everything a checker needs
 * (including pre-cycle register snapshots) is part of the wire record
 * or the router's architectural state, exactly as a hardware checker
 * would tap flops and wires.
 *
 * With @p use_quiescence_shortcut (the default), the per-port checker
 * groups of provably quiescent ports are skipped: a quiescent wire
 * bundle satisfies every checker of that port trivially (certified at
 * start-up by verifyQuiescentInvariant, and by construction of the
 * predicates — every gated condition is zero). The router-wide groups
 * (crossbar, extended allocation-table, ejection) always run, since
 * unit tests and faults can raise them on otherwise quiescent wires.
 * Passing false evaluates every checker unconditionally; both settings
 * produce identical assertions for any wire record.
 */
void evaluateCheckers(const noc::Router &router,
                      const noc::RouterWires &wires,
                      const CheckerContext &ctx,
                      std::vector<Assertion> &out,
                      bool use_quiescence_shortcut = true);

/**
 * One-shot certificate behind the active-set kernel and the checker
 * shortcut: evaluate a fresh (reset-state) router of @p config with no
 * link inputs and assert that (a) it stays quiescent, (b) its wires
 * satisfy the quiescence predicates, (c) it drives no link outputs,
 * and (d) the full ungated checker bank raises nothing. Aborts via
 * NOCALERT_ASSERT on violation. Cheap enough to run per engine.
 */
void verifyQuiescentInvariant(const noc::NetworkConfig &config);

/**
 * Evaluate the network-level (end-to-end) checkers attached to a
 * network interface, mapping its anomaly wires onto invariants 28
 * and 32.
 */
void evaluateNiCheckers(const noc::NetworkInterface &ni,
                        const noc::NiWires &wires,
                        std::vector<Assertion> &out);

} // namespace nocalert::core

#endif // NOCALERT_CORE_CHECKERS_HPP
