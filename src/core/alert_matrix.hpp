/**
 * @file
 * The alert matrix: the mapping between the noc layer's packed
 * violation codes (one bit per Table-1 invariant in a per-router
 * `uint32_t`, see noc/packed.hpp) and the core layer's InvariantId
 * vocabulary.
 *
 * The noc layer cannot include core headers (layering: core depends
 * on noc, never the reverse), so the bitmask kernel reports checker
 * fires as numeric codes. This header pins the correspondence with
 * static assertions and expands packed cycle events into the exact
 * Assertion stream the branchy checker bank would have produced.
 */

#ifndef NOCALERT_CORE_ALERT_MATRIX_HPP
#define NOCALERT_CORE_ALERT_MATRIX_HPP

#include <cstdint>
#include <vector>

#include "core/checkers.hpp"
#include "core/invariant.hpp"
#include "noc/packed.hpp"

namespace nocalert::core {

/** Invariant a packed violation code denotes (numeric identity). */
constexpr InvariantId
alertMatrix(noc::PackedCheck check)
{
    return static_cast<InvariantId>(check);
}

static_assert(alertMatrix(noc::PackedCheck::IllegalTurn) ==
              InvariantId::IllegalTurn);
static_assert(alertMatrix(noc::PackedCheck::InvalidRcOutput) ==
              InvariantId::InvalidRcOutput);
static_assert(alertMatrix(noc::PackedCheck::NonMinimalRoute) ==
              InvariantId::NonMinimalRoute);
static_assert(alertMatrix(noc::PackedCheck::RcOnNonHeaderFlit) ==
              InvariantId::RcOnNonHeaderFlit);
static_assert(alertMatrix(noc::PackedCheck::RcOnEmptyVc) ==
              InvariantId::RcOnEmptyVc);
static_assert(alertMatrix(noc::PackedCheck::EjectionAtWrongDestination) ==
              InvariantId::EjectionAtWrongDestination);

/** Bit of invariant @p id in the per-router violation word. */
constexpr std::uint32_t
alertMaskBit(InvariantId id)
{
    return 1u << (invariantIndex(id) - 1u);
}

/**
 * Expand one packed router-cycle event into Assertions, appended to
 * @p out in the events' fire order — which the fast path guarantees
 * is the branchy checker bank's emission order.
 */
void expandPackedEvents(const noc::PackedCycleEvents &ev,
                        std::vector<Assertion> &out);

} // namespace nocalert::core

#endif // NOCALERT_CORE_ALERT_MATRIX_HPP
