/**
 * @file
 * Alert collection and queries over raised assertions.
 *
 * The alert log is what a fault-recovery mechanism would consume: the
 * paper couples NoCAlert with recovery schemes that react to the first
 * assertion (optionally deferring on low-risk checkers — the
 * "Cautious" policy of Observation 2).
 */

#ifndef NOCALERT_CORE_ALERT_HPP
#define NOCALERT_CORE_ALERT_HPP

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/checkers.hpp"
#include "core/invariant.hpp"
#include "noc/types.hpp"

namespace nocalert::core {

/** Accumulated assertions of one run with derived queries. */
class AlertLog
{
  public:
    /** Append an assertion. */
    void record(const Assertion &assertion);

    /** Append many assertions. */
    void record(const std::vector<Assertion> &assertions);

    /** Drop everything. */
    void clear();

    /** All assertions in arrival order. */
    const std::vector<Assertion> &alerts() const { return alerts_; }

    /** Total number of assertions raised. */
    std::size_t count() const { return alerts_.size(); }

    /** True iff no assertion was raised. */
    bool empty() const { return alerts_.empty(); }

    /** Cycle of the first assertion, if any. */
    std::optional<noc::Cycle> firstCycle() const;

    /**
     * Cycle of the first assertion that the Cautious policy reacts to:
     * low-risk invariants (1 and 3) are ignored unless a standard-risk
     * assertion is eventually raised as well.
     */
    std::optional<noc::Cycle> firstCautiousCycle() const;

    /** Number of times invariant @p id fired. */
    std::uint64_t countFor(InvariantId id) const;

    /** Distinct invariants that fired at cycle @p cycle. */
    std::vector<InvariantId> invariantsAtCycle(noc::Cycle cycle) const;

    /** Distinct invariants that fired over the whole run. */
    std::vector<InvariantId> distinctInvariants() const;

    /** True iff an assertion was raised at or after @p cycle. */
    bool anyAtOrAfter(noc::Cycle cycle) const;

  private:
    std::vector<Assertion> alerts_;
    std::array<std::uint64_t, kNumInvariants + 1> per_invariant_ = {};
};

} // namespace nocalert::core

#endif // NOCALERT_CORE_ALERT_HPP
