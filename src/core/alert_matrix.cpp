#include "core/alert_matrix.hpp"

namespace nocalert::core {

void
expandPackedEvents(const noc::PackedCycleEvents &ev,
                   std::vector<Assertion> &out)
{
    for (unsigned k = 0; k < ev.count; ++k) {
        const noc::PackedViolation &pv = ev.items[k];
        out.push_back({alertMatrix(pv.check), ev.cycle, ev.router,
                       static_cast<int>(pv.port),
                       static_cast<int>(pv.vc)});
    }
}

} // namespace nocalert::core
