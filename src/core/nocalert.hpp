/**
 * @file
 * The NoCAlert engine: attaches the checker banks to every router and
 * network interface of a network and accumulates the resulting alert
 * stream, optionally forwarding it to a recovery callback.
 *
 * This is the library's main entry point for users who simply want
 * run-time fault detection: construct a network, construct a
 * NoCAlertEngine over it, run, and inspect (or react to) the alerts.
 */

#ifndef NOCALERT_CORE_NOCALERT_HPP
#define NOCALERT_CORE_NOCALERT_HPP

#include <functional>

#include "core/alert.hpp"
#include "core/checkers.hpp"
#include "noc/network.hpp"

namespace nocalert::core {

/** Run-time invariance-checking engine for one network instance. */
class NoCAlertEngine
{
  public:
    /** Invoked synchronously for every raised assertion. */
    using AlertCallback = std::function<void(const Assertion &)>;

    /**
     * Construct an engine for @p network and install its observers.
     * The engine must outlive the network's use of the observers;
     * detach (or destroy the network) before destroying the engine.
     *
     * Note: the network supports a single router/NI observer. When
     * several engines must watch one network (e.g. NoCAlert plus the
     * ForEVeR baseline in the fault campaign), leave @p attach_now
     * false and compose the observe* calls manually.
     */
    explicit NoCAlertEngine(noc::Network &network, bool attach_now = true);

    /** Feed one router's finished cycle into the checker banks. */
    void observeRouter(const noc::Router &router,
                       const noc::RouterWires &wires);

    /**
     * Feed one fast-path router cycle (bitmask kernel) into the log:
     * the packed violation word expands through the alert matrix into
     * the same Assertions the branchy bank would have raised.
     */
    void observePacked(const noc::Router &router,
                       const noc::PackedCycleEvents &ev);

    /** Feed one NI's finished cycle into the end-to-end checkers. */
    void observeNi(const noc::NetworkInterface &ni,
                   const noc::NiWires &wires);

    /** Alert log accumulated so far. */
    const AlertLog &log() const { return log_; }

    /** Drop all accumulated alerts (e.g. after warmup). */
    void clearLog() { log_.clear(); }

    /** Register a recovery callback fired on every assertion. */
    void onAlert(AlertCallback callback) { callback_ = std::move(callback); }

  private:
    noc::Network &network_;
    CheckerContext ctx_;
    AlertLog log_;
    AlertCallback callback_;
    std::vector<Assertion> scratch_;
};

} // namespace nocalert::core

#endif // NOCALERT_CORE_NOCALERT_HPP
