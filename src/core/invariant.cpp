#include "core/invariant.hpp"

#include "util/log.hpp"

namespace nocalert::core {

const char *
moduleClassName(ModuleClass cls)
{
    switch (cls) {
      case ModuleClass::RoutingComputation: return "RC unit";
      case ModuleClass::Arbiters: return "Arbiters (VA/SA)";
      case ModuleClass::Crossbar: return "Crossbar";
      case ModuleClass::VcState: return "VC state";
      case ModuleClass::Buffer: return "Buffer";
      case ModuleClass::PortLevel: return "Port-level";
      case ModuleClass::NetworkLevel: return "Network-level";
    }
    return "?";
}

namespace {

constexpr std::uint8_t kBD = kBoundedDelivery;
constexpr std::uint8_t kFD = kNoFlitDrop;
constexpr std::uint8_t kNG = kNoNewFlitGeneration;
constexpr std::uint8_t kCM = kNoCorruptionOrMixing;

// Figure 3 of the paper categorizes the 32 invariants under the four
// correctness conditions (several at intersections); the published
// figure is partially illegible in the source text, so the mapping
// below reconstructs it from each invariant's failure semantics as
// discussed in Sections 4.1 and 5.4.
const std::vector<InvariantInfo> &
buildCatalog()
{
    static const std::vector<InvariantInfo> catalog = {
        {InvariantId::IllegalTurn, "Illegal turn",
         "Routing algorithms forbid some turns to prevent deadlocks; the "
         "RC output must respect the turn rules for the input the packet "
         "arrived on.",
         ModuleClass::RoutingComputation, kBD, RiskLevel::Low,
         false, false, false, false},
        {InvariantId::InvalidRcOutput, "Invalid RC output direction",
         "The RC output must name an existing, connected output port of "
         "this router.",
         ModuleClass::RoutingComputation, kBD | kFD, RiskLevel::Standard,
         false, false, false, false},
        {InvariantId::NonMinimalRoute, "Non-minimal routing (if required)",
         "Under a minimal routing algorithm the RC output must take the "
         "flit one step closer to its destination.",
         ModuleClass::RoutingComputation, kBD, RiskLevel::Low,
         false, false, true, false},
        {InvariantId::GrantWithoutRequest, "Grant w/o request",
         "It is not possible for a client to win a grant without making "
         "a request.",
         ModuleClass::Arbiters, kBD | kNG | kCM, RiskLevel::Standard,
         false, false, false, false},
        {InvariantId::GrantToNobody, "Grant to nobody",
         "The arbiter must always declare a winner when there is at "
         "least one client request.",
         ModuleClass::Arbiters, kBD, RiskLevel::PermanentSensitive,
         false, false, false, false},
        {InvariantId::GrantNotOneHot, "1-hot grant vector",
         "The arbiter's grant vector must have at most one bit set.",
         ModuleClass::Arbiters, kCM | kNG, RiskLevel::Standard,
         false, false, false, false},
        {InvariantId::GrantToOccupiedOrFullVc, "Grant to occupied/full VC",
         "A VC allocation grant to an occupied output VC, or to one "
         "whose downstream buffer lacks space (by the neighbor's "
         "credits), is forbidden.",
         ModuleClass::Arbiters, kFD | kCM, RiskLevel::Standard,
         false, false, false, true},
        {InvariantId::OneToOneVcAssignment, "One-to-one VC assignment",
         "An input VC must not be assigned to multiple output VCs.",
         ModuleClass::Arbiters, kCM, RiskLevel::Standard,
         false, false, false, true},
        {InvariantId::OneToOnePortAssignment, "One-to-one port assignment",
         "An input port must not gain simultaneous access to multiple "
         "output ports.",
         ModuleClass::Arbiters, kNG | kCM, RiskLevel::Standard,
         false, false, false, false},
        {InvariantId::VaAgreesWithRc, "VA agrees with RC",
         "The output VC assigned by the VA unit must belong to the "
         "output port computed by the RC stage.",
         ModuleClass::Arbiters, kBD | kCM, RiskLevel::Standard,
         false, false, false, true},
        {InvariantId::SaAgreesWithRc, "SA agrees with RC",
         "The switch arbitration result must be in agreement with the "
         "RC stage result.",
         ModuleClass::Arbiters, kBD | kCM, RiskLevel::Standard,
         false, false, false, false},
        {InvariantId::IntraVaStageOrder, "Intra-VA stage order",
         "If a VC wins the VA2 (global) arbitration it must also have "
         "won its VA1 (local) stage.",
         ModuleClass::Arbiters, kCM, RiskLevel::Standard,
         false, false, false, true},
        {InvariantId::IntraSaStageOrder, "Intra-SA stage order",
         "If a VC wins the SA2 (global) arbitration it must also have "
         "won its SA1 (local) stage.",
         ModuleClass::Arbiters, kBD | kFD | kCM, RiskLevel::Standard,
         false, false, false, false},
        {InvariantId::XbarColumnOneHot, "1-hot column control vector",
         "At most one connection may be active in each column of the "
         "crossbar per cycle (no flit collisions).",
         ModuleClass::Crossbar, kFD | kCM, RiskLevel::Standard,
         false, false, false, false},
        {InvariantId::XbarRowOneHot, "1-hot row control vector",
         "At most one connection may be active in each row of the "
         "crossbar per cycle (no unwanted multicast).",
         ModuleClass::Crossbar, kNG, RiskLevel::Standard,
         false, false, false, false},
        {InvariantId::XbarFlitConservation, "#in flits == #out flits",
         "The number of flits exiting the crossbar each cycle must "
         "equal the number entering it.",
         ModuleClass::Crossbar, kFD | kNG, RiskLevel::Standard,
         false, false, false, false},
        {InvariantId::ConsistentVcState, "Consistent VC buffer state",
         "The router pipeline stages must be executed in the correct "
         "order on consistently tracked VC state.",
         ModuleClass::VcState, kBD | kFD | kNG | kCM,
         RiskLevel::Standard, false, false, false, false},
        {InvariantId::HeaderOnlyIntoFreeVc, "Only headers enter free VCs",
         "While a VC is free (not allocated to an in-flight packet) "
         "only a header flit may enter its buffer.",
         ModuleClass::VcState, kCM, RiskLevel::Standard,
         false, false, false, false},
        {InvariantId::InvalidOutputVcValue, "Invalid output VC value",
         "The output VC saved at the end of the VA stage to extend the "
         "wormhole cannot be out of range.",
         ModuleClass::VcState, kFD | kCM, RiskLevel::Standard,
         false, false, false, true},
        {InvariantId::RcOnNonHeaderFlit, "Complete RC on non-header flit",
         "Routing computation is performed only on header flits.",
         ModuleClass::VcState, kBD | kNG, RiskLevel::Standard,
         false, false, false, false},
        {InvariantId::RcOnEmptyVc, "Complete RC on empty VC",
         "A transition from the RC to the VA stage is forbidden when "
         "the VC's buffer is empty.",
         ModuleClass::VcState, kNG, RiskLevel::Standard,
         false, false, false, false},
        {InvariantId::VaOnNonHeaderFlit, "Complete VA on non-header flit",
         "Virtual-channel allocation is performed only on header flits.",
         ModuleClass::VcState, kCM, RiskLevel::Standard,
         false, false, false, true},
        {InvariantId::VaOnEmptyVc, "Complete VA on empty VC",
         "A transition from the VA to the SA stage is forbidden when "
         "the VC's buffer is empty.",
         ModuleClass::VcState, kNG, RiskLevel::Standard,
         false, false, false, true},
        {InvariantId::ReadFromEmptyBuffer, "Read from an empty buffer",
         "A read signal cannot be issued to an empty VC buffer.",
         ModuleClass::Buffer, kNG, RiskLevel::Standard,
         false, false, false, false},
        {InvariantId::WriteToFullBuffer, "Write to a full buffer",
         "A write signal cannot be issued to a full VC buffer.",
         ModuleClass::Buffer, kFD, RiskLevel::Standard,
         false, false, false, false},
        {InvariantId::BufferAtomicityViolation, "Buffer atomicity violation",
         "With atomic buffers only flits of a single packet may reside "
         "in a VC; a header cannot arrive at a non-free VC.",
         ModuleClass::Buffer, kCM, RiskLevel::Standard,
         true, false, false, false},
        {InvariantId::NonAtomicPacketMixing, "Packet mixing (non-atomic)",
         "With non-atomic buffers a tail flit may only be followed by a "
         "header flit.",
         ModuleClass::Buffer, kCM, RiskLevel::Standard,
         false, true, false, false},
        {InvariantId::PacketFlitCountViolation, "Packet flit-count violation",
         "Packets of the same message class have the same length: the "
         "number of flits arriving at a VC for one packet must equal "
         "the class's predefined constant.",
         ModuleClass::Buffer, kFD | kNG | kCM, RiskLevel::Standard,
         false, false, false, false},
        {InvariantId::ConcurrentReadMultipleVcs,
         "Concurrent read from multiple VCs",
         "Only one flit may leave a single input port per cycle "
         "(output multiplexer).",
         ModuleClass::PortLevel, kNG | kCM, RiskLevel::Standard,
         false, false, false, true},
        {InvariantId::ConcurrentWriteMultipleVcs,
         "Concurrent write to multiple VCs",
         "Only one flit may arrive at a single input port per cycle "
         "(input demultiplexer).",
         ModuleClass::PortLevel, kNG | kCM, RiskLevel::Standard,
         false, false, false, true},
        {InvariantId::ConcurrentRcMultipleVcs,
         "Concurrent RC completion of multiple VCs",
         "Since only one flit can arrive per port per cycle, only one "
         "VC per port may complete RC per cycle (atomic buffers, shared "
         "routing algorithm).",
         ModuleClass::PortLevel, kBD | kCM, RiskLevel::Standard,
         true, false, false, true},
        {InvariantId::EjectionAtWrongDestination,
         "Ejection at wrong destination",
         "End-to-end: a flit may only exit the network at its intended "
         "destination node, as part of its own packet, in order.",
         ModuleClass::NetworkLevel, kBD | kFD | kCM,
         RiskLevel::Standard, false, false, false, false},
    };
    return catalog;
}

} // namespace

const std::vector<InvariantInfo> &
invariantCatalog()
{
    return buildCatalog();
}

const InvariantInfo &
invariantInfo(InvariantId id)
{
    const unsigned index = invariantIndex(id);
    NOCALERT_ASSERT(index >= 1 && index <= kNumInvariants,
                    "bad invariant id ", index);
    const InvariantInfo &info = invariantCatalog()[index - 1];
    NOCALERT_ASSERT(info.id == id, "catalog order mismatch at ", index);
    return info;
}

const char *
invariantName(InvariantId id)
{
    return invariantInfo(id).name;
}

} // namespace nocalert::core
