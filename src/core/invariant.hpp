/**
 * @file
 * The NoCAlert invariant catalog — Table 1 of the paper.
 *
 * Thirty-two invariances completely characterize the operational
 * behaviour of the baseline router: any forbidden behaviour, as
 * dictated by the functional rules governing the router's operation,
 * is captured by at least one of these assertion checkers.
 */

#ifndef NOCALERT_CORE_INVARIANT_HPP
#define NOCALERT_CORE_INVARIANT_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace nocalert::core {

/** Identifier of an invariance checker (1-based, as in Table 1). */
enum class InvariantId : std::uint8_t {
    IllegalTurn = 1,
    InvalidRcOutput = 2,
    NonMinimalRoute = 3,
    GrantWithoutRequest = 4,
    GrantToNobody = 5,
    GrantNotOneHot = 6,
    GrantToOccupiedOrFullVc = 7,
    OneToOneVcAssignment = 8,
    OneToOnePortAssignment = 9,
    VaAgreesWithRc = 10,
    SaAgreesWithRc = 11,
    IntraVaStageOrder = 12,
    IntraSaStageOrder = 13,
    XbarColumnOneHot = 14,
    XbarRowOneHot = 15,
    XbarFlitConservation = 16,
    ConsistentVcState = 17,
    HeaderOnlyIntoFreeVc = 18,
    InvalidOutputVcValue = 19,
    RcOnNonHeaderFlit = 20,
    RcOnEmptyVc = 21,
    VaOnNonHeaderFlit = 22,
    VaOnEmptyVc = 23,
    ReadFromEmptyBuffer = 24,
    WriteToFullBuffer = 25,
    BufferAtomicityViolation = 26,
    NonAtomicPacketMixing = 27,
    PacketFlitCountViolation = 28,
    ConcurrentReadMultipleVcs = 29,
    ConcurrentWriteMultipleVcs = 30,
    ConcurrentRcMultipleVcs = 31,
    EjectionAtWrongDestination = 32,
};

/** Number of invariants in the catalog. */
inline constexpr unsigned kNumInvariants = 32;

/** Numeric value of an invariant id (1..32). */
constexpr unsigned
invariantIndex(InvariantId id)
{
    return static_cast<unsigned>(id);
}

/** Router module class an invariant belongs to (Table 1 sections). */
enum class ModuleClass : std::uint8_t {
    RoutingComputation,
    Arbiters,
    Crossbar,
    VcState,
    Buffer,
    PortLevel,
    NetworkLevel,
};

/** Name of a module class. */
const char *moduleClassName(ModuleClass cls);

/**
 * The four fundamental network-correctness conditions (paper
 * Section 4.1, after Borrione et al. and ForEVeR), as bit flags so an
 * invariant can guard several conditions at once (Figure 3 places
 * several invariants at category intersections).
 */
enum CorrectnessCondition : std::uint8_t {
    kBoundedDelivery = 1 << 0,
    kNoFlitDrop = 1 << 1,
    kNoNewFlitGeneration = 1 << 2,
    kNoCorruptionOrMixing = 1 << 3,
};

/**
 * Risk level used by the "Cautious" reaction policy (Observation 2):
 * low-risk checkers fire often on benign faults, so a recovery scheme
 * may defer its reaction until corroborated.
 */
enum class RiskLevel : std::uint8_t {
    Low,      ///< Benign when asserted alone (invariants 1 and 3).
    Standard, ///< React immediately.
    /**
     * Benign under transient faults but catastrophic under permanent
     * ones (Observation 3: invariant 5 behaves like a NOP when
     * transient, but a permanently silent arbiter deadlocks packets).
     */
    PermanentSensitive,
};

/** Static description of one invariant. */
struct InvariantInfo
{
    InvariantId id;
    const char *name;
    const char *description;
    ModuleClass module;
    std::uint8_t conditions; ///< CorrectnessCondition bit mask.
    RiskLevel risk;
    bool atomicOnly;     ///< Applies only with atomic VC buffers.
    bool nonAtomicOnly;  ///< Applies only with non-atomic buffers.
    bool minimalOnly;    ///< Applies only to minimal routing.
    bool needsVcs;       ///< Void when the design has no VA stage (V=1).
};

/** Metadata of invariant @p id. */
const InvariantInfo &invariantInfo(InvariantId id);

/** All 32 invariants in Table-1 order. */
const std::vector<InvariantInfo> &invariantCatalog();

/** Short name of invariant @p id. */
const char *invariantName(InvariantId id);

} // namespace nocalert::core

#endif // NOCALERT_CORE_INVARIANT_HPP
