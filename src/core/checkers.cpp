#include "core/checkers.hpp"

#include "util/bits.hpp"
#include "util/log.hpp"

namespace nocalert::core {

using noc::Flit;
using noc::FlitType;
using noc::InputPortWires;
using noc::isHead;
using noc::isTail;
using noc::kMaxVcs;
using noc::kNumPorts;
using noc::OutputPortWires;
using noc::Port;
using noc::portIndex;
using noc::RouterWires;
using noc::VcSnapshot;
using noc::VcState;

namespace {

/** Small helper collecting assertions with shared cycle/router tags. */
class Collector
{
  public:
    Collector(const RouterWires &wires, std::vector<Assertion> &out)
        : wires_(wires), out_(out)
    {
    }

    void
    fire(InvariantId id, int port = -1, int vc = -1)
    {
        out_.push_back({id, wires_.cycle, wires_.router, port, vc});
    }

  private:
    const RouterWires &wires_;
    std::vector<Assertion> &out_;
};

/** Generic arbiter checks (invariants 4, 5, 6) for one instance. */
void
checkArbiter(Collector &col, std::uint64_t req, std::uint64_t grant,
             unsigned num_clients, int port, int vc)
{
    req &= lowMask(num_clients);
    grant &= lowMask(num_clients);
    if ((grant & ~req) != 0)
        col.fire(InvariantId::GrantWithoutRequest, port, vc);
    if (req != 0 && grant == 0)
        col.fire(InvariantId::GrantToNobody, port, vc);
    if (!isAtMostOneHot(grant))
        col.fire(InvariantId::GrantNotOneHot, port, vc);
}

/** SA1 winner as the downstream mux sees it (-1 = no grant). */
int
sa1Winner(const InputPortWires &ipw, unsigned num_vcs)
{
    const std::uint64_t grant = ipw.sa1Grant & lowMask(num_vcs);
    return grant ? lowestSetBit(grant) : -1;
}

} // namespace

void
evaluateCheckers(const noc::Router &router, const RouterWires &wires,
                 const CheckerContext &ctx, std::vector<Assertion> &out,
                 bool use_quiescence_shortcut)
{
    Collector col(wires, out);
    const noc::RouterParams &params = router.params();
    const unsigned num_vcs = params.numVcs;
    const auto depth = static_cast<std::uint8_t>(params.bufferDepth);
    const noc::NodeId node = wires.router;
    const bool has_va = num_vcs > 1;

    // Quiescent ports: one cheap predicate retires the whole per-port
    // checker group (see the header contract; equivalence is exact).
    std::array<bool, kNumPorts> in_q = {};
    std::array<bool, kNumPorts> out_q = {};
    if (use_quiescence_shortcut) {
        for (int p = 0; p < kNumPorts; ++p) {
            in_q[p] = noc::inputPortQuiescent(wires.in[p], num_vcs);
            out_q[p] = noc::outputPortQuiescent(wires.out[p]);
        }
    }

    // ==================================================================
    // Routing Computation unit (invariants 1-3)
    // ==================================================================
    for (int p = 0; p < kNumPorts; ++p) {
        if (in_q[p])
            continue;
        const InputPortWires &ipw = wires.in[p];
        if (ipw.rcDone == 0)
            continue;
        const int o = ipw.rcOutPort;
        const bool out_in_range = o >= 0 && o < kNumPorts;
        const bool connected =
            out_in_range && ctx.config->portConnected(node, o);

        if (!out_in_range || !connected) {
            col.fire(InvariantId::InvalidRcOutput, p, ipw.rcVc);
        } else {
            if (!ctx.routing->legalTurn(ipw.rcFlit, p, o))
                col.fire(InvariantId::IllegalTurn, p, ipw.rcVc);
            if (ctx.routing->minimalRequired() && ipw.rcHeadValid &&
                isHead(ipw.rcHeadType) &&
                !ctx.routing->minimalStep(*ctx.config, node, ipw.rcFlit,
                                          o)) {
                col.fire(InvariantId::NonMinimalRoute, p, ipw.rcVc);
            }
        }

        // Invariant 20/21: RC completion requires a header at the head
        // of a non-empty buffer.
        if (!ipw.rcHeadValid)
            col.fire(InvariantId::RcOnEmptyVc, p, ipw.rcVc);
        else if (!isHead(ipw.rcHeadType))
            col.fire(InvariantId::RcOnNonHeaderFlit, p, ipw.rcVc);

        // Invariant 17 (pipeline order, RC flavour): RC may only
        // complete on VCs that were awaiting routing.
        if ((ipw.rcDone & ~ipw.rcWaiting & lowMask(num_vcs)) != 0)
            col.fire(InvariantId::ConsistentVcState, p, ipw.rcVc);

        // Invariant 31: one RC completion per port per cycle (atomic).
        if (params.atomicBuffers && has_va &&
            popcount(ipw.rcDone & lowMask(num_vcs)) > 1) {
            col.fire(InvariantId::ConcurrentRcMultipleVcs, p);
        }
    }

    // ==================================================================
    // Arbiters: SA1, SA2, VA2 (invariants 4-6 per instance)
    // ==================================================================
    for (int p = 0; p < kNumPorts; ++p)
        if (!in_q[p])
            checkArbiter(col, wires.in[p].sa1Req, wires.in[p].sa1Grant,
                         num_vcs, p, -1);
    for (int o = 0; o < kNumPorts; ++o)
        if (!out_q[o])
            checkArbiter(col, wires.out[o].sa2Req, wires.out[o].sa2Grant,
                         kNumPorts, o, -1);
    if (has_va) {
        for (int o = 0; o < kNumPorts; ++o) {
            if (out_q[o])
                continue;
            for (unsigned w = 0; w < num_vcs; ++w) {
                checkArbiter(col, wires.out[o].va2Req[w],
                             wires.out[o].va2Grant[w],
                             kNumPorts * kMaxVcs, o, static_cast<int>(w));
            }
            // Invariant 19 (defensive flavour): grants on out-of-range
            // output-VC arbiters cannot exist.
            for (unsigned w = num_vcs; w < kMaxVcs; ++w)
                if (wires.out[o].va2Grant[w] != 0)
                    col.fire(InvariantId::InvalidOutputVcValue, o,
                             static_cast<int>(w));
        }
    }

    // ==================================================================
    // VA global grants: invariants 7, 8, 10, 12, 17, 22, 23
    // ==================================================================
    std::uint64_t va_granted_clients = 0; // for invariant 8 and 17-SA
    if (has_va) {
        for (int o = 0; o < kNumPorts; ++o) {
            if (out_q[o])
                continue; // no VA2 grants anywhere on this port
            const OutputPortWires &opw = wires.out[o];
            for (unsigned w = 0; w < num_vcs; ++w) {
                std::uint64_t grant =
                    opw.va2Grant[w] & lowMask(kNumPorts * kMaxVcs);
                if (grant == 0)
                    continue;

                // Invariant 7: target output VC must be free with room.
                const noc::OutVcSnapshot &ov = opw.outVc[w];
                const bool room = params.atomicBuffers
                    ? ov.credits == depth : ov.credits > 0;
                if (!ov.free || !room)
                    col.fire(InvariantId::GrantToOccupiedOrFullVc, o,
                             static_cast<int>(w));

                while (grant != 0) {
                    const int client = lowestSetBit(grant);
                    grant = clearBit(grant,
                                     static_cast<unsigned>(client));
                    const int p = client / static_cast<int>(kMaxVcs);
                    const unsigned v =
                        static_cast<unsigned>(client) % kMaxVcs;
                    if (p >= kNumPorts || v >= num_vcs)
                        continue;
                    const VcSnapshot &snap = wires.in[p].vc[v];

                    // Invariant 8: an input VC must not win multiple
                    // output VCs in one cycle.
                    if (getBit(va_granted_clients,
                               static_cast<unsigned>(client))) {
                        col.fire(InvariantId::OneToOneVcAssignment, p,
                                 static_cast<int>(v));
                    }
                    va_granted_clients = setBit(
                        va_granted_clients,
                        static_cast<unsigned>(client));

                    // Invariant 10: the granted VC sits at the port RC
                    // selected for this packet.
                    if (snap.outPort != o)
                        col.fire(InvariantId::VaAgreesWithRc, p,
                                 static_cast<int>(v));

                    // Invariant 12: VA2 winners must be VA1 winners.
                    if (snap.va1CandidateVc != static_cast<int>(w))
                        col.fire(InvariantId::IntraVaStageOrder, p,
                                 static_cast<int>(v));

                    // Invariant 17: VA acts only on allocation-waiting
                    // VCs.
                    if (snap.state != VcState::VcAllocWait)
                        col.fire(InvariantId::ConsistentVcState, p,
                                 static_cast<int>(v));

                    // Invariants 22/23: VA completes only with a header
                    // at the head of a non-empty buffer.
                    if (!snap.headValid)
                        col.fire(InvariantId::VaOnEmptyVc, p,
                                 static_cast<int>(v));
                    else if (!isHead(snap.headType))
                        col.fire(InvariantId::VaOnNonHeaderFlit, p,
                                 static_cast<int>(v));
                }
            }
        }
    }

    // ==================================================================
    // SA global grants: invariants 9, 11, 13, 17
    // ==================================================================
    std::uint64_t sa_granted_ports = 0;
    for (int o = 0; o < kNumPorts; ++o) {
        if (out_q[o])
            continue; // sa2Grant == 0
        std::uint64_t grant = wires.out[o].sa2Grant & lowMask(kNumPorts);
        while (grant != 0) {
            const int p = lowestSetBit(grant);
            grant = clearBit(grant, static_cast<unsigned>(p));

            // Invariant 9: one output port per input port per cycle.
            if (getBit(sa_granted_ports, static_cast<unsigned>(p)))
                col.fire(InvariantId::OneToOnePortAssignment, p);
            sa_granted_ports = setBit(sa_granted_ports,
                                      static_cast<unsigned>(p));

            // Invariant 13: SA2 win requires an SA1 win.
            const int v = sa1Winner(wires.in[p], num_vcs);
            if (v < 0) {
                col.fire(InvariantId::IntraSaStageOrder, p);
                continue;
            }

            const VcSnapshot &snap =
                wires.in[p].vc[static_cast<unsigned>(v)];

            // Invariant 11: the switch must move the flit toward the
            // port RC chose.
            if (snap.outPort != o)
                col.fire(InvariantId::SaAgreesWithRc, p, v);

            // Invariant 17 (SA flavour): SA acts on Active VCs only
            // (except the same-cycle VA+SA of the speculative design).
            const bool va_this_cycle = getBit(
                va_granted_clients,
                noc::vaClient(p, static_cast<unsigned>(v)));
            const bool spec_ok = params.speculative && va_this_cycle;
            if (snap.state != VcState::Active && !spec_ok)
                col.fire(InvariantId::ConsistentVcState, p, v);
        }
    }

    // ==================================================================
    // Crossbar (invariants 14-16)
    // ==================================================================
    for (int o = 0; o < kNumPorts; ++o)
        if (!isAtMostOneHot(wires.xbarCol[o]))
            col.fire(InvariantId::XbarColumnOneHot, o);
    for (int p = 0; p < kNumPorts; ++p)
        if (!isAtMostOneHot(wires.xbarRow[p]))
            col.fire(InvariantId::XbarRowOneHot, p);
    if (wires.xbarFlitsIn != wires.xbarFlitsOut)
        col.fire(InvariantId::XbarFlitConservation);

    // ==================================================================
    // Buffer writes (invariants 18, 25-28, 30) and reads (24, 29)
    // ==================================================================
    for (int p = 0; p < kNumPorts; ++p) {
        if (in_q[p])
            continue; // no enables, no empty-read flags
        const InputPortWires &ipw = wires.in[p];

        const std::uint32_t we = ipw.writeEnable &
            static_cast<std::uint32_t>(lowMask(num_vcs));
        const std::uint32_t re = ipw.readEnable &
            static_cast<std::uint32_t>(lowMask(num_vcs));

        // Invariants 29/30: one read and one write per port per cycle.
        if (has_va && popcount(we) > 1)
            col.fire(InvariantId::ConcurrentWriteMultipleVcs, p);
        if (has_va && popcount(re) > 1)
            col.fire(InvariantId::ConcurrentReadMultipleVcs, p);

        // Invariant 24: reads that hit an empty buffer.
        std::uint32_t empty_reads = ipw.readEmpty &
            static_cast<std::uint32_t>(lowMask(num_vcs));
        while (empty_reads != 0) {
            const unsigned v =
                static_cast<unsigned>(lowestSetBit(empty_reads));
            empty_reads = static_cast<std::uint32_t>(
                clearBit(empty_reads, v));
            col.fire(InvariantId::ReadFromEmptyBuffer, p,
                     static_cast<int>(v));
        }

        // Per-VC write checks.
        std::uint32_t writes = we;
        while (writes != 0) {
            const unsigned v =
                static_cast<unsigned>(lowestSetBit(writes));
            writes = static_cast<std::uint32_t>(clearBit(writes, v));
            const VcSnapshot &snap = ipw.vc[v];
            const Flit &flit = ipw.inFlit;

            // Invariant 25: write into a full buffer.
            if (snap.occupancy >= depth)
                col.fire(InvariantId::WriteToFullBuffer, p,
                         static_cast<int>(v));

            // Invariant 18: only headers may enter a free VC.
            if (snap.state == VcState::Idle && !isHead(flit.type))
                col.fire(InvariantId::HeaderOnlyIntoFreeVc, p,
                         static_cast<int>(v));

            if (params.atomicBuffers) {
                // Invariant 26: headers only into completely free VCs.
                if (isHead(flit.type) &&
                    (snap.state != VcState::Idle || snap.occupancy > 0)) {
                    col.fire(InvariantId::BufferAtomicityViolation, p,
                             static_cast<int>(v));
                }
            } else {
                // Invariant 27: a tail may only be followed by a header.
                const bool stream_open =
                    snap.flitsArrived > 0 && !snap.tailArrived;
                if (isHead(flit.type) && stream_open)
                    col.fire(InvariantId::NonAtomicPacketMixing, p,
                             static_cast<int>(v));
                if (!isHead(flit.type) && !stream_open &&
                    snap.occupancy > 0) {
                    col.fire(InvariantId::NonAtomicPacketMixing, p,
                             static_cast<int>(v));
                }
            }

            // Invariant 28: per-class packet length.
            const unsigned expected = isHead(flit.type)
                ? (flit.msgClass < params.classes.size()
                       ? params.classLength(flit.msgClass) : 0)
                : snap.expectedLength;
            const unsigned count =
                isHead(flit.type) ? 1 : snap.flitsArrived + 1;
            if (expected != 0) {
                if (isTail(flit.type) && count != expected)
                    col.fire(InvariantId::PacketFlitCountViolation, p,
                             static_cast<int>(v));
                else if (!isTail(flit.type) && count >= expected)
                    col.fire(InvariantId::PacketFlitCountViolation, p,
                             static_cast<int>(v));
            }
        }
    }

    // ==================================================================
    // Continuous VC-state register consistency (invariants 2, 17, 19)
    // ==================================================================
    for (int p = 0; p < kNumPorts; ++p) {
        if (in_q[p])
            continue; // every snapshot Idle with an empty buffer
        for (unsigned v = 0; v < num_vcs; ++v) {
            const VcSnapshot &snap = wires.in[p].vc[v];
            const bool routed = snap.state == VcState::VcAllocWait ||
                                snap.state == VcState::Active;
            if (routed) {
                const bool ok = snap.outPort >= 0 &&
                    snap.outPort < kNumPorts &&
                    ctx.config->portConnected(node, snap.outPort);
                if (!ok)
                    col.fire(InvariantId::InvalidRcOutput, p,
                             static_cast<int>(v));
            }
            if (snap.state == VcState::Active &&
                (snap.outVc < 0 ||
                 snap.outVc >= static_cast<int>(num_vcs))) {
                col.fire(InvariantId::InvalidOutputVcValue, p,
                         static_cast<int>(v));
            }
            // A VC holding a packet pre-SA always has its header
            // buffered; an empty buffer — or a non-header flit — at
            // its head means the state register and the buffer
            // disagree.
            if (snap.state == VcState::RouteWait ||
                snap.state == VcState::VcAllocWait) {
                if (snap.occupancy == 0 ||
                    (snap.headValid && !isHead(snap.headType))) {
                    col.fire(InvariantId::ConsistentVcState, p,
                             static_cast<int>(v));
                }
            }
            // The reverse disagreement: a free VC never holds flits.
            if (snap.state == VcState::Idle && snap.occupancy > 0)
                col.fire(InvariantId::ConsistentVcState, p,
                         static_cast<int>(v));
        }
    }

    // ==================================================================
    // Extension (beyond Table 1, opt-in): allocation-table consistency.
    // An occupied output VC must have a live Active owner whose saved
    // route points back at it; otherwise the allocation has leaked and
    // the VC will starve silently (fatal in single-VC designs).
    // ==================================================================
    if (params.extendedChecks) {
        for (int o = 0; o < kNumPorts; ++o) {
            for (unsigned w = 0; w < num_vcs; ++w) {
                const noc::OutVcState &ov = router.outVcState(o, w);
                if (ov.free)
                    continue;
                bool consistent = ov.ownerPort >= 0 &&
                                  ov.ownerPort < kNumPorts &&
                                  ov.ownerVc >= 0 &&
                                  ov.ownerVc <
                                      static_cast<int>(num_vcs);
                if (consistent) {
                    const noc::VcRecord &owner = router.vcRecord(
                        ov.ownerPort,
                        static_cast<unsigned>(ov.ownerVc));
                    consistent = owner.state == VcState::Active &&
                                 owner.outPort == o &&
                                 owner.outVc == static_cast<int>(w);
                }
                if (!consistent)
                    col.fire(InvariantId::ConsistentVcState, o,
                             static_cast<int>(w));
            }
        }
    }

    // ==================================================================
    // Network level (invariant 32): local ejection destination
    // ==================================================================
    if (wires.ejectValid && isHead(wires.ejectFlit.type) &&
        wires.ejectFlit.dst != node) {
        col.fire(InvariantId::EjectionAtWrongDestination,
                 portIndex(Port::Local));
    }
}

void
verifyQuiescentInvariant(const noc::NetworkConfig &config)
{
    noc::Router router(config, 0);
    const auto routing = noc::makeRouting(config.routing);
    noc::Router::Context rctx{&config, routing.get()};
    noc::Router::LinkIo io;
    router.evaluate(rctx, 0, io, nullptr);

    NOCALERT_ASSERT(router.quiescent(),
                    "reset-state router not quiescent after an "
                    "input-free cycle");
    const RouterWires &wires = router.wires();
    NOCALERT_ASSERT(
        noc::routerWiresQuiescent(wires, config.router.numVcs),
        "reset-state router wires fail the quiescence predicates");
    for (int p = 0; p < kNumPorts; ++p) {
        NOCALERT_ASSERT(!io.outValid[p] && io.creditOut[p] == 0,
                        "quiescent router drove port ", p);
    }

    CheckerContext ctx{&config, routing.get()};
    std::vector<Assertion> alerts;
    evaluateCheckers(router, wires, ctx, alerts,
                     /*use_quiescence_shortcut=*/false);
    NOCALERT_ASSERT(alerts.empty(),
                    "quiescent wires raised ", alerts.size(),
                    " assertions in the ungated checker bank");
    evaluateCheckers(router, wires, ctx, alerts,
                     /*use_quiescence_shortcut=*/true);
    NOCALERT_ASSERT(alerts.empty(),
                    "checker shortcut raised assertions on quiescent "
                    "wires");
}

void
evaluateNiCheckers(const noc::NetworkInterface &ni,
                   const noc::NiWires &wires,
                   std::vector<Assertion> &out)
{
    if (wires.anomalies == 0)
        return;
    const int local = portIndex(Port::Local);
    auto fire = [&](InvariantId id) {
        out.push_back({id, wires.cycle, ni.node(), local, -1});
    };
    if (wires.anomalies & noc::kNiWrongDestination)
        fire(InvariantId::EjectionAtWrongDestination);
    if (wires.anomalies & noc::kNiUnexpectedFlit)
        fire(InvariantId::EjectionAtWrongDestination);
    if (wires.anomalies & noc::kNiOrderViolation)
        fire(InvariantId::EjectionAtWrongDestination);
    if (wires.anomalies & noc::kNiCountViolation)
        fire(InvariantId::PacketFlitCountViolation);
}

} // namespace nocalert::core
