#include "core/alert.hpp"

#include <algorithm>

namespace nocalert::core {

void
AlertLog::record(const Assertion &assertion)
{
    alerts_.push_back(assertion);
    per_invariant_[invariantIndex(assertion.id)] += 1;
}

void
AlertLog::record(const std::vector<Assertion> &assertions)
{
    for (const Assertion &a : assertions)
        record(a);
}

void
AlertLog::clear()
{
    alerts_.clear();
    per_invariant_.fill(0);
}

std::optional<noc::Cycle>
AlertLog::firstCycle() const
{
    if (alerts_.empty())
        return std::nullopt;
    // Assertions arrive in cycle order.
    return alerts_.front().cycle;
}

std::optional<noc::Cycle>
AlertLog::firstCautiousCycle() const
{
    auto low_risk = [](InvariantId id) {
        return invariantInfo(id).risk == RiskLevel::Low;
    };
    // A standard-risk assertion triggers at its own cycle; low-risk
    // assertions only count once corroborated, at the corroborating
    // assertion's cycle.
    for (const Assertion &a : alerts_)
        if (!low_risk(a.id))
            return a.cycle;
    return std::nullopt;
}

std::uint64_t
AlertLog::countFor(InvariantId id) const
{
    return per_invariant_[invariantIndex(id)];
}

std::vector<InvariantId>
AlertLog::invariantsAtCycle(noc::Cycle cycle) const
{
    std::vector<InvariantId> ids;
    for (const Assertion &a : alerts_) {
        if (a.cycle != cycle)
            continue;
        if (std::find(ids.begin(), ids.end(), a.id) == ids.end())
            ids.push_back(a.id);
    }
    return ids;
}

std::vector<InvariantId>
AlertLog::distinctInvariants() const
{
    std::vector<InvariantId> ids;
    for (unsigned i = 1; i <= kNumInvariants; ++i)
        if (per_invariant_[i] > 0)
            ids.push_back(static_cast<InvariantId>(i));
    return ids;
}

bool
AlertLog::anyAtOrAfter(noc::Cycle cycle) const
{
    return std::any_of(alerts_.begin(), alerts_.end(),
                       [cycle](const Assertion &a) {
                           return a.cycle >= cycle;
                       });
}

} // namespace nocalert::core
