#include "core/nocalert.hpp"

#include "core/alert_matrix.hpp"

namespace nocalert::core {

NoCAlertEngine::NoCAlertEngine(noc::Network &network, bool attach_now)
    : network_(network)
{
    ctx_.config = &network.config();
    ctx_.routing = &network.routing();

    // Certify the quiescence invariant the active-set kernel and the
    // checker shortcut rely on for this configuration (aborts if a
    // quiescent router could ever raise or drive anything).
    verifyQuiescentInvariant(network.config());

    if (attach_now) {
        network.setRouterObserver(
            [this](const noc::Router &router,
                   const noc::RouterWires &wires) {
                observeRouter(router, wires);
            });
        network.setNiObserver(
            [this](const noc::NetworkInterface &ni,
                   const noc::NiWires &wires) { observeNi(ni, wires); });
        network.setPackedObserver(
            [this](const noc::Router &router,
                   const noc::PackedCycleEvents &ev) {
                observePacked(router, ev);
            });
    }
}

void
NoCAlertEngine::observeRouter(const noc::Router &router,
                              const noc::RouterWires &wires)
{
    scratch_.clear();
    evaluateCheckers(router, wires, ctx_, scratch_);
    for (const Assertion &a : scratch_) {
        log_.record(a);
        if (callback_)
            callback_(a);
    }
}

void
NoCAlertEngine::observePacked(const noc::Router & /*router*/,
                              const noc::PackedCycleEvents &ev)
{
    scratch_.clear();
    expandPackedEvents(ev, scratch_);
    for (const Assertion &a : scratch_) {
        log_.record(a);
        if (callback_)
            callback_(a);
    }
}

void
NoCAlertEngine::observeNi(const noc::NetworkInterface &ni,
                          const noc::NiWires &wires)
{
    scratch_.clear();
    evaluateNiCheckers(ni, wires, scratch_);
    for (const Assertion &a : scratch_) {
        log_.record(a);
        if (callback_)
            callback_(a);
    }
}

} // namespace nocalert::core
