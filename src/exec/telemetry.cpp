#include "exec/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/log.hpp"

namespace nocalert::exec {

namespace {

/** Clamp a possibly-degenerate double to a finite, non-negative one. */
double
finiteOrZero(double value)
{
    return std::isfinite(value) && value > 0.0 ? value : 0.0;
}

} // namespace

TelemetryDelta
deltaBetween(const TelemetrySnapshot &prev, const TelemetrySnapshot &cur)
{
    TelemetryDelta delta;
    delta.runsCompleted = cur.runsCompleted;
    delta.runsPlanned = cur.runsPlanned;
    // A hub only moves forward, but a subscriber may pair snapshots
    // across a campaign restart; clamp instead of wrapping around.
    delta.deltaRuns = cur.runsCompleted > prev.runsCompleted
                          ? cur.runsCompleted - prev.runsCompleted
                          : 0;
    delta.windowSeconds = finiteOrZero(cur.elapsedSeconds -
                                       prev.elapsedSeconds);

    // The windowed rate exists only when the window has both duration
    // and progress — a zero-elapsed window (two snapshots inside one
    // clock tick) or a zero-completed window (an idle poll) must not
    // divide its way to inf/NaN.
    if (delta.deltaRuns > 0 && delta.windowSeconds > 0.0) {
        delta.runsPerSecond =
            finiteOrZero(static_cast<double>(delta.deltaRuns) /
                         delta.windowSeconds);
    }

    const std::size_t remaining =
        cur.runsPlanned > cur.runsCompleted
            ? cur.runsPlanned - cur.runsCompleted
            : 0;
    if (remaining == 0 && cur.runsCompleted > 0) {
        delta.etaSeconds = 0.0;
    } else if (remaining > 0) {
        // Prefer the windowed rate (it tracks the current phase of an
        // adaptive campaign); fall back to the cumulative rate.
        const double rate = delta.runsPerSecond > 0.0
                                ? delta.runsPerSecond
                                : finiteOrZero(cur.runsPerSecond);
        if (rate > 0.0) {
            const double eta = static_cast<double>(remaining) / rate;
            if (std::isfinite(eta))
                delta.etaSeconds = eta;
        }
    }
    return delta;
}

TelemetryHub::TelemetryHub(std::size_t runs_planned, unsigned workers,
                           std::vector<std::string> counter_labels)
    : start_(std::chrono::steady_clock::now()),
      runsPlanned_(runs_planned),
      labels_(std::move(counter_labels)),
      counters_(labels_.size()),
      busyNanos_(workers == 0 ? 1 : workers)
{
}

void
TelemetryHub::recordRun(std::size_t counter)
{
    NOCALERT_ASSERT(counter < counters_.size(),
                    "telemetry counter out of range");
    counters_[counter].fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
}

void
TelemetryHub::recordBusy(unsigned worker, std::uint64_t nanos)
{
    NOCALERT_ASSERT(worker < busyNanos_.size(),
                    "telemetry worker out of range");
    busyNanos_[worker].fetch_add(nanos, std::memory_order_relaxed);
}

TelemetrySnapshot
TelemetryHub::snapshot() const
{
    TelemetrySnapshot snap;
    snap.runsPlanned = runsPlanned_.load(std::memory_order_relaxed);
    snap.runsCompleted = completed_.load(std::memory_order_relaxed);
    snap.elapsedSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    if (snap.elapsedSeconds > 0.0) {
        snap.runsPerSecond =
            finiteOrZero(snap.runsCompleted / snap.elapsedSeconds);
    }
    if (snap.runsCompleted > 0 && snap.runsPerSecond > 0.0) {
        const std::size_t remaining =
            snap.runsPlanned > snap.runsCompleted
                ? snap.runsPlanned - snap.runsCompleted
                : 0;
        // finiteOrZero would misread a legitimate eta of 0; clamp the
        // division result explicitly instead.
        const double eta = remaining / snap.runsPerSecond;
        snap.etaSeconds = std::isfinite(eta) ? eta : -1.0;
    }
    snap.counterLabels = labels_;
    snap.counters.reserve(counters_.size());
    for (const auto &counter : counters_)
        snap.counters.push_back(counter.load(std::memory_order_relaxed));
    snap.workerUtilization.reserve(busyNanos_.size());
    for (const auto &busy : busyNanos_) {
        const double busy_seconds =
            busy.load(std::memory_order_relaxed) * 1e-9;
        snap.workerUtilization.push_back(
            snap.elapsedSeconds > 0.0
                ? std::min(1.0, busy_seconds / snap.elapsedSeconds)
                : 0.0);
    }
    return snap;
}

std::string
TelemetryHub::progressLine(const TelemetrySnapshot &snap)
{
    char buf[160];
    const double pct =
        snap.runsPlanned > 0
            ? 100.0 * snap.runsCompleted / snap.runsPlanned
            : 100.0;
    std::string line;
    std::snprintf(buf, sizeof(buf), "%zu/%zu %5.1f%% | %.1f runs/s",
                  snap.runsCompleted, snap.runsPlanned, pct,
                  snap.runsPerSecond);
    line += buf;
    if (snap.etaSeconds >= 0.0) {
        std::snprintf(buf, sizeof(buf), " eta %.0fs", snap.etaSeconds);
        line += buf;
    }
    if (!snap.workerUtilization.empty()) {
        double sum = 0.0;
        for (double u : snap.workerUtilization)
            sum += u;
        std::snprintf(buf, sizeof(buf), " | util %3.0f%%",
                      100.0 * sum / snap.workerUtilization.size());
        line += buf;
    }
    std::string counters;
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
        if (snap.counters[i] == 0)
            continue;
        std::snprintf(buf, sizeof(buf), "%s%s=%llu",
                      counters.empty() ? "" : " ",
                      snap.counterLabels[i].c_str(),
                      static_cast<unsigned long long>(snap.counters[i]));
        counters += buf;
    }
    if (!counters.empty())
        line += " | " + counters;
    return line;
}

} // namespace nocalert::exec
