#include "exec/fairsched.hpp"

#include "util/log.hpp"

namespace nocalert::exec {

FairScheduler::~FairScheduler()
{
    // Jobs hold no threads of their own; dropping them is safe. A
    // service wanting checkpoints flushed must cancelAll() + drain
    // before destruction (the registry's shutdown path does).
    stop();
}

FairScheduler::JobId
FairScheduler::enqueue(Quantum quantum, bool front)
{
    NOCALERT_ASSERT(quantum != nullptr, "null quantum");
    std::lock_guard<std::mutex> lock(mutex_);
    const JobId id = nextId_++;
    auto job = std::make_unique<Job>();
    job->quantum = std::move(quantum);
    jobs_.emplace(id, std::move(job));
    if (front)
        ring_.push_front(id);
    else
        ring_.push_back(id);
    wake_.notify_all();
    return id;
}

FairScheduler::JobId
FairScheduler::add(Quantum quantum)
{
    return enqueue(std::move(quantum), /*front=*/false);
}

FairScheduler::JobId
FairScheduler::addFront(Quantum quantum)
{
    return enqueue(std::move(quantum), /*front=*/true);
}

bool
FairScheduler::cancel(JobId job)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(job);
    if (it == jobs_.end())
        return false;
    it->second->token.cancel();
    return true;
}

void
FairScheduler::cancelAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[id, job] : jobs_)
        job->token.cancel();
}

bool
FairScheduler::popNext(JobId &job)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.empty())
        return false;
    job = ring_.front();
    ring_.pop_front();
    return true;
}

bool
FairScheduler::runOne()
{
    JobId id = 0;
    if (!popNext(id))
        return false;

    // The job stays in jobs_ (so cancel() still reaches it) but off
    // the ring while its quantum runs — a second scheduler thread can
    // never step the same job concurrently.
    Job *job = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = jobs_.find(id);
        NOCALERT_ASSERT(it != jobs_.end(), "ring held a retired job");
        job = it->second.get();
    }

    const QuantumResult result = job->quantum(job->token);

    std::lock_guard<std::mutex> lock(mutex_);
    if (result == QuantumResult::MoreWork) {
        ring_.push_back(id);
    } else {
        jobs_.erase(id);
    }
    wake_.notify_all();
    return true;
}

void
FairScheduler::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    wake_.wait(lock, [this] { return jobs_.empty(); });
}

void
FairScheduler::serviceLoop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stop_ || !ring_.empty(); });
            if (stop_)
                return;
        }
        runOne();
    }
}

void
FairScheduler::stop()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    wake_.notify_all();
}

std::size_t
FairScheduler::liveJobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return jobs_.size();
}

} // namespace nocalert::exec
