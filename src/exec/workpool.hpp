/**
 * @file
 * Fixed-size worker pool with per-worker work-stealing deques — the
 * scheduling layer of the execution engine.
 *
 * An indexed task set is dealt round-robin into one deque per worker;
 * each worker drains its own deque from the front and, when empty,
 * steals from the *back* of a victim's deque (classic work-stealing
 * split: the owner touches the cold end, thieves take the hot end, so
 * contention concentrates only when work runs out). Scheduling order
 * is intentionally non-deterministic; determinism of campaign output
 * is owed entirely to the ordered reducer downstream, never to the
 * schedule.
 *
 * Failure and cancellation are first-class: the first task exception
 * aborts dispatch, in-flight tasks finish, and runIndexed rethrows a
 * TaskError naming the offending task index; a CancelToken stops
 * dispatch cooperatively without an error.
 */

#ifndef NOCALERT_EXEC_WORKPOOL_HPP
#define NOCALERT_EXEC_WORKPOOL_HPP

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/cancel.hpp"

namespace nocalert::exec {

/** Per-worker accounting for one runIndexed call. */
struct WorkerStats
{
    std::uint64_t executed = 0;  ///< Tasks this worker ran.
    std::uint64_t stolen = 0;    ///< Of those, taken from a victim.
    std::uint64_t busyNanos = 0; ///< Wall time spent inside tasks.
};

/** Thrown by runIndexed when a task threw; names the failing task. */
class TaskError : public std::runtime_error
{
  public:
    TaskError(std::size_t task_index, const std::string &message)
        : std::runtime_error(message), index_(task_index)
    {
    }

    /** Index of the first task observed to fail. */
    std::size_t taskIndex() const { return index_; }

  private:
    std::size_t index_;
};

/** Fixed-size pool executing indexed task sets. */
class WorkerPool
{
  public:
    /** One unit of work: task index plus the executing worker's id. */
    using Task = std::function<void(std::size_t task, unsigned worker)>;

    /**
     * @p workers 0 resolves to hardwareConcurrency(). @p steal_seed
     * randomizes victim-scan start offsets (scheduling only; output
     * is reduced deterministically regardless).
     */
    explicit WorkerPool(unsigned workers, std::uint64_t steal_seed = 0);

    /** Resolved worker count (>= 1). */
    unsigned workers() const { return workers_; }

    /**
     * Execute tasks 0..count-1 and block until every dispatched task
     * finished. One worker runs inline on the calling thread (the
     * serial path spawns no threads at all). Throws TaskError on the
     * first task failure after quiescing the pool; returns early
     * (without error) when @p cancel fires, leaving undispatched
     * tasks unrun.
     */
    void runIndexed(std::size_t count, const Task &task,
                    CancelToken *cancel = nullptr);

    /** Per-worker stats of the most recent runIndexed call. */
    const std::vector<WorkerStats> &stats() const { return stats_; }

    /** std::thread::hardware_concurrency clamped to >= 1. */
    static unsigned hardwareConcurrency();

  private:
    /** One worker's deque; the mutex also covers a thief's access. */
    struct Deque
    {
        std::mutex mutex;
        std::deque<std::size_t> tasks;
    };

    unsigned workers_;
    std::uint64_t stealSeed_;
    std::vector<WorkerStats> stats_;
};

} // namespace nocalert::exec

#endif // NOCALERT_EXEC_WORKPOOL_HPP
