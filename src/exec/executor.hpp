/**
 * @file
 * CampaignExecutor — the front door of the execution engine.
 *
 * Composes the worker pool (scheduling), the ordered reducer
 * (determinism) and the telemetry hub (observability) into one call:
 * run N independent indexed tasks, deliver their results to a sink in
 * strict index order, and report progress along the way.
 *
 * Each task receives a TaskContext carrying an independently derived
 * RNG stream (`deriveStream(streamSeed, index)` — counter-mode stream
 * selection, never a shared generator), so a task's randomness depends
 * only on its index, not on which worker ran it or when. Combined with
 * the ordered reduction this is the whole determinism argument: task
 * inputs are index-pure, task outputs are index-ordered, therefore
 * campaign output is a pure function of (config, seed) — identical for
 * every jobs count and every interleaving.
 *
 * The executor is deliberately ignorant of fault campaigns: Result is
 * a template parameter and outcome counters are the caller's labeled
 * slots, keeping exec a leaf subsystem under util only.
 */

#ifndef NOCALERT_EXEC_EXECUTOR_HPP
#define NOCALERT_EXEC_EXECUTOR_HPP

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "exec/cancel.hpp"
#include "exec/reduce.hpp"
#include "exec/telemetry.hpp"
#include "exec/workpool.hpp"
#include "util/rng.hpp"

namespace nocalert::exec {

/** Execution knobs; none of these may influence campaign *results*. */
struct ExecConfig
{
    /** Worker count; 0 resolves to hardware concurrency. */
    unsigned jobs = 1;
    /** Base seed the per-task RNG streams are derived from. */
    std::uint64_t streamSeed = 0;
    /** Scheduling-only seed for work-stealing victim selection. */
    std::uint64_t stealSeed = 0;
};

/** Everything a task may depend on: its index and its private RNG. */
struct TaskContext
{
    std::size_t index;
    unsigned worker;
    Pcg32 rng;
};

/** Maps independent indexed tasks onto workers, reduces in order. */
class CampaignExecutor
{
  public:
    explicit CampaignExecutor(ExecConfig config)
        : config_(config), pool_(config.jobs, config.stealSeed)
    {
    }

    /** Resolved worker count (>= 1). */
    unsigned jobs() const { return pool_.workers(); }

    /** Per-worker scheduling stats of the most recent run(). */
    const std::vector<WorkerStats> &stats() const
    {
        return pool_.stats();
    }

    /**
     * Run tasks 0..count-1. @p fn maps a TaskContext to a Result;
     * @p sink receives each (index, Result) in strictly increasing
     * index order, serialized under the reducer lock (shared state
     * touched only from the sink needs no extra locking, and any
     * checkpoint flushed there covers a contiguous prefix).
     *
     * Returns true when all @p count results were committed; false
     * when @p cancel stopped the run early (the sink then saw a
     * contiguous prefix of the task sequence). Rethrows the first
     * task failure as TaskError after quiescing the pool.
     */
    template <typename Result, typename RunFn, typename SinkFn>
    bool run(std::size_t count, RunFn &&fn, SinkFn &&sink,
             CancelToken *cancel = nullptr,
             TelemetryHub *telemetry = nullptr)
    {
        OrderedReducer<Result> reducer(
            [&sink](std::size_t index, Result &&result) {
                sink(index, std::move(result));
            });
        pool_.runIndexed(
            count,
            [&](std::size_t task, unsigned worker) {
                TaskContext ctx{task, worker,
                                deriveStream(config_.streamSeed, task)};
                const auto begin = std::chrono::steady_clock::now();
                Result result = fn(ctx);
                if (telemetry) {
                    // Live utilization: report as each task finishes,
                    // not only after the pool quiesces.
                    telemetry->recordBusy(
                        worker,
                        static_cast<std::uint64_t>(
                            std::chrono::duration_cast<
                                std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - begin)
                                .count()));
                }
                reducer.commit(task, std::move(result));
            },
            cancel);
        return reducer.committed() == count;
    }

  private:
    ExecConfig config_;
    WorkerPool pool_;
};

} // namespace nocalert::exec

#endif // NOCALERT_EXEC_EXECUTOR_HPP
