#include "exec/workpool.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <optional>
#include <thread>

#include "util/rng.hpp"

namespace nocalert::exec {

unsigned
WorkerPool::hardwareConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

WorkerPool::WorkerPool(unsigned workers, std::uint64_t steal_seed)
    : workers_(workers == 0 ? hardwareConcurrency() : workers),
      stealSeed_(steal_seed)
{
}

void
WorkerPool::runIndexed(std::size_t count, const Task &task,
                       CancelToken *cancel)
{
    stats_.assign(workers_, WorkerStats{});
    if (count == 0)
        return;

    // Deal round-robin: task i lands in deque i % workers. With no
    // stealing each worker would process an interleaved slice, which
    // keeps early (cheap, cache-warm) and late tasks mixed evenly.
    std::vector<Deque> deques(workers_);
    for (std::size_t i = 0; i < count; ++i)
        deques[i % workers_].tasks.push_back(i);

    std::atomic<bool> abort{false};
    std::mutex failure_mutex;
    std::optional<TaskError> failure;

    auto pop_own = [&](unsigned w) -> std::optional<std::size_t> {
        Deque &dq = deques[w];
        std::lock_guard<std::mutex> lock(dq.mutex);
        if (dq.tasks.empty())
            return std::nullopt;
        const std::size_t t = dq.tasks.front();
        dq.tasks.pop_front();
        return t;
    };
    auto steal = [&](unsigned thief,
                     Pcg32 &rng) -> std::optional<std::size_t> {
        // Scan every victim once, starting at a random offset so
        // thieves do not all pile onto worker 0.
        const unsigned start =
            workers_ > 1 ? rng.nextBounded(workers_) : 0;
        for (unsigned k = 0; k < workers_; ++k) {
            const unsigned v = (start + k) % workers_;
            if (v == thief)
                continue;
            Deque &dq = deques[v];
            std::lock_guard<std::mutex> lock(dq.mutex);
            if (dq.tasks.empty())
                continue;
            const std::size_t t = dq.tasks.back();
            dq.tasks.pop_back();
            return t;
        }
        return std::nullopt;
    };

    auto worker = [&](unsigned w) {
        // Victim-selection stream: scheduling-only randomness, derived
        // per worker so streams never interfere across threads.
        Pcg32 rng = deriveStream(stealSeed_, w);
        WorkerStats &stats = stats_[w];
        for (;;) {
            if (abort.load(std::memory_order_relaxed))
                return;
            if (cancel && cancel->cancelled())
                return;
            bool was_steal = false;
            std::optional<std::size_t> t = pop_own(w);
            if (!t && workers_ > 1) {
                t = steal(w, rng);
                was_steal = t.has_value();
            }
            if (!t)
                return; // every deque drained: no new work can appear
            const auto begin = std::chrono::steady_clock::now();
            try {
                task(*t, w);
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lock(failure_mutex);
                if (!failure)
                    failure.emplace(*t, e.what());
                abort.store(true, std::memory_order_relaxed);
                return;
            } catch (...) {
                std::lock_guard<std::mutex> lock(failure_mutex);
                if (!failure)
                    failure.emplace(*t, "unknown exception");
                abort.store(true, std::memory_order_relaxed);
                return;
            }
            const auto end = std::chrono::steady_clock::now();
            stats.busyNanos += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    end - begin)
                    .count());
            ++stats.executed;
            if (was_steal)
                ++stats.stolen;
        }
    };

    if (workers_ == 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers_);
        for (unsigned w = 0; w < workers_; ++w)
            pool.emplace_back(worker, w);
        for (std::thread &thread : pool)
            thread.join();
    }

    if (failure)
        throw *failure;
}

} // namespace nocalert::exec
