#include "exec/cancel.hpp"

#include <csignal>

#include "util/log.hpp"

namespace nocalert::exec {

namespace {

/** Token of the (single) active scope; the handler only ever touches
 *  this pointer and the token's atomic flag, both async-signal-safe. */
std::atomic<CancelToken *> active_token{nullptr};

void
onSigint(int)
{
    if (CancelToken *token =
            active_token.exchange(nullptr, std::memory_order_acq_rel)) {
        token->cancel();
        return;
    }
    // Second Ctrl-C: restore the default disposition and re-raise so
    // an unresponsive process still dies on the spot.
    std::signal(SIGINT, SIG_DFL);
    std::raise(SIGINT);
}

using SignalHandler = void (*)(int);
SignalHandler previous_handler = SIG_DFL;

} // namespace

SigintCancelScope::SigintCancelScope(CancelToken &token)
{
    CancelToken *expected = nullptr;
    if (!active_token.compare_exchange_strong(expected, &token,
                                              std::memory_order_acq_rel)) {
        NOCALERT_FATAL("nested SigintCancelScope: only one may be "
                       "active at a time");
    }
    previous_handler = std::signal(SIGINT, onSigint);
}

SigintCancelScope::~SigintCancelScope()
{
    // The handler may already have consumed the pointer (that is how a
    // delivered SIGINT becomes one-shot); clearing is idempotent.
    active_token.store(nullptr, std::memory_order_release);
    std::signal(SIGINT, previous_handler);
}

} // namespace nocalert::exec
