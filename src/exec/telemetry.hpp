/**
 * @file
 * Live progress/telemetry channel for the execution engine.
 *
 * A TelemetryHub accumulates lock-free counters while a campaign runs
 * — completed runs, labeled outcome counters, per-worker busy time —
 * and produces consistent-enough snapshots on demand for a progress
 * line (runs/s, ETA, utilization). The hub is a *live* channel only:
 * wall-clock rates and utilization never enter serialized artifacts,
 * which must stay byte-identical regardless of machine or `--jobs`.
 * The `telemetry` block in campaign JSON is a deterministic projection
 * computed from committed runs by the serializer, not by this class.
 *
 * Layering: exec knows nothing about fault outcomes — counters are
 * labeled slots supplied by the caller.
 */

#ifndef NOCALERT_EXEC_TELEMETRY_HPP
#define NOCALERT_EXEC_TELEMETRY_HPP

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nocalert::exec {

/** Point-in-time view of a running (or finished) campaign. */
struct TelemetrySnapshot
{
    std::size_t runsPlanned = 0;
    std::size_t runsCompleted = 0; ///< Committed (in-order) runs.
    double elapsedSeconds = 0.0;
    double runsPerSecond = 0.0;
    /** Estimated seconds remaining; negative when unknowable (no
     *  completed runs yet). */
    double etaSeconds = -1.0;
    std::vector<std::string> counterLabels;
    std::vector<std::uint64_t> counters;
    /** Per-worker busy fraction of elapsed wall time, in [0, 1]. */
    std::vector<double> workerUtilization;
};

/** Thread-safe accumulator behind TelemetrySnapshot. */
class TelemetryHub
{
  public:
    /**
     * @p counter_labels names the outcome slots recordRun indexes
     * into (e.g. one per campaign outcome class). The elapsed clock
     * starts here.
     */
    TelemetryHub(std::size_t runs_planned, unsigned workers,
                 std::vector<std::string> counter_labels);

    TelemetryHub(const TelemetryHub &) = delete;
    TelemetryHub &operator=(const TelemetryHub &) = delete;

    /** Count one committed run against counter slot @p counter. */
    void recordRun(std::size_t counter);

    /**
     * Update the planned-run total. Adaptive (sampled) campaigns grow
     * the plan batch by batch, so the denominator is mutable; pass the
     * new absolute total, not a delta.
     */
    void setRunsPlanned(std::size_t runs_planned)
    {
        runsPlanned_.store(runs_planned, std::memory_order_relaxed);
    }

    /** Add task wall time for @p worker (called from worker threads). */
    void recordBusy(unsigned worker, std::uint64_t nanos);

    TelemetrySnapshot snapshot() const;

    /**
     * Render a snapshot as a single status line, e.g.
     * `412/1000 41.2% | 12.3 runs/s eta 48s | util 87% | tp=9 tn=400`.
     * No trailing newline; callers own the `\r` / `\n` framing.
     */
    static std::string progressLine(const TelemetrySnapshot &snap);

  private:
    std::chrono::steady_clock::time_point start_;
    std::atomic<std::size_t> runsPlanned_;
    std::vector<std::string> labels_;
    std::atomic<std::size_t> completed_{0};
    std::vector<std::atomic<std::uint64_t>> counters_;
    std::vector<std::atomic<std::uint64_t>> busyNanos_;
};

} // namespace nocalert::exec

#endif // NOCALERT_EXEC_TELEMETRY_HPP
