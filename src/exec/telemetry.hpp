/**
 * @file
 * Live progress/telemetry channel for the execution engine.
 *
 * A TelemetryHub accumulates lock-free counters while a campaign runs
 * — completed runs, labeled outcome counters, per-worker busy time —
 * and produces consistent-enough snapshots on demand for a progress
 * line (runs/s, ETA, utilization). The hub is a *live* channel only:
 * wall-clock rates and utilization never enter serialized artifacts,
 * which must stay byte-identical regardless of machine or `--jobs`.
 * The `telemetry` block in campaign JSON is a deterministic projection
 * computed from committed runs by the serializer, not by this class.
 *
 * Layering: exec knows nothing about fault outcomes — counters are
 * labeled slots supplied by the caller.
 */

#ifndef NOCALERT_EXEC_TELEMETRY_HPP
#define NOCALERT_EXEC_TELEMETRY_HPP

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nocalert::exec {

/** Point-in-time view of a running (or finished) campaign. */
struct TelemetrySnapshot
{
    std::size_t runsPlanned = 0;
    std::size_t runsCompleted = 0; ///< Committed (in-order) runs.
    double elapsedSeconds = 0.0;
    double runsPerSecond = 0.0;
    /** Estimated seconds remaining; negative when unknowable (no
     *  completed runs yet). */
    double etaSeconds = -1.0;
    std::vector<std::string> counterLabels;
    std::vector<std::uint64_t> counters;
    /** Per-worker busy fraction of elapsed wall time, in [0, 1]. */
    std::vector<double> workerUtilization;
};

/**
 * Windowed progress between two snapshots of the same hub — the unit
 * a telemetry *stream* (a subscribed client) receives. Every field is
 * guaranteed finite: a zero-elapsed window, a zero-completed window,
 * or a snapshot pair carrying non-finite rates (however produced) must
 * never leak inf/NaN onto the wire, where a JSON serializer would
 * either crash or emit an unparseable token.
 */
struct TelemetryDelta
{
    std::size_t runsCompleted = 0; ///< Cumulative, at the window end.
    std::size_t runsPlanned = 0;   ///< Plan at the window end.
    std::uint64_t deltaRuns = 0;   ///< Runs committed inside the window.
    double windowSeconds = 0.0;    ///< Window wall-clock length (>= 0).
    /** Rate inside the window; 0 when the window is empty or instant. */
    double runsPerSecond = 0.0;
    /**
     * Seconds remaining at the windowed rate (falling back to the
     * cumulative rate when the window saw no runs); -1 when no rate is
     * available yet. Always finite.
     */
    double etaSeconds = -1.0;
};

/**
 * Compute the delta between two snapshots taken from one hub, @p prev
 * before @p cur. Tolerates out-of-order and degenerate inputs (clock
 * ties, counter resets, non-finite fields) by clamping instead of
 * propagating: the result is always finite.
 */
TelemetryDelta deltaBetween(const TelemetrySnapshot &prev,
                            const TelemetrySnapshot &cur);

/** Thread-safe accumulator behind TelemetrySnapshot. */
class TelemetryHub
{
  public:
    /**
     * @p counter_labels names the outcome slots recordRun indexes
     * into (e.g. one per campaign outcome class). The elapsed clock
     * starts here.
     */
    TelemetryHub(std::size_t runs_planned, unsigned workers,
                 std::vector<std::string> counter_labels);

    TelemetryHub(const TelemetryHub &) = delete;
    TelemetryHub &operator=(const TelemetryHub &) = delete;

    /** Count one committed run against counter slot @p counter. */
    void recordRun(std::size_t counter);

    /**
     * Update the planned-run total. Adaptive (sampled) campaigns grow
     * the plan batch by batch, so the denominator is mutable; pass the
     * new absolute total, not a delta.
     */
    void setRunsPlanned(std::size_t runs_planned)
    {
        runsPlanned_.store(runs_planned, std::memory_order_relaxed);
    }

    /** Add task wall time for @p worker (called from worker threads). */
    void recordBusy(unsigned worker, std::uint64_t nanos);

    TelemetrySnapshot snapshot() const;

    /**
     * Render a snapshot as a single status line, e.g.
     * `412/1000 41.2% | 12.3 runs/s eta 48s | util 87% | tp=9 tn=400`.
     * No trailing newline; callers own the `\r` / `\n` framing.
     */
    static std::string progressLine(const TelemetrySnapshot &snap);

  private:
    std::chrono::steady_clock::time_point start_;
    std::atomic<std::size_t> runsPlanned_;
    std::vector<std::string> labels_;
    std::atomic<std::size_t> completed_{0};
    std::vector<std::atomic<std::uint64_t>> counters_;
    std::vector<std::atomic<std::uint64_t>> busyNanos_;
};

} // namespace nocalert::exec

#endif // NOCALERT_EXEC_TELEMETRY_HPP
