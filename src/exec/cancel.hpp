/**
 * @file
 * Cooperative cancellation for the execution engine.
 *
 * A CancelToken is a shared flag that long-running drivers poll
 * between units of work; anything may set it (a SIGINT handler, a
 * watchdog, a test). Cancellation is *cooperative*: in-flight work
 * finishes, nothing is torn down mid-run, and the driver is expected
 * to flush a valid checkpoint before returning — so an interrupted
 * campaign always resumes cleanly.
 */

#ifndef NOCALERT_EXEC_CANCEL_HPP
#define NOCALERT_EXEC_CANCEL_HPP

#include <atomic>

namespace nocalert::exec {

/** Sticky cancellation flag, safe to set from a signal handler. */
class CancelToken
{
  public:
    CancelToken() = default;
    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Request cancellation (idempotent, async-signal-safe). */
    void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

    /** True once cancel() has been called. */
    bool cancelled() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> cancelled_{false};
};

/**
 * RAII scope that routes SIGINT into a CancelToken: the first Ctrl-C
 * requests a cooperative stop (the campaign flushes its checkpoint
 * and returns), a second one falls through to the default disposition
 * and kills the process the classic way.
 *
 * At most one scope may be active per process at a time; the previous
 * handler is restored on destruction.
 */
class SigintCancelScope
{
  public:
    explicit SigintCancelScope(CancelToken &token);
    ~SigintCancelScope();

    SigintCancelScope(const SigintCancelScope &) = delete;
    SigintCancelScope &operator=(const SigintCancelScope &) = delete;
};

} // namespace nocalert::exec

#endif // NOCALERT_EXEC_CANCEL_HPP
