/**
 * @file
 * Fair round-robin scheduling of long-lived jobs over a shared
 * execution budget — the multiplexing layer of the campaign service.
 *
 * A job is a callback that advances its work by one *batch quantum*
 * per invocation and reports whether more remains. The scheduler keeps
 * runnable jobs in a FIFO ring: each turn pops the head, runs exactly
 * one quantum, and re-appends the job if unfinished — so N concurrent
 * jobs each receive every N-th quantum regardless of arrival order or
 * size (round-robin fairness by construction, not by priority tuning).
 *
 * Cancellation is cooperative and per-job: every job owns a
 * CancelToken handed to each quantum; cancel() fires it, and the next
 * turn (or the quantum in flight) observes it. The scheduler never
 * tears work down mid-quantum, matching the checkpoint discipline of
 * the campaign layer: between quanta there is always a valid resume
 * point on disk.
 *
 * Quanta execute one at a time (parallelism lives *inside* a quantum,
 * on the WorkerPool); the scheduler itself only decides whose turn it
 * is. All public methods are thread-safe.
 */

#ifndef NOCALERT_EXEC_FAIRSCHED_HPP
#define NOCALERT_EXEC_FAIRSCHED_HPP

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "exec/cancel.hpp"

namespace nocalert::exec {

/** What a quantum reports back to the scheduler. */
enum class QuantumResult {
    MoreWork, ///< Re-queue the job for another turn.
    Finished, ///< Done (completed, cancelled, or failed); retire it.
};

/** Round-robin batch-quantum scheduler with per-job cancellation. */
class FairScheduler
{
  public:
    using JobId = std::uint64_t;

    /**
     * One scheduling turn: advance by at most one batch quantum, honor
     * @p cancel promptly (typically by returning Finished after
     * flushing state), never block indefinitely.
     */
    using Quantum = std::function<QuantumResult(CancelToken &cancel)>;

    FairScheduler() = default;
    ~FairScheduler();

    FairScheduler(const FairScheduler &) = delete;
    FairScheduler &operator=(const FairScheduler &) = delete;

    /** Enqueue a job at the tail of the ring; wakes serviceLoop. */
    JobId add(Quantum quantum);

    /**
     * Enqueue at the *head* of the ring — the restart-time requeue
     * hook. Work recovered from a persistent queue (the serve
     * journal) re-enters ahead of whatever arrives while recovery is
     * still underway, so a crash never demotes already-accepted
     * submissions behind newer traffic. Round-robin fairness takes
     * over after each job's first turn.
     */
    JobId addFront(Quantum quantum);

    /**
     * Fire @p job's CancelToken. The job still gets its next turn so
     * the quantum can observe the token and retire cleanly (returning
     * Finished). False when the job is unknown or already retired.
     */
    bool cancel(JobId job);

    /** Fire every live job's token (service shutdown). */
    void cancelAll();

    /**
     * Run the next job's quantum on the calling thread. Returns false
     * without blocking when no job is runnable (all retired, or every
     * live job is currently being stepped elsewhere).
     */
    bool runOne();

    /**
     * Serve quanta until stop(): blocks when idle, wakes on add().
     * Jobs still live at stop() are *not* cancelled implicitly — call
     * cancelAll() first (then drain with runOne) for a clean shutdown.
     */
    void serviceLoop();

    /** Ask serviceLoop to return after the quantum in flight. */
    void stop();

    /**
     * Block until every job has retired. Only sensible after
     * cancelAll() while another thread keeps serving quanta (each
     * cancelled job retires on its next turn).
     */
    void waitIdle();

    /** Jobs not yet retired (includes the one being stepped). */
    std::size_t liveJobs() const;

  private:
    struct Job
    {
        Quantum quantum;
        CancelToken token;
    };

    /** Pop the next runnable job id; nullopt when the ring is empty. */
    bool popNext(JobId &job);

    /** Shared body of add()/addFront(); @p front picks the ring end. */
    JobId enqueue(Quantum quantum, bool front);

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::unordered_map<JobId, std::unique_ptr<Job>> jobs_;
    std::deque<JobId> ring_;
    JobId nextId_ = 1;
    bool stop_ = false;
};

} // namespace nocalert::exec

#endif // NOCALERT_EXEC_FAIRSCHED_HPP
