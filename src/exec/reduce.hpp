/**
 * @file
 * Ordered deterministic reduction — the piece of the execution engine
 * that makes parallel output byte-identical to serial output.
 *
 * Workers complete tasks in whatever order the schedule produces; the
 * reducer buffers out-of-order results and invokes the sink in strict
 * task-index order. The sink therefore observes exactly the sequence a
 * serial loop would have produced, so everything downstream of it
 * (result vectors, checkpoints, progress counters, telemetry) is
 * independent of worker count and interleaving by construction.
 *
 * The sink runs *under the reducer lock*: at most one sink invocation
 * is live at any time, and invocations are totally ordered. Campaign
 * code exploits this — checkpoint writes and shared-state updates in
 * the sink need no further synchronization, which is also what makes
 * a checkpoint flushed at any commit boundary contain a contiguous,
 * deterministic prefix of the run sequence.
 */

#ifndef NOCALERT_EXEC_REDUCE_HPP
#define NOCALERT_EXEC_REDUCE_HPP

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <utility>

namespace nocalert::exec {

/** Buffers out-of-order task results; delivers them in index order. */
template <typename Result>
class OrderedReducer
{
  public:
    /** Invoked once per task, in strictly increasing index order. */
    using Sink = std::function<void(std::size_t index, Result &&result)>;

    explicit OrderedReducer(Sink sink) : sink_(std::move(sink)) {}

    OrderedReducer(const OrderedReducer &) = delete;
    OrderedReducer &operator=(const OrderedReducer &) = delete;

    /**
     * Hand over the result of task @p index (each index exactly once).
     * Delivers to the sink every result that is now contiguous with
     * the already-delivered prefix; anything later stays buffered.
     */
    void commit(std::size_t index, Result &&result)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_.emplace(index, std::move(result));
        for (auto it = pending_.begin();
             it != pending_.end() && it->first == next_;
             it = pending_.begin(), ++next_) {
            sink_(it->first, std::move(it->second));
            pending_.erase(it);
        }
    }

    /** Number of results delivered to the sink (the prefix length). */
    std::size_t committed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return next_;
    }

    /** Results held back waiting for an earlier index. */
    std::size_t buffered() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return pending_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::map<std::size_t, Result> pending_;
    std::size_t next_ = 0;
    Sink sink_;
};

} // namespace nocalert::exec

#endif // NOCALERT_EXEC_REDUCE_HPP
