/**
 * @file
 * Enumeration of fault-injection sites (paper Section 5.2, Figure 5).
 *
 * The fault model targets the control logic at the granularity of
 * individual module inputs and outputs: arbiter request and grant
 * vectors, routing-computation outputs, buffer read/write enables,
 * credit signals, and the architectural registers of the VC status
 * tables, output-VC allocation tables, arbiter priority pointers, and
 * the SA->ST schedule. Flit *contents* are excluded: the paper assumes
 * error-detecting codes protect the datapath (Section 3.3).
 *
 * Sites are enumerated only for connected ports, mirroring the paper's
 * smaller fault-location count at edge and corner routers (205 sites
 * for a full five-port router; 11,808 across the 8x8 mesh in the
 * paper's accounting; our enumeration is finer-grained and the exact
 * totals are reported by the campaign).
 */

#ifndef NOCALERT_FAULT_SITE_HPP
#define NOCALERT_FAULT_SITE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "noc/config.hpp"
#include "noc/signals.hpp"

namespace nocalert::fault {

/** Control signal classes that can host a fault. */
enum class SignalClass : std::uint8_t {
    // ---- Wires (mutated at their producing tap point) ----
    WriteEnable,  ///< Buffer write-enable bit (port = input, bit = vc).
    CreditRecv,   ///< Incoming credit bit (port = output, bit = vc).
    Sa1Req,       ///< SA1 request bit (port = input, bit = vc).
    Sa1Grant,     ///< SA1 grant bit (port = input, bit = vc).
    Sa2Req,       ///< SA2 request bit (port = output, bit = in port).
    Sa2Grant,     ///< SA2 grant bit (port = output, bit = in port).
    Va1Candidate, ///< VA1 selection bits (port, vc; bit of the VC id).
    Va2Req,       ///< VA2 request bit (port = output, vc = out VC, bit = client).
    Va2Grant,     ///< VA2 grant bit (same indexing as Va2Req).
    RcWaiting,    ///< RC service-request bit (port = input, bit = vc).
    RcDone,       ///< RC completion bit (port = input, bit = vc).
    RcOutPort,    ///< RC output-direction bits (port = input, bit).

    // ---- Architectural registers (mutated at CycleStart) ----
    StVcState,    ///< VC state machine register (2 bits).
    StVcOutPort,  ///< VC's saved output port (3 bits).
    StVcOutVc,    ///< VC's saved output VC (bitsFor(V) bits).
    StOutVcFree,  ///< Output-VC allocation table free bit.
    StCredits,    ///< Credit counter bits (bitsFor(depth+1)).
    StSa1Pointer, ///< SA1 round-robin pointer bits.
    StSa2Pointer, ///< SA2 round-robin pointer bits.
    StRcPointer,  ///< RC service pointer bits.
    StSchedValid, ///< Schedule register valid bit (port = input).
    StSchedVc,    ///< Schedule register VC field bits.
    StSchedRow,   ///< Schedule register crossbar row bits.
    StSchedOutVc, ///< Schedule register outgoing VC id bits.
};

/** Number of signal classes (contiguous enum, 0-based). */
inline constexpr unsigned kNumSignalClasses =
    static_cast<unsigned>(SignalClass::StSchedOutVc) + 1;

/** Name of a signal class. */
const char *signalClassName(SignalClass cls);

/** Inverse of signalClassName (nullopt for unknown names). */
std::optional<SignalClass> signalClassFromName(std::string_view name);

/** True iff the class is an architectural register (CycleStart tap). */
bool isStateSignal(SignalClass cls);

/** Tap point at which faults on this class are applied. */
noc::TapPoint signalTapPoint(SignalClass cls);

/** One single-bit fault location. */
struct FaultSite
{
    noc::NodeId router = noc::kInvalidNode;
    SignalClass signal = SignalClass::WriteEnable;
    int port = 0;     ///< Input or output port (role depends on signal).
    int vc = 0;       ///< VC / output-VC index (-1 when not applicable).
    unsigned bit = 0; ///< Bit position within the field.

    /** Human-readable location, e.g. "r12 Sa1Grant p=E bit=2". */
    std::string describe() const;

    bool operator==(const FaultSite &) const = default;
};

/** Enumerates every fault site of a configured network. */
class FaultSiteCatalog
{
  public:
    /** All sites of router @p node under @p config. */
    static std::vector<FaultSite> enumerateRouter(
        const noc::NetworkConfig &config, noc::NodeId node);

    /** All sites of every router in the network. */
    static std::vector<FaultSite> enumerateNetwork(
        const noc::NetworkConfig &config);

    /**
     * Deterministic stratified sample of at most @p max_sites network
     * sites: sites are grouped by signal class and drawn round-robin
     * from per-class shuffles, so every class keeps representation.
     * @p max_sites == 0 returns the full enumeration.
     */
    static std::vector<FaultSite> sampleNetwork(
        const noc::NetworkConfig &config, unsigned max_sites,
        std::uint64_t seed);

    /** Stratified sample drawn from a caller-provided site list. */
    static std::vector<FaultSite> sampleSites(
        std::vector<FaultSite> sites, unsigned max_sites,
        std::uint64_t seed);
};

} // namespace nocalert::fault

#endif // NOCALERT_FAULT_SITE_HPP
