#include "fault/site.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/bits.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace nocalert::fault {

using noc::kNumPorts;
using noc::TapPoint;

const char *
signalClassName(SignalClass cls)
{
    switch (cls) {
      case SignalClass::WriteEnable: return "WriteEnable";
      case SignalClass::CreditRecv: return "CreditRecv";
      case SignalClass::Sa1Req: return "Sa1Req";
      case SignalClass::Sa1Grant: return "Sa1Grant";
      case SignalClass::Sa2Req: return "Sa2Req";
      case SignalClass::Sa2Grant: return "Sa2Grant";
      case SignalClass::Va1Candidate: return "Va1Candidate";
      case SignalClass::Va2Req: return "Va2Req";
      case SignalClass::Va2Grant: return "Va2Grant";
      case SignalClass::RcWaiting: return "RcWaiting";
      case SignalClass::RcDone: return "RcDone";
      case SignalClass::RcOutPort: return "RcOutPort";
      case SignalClass::StVcState: return "StVcState";
      case SignalClass::StVcOutPort: return "StVcOutPort";
      case SignalClass::StVcOutVc: return "StVcOutVc";
      case SignalClass::StOutVcFree: return "StOutVcFree";
      case SignalClass::StCredits: return "StCredits";
      case SignalClass::StSa1Pointer: return "StSa1Pointer";
      case SignalClass::StSa2Pointer: return "StSa2Pointer";
      case SignalClass::StRcPointer: return "StRcPointer";
      case SignalClass::StSchedValid: return "StSchedValid";
      case SignalClass::StSchedVc: return "StSchedVc";
      case SignalClass::StSchedRow: return "StSchedRow";
      case SignalClass::StSchedOutVc: return "StSchedOutVc";
    }
    return "?";
}

std::optional<SignalClass>
signalClassFromName(std::string_view name)
{
    for (unsigned i = 0; i < kNumSignalClasses; ++i) {
        const auto cls = static_cast<SignalClass>(i);
        if (name == signalClassName(cls))
            return cls;
    }
    return std::nullopt;
}

bool
isStateSignal(SignalClass cls)
{
    switch (cls) {
      case SignalClass::StVcState:
      case SignalClass::StVcOutPort:
      case SignalClass::StVcOutVc:
      case SignalClass::StOutVcFree:
      case SignalClass::StCredits:
      case SignalClass::StSa1Pointer:
      case SignalClass::StSa2Pointer:
      case SignalClass::StRcPointer:
      case SignalClass::StSchedValid:
      case SignalClass::StSchedVc:
      case SignalClass::StSchedRow:
      case SignalClass::StSchedOutVc:
        return true;
      default:
        return false;
    }
}

TapPoint
signalTapPoint(SignalClass cls)
{
    switch (cls) {
      case SignalClass::WriteEnable:
      case SignalClass::CreditRecv:
        return TapPoint::AfterInputs;
      case SignalClass::Sa1Req: return TapPoint::AfterSa1Req;
      case SignalClass::Sa1Grant: return TapPoint::AfterSa1;
      case SignalClass::Sa2Req: return TapPoint::AfterSa2Req;
      case SignalClass::Sa2Grant: return TapPoint::AfterSa2;
      case SignalClass::Va1Candidate: return TapPoint::AfterVa1;
      case SignalClass::Va2Req: return TapPoint::AfterVa2Req;
      case SignalClass::Va2Grant: return TapPoint::AfterVa2;
      case SignalClass::RcWaiting: return TapPoint::AfterRcReq;
      case SignalClass::RcDone:
      case SignalClass::RcOutPort:
        return TapPoint::AfterRc;
      default:
        return TapPoint::CycleStart;
    }
}

std::string
FaultSite::describe() const
{
    std::ostringstream os;
    os << "r" << router << " " << signalClassName(signal)
       << " p=" << noc::portName(port);
    if (vc >= 0)
        os << " vc=" << vc;
    os << " bit=" << bit;
    return os.str();
}

std::vector<FaultSite>
FaultSiteCatalog::enumerateRouter(const noc::NetworkConfig &config,
                                  noc::NodeId node)
{
    const noc::RouterParams &params = config.router;
    const unsigned num_vcs = params.numVcs;
    const unsigned vc_bits = bitsFor(num_vcs);
    const unsigned credit_bits = bitsFor(params.bufferDepth + 1);
    const bool has_va = num_vcs > 1;

    std::vector<FaultSite> sites;
    auto add = [&](SignalClass cls, int port, int vc, unsigned bit) {
        sites.push_back({node, cls, port, vc, bit});
    };

    for (int p = 0; p < kNumPorts; ++p) {
        if (!config.portConnected(node, p))
            continue;

        // Per-input-port wire signals, one bit per VC.
        for (unsigned v = 0; v < num_vcs; ++v) {
            add(SignalClass::WriteEnable, p, -1, v);
            add(SignalClass::Sa1Req, p, -1, v);
            add(SignalClass::Sa1Grant, p, -1, v);
            add(SignalClass::RcWaiting, p, -1, v);
            add(SignalClass::RcDone, p, -1, v);
        }
        // RC output direction (3 bits encode 5 ports).
        for (unsigned b = 0; b < 3; ++b)
            add(SignalClass::RcOutPort, p, -1, b);

        // Per-output-port wire signals.
        for (unsigned v = 0; v < num_vcs; ++v)
            add(SignalClass::CreditRecv, p, -1, v);
        for (unsigned b = 0; b < kNumPorts; ++b) {
            add(SignalClass::Sa2Req, p, -1, b);
            add(SignalClass::Sa2Grant, p, -1, b);
        }

        // VA wires (only meaningful with more than one VC).
        if (has_va) {
            for (unsigned v = 0; v < num_vcs; ++v)
                for (unsigned b = 0; b < vc_bits; ++b)
                    add(SignalClass::Va1Candidate, p,
                        static_cast<int>(v), b);
            for (unsigned w = 0; w < num_vcs; ++w) {
                for (int cp = 0; cp < kNumPorts; ++cp) {
                    if (!config.portConnected(node, cp))
                        continue;
                    for (unsigned cv = 0; cv < num_vcs; ++cv) {
                        const unsigned client = noc::vaClient(cp, cv);
                        add(SignalClass::Va2Req, p,
                            static_cast<int>(w), client);
                        add(SignalClass::Va2Grant, p,
                            static_cast<int>(w), client);
                    }
                }
            }
        }

        // Architectural registers.
        for (unsigned v = 0; v < num_vcs; ++v) {
            for (unsigned b = 0; b < 2; ++b)
                add(SignalClass::StVcState, p, static_cast<int>(v), b);
            for (unsigned b = 0; b < 3; ++b)
                add(SignalClass::StVcOutPort, p, static_cast<int>(v), b);
            if (has_va) {
                for (unsigned b = 0; b < vc_bits; ++b)
                    add(SignalClass::StVcOutVc, p,
                        static_cast<int>(v), b);
            }
            add(SignalClass::StOutVcFree, p, static_cast<int>(v), 0);
            for (unsigned b = 0; b < credit_bits; ++b)
                add(SignalClass::StCredits, p, static_cast<int>(v), b);
        }
        for (unsigned b = 0; b < vc_bits; ++b) {
            add(SignalClass::StSa1Pointer, p, -1, b);
            add(SignalClass::StRcPointer, p, -1, b);
        }
        for (unsigned b = 0; b < 3; ++b)
            add(SignalClass::StSa2Pointer, p, -1, b);

        add(SignalClass::StSchedValid, p, -1, 0);
        for (unsigned b = 0; b < vc_bits; ++b) {
            add(SignalClass::StSchedVc, p, -1, b);
            add(SignalClass::StSchedOutVc, p, -1, b);
        }
        for (unsigned b = 0; b < kNumPorts; ++b)
            add(SignalClass::StSchedRow, p, -1, b);
    }

    return sites;
}

std::vector<FaultSite>
FaultSiteCatalog::enumerateNetwork(const noc::NetworkConfig &config)
{
    std::vector<FaultSite> all;
    for (noc::NodeId n = 0; n < config.numNodes(); ++n) {
        auto sites = enumerateRouter(config, n);
        all.insert(all.end(), sites.begin(), sites.end());
    }
    return all;
}

std::vector<FaultSite>
FaultSiteCatalog::sampleNetwork(const noc::NetworkConfig &config,
                                unsigned max_sites, std::uint64_t seed)
{
    return sampleSites(enumerateNetwork(config), max_sites, seed);
}

std::vector<FaultSite>
FaultSiteCatalog::sampleSites(std::vector<FaultSite> all,
                              unsigned max_sites, std::uint64_t seed)
{
    if (max_sites == 0 || all.size() <= max_sites)
        return all;

    // Group by signal class, shuffle each group, draw round-robin.
    std::map<SignalClass, std::vector<FaultSite>> groups;
    for (const FaultSite &site : all)
        groups[site.signal].push_back(site);

    Pcg32 rng(seed);
    for (auto &[cls, group] : groups) {
        for (std::size_t i = group.size(); i > 1; --i) {
            const auto j = rng.nextBounded(static_cast<std::uint32_t>(i));
            std::swap(group[i - 1], group[j]);
        }
    }

    std::vector<FaultSite> sample;
    sample.reserve(max_sites);
    std::size_t round = 0;
    while (sample.size() < max_sites) {
        bool any = false;
        for (auto &[cls, group] : groups) {
            if (round < group.size()) {
                sample.push_back(group[round]);
                any = true;
                if (sample.size() == max_sites)
                    break;
            }
        }
        if (!any)
            break;
        ++round;
    }
    return sample;
}

} // namespace nocalert::fault
