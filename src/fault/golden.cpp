#include "fault/golden.hpp"

#include <sstream>

#include "util/log.hpp"

namespace nocalert::fault {

using core::kBoundedDelivery;
using core::kNoCorruptionOrMixing;
using core::kNoFlitDrop;
using core::kNoNewFlitGeneration;

const char *
violationTypeName(GoldenViolation::Type type)
{
    switch (type) {
      case GoldenViolation::Type::FlitLost: return "flit-lost";
      case GoldenViolation::Type::NewFlit: return "new-flit";
      case GoldenViolation::Type::WrongDestination: return "wrong-dest";
      case GoldenViolation::Type::OrderViolation: return "order";
      case GoldenViolation::Type::NotDrained: return "not-drained";
    }
    return "?";
}

std::string
GoldenViolation::describe() const
{
    std::ostringstream os;
    os << violationTypeName(type) << " pkt=" << packet << " seq=" << seq
       << " node=" << node;
    return os.str();
}

std::uint8_t
GoldenComparison::conditions() const
{
    std::uint8_t bits = 0;
    for (const GoldenViolation &v : violations) {
        switch (v.type) {
          case GoldenViolation::Type::FlitLost:
            bits |= kNoFlitDrop;
            break;
          case GoldenViolation::Type::NewFlit:
            bits |= kNoNewFlitGeneration;
            break;
          case GoldenViolation::Type::WrongDestination:
          case GoldenViolation::Type::OrderViolation:
            bits |= kNoCorruptionOrMixing;
            break;
          case GoldenViolation::Type::NotDrained:
            bits |= kBoundedDelivery;
            break;
        }
    }
    return bits;
}

GoldenReference::GoldenReference(
    const std::vector<noc::EjectionRecord> &golden)
{
    for (const noc::EjectionRecord &rec : golden) {
        const Key key{rec.flit.packet, rec.flit.seq};
        const auto [it, inserted] = flits_.emplace(key, rec.node);
        if (!inserted) {
            NOCALERT_PANIC("golden run ejected flit twice: pkt=",
                           rec.flit.packet, " seq=", rec.flit.seq);
        }
    }
}

GoldenComparison
GoldenReference::compare(const std::vector<noc::EjectionRecord> &faulty,
                         bool drained) const
{
    GoldenComparison result;
    std::map<Key, unsigned> seen;
    // Last ejected sequence number per (packet, node), to verify
    // intra-packet order within each node's time-ordered log.
    std::map<std::pair<noc::PacketId, noc::NodeId>, int> last_seq;

    for (const noc::EjectionRecord &rec : faulty) {
        const Key key{rec.flit.packet, rec.flit.seq};
        const auto golden_it = flits_.find(key);

        if (golden_it == flits_.end()) {
            result.violations.push_back(
                {GoldenViolation::Type::NewFlit, rec.flit.packet,
                 rec.flit.seq, rec.node});
            continue;
        }

        unsigned &count = seen[key];
        ++count;
        if (count > 1) {
            result.violations.push_back(
                {GoldenViolation::Type::NewFlit, rec.flit.packet,
                 rec.flit.seq, rec.node});
            continue;
        }

        if (golden_it->second != rec.node) {
            result.violations.push_back(
                {GoldenViolation::Type::WrongDestination,
                 rec.flit.packet, rec.flit.seq, rec.node});
            continue;
        }

        auto &last = last_seq[{rec.flit.packet, rec.node}];
        // Default-constructed value is 0; store seq+1 so seq 0 works.
        if (static_cast<int>(rec.flit.seq) + 1 <= last) {
            result.violations.push_back(
                {GoldenViolation::Type::OrderViolation,
                 rec.flit.packet, rec.flit.seq, rec.node});
        }
        if (static_cast<int>(rec.flit.seq) + 1 > last)
            last = static_cast<int>(rec.flit.seq) + 1;
    }

    for (const auto &[key, node] : flits_) {
        if (seen.find(key) == seen.end()) {
            result.violations.push_back(
                {GoldenViolation::Type::FlitLost, key.first, key.second,
                 node});
        }
    }

    if (!drained) {
        result.violations.push_back(
            {GoldenViolation::Type::NotDrained, noc::kInvalidPacket, 0,
             noc::kInvalidNode});
    }

    return result;
}

} // namespace nocalert::fault
