#include "fault/injector.hpp"

#include "util/bits.hpp"
#include "util/log.hpp"

namespace nocalert::fault {

using noc::RouterWires;
using noc::TapPoint;

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Transient: return "transient";
      case FaultKind::Intermittent: return "intermittent";
      case FaultKind::Permanent: return "permanent";
    }
    return "?";
}

std::optional<FaultKind>
faultKindFromName(std::string_view name)
{
    for (int i = 0; i <= static_cast<int>(FaultKind::Permanent); ++i) {
        const auto kind = static_cast<FaultKind>(i);
        if (name == faultKindName(kind))
            return kind;
    }
    return std::nullopt;
}

void
FaultInjector::attach(noc::Network &network)
{
    network.setTapHook(hook());

    // The hook only ever acts on the armed routers; narrow the tap
    // focus so the active-set kernel may still skip the rest, while
    // the armed routers evaluate every cycle — a transient scheduled
    // on an idle router fires at exactly its configured cycle.
    std::vector<noc::NodeId> armed;
    armed.reserve(faults_.size());
    for (const FaultSpec &spec : faults_)
        armed.push_back(spec.site.router);
    network.setTapFocus(armed);
}

noc::Router::TapHook
FaultInjector::hook()
{
    return [this](noc::Router &router, TapPoint tap, RouterWires &wires) {
        onTap(router, tap, wires);
    };
}

bool
FaultInjector::activeAt(const FaultSpec &spec, noc::Cycle cycle)
{
    switch (spec.kind) {
      case FaultKind::Transient:
        return cycle == spec.cycle;
      case FaultKind::Permanent:
        return cycle >= spec.cycle;
      case FaultKind::Intermittent:
        return cycle >= spec.cycle && spec.period > 0 &&
               (cycle - spec.cycle) % spec.period < spec.duty;
    }
    return false;
}

void
FaultInjector::onTap(noc::Router &router, TapPoint tap, RouterWires &wires)
{
    for (const FaultSpec &spec : faults_) {
        if (spec.site.router != router.node())
            continue;
        if (signalTapPoint(spec.site.signal) != tap)
            continue;
        if (!activeAt(spec, wires.cycle))
            continue;
        applyToRouter(router, wires, spec.site);
        ++applications_;
    }
}

namespace {

/** Flip one bit of a small register field given an "invalid" encoding
 *  for negative sentinels (hardware registers have no -1). */
int
flipField(int value, unsigned bit, unsigned width)
{
    const auto mask = static_cast<unsigned>(lowMask(width));
    unsigned encoded =
        value >= 0 ? (static_cast<unsigned>(value) & mask) : mask;
    encoded ^= (1u << bit) & mask;
    return static_cast<int>(encoded);
}

} // namespace

void
FaultInjector::applyToRouter(noc::Router &router, RouterWires &wires,
                             const FaultSite &site)
{
    const unsigned num_vcs = router.params().numVcs;
    const unsigned vc_bits = bitsFor(num_vcs);
    const int p = site.port;
    const unsigned bit = site.bit;
    NOCALERT_ASSERT(p >= 0 && p < noc::kNumPorts,
                    "fault site port out of range: ", p);

    switch (site.signal) {
      case SignalClass::WriteEnable:
        wires.in[p].writeEnable = static_cast<std::uint32_t>(
            flipBit(wires.in[p].writeEnable, bit));
        break;
      case SignalClass::CreditRecv:
        wires.out[p].creditRecv = static_cast<std::uint32_t>(
            flipBit(wires.out[p].creditRecv, bit));
        break;
      case SignalClass::Sa1Req:
        wires.in[p].sa1Req = flipBit(wires.in[p].sa1Req, bit);
        break;
      case SignalClass::Sa1Grant:
        wires.in[p].sa1Grant = flipBit(wires.in[p].sa1Grant, bit);
        break;
      case SignalClass::Sa2Req:
        wires.out[p].sa2Req = flipBit(wires.out[p].sa2Req, bit);
        break;
      case SignalClass::Sa2Grant:
        wires.out[p].sa2Grant = flipBit(wires.out[p].sa2Grant, bit);
        break;
      case SignalClass::Va1Candidate: {
        // The candidate field has a validity notion: with no candidate
        // selected this cycle the downstream request decoder is
        // disabled, so flipping value bits has no effect.
        int &cand =
            wires.in[p].vc[static_cast<unsigned>(site.vc)].va1CandidateVc;
        if (cand >= 0)
            cand = flipField(cand, bit, vc_bits);
        break;
      }
      case SignalClass::Va2Req:
        wires.out[p].va2Req[static_cast<unsigned>(site.vc)] = flipBit(
            wires.out[p].va2Req[static_cast<unsigned>(site.vc)], bit);
        break;
      case SignalClass::Va2Grant:
        wires.out[p].va2Grant[static_cast<unsigned>(site.vc)] = flipBit(
            wires.out[p].va2Grant[static_cast<unsigned>(site.vc)], bit);
        break;
      case SignalClass::RcWaiting:
        wires.in[p].rcWaiting = static_cast<std::uint32_t>(
            flipBit(wires.in[p].rcWaiting, bit));
        break;
      case SignalClass::RcDone:
        wires.in[p].rcDone = static_cast<std::uint32_t>(
            flipBit(wires.in[p].rcDone, bit));
        break;
      case SignalClass::RcOutPort:
        wires.in[p].rcOutPort = flipField(wires.in[p].rcOutPort, bit, 3);
        break;

      case SignalClass::StVcState: {
        noc::VcRecord &rec =
            router.vcRecord(p, static_cast<unsigned>(site.vc));
        const unsigned encoded =
            static_cast<unsigned>(rec.state) ^ (1u << bit);
        rec.state = static_cast<noc::VcState>(encoded & 3u);
        break;
      }
      case SignalClass::StVcOutPort: {
        noc::VcRecord &rec =
            router.vcRecord(p, static_cast<unsigned>(site.vc));
        rec.outPort = flipField(rec.outPort, bit, 3);
        break;
      }
      case SignalClass::StVcOutVc: {
        noc::VcRecord &rec =
            router.vcRecord(p, static_cast<unsigned>(site.vc));
        rec.outVc = flipField(rec.outVc, bit, vc_bits);
        break;
      }
      case SignalClass::StOutVcFree: {
        noc::OutVcState &ov =
            router.outVcState(p, static_cast<unsigned>(site.vc));
        ov.free = !ov.free;
        break;
      }
      case SignalClass::StCredits: {
        noc::OutVcState &ov =
            router.outVcState(p, static_cast<unsigned>(site.vc));
        const unsigned width = bitsFor(router.params().bufferDepth + 1);
        ov.credits = static_cast<std::uint8_t>(
            (ov.credits ^ (1u << bit)) & lowMask(width));
        break;
      }
      case SignalClass::StSa1Pointer:
        router.sa1Arbiter(p).setPointer(
            router.sa1Arbiter(p).pointer() ^ (1u << bit));
        break;
      case SignalClass::StSa2Pointer:
        router.sa2Arbiter(p).setPointer(
            router.sa2Arbiter(p).pointer() ^ (1u << bit));
        break;
      case SignalClass::StRcPointer:
        router.rcArbiter(p).setPointer(
            router.rcArbiter(p).pointer() ^ (1u << bit));
        break;
      case SignalClass::StSchedValid:
        router.schedule(p).valid = !router.schedule(p).valid;
        break;
      case SignalClass::StSchedVc:
        router.schedule(p).vc = static_cast<std::uint8_t>(
            (router.schedule(p).vc ^ (1u << bit)) & lowMask(vc_bits));
        break;
      case SignalClass::StSchedRow:
        router.schedule(p).rowMask = static_cast<std::uint32_t>(
            flipBit(router.schedule(p).rowMask, bit));
        break;
      case SignalClass::StSchedOutVc:
        router.schedule(p).outVcWire = static_cast<std::uint8_t>(
            (router.schedule(p).outVcWire ^ (1u << bit)) &
            lowMask(vc_bits));
        break;
    }
}

} // namespace nocalert::fault
