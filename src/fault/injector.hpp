/**
 * @file
 * Single-bit fault injection into router wires and registers.
 *
 * A fault is a bit flip at a FaultSite applied at its signal's tap
 * point. Transient faults flip once; permanent faults behave as
 * stuck-inverted (the flip is re-applied every cycle); intermittent
 * faults flip during a duty window of every period. The paper's
 * headline evaluation uses single-bit single-event transients and
 * notes that permanent/intermittent faults trigger the same checkers,
 * persistently (Section 5.2).
 */

#ifndef NOCALERT_FAULT_INJECTOR_HPP
#define NOCALERT_FAULT_INJECTOR_HPP

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "fault/site.hpp"
#include "noc/network.hpp"
#include "noc/router.hpp"

namespace nocalert::fault {

/** Temporal behaviour of a fault. */
enum class FaultKind : std::uint8_t {
    Transient,    ///< Applied at exactly one cycle.
    Intermittent, ///< Applied during a duty window of each period.
    Permanent,    ///< Applied at every cycle from onset.
};

/** Name of a fault kind. */
const char *faultKindName(FaultKind kind);

/** Inverse of faultKindName (nullopt for unknown names). */
std::optional<FaultKind> faultKindFromName(std::string_view name);

/** A fault site plus its temporal activation. */
struct FaultSpec
{
    FaultSite site;
    noc::Cycle cycle = 0;    ///< Onset cycle.
    FaultKind kind = FaultKind::Transient;
    noc::Cycle period = 10;  ///< Intermittent: period length.
    noc::Cycle duty = 1;     ///< Intermittent: active cycles per period.
};

/** Applies armed faults through a network's tap hook. */
class FaultInjector
{
  public:
    /** Arm a fault (several may be armed for multi-fault studies). */
    void arm(const FaultSpec &spec) { faults_.push_back(spec); }

    /** Disarm everything. */
    void clear() { faults_.clear(); }

    /** Armed faults. */
    const std::vector<FaultSpec> &faults() const { return faults_; }

    /**
     * Install this injector as @p network's tap hook and narrow the
     * network's tap focus to the armed routers (they stay pinned in
     * the active set so injections fire on schedule even on idle
     * routers; everything else remains skippable).
     */
    void attach(noc::Network &network);

    /** The tap hook, for manual composition with other hooks. */
    noc::Router::TapHook hook();

    /** Number of bit flips performed so far. */
    std::uint64_t applications() const { return applications_; }

    /** True iff @p spec is active at @p cycle. */
    static bool activeAt(const FaultSpec &spec, noc::Cycle cycle);

    /**
     * Flip the site's bit in @p wires / @p router state. Exposed for
     * targeted unit tests of individual checkers.
     */
    static void applyToRouter(noc::Router &router,
                              noc::RouterWires &wires,
                              const FaultSite &site);

  private:
    void onTap(noc::Router &router, noc::TapPoint tap,
               noc::RouterWires &wires);

    std::vector<FaultSpec> faults_;
    std::uint64_t applications_ = 0;
};

} // namespace nocalert::fault

#endif // NOCALERT_FAULT_INJECTOR_HPP
