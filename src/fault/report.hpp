/**
 * @file
 * Campaign result export: per-run CSV (one row per injected fault,
 * suitable for external plotting/statistics) and a compact text
 * summary shared by examples and benches.
 */

#ifndef NOCALERT_FAULT_REPORT_HPP
#define NOCALERT_FAULT_REPORT_HPP

#include <iosfwd>
#include <string>

#include "fault/campaign.hpp"

namespace nocalert::fault {

/**
 * Write one CSV row per fault run: site coordinates, ground truth,
 * detector verdicts, and latencies. Columns:
 * router,signal,port,vc,bit,violated,conditions,drained,
 * detected,latency,cautious,cautious_latency,at_injection,
 * simultaneous,invariants,forever_detected,forever_latency
 */
void writeCampaignCsv(const CampaignResult &result, std::ostream &os);

/** Render the summary (outcome matrix + latency stats) as text. */
std::string summaryText(const CampaignResult &result);

/**
 * Render the per-stratum estimate table (draws, detection rate,
 * Wilson / Clopper-Pearson intervals, false-negative counts, halt
 * state) of a sampled result; empty string for exhaustive results.
 * summaryText appends this automatically.
 */
std::string samplingText(const CampaignResult &result);

} // namespace nocalert::fault

#endif // NOCALERT_FAULT_REPORT_HPP
