#include "fault/campaign.hpp"

#include <atomic>
#include <thread>

#include "core/nocalert.hpp"
#include "util/log.hpp"

namespace nocalert::fault {

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::TruePositive: return "true-positive";
      case Outcome::FalsePositive: return "false-positive";
      case Outcome::TrueNegative: return "true-negative";
      case Outcome::FalseNegative: return "false-negative";
    }
    return "?";
}

namespace {

Outcome
classify(bool detected, bool violated)
{
    if (detected)
        return violated ? Outcome::TruePositive : Outcome::FalsePositive;
    return violated ? Outcome::FalseNegative : Outcome::TrueNegative;
}

} // namespace

Outcome
FaultRunResult::outcome() const
{
    return classify(detected, violated);
}

Outcome
FaultRunResult::cautiousOutcome() const
{
    return classify(detectedCautious, violated);
}

Outcome
FaultRunResult::foreverOutcome() const
{
    return classify(foreverDetected, violated);
}

double
CampaignSummary::pct(std::uint64_t count) const
{
    if (runs == 0)
        return 0.0;
    return 100.0 * static_cast<double>(count) /
           static_cast<double>(runs);
}

CampaignSummary
CampaignResult::summarize() const
{
    CampaignSummary summary;
    summary.runs = runs.size();

    for (const FaultRunResult &run : runs) {
        summary.nocalert[static_cast<unsigned>(run.outcome())] += 1;
        summary.cautious[static_cast<unsigned>(run.cautiousOutcome())] += 1;
        summary.forever[static_cast<unsigned>(run.foreverOutcome())] += 1;

        if (run.outcome() == Outcome::TruePositive)
            summary.detectionLatency.add(run.detectionLatency);
        if (run.foreverOutcome() == Outcome::TruePositive)
            summary.foreverLatency.add(run.foreverLatency);
        if (run.detected)
            summary.simultaneous.add(run.simultaneousCheckers);

        for (core::InvariantId id : run.invariants)
            summary.perInvariant[core::invariantIndex(id)] += 1;

        if (!run.alertAtInjection) {
            ++summary.noInstantAlert;
            if (run.detected) {
                ++summary.noInstantCaughtLater;
            } else if (run.violated) {
                ++summary.noInstantViolatedUndetected;
            } else {
                ++summary.noInstantBenignUndetected;
            }
        }
    }
    return summary;
}

FaultCampaign::FaultCampaign(CampaignConfig config)
    : config_(std::move(config))
{
    config_.network.validate();
    // Generation must stop so runs can drain and bounded delivery is
    // decidable within the horizon.
    config_.traffic.stopCycle = config_.warmup + config_.observeWindow;
}

FaultRunResult
FaultCampaign::runSingle(const CampaignConfig &config,
                         const noc::Network &base,
                         const GoldenReference &golden,
                         const FaultSite &site)
{
    noc::Network net(base);

    core::NoCAlertEngine engine(net, /*attach_now=*/false);
    std::optional<forever::ForeverModel> fever;
    if (config.runForever)
        fever.emplace(net, config.forever, /*attach_now=*/false);

    net.setRouterObserver([&](const noc::Router &router,
                              const noc::RouterWires &wires) {
        engine.observeRouter(router, wires);
        if (fever)
            fever->observeRouter(router, wires);
    });
    net.setNiObserver([&](const noc::NetworkInterface &ni,
                          const noc::NiWires &wires) {
        engine.observeNi(ni, wires);
        if (fever)
            fever->observeNi(ni, wires);
    });
    if (fever) {
        net.setCycleObserver(
            [&](const noc::Network &n) { fever->onCycleEnd(n); });
    }

    FaultRunResult result;
    result.site = site;
    result.injectCycle = net.cycle();

    FaultInjector injector;
    injector.arm({site, result.injectCycle, config.kind});
    injector.attach(net);

    net.run(config.observeWindow);
    result.drained = net.drain(config.drainLimit);

    // ForEVeR's counter alarms fire at epoch boundaries; give it one
    // full epoch past quiescence so a stuck counter is evaluated even
    // when the network otherwise went idle.
    if (fever)
        net.run(config.forever.epochLength + 2);

    const GoldenComparison comparison =
        golden.compare(net.collectEjections(), result.drained);
    result.violated = comparison.violated();
    result.violatedConditions = comparison.conditions();

    const core::AlertLog &log = engine.log();
    if (auto first = log.firstCycle()) {
        result.detected = true;
        result.detectionLatency = *first - result.injectCycle;
        result.alertAtInjection = *first == result.injectCycle;
        result.simultaneousCheckers =
            static_cast<unsigned>(log.invariantsAtCycle(*first).size());
    }
    if (auto first = log.firstCautiousCycle()) {
        result.detectedCautious = true;
        result.cautiousLatency = *first - result.injectCycle;
    }
    result.invariants = log.distinctInvariants();

    if (fever) {
        if (auto first = fever->firstDetection()) {
            result.foreverDetected = true;
            result.foreverLatency = *first - result.injectCycle;
        }
    }

    return result;
}

CampaignResult
FaultCampaign::run(const Progress &progress)
{
    CampaignResult result;
    result.config = config_;

    // ---- Warm snapshot ----
    noc::Network base(config_.network, config_.traffic);
    {
        // Any assertion during warmup would poison every
        // classification; the engine enforces the zero-false-alarm
        // property of the clean network.
        core::NoCAlertEngine warm_guard(base);
        base.run(config_.warmup);
        NOCALERT_ASSERT(warm_guard.log().empty(),
                        "checker asserted during fault-free warmup");
        base.setRouterObserver(nullptr);
        base.setNiObserver(nullptr);
    }

    // ---- Golden reference ----
    noc::Network golden(base);
    {
        core::NoCAlertEngine golden_guard(golden);
        golden.run(config_.observeWindow);
        const bool drained = golden.drain(config_.drainLimit);
        if (!drained) {
            NOCALERT_FATAL("golden run failed to drain within ",
                           config_.drainLimit,
                           " cycles; lower the injection rate");
        }
        NOCALERT_ASSERT(golden_guard.log().empty(),
                        "checker asserted during fault-free golden run");
    }
    const GoldenReference reference(golden.collectEjections());
    result.goldenFlits = reference.flitCount();

    // ---- Site selection ----
    std::vector<FaultSite> population =
        FaultSiteCatalog::enumerateNetwork(config_.network);
    if (config_.wireSitesOnly) {
        std::erase_if(population, [](const FaultSite &site) {
            return isStateSignal(site.signal);
        });
    }
    result.totalSitesEnumerated = population.size();
    const std::vector<FaultSite> sites = FaultSiteCatalog::sampleSites(
        std::move(population), config_.maxSites, config_.sampleSeed);

    // ---- Fault runs ----
    result.runs.resize(sites.size());
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};

    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= sites.size())
                return;
            result.runs[i] =
                runSingle(config_, base, reference, sites[i]);
            const std::size_t completed = done.fetch_add(1) + 1;
            if (progress)
                progress(completed, sites.size());
        }
    };

    const unsigned threads = std::max(1u, config_.threads);
    if (threads == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &thread : pool)
            thread.join();
    }

    return result;
}

} // namespace nocalert::fault
