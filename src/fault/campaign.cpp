#include "fault/campaign.hpp"

#include <algorithm>
#include <filesystem>
#include <unordered_map>

#include "core/nocalert.hpp"
#include "exec/executor.hpp"
#include "fault/sampled.hpp"
#include "fault/serialize.hpp"
#include "recovery/orchestrator.hpp"
#include "util/log.hpp"

namespace nocalert::fault {

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::TruePositive: return "true-positive";
      case Outcome::FalsePositive: return "false-positive";
      case Outcome::TrueNegative: return "true-negative";
      case Outcome::FalseNegative: return "false-negative";
      case Outcome::DetectedRecovered: return "detected-recovered";
    }
    return "?";
}

namespace {

Outcome
classify(bool detected, bool violated)
{
    if (detected)
        return violated ? Outcome::TruePositive : Outcome::FalsePositive;
    return violated ? Outcome::FalseNegative : Outcome::TrueNegative;
}

} // namespace

Outcome
FaultRunResult::outcome() const
{
    // A detected fault whose post-recovery ejection log matched golden
    // is the loop-closure success case, reported as its own class; a
    // recovered run is by construction not violated, so the remaining
    // four classes keep their schema-v2 meaning.
    if (recovered)
        return Outcome::DetectedRecovered;
    return classify(detected, violated);
}

Outcome
FaultRunResult::cautiousOutcome() const
{
    return classify(detectedCautious, violated);
}

Outcome
FaultRunResult::foreverOutcome() const
{
    return classify(foreverDetected, violated);
}

double
CampaignSummary::pct(std::uint64_t count) const
{
    if (runs == 0)
        return 0.0;
    return 100.0 * static_cast<double>(count) /
           static_cast<double>(runs);
}

CampaignTelemetry
computeTelemetry(const CampaignResult &result)
{
    CampaignTelemetry telemetry;
    telemetry.runsPlanned = result.shardRunsPlanned;
    telemetry.runsCompleted = result.runs.size();
    for (const FaultRunResult &run : result.runs)
        telemetry.outcomes[static_cast<unsigned>(run.outcome())] += 1;
    return telemetry;
}

CampaignSummary
CampaignResult::summarize() const
{
    CampaignSummary summary;
    summary.runs = runs.size();

    for (const FaultRunResult &run : runs) {
        summary.nocalert[static_cast<unsigned>(run.outcome())] += 1;
        summary.cautious[static_cast<unsigned>(run.cautiousOutcome())] += 1;
        summary.forever[static_cast<unsigned>(run.foreverOutcome())] += 1;

        if (run.outcome() == Outcome::TruePositive)
            summary.detectionLatency.add(run.detectionLatency);
        if (run.foreverOutcome() == Outcome::TruePositive)
            summary.foreverLatency.add(run.foreverLatency);
        if (run.detected)
            summary.simultaneous.add(run.simultaneousCheckers);

        for (core::InvariantId id : run.invariants)
            summary.perInvariant[core::invariantIndex(id)] += 1;

        if (!run.alertAtInjection) {
            ++summary.noInstantAlert;
            if (run.detected) {
                ++summary.noInstantCaughtLater;
            } else if (run.violated) {
                ++summary.noInstantViolatedUndetected;
            } else {
                ++summary.noInstantBenignUndetected;
            }
        }
    }
    return summary;
}

CampaignConfig
normalizedCampaignConfig(CampaignConfig config)
{
    // Generation must stop so runs can drain and bounded delivery is
    // decidable within the horizon. Pinned on every backend so the
    // identity hash reflects the one the run actually uses.
    config.workload.setStopCycle(config.warmup + config.observeWindow);

    // Recovery mode implies the full stack: end-to-end retransmission
    // plus quarantine-aware routing. Forcing them here (idempotently)
    // keeps the knobs consistent between a fresh campaign and one
    // resumed from a checkpoint that recorded the mutated config.
    if (config.recovery) {
        config.network.retransmit.enabled = true;
        config.network.routing = noc::RoutingAlgo::QAdaptive;
        config.runForever = false;
    }
    return config;
}

FaultCampaign::FaultCampaign(CampaignConfig config)
    : config_(normalizedCampaignConfig(std::move(config)))
{
    config_.network.validate();
    {
        const std::string error = nocalert::traffic::validateWorkloadSpec(
            config_.network, config_.workload);
        if (!error.empty())
            NOCALERT_FATAL("invalid workload spec: ", error);
    }
    if (config_.shardCount == 0 ||
        config_.shardIndex >= config_.shardCount) {
        NOCALERT_FATAL("invalid shard selector ", config_.shardIndex,
                       "/", config_.shardCount);
    }
    if (config_.sampling.enabled) {
        // The budget guard: reject a campaign the sampler could never
        // finish before simulating a single run.
        const std::string error = validateSamplingSpec(
            config_.sampling, config_.observeWindow);
        if (!error.empty())
            NOCALERT_FATAL("invalid sampling spec: ", error);
        if (config_.shardCount != 1) {
            NOCALERT_FATAL("sampled campaigns are single-shard: the "
                           "adaptive run stream has no static "
                           "partition to shard over");
        }
        if (config_.sampling.stratify == Stratify::Phase &&
            config_.workload.kind !=
                nocalert::traffic::WorkloadKind::Phased) {
            NOCALERT_FATAL("phase stratification needs a phased "
                           "workload, got kind '",
                           nocalert::traffic::workloadKindName(
                               config_.workload.kind),
                           "'");
        }
        if (config_.workload.kind ==
                nocalert::traffic::WorkloadKind::Trace &&
            config_.sampling.seedCount != 1) {
            NOCALERT_FATAL("trace workloads draw no randomness; "
                           "sampling.seedCount must be 1, got ",
                           config_.sampling.seedCount);
        }
    }
}

FaultRunResult
FaultCampaign::runSingle(const CampaignConfig &config,
                         const noc::Network &base,
                         const GoldenReference &golden,
                         const FaultSite &site,
                         noc::Cycle inject_offset)
{
    noc::Network net(base);

    core::NoCAlertEngine engine(net, /*attach_now=*/false);
    std::optional<forever::ForeverModel> fever;
    if (config.runForever)
        fever.emplace(net, config.forever, /*attach_now=*/false);

    // ForEVeR's allocation comparator inspects every non-quiescent
    // router's wires each cycle; the bitmask fast path never
    // materialises RouterWires, so those runs take the classic path.
    if (fever && net.kernelMode() == noc::KernelMode::Bitmask)
        net.setKernelMode(noc::KernelMode::Active);

    net.setPackedObserver([&](const noc::Router &router,
                              const noc::PackedCycleEvents &ev) {
        engine.observePacked(router, ev);
    });
    net.setRouterObserver([&](const noc::Router &router,
                              const noc::RouterWires &wires) {
        engine.observeRouter(router, wires);
        if (fever)
            fever->observeRouter(router, wires);
    });
    net.setNiObserver([&](const noc::NetworkInterface &ni,
                          const noc::NiWires &wires) {
        engine.observeNi(ni, wires);
        if (fever)
            fever->observeNi(ni, wires);
    });
    // Recovery: quarantine-and-purge on policy trigger, executed at
    // end-of-cycle so both kernels see identical mid-cycle state.
    std::optional<recovery::RecoveryOrchestrator> orchestrator;
    if (config.recovery)
        orchestrator.emplace(net, engine);

    if (fever || orchestrator) {
        net.setCycleObserver([&](const noc::Network &n) {
            if (fever)
                fever->onCycleEnd(n);
            if (orchestrator)
                orchestrator->onCycleEnd(n.cycle());
        });
    }

    // Retransmission counters accumulate from network birth; snapshot
    // the warm baseline so the result reports this run's deltas only.
    struct NiTotals
    {
        std::uint64_t retransmits = 0;
        std::uint64_t duplicates = 0;
        std::uint64_t abandoned = 0;
    };
    const auto niTotals = [](const noc::Network &n) {
        NiTotals totals;
        for (noc::NodeId node = 0; node < n.config().numNodes(); ++node) {
            const noc::NetworkInterface &ni = n.ni(node);
            totals.retransmits += ni.retransmits();
            totals.duplicates += ni.duplicatesSuppressed();
            totals.abandoned += ni.packetsAbandoned();
        }
        return totals;
    };
    const NiTotals warm = config.recovery ? niTotals(base) : NiTotals{};

    FaultRunResult result;
    result.site = site;
    // Sampled-mode cycle jitter: the fault arms for a cycle inside
    // the observation window; the network is fault-free until then.
    result.injectCycle = net.cycle() + inject_offset;

    FaultInjector injector;
    injector.arm({site, result.injectCycle, config.kind});
    injector.attach(net);

    net.run(config.observeWindow);
    result.drained = net.drain(config.drainLimit);
    if (!result.drained && config.recovery) {
        // A quarantined router with a permanent wire fault churns
        // forever and full quiescence is unreachable; what bounded
        // delivery needs is that the end-to-end protocol settled:
        // every NI has drained its queues and resolved (ACKed or
        // abandoned) every pending packet. Abandoned packets still
        // surface as FlitLost violations in the golden comparison.
        result.drained = true;
        for (noc::NodeId node = 0; node < config.network.numNodes();
             ++node) {
            if (!net.ni(node).idle()) {
                result.drained = false;
                break;
            }
        }
    }

    // ForEVeR's counter alarms fire at epoch boundaries; give it one
    // full epoch past quiescence so a stuck counter is evaluated even
    // when the network otherwise went idle.
    if (fever)
        net.run(config.forever.epochLength + 2);

    const GoldenComparison comparison =
        golden.compare(net.collectEjections(), result.drained);
    result.violated = comparison.violated();
    result.violatedConditions = comparison.conditions();

    const core::AlertLog &log = engine.log();
    if (auto first = log.firstCycle()) {
        result.detected = true;
        result.detectionLatency = *first - result.injectCycle;
        result.alertAtInjection = *first == result.injectCycle;
        result.simultaneousCheckers =
            static_cast<unsigned>(log.invariantsAtCycle(*first).size());
    }
    if (auto first = log.firstCautiousCycle()) {
        result.detectedCautious = true;
        result.cautiousLatency = *first - result.injectCycle;
    }
    result.invariants = log.distinctInvariants();

    if (fever) {
        if (auto first = fever->firstDetection()) {
            result.foreverDetected = true;
            result.foreverLatency = *first - result.injectCycle;
        }
    }

    if (orchestrator) {
        const recovery::OrchestratorStats &stats = orchestrator->stats();
        result.recoveryTriggered = stats.actions > 0;
        result.recoveryActions = stats.actions;
        result.quarantinedPorts = stats.quarantinedPorts;
        result.purgedFlits = stats.purgedFlits;
        if (stats.actions > 0)
            result.recoveryCycle = stats.firstActionCycle;

        const NiTotals after = niTotals(net);
        result.retransmits = after.retransmits - warm.retransmits;
        result.duplicatesSuppressed =
            after.duplicates - warm.duplicates;
        result.packetsAbandoned = after.abandoned - warm.abandoned;

        // Recovered = the loop actually closed: the fault was seen,
        // recovery machinery engaged (action or retransmission), and
        // the delivered traffic still matched golden.
        result.recovered =
            result.detected && !result.violated && result.drained &&
            (result.recoveryTriggered || result.retransmits > 0);
    }

    return result;
}

namespace {

/** A warmed-up snapshot plus its fault-free golden reference. */
struct PreparedReference
{
    noc::Network base;
    GoldenReference golden;
};

/**
 * Build the warm snapshot and golden reference for @p config (with
 * @p traffic_seed overriding the configured one — sampled campaigns
 * prepare one reference per sampled traffic seed). Shared by the
 * exhaustive and sampled planners so both pay the warmup exactly
 * once per seed.
 */
PreparedReference
prepareReference(const CampaignConfig &config,
                 std::uint64_t traffic_seed)
{
    nocalert::traffic::WorkloadSpec workload = config.workload;
    workload.setSeed(traffic_seed);

    noc::Network base(config.network, workload);
    base.setKernelMode(config.denseKernel ? noc::KernelMode::Dense
                                          : noc::KernelMode::Bitmask);
    {
        // Any assertion during warmup would poison every
        // classification; the engine enforces the zero-false-alarm
        // property of the clean network.
        core::NoCAlertEngine warm_guard(base);
        base.run(config.warmup);
        NOCALERT_ASSERT(warm_guard.log().empty(),
                        "checker asserted during fault-free warmup");
        base.setRouterObserver(nullptr);
        base.setNiObserver(nullptr);
        base.setPackedObserver(nullptr);
    }

    noc::Network golden(base);
    {
        core::NoCAlertEngine golden_guard(golden);
        golden.run(config.observeWindow);
        const bool drained = golden.drain(config.drainLimit);
        if (!drained) {
            NOCALERT_FATAL("golden run failed to drain within ",
                           config.drainLimit,
                           " cycles; lower the injection rate");
        }
        NOCALERT_ASSERT(golden_guard.log().empty(),
                        "checker asserted during fault-free golden run");
    }
    return PreparedReference{std::move(base),
                             GoldenReference(golden.collectEjections())};
}

/** Load this campaign's checkpoint document, if any, after validating
 *  identity and shard selector; fatal on any mismatch (a checkpoint
 *  must never silently corrupt a campaign). */
std::optional<CampaignResult>
loadCheckpointDocument(const CampaignConfig &config)
{
    if (config.checkpointPath.empty() ||
        !std::filesystem::exists(config.checkpointPath))
        return std::nullopt;

    std::string error;
    auto checkpoint = loadCampaignResult(config.checkpointPath, &error);
    if (!checkpoint)
        NOCALERT_FATAL("cannot resume from checkpoint: ", error);
    if (campaignIdentityJson(checkpoint->config).dump() !=
        campaignIdentityJson(config).dump()) {
        NOCALERT_FATAL("checkpoint '", config.checkpointPath,
                       "' belongs to a different campaign");
    }
    if (checkpoint->config.shardIndex != config.shardIndex ||
        checkpoint->config.shardCount != config.shardCount) {
        NOCALERT_FATAL("checkpoint '", config.checkpointPath,
                       "' belongs to shard ",
                       checkpoint->config.shardIndex, "/",
                       checkpoint->config.shardCount, ", not ",
                       config.shardIndex, "/", config.shardCount);
    }
    return checkpoint;
}

/** Restore completed exhaustive runs from a checkpoint, validating
 *  them against the deterministic site list. */
std::unordered_map<std::size_t, FaultRunResult>
restoreCheckpoint(const CampaignConfig &config,
                  const std::vector<FaultSite> &sites)
{
    std::unordered_map<std::size_t, FaultRunResult> restored;
    auto checkpoint = loadCheckpointDocument(config);
    if (!checkpoint)
        return restored;
    for (FaultRunResult &run : checkpoint->runs) {
        if (run.sampleIndex >= sites.size() ||
            !(sites[run.sampleIndex] == run.site)) {
            NOCALERT_FATAL("checkpoint '", config.checkpointPath,
                           "' does not match the sampled site list");
        }
        restored.emplace(run.sampleIndex, std::move(run));
    }
    return restored;
}

} // namespace

CampaignResult
FaultCampaign::run(const Progress &progress, const RunOptions &options)
{
    if (config_.sampling.enabled)
        return runSampled(progress, options);

    CampaignResult result;
    result.config = config_;

    // ---- Warm snapshot + golden reference ----
    PreparedReference prepared =
        prepareReference(config_, config_.workload.seed());
    const noc::Network &base = prepared.base;
    const GoldenReference &reference = prepared.golden;
    result.goldenFlits = reference.flitCount();

    // ---- Site selection ----
    std::vector<FaultSite> population =
        FaultSiteCatalog::enumerateNetwork(config_.network);
    if (config_.wireSitesOnly) {
        std::erase_if(population, [](const FaultSite &site) {
            return isStateSignal(site.signal);
        });
    }
    result.totalSitesEnumerated = population.size();
    const std::vector<FaultSite> sites = FaultSiteCatalog::sampleSites(
        std::move(population), config_.maxSites, config_.sampleSeed);

    // ---- Shard selection ----
    // A shard owns the sampled indices congruent to its shardIndex;
    // the subset depends only on the deterministic sample order, so N
    // shards partition exactly an unsharded run's work.
    std::vector<std::size_t> shard_indices;
    for (std::size_t i = config_.shardIndex; i < sites.size();
         i += config_.shardCount)
        shard_indices.push_back(i);
    result.shardRunsPlanned = shard_indices.size();

    // ---- Resume ----
    std::unordered_map<std::size_t, FaultRunResult> done_runs =
        restoreCheckpoint(config_, sites);

    std::vector<std::size_t> todo;
    for (std::size_t index : shard_indices) {
        if (!done_runs.count(index))
            todo.push_back(index);
    }
    if (options.maxNewRuns != 0 && todo.size() > options.maxNewRuns)
        todo.resize(options.maxNewRuns);

    // ---- Fault runs ----
    auto snapshot = [&]() {
        // Completed runs in global order — the checkpoint and the
        // final result, independent of thread completion order.
        CampaignResult partial = result;
        partial.runs.clear(); // result may already hold a snapshot
        partial.runs.reserve(done_runs.size());
        for (const auto &[index, run] : done_runs)
            partial.runs.push_back(run);
        std::sort(partial.runs.begin(), partial.runs.end(),
                  [](const FaultRunResult &a, const FaultRunResult &b) {
                      return a.sampleIndex < b.sampleIndex;
                  });
        return partial;
    };
    auto writeCheckpoint = [&]() {
        std::string error;
        if (!saveCampaignResult(snapshot(), config_.checkpointPath,
                                &error))
            NOCALERT_FATAL("checkpoint write failed: ", error);
    };

    std::size_t completed = done_runs.size();
    std::size_t since_checkpoint = 0;
    const unsigned checkpoint_every = std::max(1u, config_.checkpointEvery);

    exec::CampaignExecutor executor(exec::ExecConfig{
        config_.jobs, config_.workload.seed(), config_.sampleSeed});
    exec::TelemetryHub hub(shard_indices.size(), executor.jobs(),
                           {"tp", "fp", "tn", "fn", "rec"});
    for (const auto &[index, run] : done_runs)
        hub.recordRun(static_cast<unsigned>(run.outcome()));

    try {
        executor.run<FaultRunResult>(
            todo.size(),
            [&](exec::TaskContext &ctx) {
                // ctx.rng is this run's private derived stream; the
                // simulation needs no extra randomness (per-node
                // traffic streams are derived inside the network
                // copy), so today it intentionally goes unused.
                const std::size_t index = todo[ctx.index];
                FaultRunResult run =
                    runSingle(config_, base, reference, sites[index]);
                run.sampleIndex = index;
                return run;
            },
            [&](std::size_t, FaultRunResult &&run) {
                // Ordered commit: the reducer delivers runs in
                // increasing todo position (hence sampleIndex),
                // serialized under its lock, so done_runs, every
                // checkpoint flush, progress and telemetry evolve
                // identically for any jobs count.
                hub.recordRun(static_cast<unsigned>(run.outcome()));
                done_runs.emplace(run.sampleIndex, std::move(run));
                ++completed;
                if (!config_.checkpointPath.empty() &&
                    ++since_checkpoint >= checkpoint_every) {
                    since_checkpoint = 0;
                    writeCheckpoint();
                }
                if (progress)
                    progress(completed, shard_indices.size());
                if (options.telemetry)
                    options.telemetry(hub.snapshot());
            },
            options.cancel, &hub);
    } catch (const exec::TaskError &error) {
        // One failing run aborts the campaign, but cleanly: flush the
        // committed prefix so nothing is lost, then name the site.
        if (!config_.checkpointPath.empty())
            writeCheckpoint();
        const std::size_t index = todo[error.taskIndex()];
        NOCALERT_FATAL("campaign run ", index, " (",
                       sites[index].describe(),
                       ") failed: ", error.what());
    }

    result = snapshot();
    if (!config_.checkpointPath.empty())
        writeCheckpoint();
    return result;
}

CampaignResult
FaultCampaign::runSampled(const Progress &progress,
                          const RunOptions &options)
{
    CampaignResult result;
    result.config = config_;

    // ---- Population ----
    // totalSitesEnumerated keeps its exhaustive meaning: the full
    // enumerated (pre-truncation) site count for this config.
    {
        std::vector<FaultSite> enumerated =
            FaultSiteCatalog::enumerateNetwork(config_.network);
        if (config_.wireSitesOnly) {
            std::erase_if(enumerated, [](const FaultSite &site) {
                return isStateSignal(site.signal);
            });
        }
        result.totalSitesEnumerated = enumerated.size();
    }
    SampledPlanner planner(config_, sampledPopulation(config_));

    // ---- References: one warm snapshot + golden per traffic seed ----
    std::vector<PreparedReference> prepared;
    prepared.reserve(config_.sampling.seedCount);
    for (unsigned k = 0; k < config_.sampling.seedCount; ++k)
        prepared.push_back(
            prepareReference(config_, config_.workload.seed() + k));
    result.goldenFlits = prepared.front().golden.flitCount();

    // ---- Resume ----
    // Resume is replay: the planner regenerates the exact batch
    // sequence and checkpointed draws are fed back to it (validated
    // one by one below) instead of being simulated again.
    std::unordered_map<std::size_t, FaultRunResult> done_runs;
    if (auto checkpoint = loadCheckpointDocument(config_)) {
        for (FaultRunResult &run : checkpoint->runs)
            done_runs.emplace(run.sampleIndex, std::move(run));
    }
    const std::size_t restored_count = done_runs.size();

    bool finished = false;
    auto snapshot = [&]() {
        CampaignResult partial = result;
        partial.shardRunsPlanned = planner.drawsPlanned();
        partial.samplerDone = finished;
        partial.runs.clear();
        partial.runs.reserve(done_runs.size());
        for (const auto &[index, run] : done_runs)
            partial.runs.push_back(run);
        std::sort(partial.runs.begin(), partial.runs.end(),
                  [](const FaultRunResult &a, const FaultRunResult &b) {
                      return a.sampleIndex < b.sampleIndex;
                  });
        return partial;
    };
    auto writeCheckpoint = [&]() {
        std::string error;
        if (!saveCampaignResult(snapshot(), config_.checkpointPath,
                                &error))
            NOCALERT_FATAL("checkpoint write failed: ", error);
    };

    std::size_t completed = done_runs.size();
    std::size_t since_checkpoint = 0;
    const unsigned checkpoint_every =
        std::max(1u, config_.checkpointEvery);
    std::size_t fresh = 0;
    std::size_t replayed = 0;

    exec::CampaignExecutor executor(exec::ExecConfig{
        config_.jobs, config_.workload.seed(),
        config_.sampling.samplerSeed});
    exec::TelemetryHub hub(0, executor.jobs(),
                           {"tp", "fp", "tn", "fn", "rec"});
    for (const auto &[index, run] : done_runs)
        hub.recordRun(static_cast<unsigned>(run.outcome()));

    while (true) {
        // Stop before planning a batch that could not execute anyway:
        // the run limit is spent and every checkpointed draw has been
        // replayed into the sampler.
        if (options.maxNewRuns != 0 && fresh >= options.maxNewRuns &&
            replayed == restored_count)
            break;

        std::vector<SampledDraw> batch = planner.planBatch();
        if (batch.empty()) {
            finished = true;
            break;
        }
        hub.setRunsPlanned(planner.drawsPlanned());

        // Replay first: checkpointed draws feed the sampler exactly
        // as they did originally; the remainder is fresh work. The
        // checkpoint holds a contiguous draw prefix, so restored
        // entries always precede fresh ones within a batch.
        std::vector<SampledDraw> todo;
        for (const SampledDraw &draw : batch) {
            auto it = done_runs.find(draw.drawIndex);
            if (it == done_runs.end()) {
                todo.push_back(draw);
                continue;
            }
            const FaultRunResult &run = it->second;
            if (!(run.site == draw.site) ||
                run.stratum != draw.stratum ||
                run.seedIndex != draw.seedIndex) {
                NOCALERT_FATAL("checkpoint '", config_.checkpointPath,
                               "' does not match the sampled draw "
                               "stream at draw ", draw.drawIndex);
            }
            planner.record(run);
            ++replayed;
        }

        bool limited = false;
        if (options.maxNewRuns != 0) {
            const std::size_t remaining =
                options.maxNewRuns > fresh ? options.maxNewRuns - fresh
                                           : 0;
            if (todo.size() > remaining) {
                todo.resize(remaining);
                limited = true;
            }
        }

        bool cancelled = false;
        if (!todo.empty()) {
            try {
                cancelled = !executor.run<FaultRunResult>(
                    todo.size(),
                    [&](exec::TaskContext &ctx) {
                        // As in the exhaustive planner, ctx.rng goes
                        // unused: every sampled coordinate was fixed
                        // when the draw was materialized.
                        const SampledDraw &draw = todo[ctx.index];
                        const PreparedReference &ref =
                            prepared[draw.seedIndex];
                        FaultRunResult run =
                            runSingle(config_, ref.base, ref.golden,
                                      draw.site, draw.cycleOffset);
                        run.sampleIndex = draw.drawIndex;
                        run.stratum = draw.stratum;
                        run.seedIndex = draw.seedIndex;
                        return run;
                    },
                    [&](std::size_t, FaultRunResult &&run) {
                        // Ordered commit under the reducer lock, as in
                        // the exhaustive planner; the sampler sees
                        // this batch's outcomes only as aggregates at
                        // the next planBatch, so commit order cannot
                        // influence planning anyway.
                        hub.recordRun(
                            static_cast<unsigned>(run.outcome()));
                        planner.record(run);
                        done_runs.emplace(run.sampleIndex,
                                          std::move(run));
                        ++completed;
                        ++fresh;
                        if (!config_.checkpointPath.empty() &&
                            ++since_checkpoint >= checkpoint_every) {
                            since_checkpoint = 0;
                            writeCheckpoint();
                        }
                        if (progress)
                            progress(completed, planner.drawsPlanned());
                        if (options.telemetry)
                            options.telemetry(hub.snapshot());
                    },
                    options.cancel, &hub);
            } catch (const exec::TaskError &error) {
                if (!config_.checkpointPath.empty())
                    writeCheckpoint();
                const SampledDraw &draw = todo[error.taskIndex()];
                NOCALERT_FATAL("sampled run ", draw.drawIndex, " (",
                               draw.site.describe(),
                               ") failed: ", error.what());
            }
        }
        if (cancelled || limited)
            break;
    }

    result = snapshot();
    // A valid sampled result is a contiguous draw prefix; a doctored
    // checkpoint with gaps or out-of-stream indices must not survive
    // into the artifact unnoticed.
    for (std::size_t i = 0; i < result.runs.size(); ++i) {
        if (result.runs[i].sampleIndex != i) {
            NOCALERT_FATAL("checkpoint '", config_.checkpointPath,
                           "' is not a contiguous sampled draw prefix");
        }
    }
    if (!config_.checkpointPath.empty())
        writeCheckpoint();
    return result;
}

} // namespace nocalert::fault
