#include "fault/serialize.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "fault/sampled.hpp"
#include "util/log.hpp"

namespace nocalert::fault {

namespace {

// ------------------------------------------------------------- readers

/**
 * First-error-wins extraction over one JSON object. Typed getters
 * record a message into the shared error slot and return a default on
 * any mismatch, so deserializers read every field linearly and check
 * ok() once at the end.
 */
class ObjectReader
{
  public:
    ObjectReader(const JsonValue &json, std::string what,
                 std::string &error)
        : json_(json), what_(std::move(what)), error_(error)
    {
        if (!json_.isObject())
            fail(what_ + " is not a JSON object");
    }

    bool ok() const { return error_.empty(); }

    const JsonValue *get(const char *key)
    {
        if (!ok())
            return nullptr;
        const JsonValue *value = json_.find(key);
        if (!value)
            fail(what_ + " is missing field '" + key + "'");
        return value;
    }

    std::int64_t i64(const char *key)
    {
        const JsonValue *value = get(key);
        if (value && value->type() != JsonValue::Type::Int)
            fail(fieldError(key, "an integer"));
        return ok() ? value->asInt() : 0;
    }

    std::uint64_t u64(const char *key)
    {
        const JsonValue *value = get(key);
        if (value &&
            !(value->type() == JsonValue::Type::Uint ||
              (value->type() == JsonValue::Type::Int && value->asInt() >= 0)))
            fail(fieldError(key, "a non-negative integer"));
        return ok() ? value->asUint() : 0;
    }

    unsigned u32(const char *key)
    {
        const std::uint64_t value = u64(key);
        if (ok() && value > UINT32_MAX)
            fail(fieldError(key, "a 32-bit value"));
        return static_cast<unsigned>(value);
    }

    int i32(const char *key)
    {
        const std::int64_t value = i64(key);
        if (ok() && (value < INT32_MIN || value > INT32_MAX))
            fail(fieldError(key, "a 32-bit value"));
        return static_cast<int>(value);
    }

    bool boolean(const char *key)
    {
        const JsonValue *value = get(key);
        if (value && !value->isBool())
            fail(fieldError(key, "a boolean"));
        return ok() ? value->boolean() : false;
    }

    double number(const char *key)
    {
        const JsonValue *value = get(key);
        if (value && !value->isNumber())
            fail(fieldError(key, "a number"));
        return ok() ? value->asDouble() : 0.0;
    }

    std::string str(const char *key)
    {
        const JsonValue *value = get(key);
        if (value && !value->isString())
            fail(fieldError(key, "a string"));
        return ok() ? value->string() : std::string();
    }

    const JsonValue::Array &arr(const char *key)
    {
        static const JsonValue::Array empty;
        const JsonValue *value = get(key);
        if (value && !value->isArray())
            fail(fieldError(key, "an array"));
        return ok() ? value->array() : empty;
    }

    void fail(const std::string &message)
    {
        if (error_.empty())
            error_ = message;
    }

    std::string fieldError(const char *key, const char *expected) const
    {
        return what_ + " field '" + key + "' must be " + expected;
    }

  private:
    const JsonValue &json_;
    std::string what_;
    std::string &error_;
};

template <typename T>
std::optional<T>
finish(T value, std::string &error, std::string *out_error)
{
    if (error.empty())
        return value;
    if (out_error)
        *out_error = error;
    return std::nullopt;
}

// ---------------------------------------------------- nested sections

JsonValue
routerParamsJson(const noc::RouterParams &router)
{
    JsonValue classes;
    for (const noc::MessageClassSpec &cls : router.classes) {
        JsonValue entry;
        entry.set("name", cls.name);
        entry.set("packetLength", cls.packetLength);
        classes.push(std::move(entry));
    }
    if (classes.isNull())
        classes = JsonValue(JsonValue::Array{});

    JsonValue json;
    json.set("numVcs", router.numVcs);
    json.set("bufferDepth", router.bufferDepth);
    json.set("atomicBuffers", router.atomicBuffers);
    json.set("speculative", router.speculative);
    json.set("flitWidthBits", router.flitWidthBits);
    json.set("extendedChecks", router.extendedChecks);
    json.set("classes", std::move(classes));
    return json;
}

void
routerParamsFromJson(const JsonValue &json, noc::RouterParams &router,
                     std::string &error)
{
    ObjectReader reader(json, "router params", error);
    router.numVcs = reader.u32("numVcs");
    router.bufferDepth = reader.u32("bufferDepth");
    router.atomicBuffers = reader.boolean("atomicBuffers");
    router.speculative = reader.boolean("speculative");
    router.flitWidthBits = reader.u32("flitWidthBits");
    router.extendedChecks = reader.boolean("extendedChecks");
    router.classes.clear();
    for (const JsonValue &entry : reader.arr("classes")) {
        ObjectReader cls(entry, "message class", error);
        noc::MessageClassSpec spec;
        spec.name = cls.str("name");
        const unsigned length = cls.u32("packetLength");
        if (error.empty() && length > UINT16_MAX)
            cls.fail("message class packetLength out of range");
        spec.packetLength = static_cast<std::uint16_t>(length);
        router.classes.push_back(std::move(spec));
    }
}

JsonValue
retransmitParamsJson(const noc::RetransmitParams &retransmit)
{
    JsonValue json;
    json.set("enabled", retransmit.enabled);
    json.set("ackTimeout", retransmit.ackTimeout);
    json.set("maxRetries", retransmit.maxRetries);
    json.set("backoffCap", retransmit.backoffCap);
    return json;
}

void
retransmitParamsFromJson(const JsonValue &json,
                         noc::RetransmitParams &retransmit,
                         std::string &error)
{
    ObjectReader reader(json, "retransmit params", error);
    retransmit.enabled = reader.boolean("enabled");
    retransmit.ackTimeout = reader.i64("ackTimeout");
    retransmit.maxRetries = reader.u32("maxRetries");
    retransmit.backoffCap = reader.u32("backoffCap");
}

JsonValue
networkConfigJson(const noc::NetworkConfig &network)
{
    JsonValue json;
    json.set("width", network.width);
    json.set("height", network.height);
    json.set("routing", noc::routingAlgoName(network.routing));
    json.set("router", routerParamsJson(network.router));
    json.set("retransmit", retransmitParamsJson(network.retransmit));
    return json;
}

void
networkConfigFromJson(const JsonValue &json, noc::NetworkConfig &network,
                      std::string &error)
{
    ObjectReader reader(json, "network config", error);
    network.width = reader.i32("width");
    network.height = reader.i32("height");
    const std::string routing = reader.str("routing");
    if (error.empty()) {
        if (auto algo = noc::routingAlgoFromName(routing))
            network.routing = *algo;
        else
            reader.fail("unknown routing algorithm '" + routing + "'");
    }
    if (const JsonValue *router = reader.get("router"))
        routerParamsFromJson(*router, network.router, error);
    if (const JsonValue *retransmit = reader.get("retransmit"))
        retransmitParamsFromJson(*retransmit, network.retransmit, error);
}

JsonValue
trafficSpecJson(const noc::TrafficSpec &traffic)
{
    JsonValue weights = JsonValue(JsonValue::Array{});
    for (double w : traffic.classWeights)
        weights.push(w);

    JsonValue json;
    json.set("pattern", noc::trafficPatternName(traffic.pattern));
    json.set("injectionRate", traffic.injectionRate);
    json.set("seed", traffic.seed);
    json.set("stopCycle", traffic.stopCycle);
    json.set("classWeights", std::move(weights));
    // The hotspot parameters live in their own sub-spec in memory
    // (noc::HotspotSpec) but keep the legacy flat keys on disk, so
    // every artifact ever written round-trips byte-identically.
    json.set("hotspot", traffic.hotspot.node);
    json.set("hotspotFraction", traffic.hotspot.fraction);
    return json;
}

void
trafficSpecFromJson(const JsonValue &json, noc::TrafficSpec &traffic,
                    std::string &error)
{
    ObjectReader reader(json, "traffic spec", error);
    const std::string pattern = reader.str("pattern");
    if (error.empty()) {
        if (auto p = noc::trafficPatternFromName(pattern))
            traffic.pattern = *p;
        else
            reader.fail("unknown traffic pattern '" + pattern + "'");
    }
    traffic.injectionRate = reader.number("injectionRate");
    traffic.seed = reader.u64("seed");
    traffic.stopCycle = reader.i64("stopCycle");
    traffic.classWeights.clear();
    for (const JsonValue &w : reader.arr("classWeights")) {
        if (!w.isNumber()) {
            reader.fail("traffic classWeights must be numbers");
            break;
        }
        traffic.classWeights.push_back(w.asDouble());
    }
    traffic.hotspot.node = reader.i32("hotspot");
    traffic.hotspot.fraction = reader.number("hotspotFraction");
}

JsonValue
phaseSegmentJson(const nocalert::traffic::PhaseSegment &segment)
{
    JsonValue weights = JsonValue(JsonValue::Array{});
    for (double w : segment.classWeights)
        weights.push(w);

    JsonValue json;
    json.set("begin", segment.begin);
    json.set("end", segment.end);
    json.set("pattern", noc::trafficPatternName(segment.pattern));
    json.set("rate", segment.rate);
    json.set("classWeights", std::move(weights));
    json.set("hotspot", segment.hotspot.node);
    json.set("hotspotFraction", segment.hotspot.fraction);
    return json;
}

void
phaseSegmentFromJson(const JsonValue &json,
                     nocalert::traffic::PhaseSegment &segment,
                     std::string &error)
{
    ObjectReader reader(json, "phase segment", error);
    segment.begin = reader.i64("begin");
    segment.end = reader.i64("end");
    const std::string pattern = reader.str("pattern");
    if (error.empty()) {
        if (auto p = noc::trafficPatternFromName(pattern))
            segment.pattern = *p;
        else
            reader.fail("unknown traffic pattern '" + pattern + "'");
    }
    segment.rate = reader.number("rate");
    segment.classWeights.clear();
    for (const JsonValue &w : reader.arr("classWeights")) {
        if (!w.isNumber()) {
            reader.fail("segment classWeights must be numbers");
            break;
        }
        segment.classWeights.push_back(w.asDouble());
    }
    segment.hotspot.node = reader.i32("hotspot");
    segment.hotspot.fraction = reader.number("hotspotFraction");
}

JsonValue
phasedSpecJson(const nocalert::traffic::PhasedSpec &phased)
{
    JsonValue segments = JsonValue(JsonValue::Array{});
    for (const nocalert::traffic::PhaseSegment &segment : phased.segments)
        segments.push(phaseSegmentJson(segment));

    JsonValue burst;
    burst.set("enabled", phased.burst.enabled);
    burst.set("period", phased.burst.period);
    burst.set("onProbability", phased.burst.onProbability);
    burst.set("onMultiplier", phased.burst.onMultiplier);
    burst.set("offMultiplier", phased.burst.offMultiplier);
    burst.set("layers", phased.burst.layers);

    JsonValue json;
    json.set("segments", std::move(segments));
    json.set("burst", std::move(burst));
    json.set("seed", phased.seed);
    json.set("stopCycle", phased.stopCycle);
    json.set("repeat", phased.repeat);
    return json;
}

void
phasedSpecFromJson(const JsonValue &json,
                   nocalert::traffic::PhasedSpec &phased,
                   std::string &error)
{
    ObjectReader reader(json, "phased workload", error);
    phased.segments.clear();
    for (const JsonValue &segment : reader.arr("segments")) {
        phased.segments.emplace_back();
        phaseSegmentFromJson(segment, phased.segments.back(), error);
        if (!error.empty())
            break;
    }
    if (const JsonValue *burst = reader.get("burst")) {
        ObjectReader burst_reader(*burst, "burst spec", error);
        phased.burst.enabled = burst_reader.boolean("enabled");
        phased.burst.period = burst_reader.i64("period");
        phased.burst.onProbability = burst_reader.number("onProbability");
        phased.burst.onMultiplier = burst_reader.number("onMultiplier");
        phased.burst.offMultiplier = burst_reader.number("offMultiplier");
        phased.burst.layers = burst_reader.u32("layers");
    }
    phased.seed = reader.u64("seed");
    phased.stopCycle = reader.i64("stopCycle");
    phased.repeat = reader.boolean("repeat");
}

JsonValue
traceSpecJson(const nocalert::traffic::TraceSpec &trace)
{
    JsonValue json;
    json.set("path", trace.path);
    json.set("digest", trace.digest);
    json.set("records", trace.records);
    json.set("stopCycle", trace.stopCycle);
    return json;
}

void
traceSpecFromJson(const JsonValue &json,
                  nocalert::traffic::TraceSpec &trace, std::string &error)
{
    ObjectReader reader(json, "trace workload", error);
    trace.path = reader.str("path");
    trace.digest = reader.u32("digest");
    trace.records = reader.u64("records");
    trace.stopCycle = reader.i64("stopCycle");
}

/**
 * The `workload` block of schema-v6 configs. Only the active backend
 * is emitted — the inactive specs are defaults by construction, so
 * identity hashing never keys on dead fields.
 */
JsonValue
workloadSpecJson(const nocalert::traffic::WorkloadSpec &workload)
{
    JsonValue json;
    json.set("kind",
             nocalert::traffic::workloadKindName(workload.kind));
    switch (workload.kind) {
      case nocalert::traffic::WorkloadKind::Synthetic:
        json.set("synthetic", trafficSpecJson(workload.synthetic));
        break;
      case nocalert::traffic::WorkloadKind::Phased:
        json.set("phased", phasedSpecJson(workload.phased));
        break;
      case nocalert::traffic::WorkloadKind::Trace:
        json.set("trace", traceSpecJson(workload.trace));
        break;
    }
    return json;
}

void
workloadSpecFromJson(const JsonValue &json,
                     nocalert::traffic::WorkloadSpec &workload,
                     std::string &error)
{
    ObjectReader reader(json, "workload spec", error);
    const std::string kind = reader.str("kind");
    if (error.empty()) {
        if (auto k = nocalert::traffic::workloadKindFromName(kind))
            workload.kind = *k;
        else
            reader.fail("unknown workload kind '" + kind + "'");
    }
    if (!error.empty())
        return;
    switch (workload.kind) {
      case nocalert::traffic::WorkloadKind::Synthetic:
        if (const JsonValue *synthetic = reader.get("synthetic"))
            trafficSpecFromJson(*synthetic, workload.synthetic, error);
        break;
      case nocalert::traffic::WorkloadKind::Phased:
        if (const JsonValue *phased = reader.get("phased"))
            phasedSpecFromJson(*phased, workload.phased, error);
        break;
      case nocalert::traffic::WorkloadKind::Trace:
        if (const JsonValue *trace = reader.get("trace"))
            traceSpecFromJson(*trace, workload.trace, error);
        break;
    }
}

JsonValue
foreverConfigJson(const forever::ForeverConfig &config)
{
    JsonValue json;
    json.set("epochLength", config.epochLength);
    json.set("hopLatency", config.hopLatency);
    json.set("useAllocationComparator", config.useAllocationComparator);
    json.set("useEndToEnd", config.useEndToEnd);
    return json;
}

void
foreverConfigFromJson(const JsonValue &json,
                      forever::ForeverConfig &config, std::string &error)
{
    ObjectReader reader(json, "forever config", error);
    config.epochLength = reader.i64("epochLength");
    config.hopLatency = reader.i64("hopLatency");
    config.useAllocationComparator =
        reader.boolean("useAllocationComparator");
    config.useEndToEnd = reader.boolean("useEndToEnd");
}

JsonValue
faultSiteJson(const FaultSite &site)
{
    JsonValue json;
    json.set("router", site.router);
    json.set("signal", signalClassName(site.signal));
    json.set("port", site.port);
    json.set("vc", site.vc);
    json.set("bit", site.bit);
    return json;
}

void
faultSiteFromJson(const JsonValue &json, FaultSite &site,
                  std::string &error)
{
    ObjectReader reader(json, "fault site", error);
    site.router = reader.i32("router");
    const std::string signal = reader.str("signal");
    if (error.empty()) {
        if (auto cls = signalClassFromName(signal))
            site.signal = *cls;
        else
            reader.fail("unknown signal class '" + signal + "'");
    }
    site.port = reader.i32("port");
    site.vc = reader.i32("vc");
    site.bit = reader.u32("bit");
}

JsonValue
samplingSpecJson(const SamplingSpec &spec)
{
    JsonValue json;
    json.set("enabled", spec.enabled);
    json.set("stratify", stratifyName(spec.stratify));
    json.set("method", stats::intervalMethodName(spec.method));
    json.set("confidence", spec.confidence);
    json.set("ciHalfWidth", spec.ciHalfWidth);
    json.set("maxRuns", spec.maxRuns);
    json.set("batchSize", spec.batchSize);
    json.set("minPerStratum", spec.minPerStratum);
    json.set("cycleJitter", spec.cycleJitter);
    json.set("seedCount", spec.seedCount);
    json.set("reallocate", spec.reallocate);
    json.set("samplerSeed", spec.samplerSeed);
    return json;
}

void
samplingSpecFromJson(const JsonValue &json, SamplingSpec &spec,
                     std::string &error)
{
    ObjectReader reader(json, "sampling spec", error);
    spec.enabled = reader.boolean("enabled");
    const std::string stratify = reader.str("stratify");
    if (error.empty()) {
        if (auto mode = stratifyFromName(stratify))
            spec.stratify = *mode;
        else
            reader.fail("unknown stratification '" + stratify + "'");
    }
    const std::string method = reader.str("method");
    if (error.empty()) {
        if (auto m = stats::intervalMethodFromName(method))
            spec.method = *m;
        else
            reader.fail("unknown interval method '" + method + "'");
    }
    spec.confidence = reader.number("confidence");
    spec.ciHalfWidth = reader.number("ciHalfWidth");
    spec.maxRuns = reader.u64("maxRuns");
    spec.batchSize = reader.u32("batchSize");
    spec.minPerStratum = reader.u32("minPerStratum");
    spec.cycleJitter = reader.i64("cycleJitter");
    spec.seedCount = reader.u32("seedCount");
    spec.reallocate = reader.boolean("reallocate");
    spec.samplerSeed = reader.u64("samplerSeed");
}

JsonValue
intervalJson(const stats::Interval &interval)
{
    JsonValue json;
    json.set("lower", interval.lower);
    json.set("upper", interval.upper);
    return json;
}

JsonValue
stratumEstimateJson(const StratumEstimate &estimate)
{
    JsonValue json;
    json.set("name", estimate.name);
    json.set("population", estimate.population);
    json.set("draws", estimate.draws);
    json.set("detected", estimate.detected);
    json.set("falsePositives", estimate.falsePositives);
    json.set("falseNegatives", estimate.falseNegatives);
    json.set("halted", estimate.halted);
    json.set("detectedWilson", intervalJson(estimate.detectedWilson));
    json.set("detectedClopperPearson",
             intervalJson(estimate.detectedClopperPearson));
    json.set("falsePositiveWilson",
             intervalJson(estimate.falsePositiveWilson));
    json.set("falsePositiveClopperPearson",
             intervalJson(estimate.falsePositiveClopperPearson));
    json.set("falseNegativeWilson",
             intervalJson(estimate.falseNegativeWilson));
    json.set("falseNegativeClopperPearson",
             intervalJson(estimate.falseNegativeClopperPearson));
    return json;
}

JsonValue
histogramJson(const Histogram &histogram)
{
    JsonValue points = JsonValue(JsonValue::Array{});
    for (const auto &[value, count] : histogram.points()) {
        JsonValue point = JsonValue(JsonValue::Array{});
        point.push(value);
        point.push(count);
        points.push(std::move(point));
    }
    return points;
}

} // namespace

// ------------------------------------------------------------- config

JsonValue
toJson(const CampaignConfig &config)
{
    JsonValue json;
    json.set("network", networkConfigJson(config.network));
    // Synthetic workloads keep the legacy flat `traffic` block, so
    // every schema-v4/v5 artifact serializes byte-identically to the
    // day it was written; the phased and trace backends emit a
    // `workload` block (schema v6) in the same key position.
    if (config.workload.kind ==
        nocalert::traffic::WorkloadKind::Synthetic) {
        json.set("traffic", trafficSpecJson(config.workload.synthetic));
    } else {
        json.set("workload", workloadSpecJson(config.workload));
    }
    json.set("warmup", config.warmup);
    json.set("observeWindow", config.observeWindow);
    json.set("drainLimit", config.drainLimit);
    json.set("kind", faultKindName(config.kind));
    json.set("maxSites", config.maxSites);
    json.set("wireSitesOnly", config.wireSitesOnly);
    json.set("sampleSeed", config.sampleSeed);
    json.set("runForever", config.runForever);
    json.set("forever", foreverConfigJson(config.forever));
    json.set("recovery", config.recovery);
    // The sampling spec appears only when enabled, so exhaustive
    // configs — and the schema-v4 artifacts they produce — serialize
    // exactly as they did before sampling existed. Every sampling
    // knob is campaign identity (all of them shape the draw stream),
    // so emitting the block here feeds campaignIdentityJson for free.
    if (config.sampling.enabled)
        json.set("sampling", samplingSpecJson(config.sampling));
    json.set("denseKernel", config.denseKernel);
    // jobs / checkpointPath / checkpointEvery are pure execution knobs
    // with no influence on results; schema v4 keeps them out of the
    // artifact entirely so runs at any --jobs value and checkpoint
    // cadence serialize byte-identically. The shard selector stays:
    // it is structural (it says which runs this document holds).
    json.set("shardIndex", config.shardIndex);
    json.set("shardCount", config.shardCount);
    return json;
}

JsonValue
campaignIdentityJson(const CampaignConfig &config)
{
    // denseKernel is execution detail: both kernels produce
    // bit-identical results, so shards may mix them freely. (jobs and
    // checkpoint knobs are never serialized in the first place.)
    static constexpr const char *kExecutionKeys[] = {
        "shardIndex", "shardCount", "denseKernel"};

    const JsonValue full = toJson(config);
    JsonValue identity;
    for (const auto &[key, value] : full.object()) {
        const bool execution =
            std::find(std::begin(kExecutionKeys), std::end(kExecutionKeys),
                      key) != std::end(kExecutionKeys);
        if (!execution)
            identity.set(key, value);
    }
    return identity;
}

std::string
campaignArtifactHash(const CampaignConfig &config)
{
    const std::string bytes =
        toJson(normalizedCampaignConfig(config)).dump();
    // FNV-1a 64: deterministic across platforms and builds, cheap,
    // and keyed on exact serialized bytes — any knob that can change
    // the artifact changes the key.
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char byte : bytes) {
        hash ^= byte;
        hash *= 0x100000001b3ULL;
    }
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(hash));
    return std::string(hex);
}

std::optional<CampaignConfig>
campaignConfigFromJson(const JsonValue &json, std::string *out_error)
{
    std::string error;
    CampaignConfig config;
    ObjectReader reader(json, "campaign config", error);

    if (const JsonValue *network = reader.get("network"))
        networkConfigFromJson(*network, config.network, error);
    // Either the legacy flat `traffic` block (synthetic workloads,
    // schema v4/v5) or the `workload` block (schema v6) — exactly one.
    if (error.empty() && json.isObject()) {
        const JsonValue *traffic = json.find("traffic");
        const JsonValue *workload = json.find("workload");
        if (traffic && workload) {
            reader.fail("campaign config has both a traffic and a "
                        "workload block");
        } else if (workload) {
            workloadSpecFromJson(*workload, config.workload, error);
        } else if (const JsonValue *block = reader.get("traffic")) {
            config.workload.kind =
                nocalert::traffic::WorkloadKind::Synthetic;
            trafficSpecFromJson(*block, config.workload.synthetic,
                                error);
        }
    }
    config.warmup = reader.i64("warmup");
    config.observeWindow = reader.i64("observeWindow");
    config.drainLimit = reader.i64("drainLimit");
    const std::string kind = reader.str("kind");
    if (error.empty()) {
        if (auto k = faultKindFromName(kind))
            config.kind = *k;
        else
            reader.fail("unknown fault kind '" + kind + "'");
    }
    config.maxSites = reader.u32("maxSites");
    config.wireSitesOnly = reader.boolean("wireSitesOnly");
    config.sampleSeed = reader.u64("sampleSeed");
    config.runForever = reader.boolean("runForever");
    if (const JsonValue *forever = reader.get("forever"))
        foreverConfigFromJson(*forever, config.forever, error);
    config.recovery = reader.boolean("recovery");
    // Optional: absent (every schema-v4 document) means disabled.
    if (error.empty() && json.isObject()) {
        if (const JsonValue *sampling = json.find("sampling"))
            samplingSpecFromJson(*sampling, config.sampling, error);
    }
    config.denseKernel = reader.boolean("denseKernel");
    config.shardIndex = reader.u32("shardIndex");
    config.shardCount = reader.u32("shardCount");
    // Execution knobs are not serialized; a loaded config gets their
    // defaults and the caller (e.g. resume) supplies its own.

    // Malformed workload blocks must be rejected here, before anything
    // (the phase-stratified planner, a resume, a serve submission)
    // consumes them. Synthetic specs keep the legacy lenient load path.
    if (error.empty() &&
        config.workload.kind !=
            nocalert::traffic::WorkloadKind::Synthetic) {
        const std::string workload_error =
            nocalert::traffic::validateWorkloadSpec(config.network,
                                                    config.workload);
        if (!workload_error.empty())
            reader.fail("invalid workload spec: " + workload_error);
    }

    return finish(std::move(config), error, out_error);
}

// ---------------------------------------------------------------- runs

JsonValue
toJson(const FaultRunResult &run, bool sampled)
{
    JsonValue invariants = JsonValue(JsonValue::Array{});
    for (core::InvariantId id : run.invariants)
        invariants.push(core::invariantIndex(id));

    JsonValue json;
    json.set("sampleIndex", run.sampleIndex);
    // Draw tags exist only in sampled (schema v5) documents; omitting
    // them keeps exhaustive v4 artifacts byte-identical.
    if (sampled) {
        json.set("stratum", run.stratum);
        json.set("seedIndex", run.seedIndex);
    }
    json.set("site", faultSiteJson(run.site));
    json.set("injectCycle", run.injectCycle);
    json.set("violated", run.violated);
    json.set("violatedConditions", run.violatedConditions);
    json.set("drained", run.drained);
    json.set("detected", run.detected);
    json.set("detectionLatency", run.detectionLatency);
    json.set("detectedCautious", run.detectedCautious);
    json.set("cautiousLatency", run.cautiousLatency);
    json.set("alertAtInjection", run.alertAtInjection);
    json.set("simultaneousCheckers", run.simultaneousCheckers);
    json.set("invariants", std::move(invariants));
    json.set("foreverDetected", run.foreverDetected);
    json.set("foreverLatency", run.foreverLatency);
    json.set("recovered", run.recovered);
    json.set("recoveryTriggered", run.recoveryTriggered);
    json.set("recoveryCycle", run.recoveryCycle);
    json.set("recoveryActions", run.recoveryActions);
    json.set("quarantinedPorts", run.quarantinedPorts);
    json.set("purgedFlits", run.purgedFlits);
    json.set("retransmits", run.retransmits);
    json.set("duplicatesSuppressed", run.duplicatesSuppressed);
    json.set("packetsAbandoned", run.packetsAbandoned);
    return json;
}

std::optional<FaultRunResult>
faultRunFromJson(const JsonValue &json, std::string *out_error)
{
    std::string error;
    FaultRunResult run;
    ObjectReader reader(json, "fault run", error);

    run.sampleIndex = reader.u64("sampleIndex");
    // Draw tags are optional: present in sampled (v5) documents only.
    if (error.empty() && json.isObject()) {
        if (json.find("stratum"))
            run.stratum = reader.u32("stratum");
        if (json.find("seedIndex"))
            run.seedIndex = reader.u32("seedIndex");
    }
    if (const JsonValue *site = reader.get("site"))
        faultSiteFromJson(*site, run.site, error);
    run.injectCycle = reader.i64("injectCycle");
    run.violated = reader.boolean("violated");
    const unsigned conditions = reader.u32("violatedConditions");
    if (error.empty() && conditions > UINT8_MAX)
        reader.fail("violatedConditions out of range");
    run.violatedConditions = static_cast<std::uint8_t>(conditions);
    run.drained = reader.boolean("drained");
    run.detected = reader.boolean("detected");
    run.detectionLatency = reader.i64("detectionLatency");
    run.detectedCautious = reader.boolean("detectedCautious");
    run.cautiousLatency = reader.i64("cautiousLatency");
    run.alertAtInjection = reader.boolean("alertAtInjection");
    run.simultaneousCheckers = reader.u32("simultaneousCheckers");
    run.invariants.clear();
    for (const JsonValue &id : reader.arr("invariants")) {
        if (id.type() != JsonValue::Type::Int || id.asInt() < 1 ||
            id.asInt() > static_cast<std::int64_t>(core::kNumInvariants)) {
            reader.fail("invariant index out of range");
            break;
        }
        run.invariants.push_back(
            static_cast<core::InvariantId>(id.asInt()));
    }
    run.foreverDetected = reader.boolean("foreverDetected");
    run.foreverLatency = reader.i64("foreverLatency");
    run.recovered = reader.boolean("recovered");
    run.recoveryTriggered = reader.boolean("recoveryTriggered");
    run.recoveryCycle = reader.i64("recoveryCycle");
    run.recoveryActions = reader.u32("recoveryActions");
    run.quarantinedPorts = reader.u32("quarantinedPorts");
    run.purgedFlits = reader.u64("purgedFlits");
    run.retransmits = reader.u64("retransmits");
    run.duplicatesSuppressed = reader.u64("duplicatesSuppressed");
    run.packetsAbandoned = reader.u64("packetsAbandoned");

    // Latency fields are either a non-negative cycle (only when the
    // detector/recovery fired) or the kNoDetection sentinel.
    if (error.empty()) {
        auto check = [&](bool fired, noc::Cycle latency,
                         const char *field) {
            if (fired ? latency < 0 : latency != kNoDetection)
                reader.fail(std::string(field) +
                            " inconsistent with its detection flag");
        };
        check(run.detected, run.detectionLatency, "detectionLatency");
        check(run.detectedCautious, run.cautiousLatency,
              "cautiousLatency");
        check(run.foreverDetected, run.foreverLatency, "foreverLatency");
        check(run.recoveryTriggered, run.recoveryCycle, "recoveryCycle");
        if (run.recovered && !run.detected)
            reader.fail("recovered requires detected");
    }

    return finish(std::move(run), error, out_error);
}

// -------------------------------------------------------------- result

JsonValue
toJson(const CampaignTelemetry &telemetry)
{
    JsonValue outcomes = JsonValue(JsonValue::Array{});
    for (std::uint64_t count : telemetry.outcomes)
        outcomes.push(count);

    JsonValue json;
    json.set("runsPlanned", telemetry.runsPlanned);
    json.set("runsCompleted", telemetry.runsCompleted);
    json.set("outcomes", std::move(outcomes));
    return json;
}

JsonValue
toJson(const SamplingReport &report)
{
    JsonValue strata = JsonValue(JsonValue::Array{});
    for (const StratumEstimate &estimate : report.strata)
        strata.push(stratumEstimateJson(estimate));

    JsonValue json;
    json.set("strata", std::move(strata));
    json.set("pooled", stratumEstimateJson(report.pooled));
    return json;
}

std::int64_t
campaignSchemaVersionFor(const CampaignConfig &config)
{
    if (config.workload.kind !=
        nocalert::traffic::WorkloadKind::Synthetic)
        return kCampaignSchemaVersion;
    return config.sampling.enabled ? kCampaignSchemaVersionSampled
                                   : kCampaignSchemaVersionMin;
}

JsonValue
toJson(const CampaignResult &result)
{
    const bool sampled = result.config.sampling.enabled;

    JsonValue runs = JsonValue(JsonValue::Array{});
    for (const FaultRunResult &run : result.runs)
        runs.push(toJson(run, sampled));

    JsonValue json;
    json.set("schema", kCampaignSchemaName);
    json.set("version", campaignSchemaVersionFor(result.config));
    json.set("config", toJson(result.config));
    json.set("totalSitesEnumerated", result.totalSitesEnumerated);
    json.set("goldenFlits", result.goldenFlits);
    json.set("shardRunsPlanned", result.shardRunsPlanned);
    if (sampled)
        json.set("samplerDone", result.samplerDone);
    // Deterministic projection of the runs below — never wall-clock
    // rates, which would break byte-identity across machines/--jobs.
    json.set("telemetry", toJson(computeTelemetry(result)));
    if (sampled) {
        // Like telemetry: derived from committed runs only, so the
        // block is byte-identical for every --jobs value and the
        // reader can recompute it for validation.
        json.set("sampling", toJson(computeSamplingReport(result)));
    }
    json.set("runs", std::move(runs));
    return json;
}

std::optional<CampaignResult>
campaignResultFromJson(const JsonValue &json, std::string *out_error)
{
    std::string error;
    CampaignResult result;
    ObjectReader reader(json, "campaign result", error);

    const std::string schema = reader.str("schema");
    if (error.empty() && schema != kCampaignSchemaName)
        reader.fail("not a campaign document (schema '" + schema + "')");
    const std::int64_t version = reader.i64("version");
    if (error.empty() && (version < kCampaignSchemaVersionMin ||
                          version > kCampaignSchemaVersion))
        reader.fail("unsupported campaign schema version " +
                    std::to_string(version) + " (expected " +
                    std::to_string(kCampaignSchemaVersionMin) + ".." +
                    std::to_string(kCampaignSchemaVersion) + ")");

    if (const JsonValue *config = reader.get("config")) {
        if (auto parsed = campaignConfigFromJson(*config, &error))
            result.config = std::move(*parsed);
    }
    // The version is determined by the config: 6 iff the workload is
    // non-synthetic, else 5 iff sampled. A document claiming otherwise
    // was hand-edited or corrupted.
    if (error.empty() &&
        version != campaignSchemaVersionFor(result.config))
        reader.fail("schema version " + std::to_string(version) +
                    " inconsistent with the config's workload and "
                    "sampling state");
    result.totalSitesEnumerated = reader.u64("totalSitesEnumerated");
    result.goldenFlits = reader.u64("goldenFlits");
    result.shardRunsPlanned = reader.u64("shardRunsPlanned");
    if (result.config.sampling.enabled)
        result.samplerDone = reader.boolean("samplerDone");
    CampaignTelemetry stored;
    if (const JsonValue *telemetry = reader.get("telemetry")) {
        ObjectReader t(*telemetry, "telemetry", error);
        stored.runsPlanned = t.u64("runsPlanned");
        stored.runsCompleted = t.u64("runsCompleted");
        const JsonValue::Array &outcomes = t.arr("outcomes");
        if (error.empty() && outcomes.size() != kNumOutcomes)
            t.fail("telemetry outcomes must have " +
                   std::to_string(kNumOutcomes) + " entries");
        for (std::size_t i = 0; error.empty() && i < outcomes.size();
             ++i) {
            if (outcomes[i].type() != JsonValue::Type::Uint &&
                !(outcomes[i].type() == JsonValue::Type::Int &&
                  outcomes[i].asInt() >= 0)) {
                t.fail("telemetry outcomes must be non-negative "
                       "integers");
                break;
            }
            stored.outcomes[i] = outcomes[i].asUint();
        }
    }
    for (const JsonValue &entry : reader.arr("runs")) {
        if (auto run = faultRunFromJson(entry, &error))
            result.runs.push_back(std::move(*run));
        else
            break;
    }
    if (error.empty()) {
        for (std::size_t i = 1; i < result.runs.size(); ++i) {
            if (result.runs[i - 1].sampleIndex >=
                result.runs[i].sampleIndex) {
                reader.fail("runs are not in increasing sampleIndex "
                            "order");
                break;
            }
        }
        if (result.runs.size() > result.shardRunsPlanned)
            reader.fail("more runs than shardRunsPlanned");
        // The telemetry block is derived data; a document whose block
        // disagrees with its own runs has been tampered with or
        // corrupted, so reject it rather than silently recompute.
        const CampaignTelemetry expected = computeTelemetry(result);
        if (stored.runsPlanned != expected.runsPlanned ||
            stored.runsCompleted != expected.runsCompleted ||
            stored.outcomes != expected.outcomes)
            reader.fail("telemetry block inconsistent with runs");
    }
    if (error.empty() && result.config.sampling.enabled) {
        // Guard the recomputation below (which enumerates the network
        // and builds a planner) against aborting on nonsense input.
        const std::string spec_error = validateSamplingSpec(
            result.config.sampling, result.config.observeWindow);
        if (!spec_error.empty())
            reader.fail("invalid sampling spec: " + spec_error);
        if (error.empty() &&
            result.config.sampling.stratify == Stratify::Phase &&
            result.config.workload.kind !=
                nocalert::traffic::WorkloadKind::Phased)
            reader.fail("phase stratification needs a phased workload");
        if (error.empty() && (result.config.network.width <= 0 ||
                              result.config.network.height <= 0))
            reader.fail("sampled campaign with an empty mesh");
        if (error.empty() && sampledPopulation(result.config).empty())
            reader.fail("sampled campaign with an empty site "
                        "population");
        if (error.empty()) {
            const SampledPlanner planner(
                result.config, sampledPopulation(result.config));
            for (const FaultRunResult &run : result.runs) {
                if (run.stratum >= planner.strataCount() ||
                    run.seedIndex >= result.config.sampling.seedCount) {
                    reader.fail("run draw tags out of range for the "
                                "sampling spec");
                    break;
                }
            }
        }
        // Like telemetry, the sampling report is derived data: reject
        // a document whose stored block disagrees with what its own
        // runs imply.
        if (error.empty()) {
            const JsonValue *stored_report = reader.get("sampling");
            if (stored_report &&
                *stored_report != toJson(computeSamplingReport(result)))
                reader.fail("sampling block inconsistent with runs");
        }
    }

    return finish(std::move(result), error, out_error);
}

JsonValue
toJson(const CampaignSummary &summary)
{
    auto outcomes =
        [](const std::array<std::uint64_t, kNumOutcomes> &counts) {
        JsonValue json = JsonValue(JsonValue::Array{});
        for (std::uint64_t c : counts)
            json.push(c);
        return json;
    };

    JsonValue per_invariant = JsonValue(JsonValue::Array{});
    for (std::uint64_t c : summary.perInvariant)
        per_invariant.push(c);

    JsonValue json;
    json.set("runs", summary.runs);
    json.set("nocalert", outcomes(summary.nocalert));
    json.set("cautious", outcomes(summary.cautious));
    json.set("forever", outcomes(summary.forever));
    json.set("detectionLatency", histogramJson(summary.detectionLatency));
    json.set("foreverLatency", histogramJson(summary.foreverLatency));
    json.set("simultaneous", histogramJson(summary.simultaneous));
    json.set("perInvariant", std::move(per_invariant));
    json.set("noInstantAlert", summary.noInstantAlert);
    json.set("noInstantCaughtLater", summary.noInstantCaughtLater);
    json.set("noInstantBenignUndetected",
             summary.noInstantBenignUndetected);
    json.set("noInstantViolatedUndetected",
             summary.noInstantViolatedUndetected);
    return json;
}

// ---------------------------------------------------- documents, files

std::string
writeCampaignJson(const CampaignResult &result)
{
    return toJson(result).dump(2) + "\n";
}

std::optional<CampaignResult>
readCampaignJson(std::string_view text, std::string *out_error)
{
    std::string error;
    const std::optional<JsonValue> json = parseJson(text, &error);
    if (!json) {
        if (out_error)
            *out_error = error;
        return std::nullopt;
    }
    return campaignResultFromJson(*json, out_error);
}

bool
saveCampaignResult(const CampaignResult &result, const std::string &path,
                   std::string *out_error)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
        if (!file) {
            if (out_error)
                *out_error = "cannot open '" + tmp + "' for writing";
            return false;
        }
        file << writeCampaignJson(result);
        file.flush();
        if (!file) {
            if (out_error)
                *out_error = "write to '" + tmp + "' failed";
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (out_error)
            *out_error = "rename '" + tmp + "' -> '" + path + "' failed";
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::optional<CampaignResult>
loadCampaignResult(const std::string &path, std::string *out_error)
{
    std::ifstream file(path, std::ios::binary);
    if (!file) {
        if (out_error)
            *out_error = "cannot open '" + path + "'";
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    std::string error;
    auto result = readCampaignJson(buffer.str(), &error);
    if (!result && out_error)
        *out_error = path + ": " + error;
    return result;
}

// --------------------------------------------------------------- merge

std::optional<CampaignResult>
mergeCampaignShards(std::span<const CampaignResult> shards,
                    std::string *out_error)
{
    std::string error;
    auto fail = [&](const std::string &message) {
        error = message;
        return finish(CampaignResult{}, error, out_error);
    };

    if (shards.empty())
        return fail("no shards to merge");

    const CampaignResult &first = shards.front();
    const unsigned count = std::max(1u, first.config.shardCount);
    if (shards.size() != count)
        return fail("expected " + std::to_string(count) +
                    " shards, got " + std::to_string(shards.size()));

    const JsonValue identity = campaignIdentityJson(first.config);
    std::vector<bool> seen(count, false);

    CampaignResult merged;
    merged.config = first.config;
    merged.config.shardIndex = 0;
    merged.config.shardCount = 1;
    merged.config.checkpointPath.clear();
    merged.totalSitesEnumerated = first.totalSitesEnumerated;
    merged.goldenFlits = first.goldenFlits;

    for (const CampaignResult &shard : shards) {
        const unsigned index = shard.config.shardIndex;
        if (shard.config.shardCount != count || index >= count)
            return fail("shard selector " + std::to_string(index) + "/" +
                        std::to_string(shard.config.shardCount) +
                        " does not fit a " + std::to_string(count) +
                        "-way campaign");
        if (seen[index])
            return fail("duplicate shard " + std::to_string(index));
        seen[index] = true;
        if (campaignIdentityJson(shard.config) != identity)
            return fail("shard " + std::to_string(index) +
                        " was run with a different campaign config");
        if (!shard.complete())
            return fail("shard " + std::to_string(index) +
                        " is incomplete (" +
                        std::to_string(shard.runs.size()) + " of " +
                        std::to_string(shard.shardRunsPlanned) +
                        " runs)");
        if (shard.totalSitesEnumerated != merged.totalSitesEnumerated ||
            shard.goldenFlits != merged.goldenFlits)
            return fail("shard " + std::to_string(index) +
                        " disagrees on site enumeration or golden "
                        "reference");
        for (const FaultRunResult &run : shard.runs) {
            if (run.sampleIndex % count != index)
                return fail("run with sampleIndex " +
                            std::to_string(run.sampleIndex) +
                            " does not belong to shard " +
                            std::to_string(index));
        }
        merged.shardRunsPlanned += shard.shardRunsPlanned;
        merged.runs.insert(merged.runs.end(), shard.runs.begin(),
                           shard.runs.end());
    }

    std::sort(merged.runs.begin(), merged.runs.end(),
              [](const FaultRunResult &a, const FaultRunResult &b) {
                  return a.sampleIndex < b.sampleIndex;
              });
    for (std::size_t i = 1; i < merged.runs.size(); ++i) {
        if (merged.runs[i - 1].sampleIndex ==
            merged.runs[i].sampleIndex)
            return fail("duplicate sampleIndex " +
                        std::to_string(merged.runs[i].sampleIndex) +
                        " across shards");
    }

    return finish(std::move(merged), error, out_error);
}

} // namespace nocalert::fault
