/**
 * @file
 * The sampled-campaign planner — the statistical sibling of the
 * exhaustive shard planner in FaultCampaign::run.
 *
 * Where the exhaustive planner enumerates the site list once and
 * partitions it over shards, the sampled planner draws (site,
 * injection-cycle offset, traffic seed) tuples *with replacement*
 * from the same deterministic site list, stratified (by signal class
 * by default), in batches sized by the stats::StratifiedSampler. Each
 * draw's coordinates are materialized from a counter-mode RNG stream
 * keyed by the global draw index, and every batch is fully planned
 * before any outcome of that batch is consulted, so the entire run
 * stream — and therefore the artifact — is a pure function of the
 * campaign configuration. Resume is replay: the planner regenerates
 * the same batches and a checkpoint simply pre-fills their results.
 *
 * The report side (SamplingReport / computeSamplingReport) is a pure
 * function of a result's committed runs, like the telemetry block:
 * per-stratum and pooled detection / false-positive / false-negative
 * estimates with Wilson and Clopper-Pearson intervals, serialized
 * into schema-v5 artifacts and validated on load.
 */

#ifndef NOCALERT_FAULT_SAMPLED_HPP
#define NOCALERT_FAULT_SAMPLED_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "stats/sampler.hpp"

namespace nocalert::fault {

/** One planned sampled run. */
struct SampledDraw
{
    std::uint64_t drawIndex = 0; ///< Global index == sampleIndex.
    std::uint32_t stratum = 0;   ///< Planner stratum.
    FaultSite site;              ///< Sampled fault location.
    noc::Cycle cycleOffset = 0;  ///< Injection delay past warmup.
    std::uint32_t seedIndex = 0; ///< Traffic-seed offset.
};

/** Plans sampled batches for one campaign; see file comment. */
class SampledPlanner
{
  public:
    /**
     * @p population is the campaign's deterministic site list (the
     * exact list the exhaustive campaign would sweep — maxSites and
     * sampleSeed already applied); @p config carries the validated
     * sampling spec plus the workload and warmup the phase-stratified
     * mode partitions the jitter window against. Aborts on an invalid
     * spec; call validateSamplingSpec first for a recoverable answer.
     */
    SampledPlanner(const CampaignConfig &config,
                   std::vector<FaultSite> population);

    /** Plan the next batch (empty once done()). */
    std::vector<SampledDraw> planBatch();

    /**
     * Record one planned draw's outcome. Order within a batch is
     * irrelevant (only aggregates feed planning), but every draw of a
     * batch must be recorded before the next planBatch().
     */
    void record(const FaultRunResult &run);

    /** The sampler reached its stopping decision. */
    bool done() const { return sampler_.done(); }

    /** Total draws planned so far. */
    std::uint64_t drawsPlanned() const
    {
        return sampler_.drawsPlanned();
    }

    /** Number of strata. */
    std::size_t strataCount() const { return strataSites_.size(); }

    /** Display name of stratum @p index. */
    const std::string &stratumName(std::size_t index) const
    {
        return strataNames_[index];
    }

    /** Site population of stratum @p index. */
    const std::vector<FaultSite> &stratumSites(std::size_t index) const
    {
        return strataSites_[index];
    }

    /**
     * Re-materialize the draw with the given global index for
     * checkpoint validation: the stored run must match what the
     * planner would produce. @p stratum is the stored stratum tag.
     */
    SampledDraw materialize(std::uint64_t draw_index,
                            std::uint32_t stratum) const;

  private:
    SamplingSpec spec_;
    stats::StratifiedSampler sampler_;
    std::vector<std::string> strataNames_;
    std::vector<std::vector<FaultSite>> strataSites_;

    /**
     * Phase stratification only: the injection-cycle offsets (within
     * [0, cycleJitter]) each stratum owns. Empty for the legacy
     * modes, whose offset draw stays a uniform pick over the whole
     * jitter window — bit-exact with every v5 artifact.
     */
    std::vector<std::vector<noc::Cycle>> strataOffsets_;
};

/** Estimates for one stratum (or the pooled campaign). */
struct StratumEstimate
{
    std::string name;            ///< Stratum label ("all" for pooled).
    std::uint64_t population = 0; ///< Distinct sites in the stratum.
    std::uint64_t draws = 0;
    std::uint64_t detected = 0;
    std::uint64_t falsePositives = 0;
    std::uint64_t falseNegatives = 0;
    bool halted = false; ///< Stopping rule satisfied for this stratum.

    // Intervals on the detection rate (both constructions, so a
    // report never hides the conservative answer), plus the
    // rare-outcome bounds the paper's claims hinge on.
    stats::Interval detectedWilson;
    stats::Interval detectedClopperPearson;
    stats::Interval falsePositiveWilson;
    stats::Interval falsePositiveClopperPearson;
    stats::Interval falseNegativeWilson;
    stats::Interval falseNegativeClopperPearson;
};

/** Deterministic statistical projection of a sampled result. */
struct SamplingReport
{
    std::vector<StratumEstimate> strata;

    /**
     * All draws pooled into one binomial. With Stratify::None this is
     * the exact single-stratum estimate; with stratification it is
     * the unweighted pooled rate over the realized draw mix (exact
     * for the draws actually taken, not population-weighted).
     */
    StratumEstimate pooled;
};

/**
 * Compute the report from a (possibly partial) sampled result — a
 * pure function of the committed runs and the campaign config, so
 * serialized reports are byte-identical for every worker count and
 * recomputable by a reader for validation. Returns an empty report
 * for non-sampled results.
 */
SamplingReport computeSamplingReport(const CampaignResult &result);

/** The campaign's sampled-mode site population (the deterministic
 *  site list the exhaustive campaign would sweep). */
std::vector<FaultSite> sampledPopulation(const CampaignConfig &config);

} // namespace nocalert::fault

#endif // NOCALERT_FAULT_SAMPLED_HPP
