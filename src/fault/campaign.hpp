/**
 * @file
 * The fault-injection campaign (paper Section 5.3): run a fault-free
 * golden reference, then one fault-injected run per sampled site, and
 * classify every run into True/False Positive/Negative for NoCAlert
 * (plain and Cautious) and for the ForEVeR baseline.
 *
 * A warmed-up network is snapshotted once and copied per run, so the
 * cost of reaching steady state (the paper's cycle-32K instant) is
 * paid a single time.
 */

#ifndef NOCALERT_FAULT_CAMPAIGN_HPP
#define NOCALERT_FAULT_CAMPAIGN_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/invariant.hpp"
#include "exec/cancel.hpp"
#include "exec/telemetry.hpp"
#include "fault/golden.hpp"
#include "fault/injector.hpp"
#include "fault/site.hpp"
#include "forever/forever.hpp"
#include "noc/network.hpp"
#include "stats/binomial.hpp"
#include "traffic/workload.hpp"
#include "util/histogram.hpp"

namespace nocalert::fault {

/** Detection-outcome classification (paper Section 5.4). */
enum class Outcome : std::uint8_t {
    TruePositive,  ///< Detected, and correctness was really violated.
    FalsePositive, ///< Detected, but the fault proved benign.
    TrueNegative,  ///< Not detected, and the fault proved benign.
    FalseNegative, ///< Not detected, but correctness was violated.
    DetectedRecovered, ///< Detected, recovery engaged, and the
                       ///< post-recovery ejection log matches golden.
};

/** Number of distinct Outcome values. */
inline constexpr std::size_t kNumOutcomes = 5;

/** Name of an outcome. */
const char *outcomeName(Outcome outcome);

/**
 * Sentinel latency meaning "this detector never fired". Kept at -1
 * (Cycle is signed) so serialized results and CSV exports stay
 * readable; compare against this constant rather than a literal.
 */
inline constexpr noc::Cycle kNoDetection = -1;

/** How the sampled planner partitions the draw space into strata. */
enum class Stratify : std::uint8_t {
    None,        ///< One pooled stratum (plain binomial sampling).
    SignalClass, ///< One stratum per fault-signal class.
    Phase,       ///< One stratum per phase segment the injection-cycle
                 ///< jitter window reaches (phased workloads only).
};

/** Name of a stratification mode ("none" / "signal-class" / "phase"). */
const char *stratifyName(Stratify mode);

/** Inverse of stratifyName (nullopt for unknown names). */
std::optional<Stratify> stratifyFromName(std::string_view name);

/**
 * Statistical sampling mode (schema v5): instead of running every
 * site of the campaign's site list exactly once, draw (site,
 * injection-cycle offset, traffic seed) tuples with replacement,
 * stratified, until every stratum's confidence interval is tight
 * enough or the run budget is exhausted. Every field is campaign
 * identity: it determines which runs exist.
 */
struct SamplingSpec
{
    /** Master switch; false leaves the exhaustive planner in charge. */
    bool enabled = false;

    /** Stratum partition of the draw space. */
    Stratify stratify = Stratify::SignalClass;

    /** Interval construction for stopping and the primary report. */
    stats::IntervalMethod method = stats::IntervalMethod::Wilson;

    /** Confidence level of all reported intervals. */
    double confidence = 0.95;

    /**
     * Adaptive stopping target: a stratum halts once its detection
     * interval half-width is <= this. 0 disables width-based stopping
     * (fixed-budget sampling; maxRuns must then be set).
     */
    double ciHalfWidth = 0.05;

    /** Hard cap on total draws (0 = unbounded), honored exactly. */
    std::uint64_t maxRuns = 0;

    /** Draws planned per batch (the determinism quantum). */
    unsigned batchSize = 64;

    /** Minimum draws per stratum before the stopping rule may halt it. */
    unsigned minPerStratum = 8;

    /**
     * Injection-cycle jitter: each draw injects at warmup + U[0,
     * cycleJitter]. Must stay well under observeWindow so every run
     * keeps a meaningful post-injection observation window.
     */
    noc::Cycle cycleJitter = 0;

    /**
     * Number of distinct workload seeds sampled (seed k = the
     * workload's seed + k, each with its own warm snapshot and golden
     * reference). Trace workloads draw nothing, so they admit only
     * seedCount == 1.
     */
    unsigned seedCount = 1;

    /** Splitting-style budget boost toward rare-outcome strata. */
    bool reallocate = true;

    /** Seed of the per-draw materialization streams. */
    std::uint64_t samplerSeed = 1;
};

/**
 * Why @p spec cannot be run (empty = valid). The budget guard lives
 * here: a stopping rule that can never halt combined with an
 * unbounded run budget is rejected, as are degenerate knob values.
 * @p observe_window bounds the admissible cycleJitter.
 */
std::string validateSamplingSpec(const SamplingSpec &spec,
                                 noc::Cycle observe_window);

/** Campaign parameters. */
struct CampaignConfig
{
    noc::NetworkConfig network;

    /**
     * What drives the network: the synthetic generator, a phase
     * program, or a trace replay (traffic::WorkloadSpec). Campaign
     * identity — every workload field determines which packets exist.
     * Legacy code paths reach the synthetic backend via
     * `workload.synthetic`.
     */
    nocalert::traffic::WorkloadSpec workload;

    /** Cycles before injection (0 = paper's "cycle 0" empty network;
     *  thousands = the warmed-up "cycle 32K" instant). */
    noc::Cycle warmup = 0;

    /** Cycles of live traffic observed after the injection. */
    noc::Cycle observeWindow = 4000;

    /** Extra cycles allowed for the network to drain afterwards. */
    noc::Cycle drainLimit = 12000;

    /** Temporal fault behaviour. */
    FaultKind kind = FaultKind::Transient;

    /** Stratified site-sample size (0 = exhaustive sweep). */
    unsigned maxSites = 400;

    /**
     * Restrict the fault surface to combinational wires (module
     * inputs/outputs), excluding the architectural-register classes.
     * Approximates the paper's 205-locations-per-router accounting,
     * whose population is dominated by module-I/O signals.
     */
    bool wireSitesOnly = false;

    /** Seed for site sampling. */
    std::uint64_t sampleSeed = 7;

    /** Also run the ForEVeR baseline on every run. */
    bool runForever = true;
    forever::ForeverConfig forever;

    /**
     * Recovery mode: enable end-to-end retransmission at the NIs,
     * switch routing to the quarantine-aware adaptive algorithm, and
     * attach the recovery orchestrator (quarantine + purge on
     * trigger) to every run — golden included, so the reference
     * experiences the identical (fault-free) protocol. Runs whose
     * post-recovery ejection log matches golden classify as
     * Outcome::DetectedRecovered. Disables the ForEVeR baseline (its
     * end-to-end flit accounting does not model retransmission).
     * Part of the campaign identity.
     */
    bool recovery = false;

    /**
     * Escape hatch: run every simulation on the dense kernel instead
     * of the active-set kernel. Results are bit-identical either way
     * (the kernel-equivalence tests assert it); use this to
     * cross-check a suspect campaign or to time the dense baseline.
     */
    bool denseKernel = false;

    /**
     * Statistical sampling mode (schema v5). When enabled, the
     * sampled planner replaces the exhaustive one: runs are drawn
     * with replacement from the same deterministic site list the
     * exhaustive campaign would sweep, batch by batch, with adaptive
     * stopping. Part of the campaign identity. Sampled campaigns are
     * single-shard (the dynamic run stream has no static partition);
     * shardCount > 1 is rejected.
     */
    SamplingSpec sampling;

    /**
     * Worker jobs for the in-process execution engine (1 = serial,
     * 0 = hardware concurrency). Execution-only: campaign *results*
     * are byte-identical for every value (the executor reduces run
     * results in sampled order), so this is excluded from both the
     * campaign identity and the serialized artifact.
     */
    unsigned jobs = 1;

    // ---- Sharding (distributed / CI campaigns) ----

    /**
     * Shard selector: of the deterministically sampled site list,
     * this campaign runs sites whose sample index i satisfies
     * i % shardCount == shardIndex. Selection depends only on the
     * sampled order (never on threads), so N shards partition exactly
     * the runs a single unsharded process would execute.
     */
    unsigned shardIndex = 0;
    unsigned shardCount = 1;

    /**
     * When non-empty, a checkpoint (the partial CampaignResult as
     * JSON) is written here every checkpointEvery completed runs and
     * once more at the end. An existing checkpoint for the same
     * campaign is loaded on start and its completed runs are skipped,
     * so a killed shard resumes where it left off.
     */
    std::string checkpointPath;
    unsigned checkpointEvery = 25;
};

/** Classification record of one fault-injected run. */
struct FaultRunResult
{
    /** Position of the site in the campaign's sampled order; global
     *  across shards, so merged shard results interleave back into
     *  exactly the unsharded run order. */
    std::size_t sampleIndex = 0;

    FaultSite site;
    noc::Cycle injectCycle = 0;

    // ---- Sampled-mode draw coordinates (schema v5; zero for
    // ---- exhaustive runs). sampleIndex doubles as the draw index.
    std::uint32_t stratum = 0;   ///< Planner stratum of this draw.
    std::uint32_t seedIndex = 0; ///< Traffic-seed offset of this draw.

    // ---- Ground truth from the golden reference ----
    bool violated = false;
    std::uint8_t violatedConditions = 0;
    bool drained = true;

    // ---- NoCAlert ----
    bool detected = false;
    noc::Cycle detectionLatency = kNoDetection;
    bool detectedCautious = false;
    noc::Cycle cautiousLatency = kNoDetection;
    bool alertAtInjection = false;
    unsigned simultaneousCheckers = 0;
    std::vector<core::InvariantId> invariants;

    // ---- ForEVeR ----
    bool foreverDetected = false;
    noc::Cycle foreverLatency = kNoDetection;

    // ---- Recovery (all zero unless CampaignConfig::recovery) ----
    bool recovered = false;       ///< Detected, clean log, recovery acted.
    bool recoveryTriggered = false; ///< The orchestrator acted at all.
    noc::Cycle recoveryCycle = kNoDetection; ///< First action cycle.
    std::uint32_t recoveryActions = 0;   ///< Quarantine/purge actions.
    std::uint32_t quarantinedPorts = 0;  ///< Ports quarantined.
    std::uint64_t purgedFlits = 0;       ///< Flits purged network-wide.
    std::uint64_t retransmits = 0;       ///< Packet retransmissions.
    std::uint64_t duplicatesSuppressed = 0; ///< Duplicate deliveries.
    std::uint64_t packetsAbandoned = 0;  ///< Gave up after maxRetries.

    Outcome outcome() const;
    Outcome cautiousOutcome() const;
    Outcome foreverOutcome() const;
};

/** Aggregates over a finished campaign. */
struct CampaignSummary
{
    std::uint64_t runs = 0;

    std::array<std::uint64_t, kNumOutcomes> nocalert = {}; ///< By Outcome.
    std::array<std::uint64_t, kNumOutcomes> cautious = {};
    std::array<std::uint64_t, kNumOutcomes> forever = {};

    Histogram detectionLatency;  ///< NoCAlert, true positives only.
    Histogram foreverLatency;    ///< ForEVeR, true positives only.
    Histogram simultaneous;      ///< Checkers asserted at first detection.

    /** Fault runs in which invariant i participated (index 1..32). */
    std::array<std::uint64_t, core::kNumInvariants + 1> perInvariant = {};

    // ---- Observation 5 partition (faults with no same-cycle alert) ----
    std::uint64_t noInstantAlert = 0;
    std::uint64_t noInstantCaughtLater = 0;
    std::uint64_t noInstantBenignUndetected = 0;
    std::uint64_t noInstantViolatedUndetected = 0; ///< Must stay zero.

    /** Percentage helper: count / runs * 100. */
    double pct(std::uint64_t count) const;
};

/**
 * Deterministic telemetry projection of a (possibly partial) campaign:
 * the execution-independent counters serialized as the `telemetry`
 * block of campaign JSON (schema v4). Everything here is a pure
 * function of the committed runs, so the block is byte-identical for
 * every `jobs` value; wall-clock rates (runs/s, ETA, utilization) are
 * live-channel only (exec::TelemetrySnapshot) and never serialized.
 */
struct CampaignTelemetry
{
    std::uint64_t runsPlanned = 0;   ///< Shard's planned run count.
    std::uint64_t runsCompleted = 0; ///< Committed runs.
    std::array<std::uint64_t, kNumOutcomes> outcomes = {}; ///< By Outcome.
};

/** Full campaign (or single-shard) output. */
struct CampaignResult
{
    CampaignConfig config;
    std::size_t totalSitesEnumerated = 0;
    std::size_t goldenFlits = 0;

    /** Runs this shard is responsible for (== runs.size() once the
     *  shard has finished; larger while a checkpoint is partial). */
    std::size_t shardRunsPlanned = 0;

    /** Completed runs in increasing sampleIndex order. */
    std::vector<FaultRunResult> runs;

    /**
     * Sampled mode only: the sampler reached a stopping decision
     * (every stratum halted or the budget ran out) and every planned
     * draw committed. Needed because a sampled campaign interrupted
     * exactly at a batch boundary has runs.size() ==
     * shardRunsPlanned without being finished.
     */
    bool samplerDone = false;

    /** True iff every planned run of this shard has completed. */
    bool complete() const
    {
        if (config.sampling.enabled)
            return samplerDone && runs.size() == shardRunsPlanned;
        return runs.size() == shardRunsPlanned;
    }

    CampaignSummary summarize() const;
};

/** Compute the deterministic telemetry block for @p result. */
CampaignTelemetry computeTelemetry(const CampaignResult &result);

/**
 * The normal form a config reaches inside FaultCampaign's constructor
 * before any simulation: the traffic stop cycle is pinned to the
 * observation horizon and recovery mode forces its implied knobs
 * (retransmission on, quarantine-aware routing, ForEVeR off).
 * Idempotent, and applied without the constructor's validation — so a
 * service can compute the artifact identity of an untrusted spec (the
 * serialized config block records the *normalized* form) before
 * committing to run it.
 */
CampaignConfig normalizedCampaignConfig(CampaignConfig config);

/** Campaign driver. */
class FaultCampaign
{
  public:
    /** Per-run progress callback (completed runs, total runs). */
    using Progress = std::function<void(std::size_t, std::size_t)>;

    /** Knobs of one run() invocation (not part of campaign identity). */
    struct RunOptions
    {
        /**
         * Stop after this many *new* runs (0 = no limit), leaving the
         * checkpoint resumable — a deterministic stand-in for a killed
         * process in tests and CI.
         */
        std::size_t maxNewRuns = 0;

        /**
         * Cooperative cancellation (e.g. SIGINT). When it fires, the
         * campaign stops dispatching, flushes a valid checkpoint
         * holding the contiguous committed prefix, and returns the
         * partial result (complete() == false) — resumable as if the
         * process had been stopped between runs.
         */
        exec::CancelToken *cancel = nullptr;

        /**
         * Live telemetry sink, invoked after every committed run with
         * a fresh snapshot (runs/s, ETA, outcome counters, worker
         * utilization). Called under the campaign's commit lock —
         * keep it cheap; rendering cadence is the caller's business.
         */
        std::function<void(const exec::TelemetrySnapshot &)> telemetry;
    };

    explicit FaultCampaign(CampaignConfig config);

    /** Execute this shard of the campaign (resuming any checkpoint). */
    CampaignResult run(const Progress &progress = nullptr)
    {
        return run(progress, RunOptions{});
    }
    CampaignResult run(const Progress &progress,
                       const RunOptions &options);

    /**
     * Execute a single fault-injected run against a prepared warm
     * snapshot and golden reference (building block for tests).
     * @p inject_offset delays the injection that many cycles past the
     * snapshot instant (sampled-mode cycle jitter; 0 = inject at the
     * snapshot cycle, the exhaustive behaviour).
     */
    static FaultRunResult runSingle(const CampaignConfig &config,
                                    const noc::Network &base,
                                    const GoldenReference &golden,
                                    const FaultSite &site,
                                    noc::Cycle inject_offset = 0);

  private:
    CampaignResult runSampled(const Progress &progress,
                              const RunOptions &options);

    CampaignConfig config_;
};

} // namespace nocalert::fault

#endif // NOCALERT_FAULT_CAMPAIGN_HPP
