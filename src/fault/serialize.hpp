/**
 * @file
 * Versioned JSON serialization of fault-campaign configurations and
 * results, plus the shard-merge path.
 *
 * A CampaignResult document carries a schema tag and version so a
 * reader can reject files written by an incompatible build instead of
 * silently misreading them. Serialization is deterministic (object
 * members in a fixed order, exact integers, shortest round-trip
 * doubles): two equal results serialize to byte-identical JSON, which
 * is what the CI campaign-smoke check and the merge acceptance test
 * compare.
 *
 * The same format doubles as the shard checkpoint: a partial result
 * (shardRunsPlanned > runs.size()) written periodically by
 * FaultCampaign::run lets a killed shard resume from its last
 * completed run.
 */

#ifndef NOCALERT_FAULT_SERIALIZE_HPP
#define NOCALERT_FAULT_SERIALIZE_HPP

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "fault/campaign.hpp"
#include "fault/sampled.hpp"
#include "util/json.hpp"

namespace nocalert::fault {

/**
 * Version of the campaign JSON schema this build reads and writes.
 * History: 1 = initial sharded/resumable format; 2 = adds the
 * CampaignConfig "denseKernel" execution field; 3 = adds the
 * recovery loop — CampaignConfig "recovery", the network "retransmit"
 * parameters, and per-run recovery/retransmission counters; 4 = adds
 * the deterministic "telemetry" block and *drops* the pure execution
 * knobs (threads/jobs, checkpointPath, checkpointEvery) from the
 * config section, so the artifact is a pure function of the campaign
 * identity plus shard selector — byte-identical for every `--jobs`
 * value and checkpoint cadence; 5 = sampled campaigns — the config
 * "sampling" spec, per-run "stratum"/"seedIndex" tags, the
 * "samplerDone" completion flag and the deterministic "sampling"
 * report block (per-stratum estimates with Wilson and Clopper-Pearson
 * intervals); 6 = workload engine — non-synthetic workloads replace
 * the flat config "traffic" block with a "workload" block (kind +
 * phased phase program / trace replay identity).
 *
 * The writer emits version 4 for exhaustive synthetic campaigns,
 * version 5 for sampled synthetic ones, and version 6 only when the
 * workload is non-synthetic, so every pre-workload artifact stays
 * byte-identical; the reader accepts all three and rejects documents
 * whose version disagrees with their config.
 */
inline constexpr std::int64_t kCampaignSchemaVersion = 6;

/** The version synthetic sampled campaigns serialize as. */
inline constexpr std::int64_t kCampaignSchemaVersionSampled = 5;

/** Oldest schema version the reader still accepts. */
inline constexpr std::int64_t kCampaignSchemaVersionMin = 4;

/** The version a given config serializes as (see the history above). */
std::int64_t campaignSchemaVersionFor(const CampaignConfig &config);

/** Schema tag stored in every campaign document. */
inline constexpr const char *kCampaignSchemaName = "nocalert-campaign";

// ---- Structure -> JSON ----

JsonValue toJson(const CampaignConfig &config);
/** @p sampled adds the schema-v5 stratum/seedIndex tags. */
JsonValue toJson(const FaultRunResult &run, bool sampled = false);
JsonValue toJson(const CampaignResult &result); ///< Adds schema header.
JsonValue toJson(const CampaignSummary &summary);
JsonValue toJson(const CampaignTelemetry &telemetry);
JsonValue toJson(const SamplingReport &report); ///< Schema-v5 block.

/**
 * The subset of a config that defines campaign *identity*: everything
 * except the shard selector and the kernel choice. The pure execution
 * knobs (jobs, checkpointing) never reach JSON at all in schema v4.
 * Two shards / a checkpoint and its resumer must agree on this.
 */
JsonValue campaignIdentityJson(const CampaignConfig &config);

/**
 * Key of the artifact byte-identity domain: a 16-hex-digit FNV-1a 64
 * hash over the *serialized normalized* config. Campaign results are
 * a pure function of campaign identity, and the artifact's config
 * block additionally records the shard selector and kernel choice —
 * so two configs with equal hashes produce byte-identical artifact
 * documents, which is exactly the invariant a result cache needs.
 * Normalization first (normalizedCampaignConfig) makes the hash of a
 * freshly parsed spec match the hash of the config the finished
 * artifact records.
 */
std::string campaignArtifactHash(const CampaignConfig &config);

// ---- JSON -> structure (nullopt + *error on malformed input) ----

std::optional<CampaignConfig> campaignConfigFromJson(
    const JsonValue &json, std::string *error = nullptr);
std::optional<FaultRunResult> faultRunFromJson(
    const JsonValue &json, std::string *error = nullptr);

/** Rejects documents whose schema tag or version does not match. */
std::optional<CampaignResult> campaignResultFromJson(
    const JsonValue &json, std::string *error = nullptr);

// ---- Whole-document text and file helpers ----

/** Pretty-printed JSON document (2-space indent, trailing newline). */
std::string writeCampaignJson(const CampaignResult &result);

std::optional<CampaignResult> readCampaignJson(
    std::string_view text, std::string *error = nullptr);

/** Write atomically (temp file + rename), false + *error on failure. */
bool saveCampaignResult(const CampaignResult &result,
                        const std::string &path,
                        std::string *error = nullptr);

std::optional<CampaignResult> loadCampaignResult(
    const std::string &path, std::string *error = nullptr);

// ---- Shard merge ----

/**
 * Recombine the outputs of a sharded campaign. Requires a complete
 * cover: every shard present exactly once, each complete, and all
 * agreeing on campaign identity and on the deterministic globals
 * (totalSitesEnumerated, goldenFlits). The merged result has runs in
 * global sampleIndex order and an unsharded config, so its summary —
 * and its serialized form — is bit-identical to the same campaign run
 * in a single process.
 */
std::optional<CampaignResult> mergeCampaignShards(
    std::span<const CampaignResult> shards,
    std::string *error = nullptr);

} // namespace nocalert::fault

#endif // NOCALERT_FAULT_SERIALIZE_HPP
