/**
 * @file
 * The Golden Reference (paper Section 5.2): the per-flit ejection log
 * of a fault-free run, and the comparator that decides whether a
 * fault-injected run violated network correctness.
 *
 * The four correctness conditions (Section 4.1) are evaluated at flit
 * granularity, which the paper argues is strictly stronger than the
 * packet-level formulation: (1) bounded delivery, (2) no flit drop,
 * (3) no new flit generation, (4) no data corruption / packet mixing,
 * plus preservation of intra-packet flit order.
 */

#ifndef NOCALERT_FAULT_GOLDEN_HPP
#define NOCALERT_FAULT_GOLDEN_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/invariant.hpp"
#include "noc/interface.hpp"

namespace nocalert::fault {

/** One detected divergence from the golden run. */
struct GoldenViolation
{
    enum class Type : std::uint8_t {
        FlitLost,         ///< A golden flit never ejected (drop/stuck).
        NewFlit,          ///< An ejected flit the golden run never saw.
        WrongDestination, ///< Ejected at a different node than golden.
        OrderViolation,   ///< Intra-packet sequence order broken.
        NotDrained,       ///< Traffic still in flight at the horizon.
    };

    Type type = Type::FlitLost;
    noc::PacketId packet = noc::kInvalidPacket;
    std::uint16_t seq = 0;
    noc::NodeId node = noc::kInvalidNode;

    /** Human-readable description. */
    std::string describe() const;
};

/** Name of a violation type. */
const char *violationTypeName(GoldenViolation::Type type);

/** Outcome of comparing a faulty run against the golden reference. */
struct GoldenComparison
{
    std::vector<GoldenViolation> violations;

    /** True iff the run violated network correctness in any way. */
    bool violated() const { return !violations.empty(); }

    /** CorrectnessCondition bits that were breached. */
    std::uint8_t conditions() const;
};

/** Indexed golden ejection log. */
class GoldenReference
{
  public:
    /** Build the reference from a fault-free run's ejection records. */
    explicit GoldenReference(
        const std::vector<noc::EjectionRecord> &golden);

    /** Number of flits the golden run delivered. */
    std::size_t flitCount() const { return flits_.size(); }

    /**
     * Compare a faulty run's ejection records against the reference.
     *
     * @param faulty  All flits the faulty run ejected (any node order;
     *                per-node records must be time-ordered).
     * @param drained True iff the faulty network reached quiescence
     *                within its horizon; false adds a bounded-delivery
     *                violation.
     */
    GoldenComparison compare(
        const std::vector<noc::EjectionRecord> &faulty,
        bool drained) const;

  private:
    using Key = std::pair<noc::PacketId, std::uint16_t>;
    std::map<Key, noc::NodeId> flits_;
};

} // namespace nocalert::fault

#endif // NOCALERT_FAULT_GOLDEN_HPP
