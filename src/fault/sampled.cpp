#include "fault/sampled.hpp"

#include <algorithm>
#include <map>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace nocalert::fault {

const char *
stratifyName(Stratify mode)
{
    switch (mode) {
      case Stratify::None: return "none";
      case Stratify::SignalClass: return "signal-class";
      case Stratify::Phase: return "phase";
    }
    return "?";
}

std::optional<Stratify>
stratifyFromName(std::string_view name)
{
    if (name == "none")
        return Stratify::None;
    if (name == "signal-class")
        return Stratify::SignalClass;
    if (name == "phase")
        return Stratify::Phase;
    return std::nullopt;
}

namespace {

stats::SamplerConfig
samplerConfigOf(const SamplingSpec &spec)
{
    stats::SamplerConfig config;
    config.rule.targetHalfWidth = spec.ciHalfWidth;
    config.rule.confidence = spec.confidence;
    config.rule.method = spec.method;
    config.rule.minDraws = spec.minPerStratum;
    config.maxDraws = spec.maxRuns;
    config.batchSize = spec.batchSize;
    config.reallocate = spec.reallocate;
    return config;
}

/**
 * Phase stratification's partition of the injection-offset window:
 * offset -> covering phase segment of the (normalized) workload, keyed
 * by segment index (-1 = idle gap). std::map iteration makes the
 * stratum order deterministic: idle first, then segments ascending.
 */
std::map<int, std::vector<noc::Cycle>>
phasePartition(const CampaignConfig &config)
{
    std::map<int, std::vector<noc::Cycle>> partition;
    for (noc::Cycle off = 0; off <= config.sampling.cycleJitter; ++off) {
        const int segment = nocalert::traffic::phaseSegmentAt(
            config.workload.phased, config.warmup + off);
        partition[segment].push_back(off);
    }
    return partition;
}

} // namespace

std::string
validateSamplingSpec(const SamplingSpec &spec, noc::Cycle observe_window)
{
    if (!spec.enabled)
        return std::string();
    if (spec.seedCount == 0)
        return "sampling seedCount must be positive";
    if (spec.cycleJitter < 0)
        return "sampling cycleJitter must be non-negative";
    if (observe_window > 0 && spec.cycleJitter >= observe_window / 2)
        return "sampling cycleJitter must stay under half the "
               "observation window";
    if (spec.stratify == Stratify::Phase && spec.cycleJitter < 1)
        return "phase stratification needs cycleJitter >= 1 (the "
               "jitter window is what spans the phases)";
    // The stats-layer budget guard covers the stopping rule itself.
    return stats::StratifiedSampler::validate(samplerConfigOf(spec));
}

SampledPlanner::SampledPlanner(const CampaignConfig &config,
                               std::vector<FaultSite> population)
    : spec_(config.sampling),
      sampler_(samplerConfigOf(config.sampling),
               [&] {
                   // Stratum count must be known before the sampler
                   // member constructs; compute it from the
                   // population without retaining state.
                   if (config.sampling.stratify == Stratify::None)
                       return std::size_t{1};
                   if (config.sampling.stratify == Stratify::Phase)
                       return std::max<std::size_t>(
                           phasePartition(config).size(), 1);
                   std::map<SignalClass, std::size_t> classes;
                   for (const FaultSite &site : population)
                       classes[site.signal] += 1;
                   return std::max<std::size_t>(classes.size(), 1);
               }())
{
    NOCALERT_ASSERT(!population.empty(),
                    "sampled campaign needs a non-empty site population");
    if (spec_.stratify == Stratify::None) {
        strataNames_.push_back("all");
        strataSites_.push_back(std::move(population));
        return;
    }
    if (spec_.stratify == Stratify::Phase) {
        // One stratum per phase segment the jitter window reaches
        // (plus "idle" for offsets landing in gaps). Every stratum
        // draws sites from the full population; what distinguishes
        // strata is which injection offsets they own.
        for (auto &[segment, offsets] : phasePartition(config)) {
            strataNames_.push_back(
                segment < 0 ? std::string("idle")
                            : "phase-" + std::to_string(segment));
            strataSites_.push_back(population);
            strataOffsets_.push_back(std::move(offsets));
        }
        return;
    }
    // One stratum per signal class present, in enum order (std::map
    // iterates in key order), sites in enumeration order within each
    // — all deterministic.
    std::map<SignalClass, std::vector<FaultSite>> classes;
    for (FaultSite &site : population)
        classes[site.signal].push_back(site);
    for (auto &[cls, sites] : classes) {
        strataNames_.push_back(signalClassName(cls));
        strataSites_.push_back(std::move(sites));
    }
}

SampledDraw
SampledPlanner::materialize(std::uint64_t draw_index,
                            std::uint32_t stratum) const
{
    NOCALERT_ASSERT(stratum < strataSites_.size(),
                    "draw stratum out of range");
    const std::vector<FaultSite> &sites = strataSites_[stratum];

    // Counter-mode stream keyed by the global draw index: the draw's
    // coordinates depend only on (samplerSeed, drawIndex, stratum),
    // never on threads or on when the batch was planned. The seed and
    // counter are mixed through splitMix64 before stream selection —
    // raw deriveStream is affine in (seed, index), and its first
    // output (the one the site pick consumes) collides for
    // (seed + 4, index - 1), which would turn neighbouring sampler
    // seeds into shifted copies of the same draw sequence.
    Pcg32 rng = deriveStream(
        splitMix64(splitMix64(spec_.samplerSeed) ^
                   (draw_index * 0x9e3779b97f4a7c15ULL)),
        draw_index);

    SampledDraw draw;
    draw.drawIndex = draw_index;
    draw.stratum = stratum;
    draw.site = sites[rng.nextBounded(
        static_cast<std::uint32_t>(sites.size()))];
    if (spec_.stratify == Stratify::Phase) {
        // The stratum owns a specific offset subset of the jitter
        // window; the draw picks uniformly within it.
        const std::vector<noc::Cycle> &offsets = strataOffsets_[stratum];
        draw.cycleOffset = offsets[rng.nextBounded(
            static_cast<std::uint32_t>(offsets.size()))];
    } else {
        // Legacy modes: uniform over the whole window, with the exact
        // draw order v5 artifacts were materialized under.
        draw.cycleOffset =
            spec_.cycleJitter > 0
                ? static_cast<noc::Cycle>(rng.nextBounded(
                      static_cast<std::uint32_t>(spec_.cycleJitter + 1)))
                : 0;
    }
    draw.seedIndex =
        spec_.seedCount > 1 ? rng.nextBounded(spec_.seedCount) : 0;
    return draw;
}

std::vector<SampledDraw>
SampledPlanner::planBatch()
{
    const std::uint64_t first = sampler_.drawsPlanned();
    const std::vector<std::size_t> strata = sampler_.planBatch();

    std::vector<SampledDraw> draws;
    draws.reserve(strata.size());
    for (std::size_t i = 0; i < strata.size(); ++i) {
        draws.push_back(
            materialize(first + i,
                        static_cast<std::uint32_t>(strata[i])));
    }
    return draws;
}

void
SampledPlanner::record(const FaultRunResult &run)
{
    const Outcome outcome = run.outcome();
    // Primary metric: detection. Rare metric: the false-negative
    // tail the paper claims is exactly zero — strata that produce
    // one get the splitting-style budget boost.
    sampler_.record(run.stratum, run.detected,
                    outcome == Outcome::FalseNegative);
}

std::vector<FaultSite>
sampledPopulation(const CampaignConfig &config)
{
    std::vector<FaultSite> population =
        FaultSiteCatalog::enumerateNetwork(config.network);
    if (config.wireSitesOnly) {
        std::erase_if(population, [](const FaultSite &site) {
            return isStateSignal(site.signal);
        });
    }
    // Identical truncation to the exhaustive planner: the sampled
    // population IS the site list an exhaustive campaign with this
    // config would sweep, so exhaustive ground truth and sampled
    // estimates speak about the same finite population.
    return FaultSiteCatalog::sampleSites(
        std::move(population), config.maxSites, config.sampleSeed);
}

namespace {

/** Counts -> estimate with both interval constructions attached. */
void
finishEstimate(StratumEstimate &estimate, double confidence)
{
    using stats::clopperPearsonInterval;
    using stats::wilsonInterval;
    estimate.detectedWilson =
        wilsonInterval(estimate.detected, estimate.draws, confidence);
    estimate.detectedClopperPearson = clopperPearsonInterval(
        estimate.detected, estimate.draws, confidence);
    estimate.falsePositiveWilson = wilsonInterval(
        estimate.falsePositives, estimate.draws, confidence);
    estimate.falsePositiveClopperPearson = clopperPearsonInterval(
        estimate.falsePositives, estimate.draws, confidence);
    estimate.falseNegativeWilson = wilsonInterval(
        estimate.falseNegatives, estimate.draws, confidence);
    estimate.falseNegativeClopperPearson = clopperPearsonInterval(
        estimate.falseNegatives, estimate.draws, confidence);
}

} // namespace

SamplingReport
computeSamplingReport(const CampaignResult &result)
{
    SamplingReport report;
    if (!result.config.sampling.enabled)
        return report;

    const SamplingSpec &spec = result.config.sampling;
    const std::vector<FaultSite> population =
        sampledPopulation(result.config);
    SampledPlanner planner(result.config, population);

    report.strata.resize(planner.strataCount());
    for (std::size_t i = 0; i < planner.strataCount(); ++i) {
        report.strata[i].name = planner.stratumName(i);
        report.strata[i].population = planner.stratumSites(i).size();
    }
    report.pooled.name = "all";
    report.pooled.population = population.size();

    auto count = [](StratumEstimate &estimate,
                    const FaultRunResult &run) {
        const Outcome outcome = run.outcome();
        estimate.draws += 1;
        if (run.detected)
            estimate.detected += 1;
        if (outcome == Outcome::FalsePositive)
            estimate.falsePositives += 1;
        if (outcome == Outcome::FalseNegative)
            estimate.falseNegatives += 1;
    };
    for (const FaultRunResult &run : result.runs) {
        NOCALERT_ASSERT(run.stratum < report.strata.size(),
                        "run stratum out of range for its config");
        count(report.strata[run.stratum], run);
        count(report.pooled, run);
    }

    const stats::StoppingRule rule =
        samplerConfigOf(spec).rule;
    for (StratumEstimate &estimate : report.strata) {
        finishEstimate(estimate, spec.confidence);
        estimate.halted = rule.satisfied(estimate.detected,
                                         estimate.draws);
    }
    finishEstimate(report.pooled, spec.confidence);
    report.pooled.halted =
        rule.satisfied(report.pooled.detected, report.pooled.draws);
    return report;
}

} // namespace nocalert::fault
