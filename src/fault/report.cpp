#include "fault/report.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>
#include <string>

#include "fault/sampled.hpp"
#include "util/table.hpp"

namespace nocalert::fault {

namespace {

/** Latency cell: the cycle delta, or an empty cell when the detector
 *  never fired — kNoDetection stays an in-memory sentinel and never
 *  leaks into exported data as a misleading numeric value. */
std::string
latencyCell(noc::Cycle latency)
{
    if (latency == kNoDetection)
        return "";
    return std::to_string(static_cast<long long>(latency));
}

} // namespace

void
writeCampaignCsv(const CampaignResult &result, std::ostream &os)
{
    os << "router,signal,port,vc,bit,violated,conditions,drained,"
          "detected,latency,cautious,cautious_latency,at_injection,"
          "simultaneous,invariants,forever_detected,forever_latency,"
          "recovered,recovery_latency,retransmits\n";
    for (const FaultRunResult &run : result.runs) {
        os << run.site.router << ','
           << signalClassName(run.site.signal) << ','
           << noc::portName(run.site.port) << ',' << run.site.vc << ','
           << run.site.bit << ',' << (run.violated ? 1 : 0) << ','
           << static_cast<unsigned>(run.violatedConditions) << ','
           << (run.drained ? 1 : 0) << ',' << (run.detected ? 1 : 0)
           << ',' << latencyCell(run.detectionLatency) << ','
           << (run.detectedCautious ? 1 : 0) << ','
           << latencyCell(run.cautiousLatency) << ','
           << (run.alertAtInjection ? 1 : 0) << ','
           << run.simultaneousCheckers << ',';
        // Invariant list as a ;-joined field.
        os << '"';
        for (std::size_t i = 0; i < run.invariants.size(); ++i) {
            if (i)
                os << ';';
            os << core::invariantIndex(run.invariants[i]);
        }
        os << '"' << ',' << (run.foreverDetected ? 1 : 0) << ','
           << latencyCell(run.foreverLatency) << ','
           << (run.recovered ? 1 : 0) << ','
           << latencyCell(run.recoveryCycle == kNoDetection
                              ? kNoDetection
                              : run.recoveryCycle - run.injectCycle)
           << ',' << run.retransmits << '\n';
    }
}

std::string
summaryText(const CampaignResult &result)
{
    const CampaignSummary summary = result.summarize();

    Table table({"detector", "true-pos", "false-pos", "true-neg",
                 "false-neg", "recovered"});
    auto row = [&](const char *name,
                   const std::array<std::uint64_t, kNumOutcomes>
                       &counts) {
        table.addRow({name,
                      Table::pct(summary.pct(counts[0])),
                      Table::pct(summary.pct(counts[1])),
                      Table::pct(summary.pct(counts[2])),
                      Table::pct(summary.pct(counts[3])),
                      Table::pct(summary.pct(counts[4]))});
    };
    row("NoCAlert", summary.nocalert);
    row("NoCAlert Cautious", summary.cautious);
    if (result.config.runForever)
        row("ForEVeR", summary.forever);

    std::ostringstream os;
    os << "campaign: " << summary.runs << " runs over "
       << result.totalSitesEnumerated << " enumerated sites, golden "
       << result.goldenFlits << " flits\n";
    os << table.toText();
    if (!summary.detectionLatency.empty()) {
        os << "NoCAlert latency: same-cycle "
           << Table::pct(100.0 * summary.detectionLatency.cdfAt(0), 1)
           << ", max " << summary.detectionLatency.max()
           << " cycles\n";
    }

    os << samplingText(result);
    return os.str();
}

std::string
samplingText(const CampaignResult &result)
{
    if (!result.config.sampling.enabled)
        return std::string();

    std::ostringstream os;
    {
        const SamplingReport report = computeSamplingReport(result);
        const SamplingSpec &spec = result.config.sampling;
        auto cell = [](const stats::Interval &interval) {
            char buf[48];
            std::snprintf(buf, sizeof(buf), "[%.4f, %.4f]",
                          interval.lower, interval.upper);
            return std::string(buf);
        };
        Table estimates({"stratum", "pop", "draws", "detect",
                         "wilson", "clopper-pearson", "fn", "halted"});
        auto estimateRow = [&](const StratumEstimate &estimate) {
            const double rate =
                estimate.draws > 0
                    ? static_cast<double>(estimate.detected) /
                          static_cast<double>(estimate.draws)
                    : 0.0;
            estimates.addRow(
                {estimate.name, std::to_string(estimate.population),
                 std::to_string(estimate.draws),
                 Table::pct(100.0 * rate),
                 cell(estimate.detectedWilson),
                 cell(estimate.detectedClopperPearson),
                 std::to_string(estimate.falseNegatives),
                 estimate.halted ? "yes" : "no"});
        };
        for (const StratumEstimate &estimate : report.strata)
            estimateRow(estimate);
        if (report.strata.size() > 1)
            estimateRow(report.pooled);
        os << "sampled: " << report.pooled.draws << " draws ("
           << (result.samplerDone ? "stopped" : "interrupted")
           << "), " << 100.0 * spec.confidence << "% intervals, target "
           << "half-width "
           << (spec.ciHalfWidth > 0 ? std::to_string(spec.ciHalfWidth)
                                    : std::string("none"))
           << "\n";
        os << estimates.toText();
    }
    return os.str();
}

} // namespace nocalert::fault
