#include "hw/checkcost.hpp"

#include "hw/modules.hpp"
#include "util/bits.hpp"

namespace nocalert::hw {

using core::InvariantId;

namespace {

/**
 * Grant-without-request over an N-client arbiter (Figure 4): one
 * INV + AND per client and an OR tree. The inverted-request bus and
 * the "any request"/"any grant" trees are shared with the companion
 * checkers 5 and 6 at synthesis, so those two are costed as the small
 * residual logic they add on top.
 */
GateCounts
grantWoReqGates(double n)
{
    return {n / 2, n, n / 2, 0, 0, 0};
}

/** Request-present / grant-absent detector (shares the any-trees). */
GateCounts
grantToNobodyGates(double /*n*/)
{
    return {1, 1, 3, 0, 0, 0};
}

/** At-most-one-hot detector: a "seen a one already" carry chain. */
GateCounts
oneHotGates(double n)
{
    return {0, n, n / 2, 0, 0, 0};
}

double
log2ceil(unsigned n)
{
    return static_cast<double>(bitsFor(n < 2 ? 2 : n));
}

} // namespace

GateCounts
checkerGates(InvariantId id, const noc::NetworkConfig &config)
{
    const noc::RouterParams &params = config.router;
    const double p = noc::kNumPorts;
    const double v = params.numVcs;
    const double pv = p * v;
    const double credit_bits = log2ceil(params.bufferDepth + 1);
    const double vc_bits = log2ceil(params.numVcs);
    const double xb = log2ceil(static_cast<unsigned>(config.width));
    const double yb = log2ceil(static_cast<unsigned>(config.height));
    const double node_bits = xb + yb;

    switch (id) {
      case InvariantId::IllegalTurn:
        // Turn-rule lookup on the 3-bit direction per input port.
        return GateCounts{2, 6, 3, 0, 0, 0} * p;
      case InvariantId::InvalidRcOutput:
        // Range/connectivity decode per port + per-VC register check.
        return GateCounts{2, 5, 2, 0, 0, 0} * p +
               GateCounts{1, 2, 1, 0, 0, 0} * pv;
      case InvariantId::NonMinimalRoute:
        // Distance comparator per input port.
        return GateCounts{2, 6, 4, 2 * (xb + yb), 0, 0} * p;

      case InvariantId::GrantWithoutRequest:
        // SA stages monitor the (small) one-hot vectors directly; for
        // the wide VA2 matrix the checker compares the *encoded* VC id
        // each input VC requested against the one it was granted —
        // value comparison, not 1-hot wire monitoring (Section 4.2).
        return grantWoReqGates(v) * p +              // SA1
               grantWoReqGates(p) * p +              // SA2
               GateCounts{1, 2, 1, vc_bits, 0, 0} * pv; // VA2 per VC
      case InvariantId::GrantToNobody:
        return grantToNobodyGates(v) * p + grantToNobodyGates(p) * p +
               grantToNobodyGates(pv) * p;
      case InvariantId::GrantNotOneHot:
        return oneHotGates(v) * p + oneHotGates(p) * p +
               oneHotGates(pv) * p;
      case InvariantId::GrantToOccupiedOrFullVc:
        // Free bit + credit comparator per output VC.
        return GateCounts{1, 3, 2, credit_bits, 0, 0} * pv;
      case InvariantId::OneToOneVcAssignment:
        return GateCounts{0, 2, 2, 0, 0, 0} * pv;
      case InvariantId::OneToOnePortAssignment:
        return GateCounts{0, p, p - 1, 0, 0, 0} * p;
      case InvariantId::VaAgreesWithRc:
        return GateCounts{0, 2, 2, 3, 0, 0} * pv;
      case InvariantId::SaAgreesWithRc:
        return GateCounts{0, 2, 2, 3, 0, 0} * p;
      case InvariantId::IntraVaStageOrder:
        return GateCounts{0, 2, 1, vc_bits, 0, 0} * pv;
      case InvariantId::IntraSaStageOrder:
        return GateCounts{1, 2, 1, 0, 0, 0} * p;

      case InvariantId::XbarColumnOneHot:
        return oneHotGates(p) * p;
      case InvariantId::XbarRowOneHot:
        return oneHotGates(p) * p;
      case InvariantId::XbarFlitConservation:
        // Two small population counters plus a comparator.
        return {2, 3 * p, 2 * p, 2 * p + 3, 0, 0};

      case InvariantId::ConsistentVcState:
        return GateCounts{2, 6, 4, 0, 0, 0} * pv;
      case InvariantId::HeaderOnlyIntoFreeVc:
        return GateCounts{1, 3, 1, 0, 0, 0} * pv;
      case InvariantId::InvalidOutputVcValue:
        return GateCounts{1, 2, 1, 0, 0, 0} * pv;
      case InvariantId::RcOnNonHeaderFlit:
        return GateCounts{1, 2, 1, 0, 0, 0} * p;
      case InvariantId::RcOnEmptyVc:
        return GateCounts{1, 2, 1, 0, 0, 0} * p;
      case InvariantId::VaOnNonHeaderFlit:
        return GateCounts{1, 2, 1, 0, 0, 0} * pv;
      case InvariantId::VaOnEmptyVc:
        return GateCounts{1, 2, 1, 0, 0, 0} * pv;

      case InvariantId::ReadFromEmptyBuffer:
        // Occupancy-zero detect per VC.
        return GateCounts{1, credit_bits, 1, 0, 0, 0} * pv;
      case InvariantId::WriteToFullBuffer:
        return GateCounts{1, credit_bits, 1, 0, 0, 0} * pv;
      case InvariantId::BufferAtomicityViolation:
        return GateCounts{1, 3, 2, 0, 0, 0} * pv;
      case InvariantId::NonAtomicPacketMixing:
        return GateCounts{1, 3, 2, 0, 0, 0} * pv;
      case InvariantId::PacketFlitCountViolation:
        return GateCounts{1, 3, 2, credit_bits, 0, 0} * pv;

      case InvariantId::ConcurrentReadMultipleVcs:
        return oneHotGates(v) * p;
      case InvariantId::ConcurrentWriteMultipleVcs:
        return oneHotGates(v) * p;
      case InvariantId::ConcurrentRcMultipleVcs:
        return oneHotGates(v) * p;

      case InvariantId::EjectionAtWrongDestination:
        // Destination comparator at the ejection interface.
        return {1, 3, node_bits - 1, node_bits, 0, 0};
    }
    return {};
}

GateCounts
nocalertTotal(const noc::NetworkConfig &config)
{
    const noc::RouterParams &params = config.router;
    const bool has_va = params.numVcs > 1;

    GateCounts total;
    for (const core::InvariantInfo &info : core::invariantCatalog()) {
        if (info.atomicOnly && !params.atomicBuffers)
            continue;
        if (info.nonAtomicOnly && params.atomicBuffers)
            continue;
        if (info.needsVcs && !has_va)
            continue;
        total += checkerGates(info.id, config);
    }
    // A final OR tree combining the individual checker flags.
    total += GateCounts{0, 0, core::kNumInvariants - 1, 0, 0, 0};
    return total;
}

GateCounts
dmrControlLogic(const noc::NetworkConfig &config)
{
    const GateCounts control = routerControlLogic(config);
    // Duplicate the control plane and compare its architectural
    // outputs (one XOR per register bit plus the OR reduce tree).
    const double compared_bits = control.dff;
    GateCounts dmr = control;
    dmr.xor2 += compared_bits;
    dmr.or2 += compared_bits / 2;
    return dmr;
}

std::vector<CheckerCostRow>
checkerCostTable(const noc::NetworkConfig &config)
{
    const noc::RouterParams &params = config.router;
    const bool has_va = params.numVcs > 1;

    std::vector<CheckerCostRow> rows;
    for (const core::InvariantInfo &info : core::invariantCatalog()) {
        if (info.atomicOnly && !params.atomicBuffers)
            continue;
        if (info.nonAtomicOnly && params.atomicBuffers)
            continue;
        if (info.needsVcs && !has_va)
            continue;
        rows.push_back({info.id, checkerGates(info.id, config)});
    }
    return rows;
}

} // namespace nocalert::hw
