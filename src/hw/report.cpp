#include "hw/report.hpp"

#include <algorithm>
#include <cmath>

#include "util/bits.hpp"

namespace nocalert::hw {

namespace {

/** Typical 65 nm gate delay (ps) for a loaded 2-input stage. */
constexpr double kGateDelayPs = 28.0;

/** Flop clock->Q plus setup (ps). */
constexpr double kSequentialOverheadPs = 150.0;

/** Logic depth of an N-client round-robin arbiter. */
double
arbiterDepth(unsigned clients)
{
    const double n = clients < 2 ? 2.0 : static_cast<double>(clients);
    return 2.0 * std::ceil(std::log2(n)) + 4.0;
}

} // namespace

double
criticalPathPs(const noc::NetworkConfig &config)
{
    const unsigned p = noc::kNumPorts;
    const unsigned v = config.router.numVcs;

    // Stage depths (gates): the separable VA's global stage arbitrates
    // among P*V clients and dominates as V grows; SA chains SA1 into
    // the SA2 request mux; ST is a mux tree plus buffer read.
    const double va_depth = v > 1 ? arbiterDepth(p * v) + 2 : 0.0;
    const double sa_depth = arbiterDepth(v) + arbiterDepth(p) + 3;
    const double st_depth =
        std::ceil(std::log2(static_cast<double>(p))) + 4 +
        std::ceil(std::log2(
            static_cast<double>(config.router.bufferDepth)));
    const double rc_depth =
        2.0 * bitsFor(static_cast<unsigned>(
                  std::max(config.width, config.height))) + 3;

    const double depth =
        std::max({va_depth, sa_depth, st_depth, rc_depth});
    return depth * kGateDelayPs + kSequentialOverheadPs;
}

HwReport
makeHwReport(const noc::NetworkConfig &config)
{
    const GateLibrary &lib = GateLibrary::typical65nm();

    HwReport report;
    report.numVcs = config.router.numVcs;

    const GateCounts router = routerTotal(config);
    const GateCounts control = routerControlLogic(config);
    const GateCounts checkers = nocalertTotal(config);
    const GateCounts dmr = dmrControlLogic(config);

    report.routerArea = lib.areaUm2(router);
    report.controlLogicArea = lib.areaUm2(control);
    report.nocalertArea = lib.areaUm2(checkers);
    report.dmrArea = lib.areaUm2(dmr);
    report.nocalertAreaOverheadPct =
        100.0 * report.nocalertArea / report.routerArea;
    report.dmrAreaOverheadPct = 100.0 * report.dmrArea / report.routerArea;

    // Checkers are pure combinational logic: they add switching
    // capacitance but no clocked elements, so their power share is
    // well below their area share (the router's flop arrays dominate).
    report.routerPower = lib.power(router);
    report.nocalertPower = lib.power(checkers);
    report.nocalertPowerOverheadPct =
        100.0 * report.nocalertPower / report.routerPower;

    // Checkers tap existing wires: the only timing cost is the extra
    // fanout load on the monitored nets (roughly one gate load on the
    // deepest stage's output). They sit off the computation path and
    // never gate it.
    report.baselineCriticalPath = criticalPathPs(config);
    report.nocalertCriticalPath =
        report.baselineCriticalPath + 0.4 * kGateDelayPs;
    report.criticalPathImpactPct =
        100.0 *
        (report.nocalertCriticalPath - report.baselineCriticalPath) /
        report.baselineCriticalPath;

    return report;
}

} // namespace nocalert::hw
