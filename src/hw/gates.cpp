#include "hw/gates.hpp"

namespace nocalert::hw {

GateCounts &
GateCounts::operator+=(const GateCounts &other)
{
    inv += other.inv;
    and2 += other.and2;
    or2 += other.or2;
    xor2 += other.xor2;
    mux2 += other.mux2;
    dff += other.dff;
    return *this;
}

GateCounts
GateCounts::operator+(const GateCounts &other) const
{
    GateCounts result = *this;
    result += other;
    return result;
}

GateCounts
GateCounts::operator*(double factor) const
{
    return {inv * factor, and2 * factor, or2 * factor,
            xor2 * factor, mux2 * factor, dff * factor};
}

double
GateCounts::combinational() const
{
    return inv + and2 + or2 + xor2 + mux2;
}

const GateLibrary &
GateLibrary::typical65nm()
{
    static const GateLibrary library;
    return library;
}

double
GateLibrary::gateEquivalents(const GateCounts &counts) const
{
    return counts.inv * invGe + counts.and2 * and2Ge +
           counts.or2 * or2Ge + counts.xor2 * xor2Ge +
           counts.mux2 * mux2Ge + counts.dff * dffGe;
}

double
GateLibrary::areaUm2(const GateCounts &counts) const
{
    return gateEquivalents(counts) * um2PerGe;
}

double
GateLibrary::power(const GateCounts &counts, double activity) const
{
    const double comb_ge = counts.inv * invGe + counts.and2 * and2Ge +
                           counts.or2 * or2Ge + counts.xor2 * xor2Ge +
                           counts.mux2 * mux2Ge;
    const double dff_ge = counts.dff * dffGe;
    const double dynamic =
        comb_ge * dynPerGe * activity +
        dff_ge * dynPerGe * (activity + dffClockFactor);
    const double leakage = (comb_ge + dff_ge) * leakPerGe;
    return dynamic + leakage;
}

} // namespace nocalert::hw
