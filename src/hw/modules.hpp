/**
 * @file
 * Gate inventories of the baseline router's modules as functions of
 * the micro-architectural parameters (ports P, VCs V, depth B, flit
 * width W). Growth orders follow the canonical implementations:
 * buffers are linear in V*B*W, the separable VA allocator is
 * quadratic in P*V (one P*V-input arbiter per output VC), arbiters
 * are quadratic in their client count, the crossbar quadratic in P.
 */

#ifndef NOCALERT_HW_MODULES_HPP
#define NOCALERT_HW_MODULES_HPP

#include <string>
#include <vector>

#include "hw/gates.hpp"
#include "noc/config.hpp"

namespace nocalert::hw {

/** Gate inventory of one named router module group. */
struct ModuleCost
{
    std::string name;
    GateCounts gates;
    bool controlLogic = false; ///< Part of the control plane (DMR scope).
};

/** Round-robin arbiter over @p clients requesters. */
GateCounts arbiterGates(unsigned clients);

/** One VC FIFO buffer: @p depth flits of @p width bits. */
GateCounts fifoGates(unsigned depth, unsigned width);

/** P x P crossbar of @p width-bit ports. */
GateCounts crossbarGates(unsigned ports, unsigned width);

/** One RC unit (coordinate comparison + direction encode). */
GateCounts rcUnitGates(int mesh_width, int mesh_height);

/** One VC status table entry (state machine registers + next-state). */
GateCounts vcStateGates(unsigned num_vcs, unsigned depth);

/** One output-VC tracker (free bit, owner, credit counter). */
GateCounts outVcTrackerGates(unsigned num_vcs, unsigned depth,
                             unsigned ports);

/**
 * Complete router inventory, split into named module groups.
 * The control-logic flag marks the DMR-CL duplication scope
 * (everything except buffer/crossbar datapath).
 */
std::vector<ModuleCost> routerModules(const noc::NetworkConfig &config);

/** Sum of all module gate counts. */
GateCounts routerTotal(const noc::NetworkConfig &config);

/** Sum of the control-logic modules only. */
GateCounts routerControlLogic(const noc::NetworkConfig &config);

} // namespace nocalert::hw

#endif // NOCALERT_HW_MODULES_HPP
