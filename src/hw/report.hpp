/**
 * @file
 * The hardware-evaluation report: area / power / timing of the
 * baseline router, NoCAlert's overhead, and the DMR-CL comparison
 * (paper Section 5.5, Figure 10).
 */

#ifndef NOCALERT_HW_REPORT_HPP
#define NOCALERT_HW_REPORT_HPP

#include "hw/checkcost.hpp"
#include "hw/gates.hpp"
#include "hw/modules.hpp"
#include "noc/config.hpp"

namespace nocalert::hw {

/** Area/power/timing summary for one router configuration. */
struct HwReport
{
    unsigned numVcs = 0;

    // ---- Area (um^2 at 65 nm) ----
    double routerArea = 0;
    double controlLogicArea = 0;
    double nocalertArea = 0;
    double dmrArea = 0;
    double nocalertAreaOverheadPct = 0;
    double dmrAreaOverheadPct = 0;

    // ---- Power (normalized units, 50% switching activity) ----
    double routerPower = 0;
    double nocalertPower = 0;
    double nocalertPowerOverheadPct = 0;

    // ---- Timing (ps) ----
    double baselineCriticalPath = 0;
    double nocalertCriticalPath = 0;
    double criticalPathImpactPct = 0;
};

/** Build the report for @p config using the typical 65 nm library. */
HwReport makeHwReport(const noc::NetworkConfig &config);

/**
 * Baseline critical-path estimate in ps: the slowest pipeline stage
 * (the global allocation stages dominate as V grows).
 */
double criticalPathPs(const noc::NetworkConfig &config);

} // namespace nocalert::hw

#endif // NOCALERT_HW_REPORT_HPP
