/**
 * @file
 * Gate inventories of the 32 NoCAlert checkers.
 *
 * The defining property (paper Section 4.2, Figure 4): a checker that
 * only tests whether an output is *illegal given the input* is far
 * cheaper than the unit producing the output — e.g. the
 * grant-without-request checker needs two gates per arbiter client
 * plus an OR tree (linear), while the arbiter itself grows
 * polynomially. Every inventory below is linear in the width of the
 * vector it monitors, and purely combinational (no flip-flops).
 */

#ifndef NOCALERT_HW_CHECKCOST_HPP
#define NOCALERT_HW_CHECKCOST_HPP

#include <vector>

#include "core/invariant.hpp"
#include "hw/gates.hpp"
#include "noc/config.hpp"

namespace nocalert::hw {

/** Gate inventory of all instances of checker @p id in one router. */
GateCounts checkerGates(core::InvariantId id,
                        const noc::NetworkConfig &config);

/** Sum over the applicable checkers for @p config's router. */
GateCounts nocalertTotal(const noc::NetworkConfig &config);

/**
 * Gate inventory of the DMR-CL alternative: full duplication of the
 * control logic plus output comparators (paper Figure 10's "most
 * complete fault detection solution possible, albeit very
 * expensive").
 */
GateCounts dmrControlLogic(const noc::NetworkConfig &config);

/** Per-checker cost rows (for the Table 1 catalog bench). */
struct CheckerCostRow
{
    core::InvariantId id;
    GateCounts gates;
};

/** Costs of every applicable checker. */
std::vector<CheckerCostRow> checkerCostTable(
    const noc::NetworkConfig &config);

} // namespace nocalert::hw

#endif // NOCALERT_HW_CHECKCOST_HPP
