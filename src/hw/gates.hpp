/**
 * @file
 * Gate-level cost primitives for the 65 nm hardware model.
 *
 * The paper's hardware evaluation synthesizes the router + NoCAlert
 * in Verilog with commercial 65 nm libraries (Section 5.5). We cannot
 * run Synopsys DC here, so src/hw re-derives the paper's *relative*
 * claims from first principles: every module is expressed as a gate
 * inventory, and area/power/timing are computed from per-gate
 * constants typical of 65 nm standard cells. The claims under test —
 * checkers are far cheaper than the modules they check, NoCAlert area
 * stays ~3% while DMR grows linearly with VC count, power overhead is
 * sub-1% because checkers are unclocked — depend only on these
 * ratios, not on absolute library numbers.
 */

#ifndef NOCALERT_HW_GATES_HPP
#define NOCALERT_HW_GATES_HPP

#include <string>

namespace nocalert::hw {

/** Inventory of standard cells (fractional counts allowed). */
struct GateCounts
{
    double inv = 0;  ///< Inverters.
    double and2 = 0; ///< 2-input AND/NAND.
    double or2 = 0;  ///< 2-input OR/NOR.
    double xor2 = 0; ///< 2-input XOR/XNOR.
    double mux2 = 0; ///< 2-input multiplexers.
    double dff = 0;  ///< D flip-flops.

    GateCounts &operator+=(const GateCounts &other);
    GateCounts operator+(const GateCounts &other) const;
    GateCounts operator*(double factor) const;

    /** Total combinational cells (everything but DFFs). */
    double combinational() const;

    /** Total cells. */
    double total() const { return combinational() + dff; }
};

/** 65 nm standard-cell library constants. */
struct GateLibrary
{
    // NAND2-equivalent areas (gate equivalents), typical 65 nm values.
    double invGe = 0.67;
    double and2Ge = 1.33;
    double or2Ge = 1.33;
    double xor2Ge = 2.67;
    double mux2Ge = 2.33;
    double dffGe = 4.67;

    /** Area of one gate equivalent in um^2 (65 nm: ~2.08 um^2). */
    double um2PerGe = 2.08;

    /** Dynamic energy per GE per transition, normalized units. */
    double dynPerGe = 1.0;

    /** Clock-tree + internal power of a DFF relative to a GE of
     *  combinational logic at 50% data activity (DFFs burn power on
     *  every clock edge regardless of data). */
    double dffClockFactor = 3.0;

    /** Leakage per GE, normalized units. */
    double leakPerGe = 0.05;

    /** Default library. */
    static const GateLibrary &typical65nm();

    /** Gate-equivalent count of an inventory. */
    double gateEquivalents(const GateCounts &counts) const;

    /** Area in um^2. */
    double areaUm2(const GateCounts &counts) const;

    /**
     * Power in normalized units at @p activity switching probability.
     * DFFs additionally pay the clock factor at every cycle.
     */
    double power(const GateCounts &counts, double activity = 0.5) const;
};

} // namespace nocalert::hw

#endif // NOCALERT_HW_GATES_HPP
