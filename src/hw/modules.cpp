#include "hw/modules.hpp"

#include <cmath>

#include "util/bits.hpp"

namespace nocalert::hw {

namespace {

double
log2ceil(unsigned n)
{
    return static_cast<double>(bitsFor(n < 2 ? 2 : n));
}

} // namespace

GateCounts
arbiterGates(unsigned clients)
{
    const auto n = static_cast<double>(clients);
    const double ptr_bits = log2ceil(clients);
    GateCounts gates;
    // Rotating-priority (round-robin) arbiter: thermometer mask from
    // the pointer (~2 gates/client), two fixed-priority chains
    // (~2 gates/client each with carry terms), grant select, pointer
    // update. The chain carry logic gives the quadratic-ish term the
    // paper contrasts with the checker's linear growth.
    gates.and2 = 4 * n + n * n / 6.0;
    gates.or2 = 3 * n + n * n / 6.0;
    gates.inv = n;
    gates.dff = ptr_bits;
    return gates;
}

GateCounts
fifoGates(unsigned depth, unsigned width)
{
    const auto b = static_cast<double>(depth);
    const auto w = static_cast<double>(width);
    const double ptr_bits = log2ceil(depth);
    GateCounts gates;
    gates.dff = b * w + 2 * ptr_bits + (ptr_bits + 1); // slots+ptrs+count
    gates.mux2 = w * (b - 1); // read mux tree
    gates.and2 = b + 6;       // write decode, pointer update
    gates.or2 = 4;
    gates.inv = 4;
    return gates;
}

GateCounts
crossbarGates(unsigned ports, unsigned width)
{
    const auto p = static_cast<double>(ports);
    const auto w = static_cast<double>(width);
    GateCounts gates;
    gates.mux2 = p * w * (p - 1); // per output: (P-1) mux2 per bit
    gates.and2 = p * p;           // select decode
    gates.inv = p * 3;
    return gates;
}

GateCounts
rcUnitGates(int mesh_width, int mesh_height)
{
    const double xbits = log2ceil(static_cast<unsigned>(mesh_width));
    const double ybits = log2ceil(static_cast<unsigned>(mesh_height));
    GateCounts gates;
    // Two coordinate comparators (equality + sign) and the direction
    // encoder of dimension-ordered routing.
    gates.xor2 = xbits + ybits;
    gates.and2 = xbits + ybits + 4;
    gates.or2 = 4;
    gates.inv = 3;
    return gates;
}

GateCounts
vcStateGates(unsigned num_vcs, unsigned depth)
{
    GateCounts gates;
    // State (2b), outPort (3b), outVc, one flit counter, flags.
    gates.dff = 2 + 3 + log2ceil(num_vcs) + log2ceil(depth + 1) + 2;
    gates.and2 = 12; // next-state logic
    gates.or2 = 6;
    gates.inv = 4;
    gates.mux2 = 2;
    return gates;
}

GateCounts
outVcTrackerGates(unsigned /*num_vcs*/, unsigned depth,
                  unsigned /*ports*/)
{
    GateCounts gates;
    // Free bit plus the credit counter; ownership is implicit in the
    // VA arbitration, not a stored field.
    gates.dff = 1 + log2ceil(depth + 1);
    gates.and2 = 6; // credit inc/dec, free set/clear
    gates.or2 = 3;
    gates.inv = 2;
    return gates;
}

std::vector<ModuleCost>
routerModules(const noc::NetworkConfig &config)
{
    const noc::RouterParams &params = config.router;
    const unsigned p = noc::kNumPorts;
    const unsigned v = params.numVcs;
    const unsigned b = params.bufferDepth;
    const unsigned w = params.flitWidthBits;
    const bool has_va = v > 1;

    std::vector<ModuleCost> modules;

    modules.push_back({"input buffers",
                       fifoGates(b, w) * static_cast<double>(p * v),
                       false});
    modules.push_back({"crossbar", crossbarGates(p, w), false});
    modules.push_back(
        {"rc units",
         rcUnitGates(config.width, config.height) * static_cast<double>(p),
         true});
    modules.push_back({"vc state tables",
                       vcStateGates(v, b) * static_cast<double>(p * v),
                       true});
    modules.push_back(
        {"output vc trackers",
         outVcTrackerGates(v, b, p) * static_cast<double>(p * v), true});

    if (has_va) {
        // VA1: one V-input selector per input VC; VA2: one (P*V)-input
        // arbiter per output VC.
        GateCounts va = arbiterGates(v) * static_cast<double>(p * v);
        va += arbiterGates(p * v) * static_cast<double>(p * v);
        modules.push_back({"va allocator", va, true});
    }

    // SA1: one V-input arbiter per input port; SA2: one P-input
    // arbiter per output port.
    GateCounts sa = arbiterGates(v) * static_cast<double>(p);
    sa += arbiterGates(p) * static_cast<double>(p);
    modules.push_back({"sa allocator", sa, true});

    // RC service arbiter per port + SA->ST schedule registers
    // (valid, VC select, encoded output port, outgoing VC id).
    GateCounts pipeline = arbiterGates(v) * static_cast<double>(p);
    GateCounts sched;
    sched.dff = (1 + 2 * log2ceil(v) + 3) * p;
    sched.and2 = 4 * p;
    sched.or2 = 2 * p;
    pipeline += sched;
    modules.push_back({"pipeline control", pipeline, true});

    return modules;
}

GateCounts
routerTotal(const noc::NetworkConfig &config)
{
    GateCounts total;
    for (const ModuleCost &module : routerModules(config))
        total += module.gates;
    return total;
}

GateCounts
routerControlLogic(const noc::NetworkConfig &config)
{
    GateCounts total;
    for (const ModuleCost &module : routerModules(config))
        if (module.controlLogic)
            total += module.gates;
    return total;
}

} // namespace nocalert::hw
