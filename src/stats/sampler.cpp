#include "stats/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"

namespace nocalert::stats {

std::string
StratifiedSampler::validate(const SamplerConfig &config)
{
    if (config.batchSize == 0)
        return "sampler batch size must be positive";
    if (!(config.rule.confidence > 0.0 &&
          config.rule.confidence < 1.0))
        return "confidence must lie in (0,1)";
    if (config.rareBoost < 1.0)
        return "rare-outcome boost must be >= 1";
    // The budget guard proper: a stopping rule that can never halt
    // (non-positive half-width target) is only runnable under a hard
    // draw budget, otherwise the campaign would sample forever.
    if (!config.rule.canHalt() && config.maxDraws == 0)
        return "stopping rule can never halt (targetHalfWidth <= 0) "
               "and no draw budget (maxDraws) bounds the campaign";
    return std::string();
}

StratifiedSampler::StratifiedSampler(SamplerConfig config,
                                     std::size_t strata_count)
    : config_(config), strata_(strata_count)
{
    const std::string error = validate(config_);
    NOCALERT_ASSERT(error.empty(), "invalid sampler config: ", error);
    NOCALERT_ASSERT(strata_count > 0, "sampler needs at least one stratum");
}

void
StratifiedSampler::refreshHalts()
{
    for (StratumCounts &stratum : strata_) {
        if (!stratum.halted &&
            config_.rule.satisfied(stratum.successes, stratum.draws))
            stratum.halted = true;
    }
}

bool
StratifiedSampler::done() const
{
    if (config_.maxDraws != 0 && planned_ >= config_.maxDraws)
        return true;
    for (const StratumCounts &stratum : strata_) {
        if (!stratum.halted)
            return false;
    }
    return true;
}

std::vector<std::size_t>
StratifiedSampler::planBatch()
{
    NOCALERT_ASSERT(outstanding_ == 0,
                    "planBatch before the previous batch was recorded");
    // Halting decisions happen only here, at the batch boundary, on
    // fully recorded aggregates — never mid-batch.
    refreshHalts();
    if (done())
        return {};

    std::uint64_t batch = config_.batchSize;
    if (config_.maxDraws != 0)
        batch = std::min<std::uint64_t>(
            batch, config_.maxDraws - planned_);

    // Allocation weight per open stratum: strata still below the
    // rule's minimum draws are filled first (weight 1 — the maximum a
    // half-width can be); afterwards weight = current half-width, so
    // budget flows toward uncertainty. Rare-outcome strata get the
    // splitting-style boost.
    std::vector<std::size_t> open;
    std::vector<double> weight;
    for (std::size_t i = 0; i < strata_.size(); ++i) {
        const StratumCounts &stratum = strata_[i];
        if (stratum.halted)
            continue;
        double w;
        if (stratum.draws < config_.rule.minDraws) {
            w = 1.0;
        } else {
            w = binomialInterval(config_.rule.method, stratum.successes,
                                 stratum.draws,
                                 config_.rule.confidence)
                    .halfWidth();
            // A width of exactly zero can only mean a degenerate
            // interval; keep the stratum faintly alive so the rule
            // (which refused to halt it) stays the sole authority.
            w = std::max(w, 1e-9);
        }
        if (config_.reallocate && stratum.rare > 0)
            w *= config_.rareBoost;
        open.push_back(i);
        weight.push_back(w);
    }
    NOCALERT_ASSERT(!open.empty(), "no open strata despite !done()");

    double total = 0.0;
    for (double w : weight)
        total += w;

    // Largest-remainder apportionment: floor the proportional quota,
    // then hand the leftover slots to the largest fractional parts
    // (ties broken by stratum index). Fully deterministic.
    std::vector<std::uint64_t> allocation(open.size(), 0);
    std::vector<double> remainder(open.size(), 0.0);
    std::uint64_t assigned = 0;
    for (std::size_t i = 0; i < open.size(); ++i) {
        const double quota =
            static_cast<double>(batch) * weight[i] / total;
        allocation[i] = static_cast<std::uint64_t>(quota);
        remainder[i] = quota - static_cast<double>(allocation[i]);
        assigned += allocation[i];
    }
    std::vector<std::size_t> order(open.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return remainder[a] > remainder[b];
                     });
    for (std::size_t i = 0; assigned < batch; ++i) {
        allocation[order[i % order.size()]] += 1;
        assigned += 1;
    }

    std::vector<std::size_t> draws;
    draws.reserve(batch);
    for (std::size_t i = 0; i < open.size(); ++i) {
        for (std::uint64_t d = 0; d < allocation[i]; ++d)
            draws.push_back(open[i]);
    }
    planned_ += draws.size();
    outstanding_ = draws.size();
    return draws;
}

void
StratifiedSampler::record(std::size_t stratum, bool success, bool rare)
{
    NOCALERT_ASSERT(stratum < strata_.size(), "stratum out of range");
    NOCALERT_ASSERT(outstanding_ > 0,
                    "record without a planned draw outstanding");
    outstanding_ -= 1;
    recorded_ += 1;
    StratumCounts &counts = strata_[stratum];
    counts.draws += 1;
    if (success)
        counts.successes += 1;
    if (rare)
        counts.rare += 1;
}

} // namespace nocalert::stats
