/**
 * @file
 * Sequential (adaptive) stopping for sampled campaigns.
 *
 * A stratum keeps drawing until the confidence interval on its
 * primary rate is tight enough: the rule is satisfied once the
 * interval's half-width drops to the target. Evaluated only at batch
 * boundaries, on aggregate counts, so the decision is a pure function
 * of the committed draws — identical for every worker count.
 *
 * The rule alone does not guarantee termination (a target of zero is
 * never reached); the sampler's budget guard rejects configurations
 * where neither the rule nor a draw budget bounds the campaign.
 */

#ifndef NOCALERT_STATS_STOPPING_HPP
#define NOCALERT_STATS_STOPPING_HPP

#include <cstdint>

#include "stats/binomial.hpp"

namespace nocalert::stats {

/** When a stratum has been sampled enough. */
struct StoppingRule
{
    /**
     * Halt once the interval half-width is <= this target. A value of
     * zero (or below) can never be satisfied: the stratum then runs
     * until the sampler's draw budget is exhausted (fixed-budget
     * sampling), and the budget guard requires such a budget to exist.
     */
    double targetHalfWidth = 0.05;

    /** Confidence level of the monitored interval (e.g. 0.95). */
    double confidence = 0.95;

    /** Interval construction the half-width is measured on. */
    IntervalMethod method = IntervalMethod::Wilson;

    /**
     * Never halt a stratum before this many draws: early extreme
     * counts (0/2 successes) produce deceptively tight Wilson
     * intervals, and a premature halt would freeze them.
     */
    std::uint64_t minDraws = 8;

    /** True iff the rule is capable of halting a stratum at all. */
    bool canHalt() const { return targetHalfWidth > 0.0; }

    /** True iff a stratum with these counts should stop drawing. */
    bool satisfied(std::uint64_t successes, std::uint64_t trials) const
    {
        if (trials < minDraws || !canHalt())
            return false;
        return binomialInterval(method, successes, trials, confidence)
                   .halfWidth() <= targetHalfWidth;
    }
};

} // namespace nocalert::stats

#endif // NOCALERT_STATS_STOPPING_HPP
