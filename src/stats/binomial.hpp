/**
 * @file
 * Binomial proportion estimation for sampled fault campaigns.
 *
 * A sampled campaign observes k successes (e.g. detections) in n
 * independent draws and must report not a bare rate but an interval
 * that quantifies how much the estimate can be trusted. Two standard
 * constructions are provided:
 *
 * - Wilson score interval: inverts the normal-approximation score
 *   test. Good average coverage near the nominal level, narrow, and
 *   well-behaved at the boundaries (never escapes [0, 1]).
 * - Clopper-Pearson interval: inverts the exact binomial test via the
 *   Beta quantile. Guaranteed coverage >= nominal for every true p
 *   (conservative), which is what the campaign's "zero false
 *   negatives" claim needs: its FN upper bound is a certified bound.
 *
 * Everything here is deterministic closed-form arithmetic (no RNG, no
 * libm functions with platform-dependent rounding beyond the usual
 * sqrt/log/exp), so serialized intervals are reproducible across runs
 * and machines of the same float environment.
 */

#ifndef NOCALERT_STATS_BINOMIAL_HPP
#define NOCALERT_STATS_BINOMIAL_HPP

#include <cstdint>
#include <optional>
#include <string_view>

namespace nocalert::stats {

/** A two-sided confidence interval on a proportion, clamped to [0,1]. */
struct Interval
{
    double lower = 0.0;
    double upper = 1.0;

    /** Half the interval width — the stopping rules' target metric. */
    double halfWidth() const { return 0.5 * (upper - lower); }

    /** True iff @p p lies inside the (closed) interval. */
    bool contains(double p) const { return lower <= p && p <= upper; }
};

/** Interval construction used by reports and stopping rules. */
enum class IntervalMethod : std::uint8_t {
    Wilson,         ///< Score interval (approximate, narrow).
    ClopperPearson, ///< Exact interval (conservative, certified).
};

/** Name of an interval method ("wilson" / "clopper-pearson"). */
const char *intervalMethodName(IntervalMethod method);

/** Inverse of intervalMethodName (nullopt for unknown names). */
std::optional<IntervalMethod> intervalMethodFromName(
    std::string_view name);

/**
 * Standard normal quantile Phi^-1(p) for p in (0, 1) (Acklam's
 * rational approximation, |relative error| < 1.15e-9 — far below the
 * interval widths it feeds). @pre 0 < p < 1.
 */
double normalQuantile(double p);

/**
 * Wilson score interval for @p successes out of @p trials at
 * @p confidence (e.g. 0.95). trials == 0 yields the vacuous [0, 1].
 * @pre successes <= trials, 0 < confidence < 1.
 */
Interval wilsonInterval(std::uint64_t successes, std::uint64_t trials,
                        double confidence);

/**
 * Clopper-Pearson (exact) interval, via the regularized incomplete
 * beta function inverted by bisection. trials == 0 yields [0, 1];
 * successes == 0 / == trials use the closed-form one-sided bounds.
 * @pre successes <= trials, 0 < confidence < 1.
 */
Interval clopperPearsonInterval(std::uint64_t successes,
                                std::uint64_t trials,
                                double confidence);

/** Dispatch on @p method. */
Interval binomialInterval(IntervalMethod method, std::uint64_t successes,
                          std::uint64_t trials, double confidence);

} // namespace nocalert::stats

#endif // NOCALERT_STATS_BINOMIAL_HPP
