#include "stats/binomial.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"

namespace nocalert::stats {

const char *
intervalMethodName(IntervalMethod method)
{
    switch (method) {
      case IntervalMethod::Wilson: return "wilson";
      case IntervalMethod::ClopperPearson: return "clopper-pearson";
    }
    return "?";
}

std::optional<IntervalMethod>
intervalMethodFromName(std::string_view name)
{
    if (name == "wilson")
        return IntervalMethod::Wilson;
    if (name == "clopper-pearson")
        return IntervalMethod::ClopperPearson;
    return std::nullopt;
}

double
normalQuantile(double p)
{
    NOCALERT_ASSERT(p > 0.0 && p < 1.0,
                    "normal quantile needs p in (0,1)");

    // Acklam's rational approximation in three regions, refined with
    // one Halley step against erfc for full double precision.
    static constexpr double a[] = {-3.969683028665376e+01,
                                   2.209460984245205e+02,
                                   -2.759285104469687e+02,
                                   1.383577518672690e+02,
                                   -3.066479806614716e+01,
                                   2.506628277459239e+00};
    static constexpr double b[] = {-5.447609879822406e+01,
                                   1.615858368580409e+02,
                                   -1.556989798598866e+02,
                                   6.680131188771972e+01,
                                   -1.328068155288572e+01};
    static constexpr double c[] = {-7.784894002430293e-03,
                                   -3.223964580411365e-01,
                                   -2.400758277161838e+00,
                                   -2.549732539343734e+00,
                                   4.374664141464968e+00,
                                   2.938163982698783e+00};
    static constexpr double d[] = {7.784695709041462e-03,
                                   3.224671290700398e-01,
                                   2.445134137142996e+00,
                                   3.754408661907416e+00};
    static constexpr double p_low = 0.02425;

    double x;
    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                 q +
             c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - p_low) {
        const double q = p - 0.5;
        const double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) *
                 r +
             a[5]) *
            q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) *
                 r +
             1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                  q +
              c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }

    // One Halley refinement: e = Phi(x) - p via erfc.
    const double e =
        0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
    const double u =
        e * std::sqrt(2.0 * 3.14159265358979323846) *
        std::exp(x * x / 2.0);
    x = x - u / (1.0 + x * u / 2.0);
    return x;
}

Interval
wilsonInterval(std::uint64_t successes, std::uint64_t trials,
               double confidence)
{
    NOCALERT_ASSERT(successes <= trials, "successes exceed trials");
    NOCALERT_ASSERT(confidence > 0.0 && confidence < 1.0,
                    "confidence must lie in (0,1)");
    if (trials == 0)
        return Interval{0.0, 1.0};

    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(successes) / n;
    const double z = normalQuantile(0.5 + confidence / 2.0);
    const double z2 = z * z;

    const double denom = 1.0 + z2 / n;
    const double center = (p + z2 / (2.0 * n)) / denom;
    const double half =
        z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;

    Interval interval;
    interval.lower = std::clamp(center - half, 0.0, 1.0);
    interval.upper = std::clamp(center + half, 0.0, 1.0);
    return interval;
}

namespace {

/** Lentz continued fraction for the incomplete beta; valid (fast
 *  convergence) only for x < (a+1)/(a+b+2). */
double
betaContinuedFraction(double a, double b, double x)
{
    constexpr double tiny = 1e-300;
    constexpr double eps = 1e-15;
    double c = 1.0;
    double d = 1.0 - (a + b) * x / (a + 1.0);
    if (std::fabs(d) < tiny)
        d = tiny;
    d = 1.0 / d;
    double f = d;

    for (int m = 1; m <= 300; ++m) {
        const double dm = static_cast<double>(m);
        // Even step.
        double numerator = dm * (b - dm) * x /
                           ((a + 2.0 * dm - 1.0) * (a + 2.0 * dm));
        d = 1.0 + numerator * d;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = 1.0 + numerator / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        f *= d * c;
        // Odd step.
        numerator = -(a + dm) * (a + b + dm) * x /
                    ((a + 2.0 * dm) * (a + 2.0 * dm + 1.0));
        d = 1.0 + numerator * d;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = 1.0 + numerator / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        const double delta = d * c;
        f *= delta;
        if (std::fabs(delta - 1.0) < eps)
            break;
    }
    return f;
}

/**
 * Regularized incomplete beta function I_x(a, b) via the Lentz
 * continued fraction (Numerical Recipes construction) — accurate to
 * ~1e-14 over the (a, b >= 1/2) range the binomial inversion uses.
 * The symmetry I_x(a,b) = 1 - I_{1-x}(b,a) selects whichever side
 * converges fast; evaluating it inline (never by self-recursion)
 * avoids the threshold case x == (a+1)/(a+b+2) where both sides would
 * bounce the call back and forth forever.
 */
double
incompleteBeta(double a, double b, double x)
{
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;

    // The same log-front factor serves both symmetry branches: it is
    // invariant under (a,b,x) -> (b,a,1-x).
    const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                            std::lgamma(b) + a * std::log(x) +
                            b * std::log(1.0 - x);

    if (x < (a + 1.0) / (a + b + 2.0))
        return std::exp(ln_front) *
               betaContinuedFraction(a, b, x) / a;
    return 1.0 - std::exp(ln_front) *
                     betaContinuedFraction(b, a, 1.0 - x) / b;
}

/**
 * Beta distribution quantile: the x with I_x(a, b) = p, found by
 * bisection (monotone, so 200 halvings pin x to one ulp — slow but
 * branch-free deterministic, and intervals are computed per stratum
 * per batch, never per cycle).
 */
double
betaQuantile(double p, double a, double b)
{
    double lo = 0.0;
    double hi = 1.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (mid == lo || mid == hi)
            break;
        if (incompleteBeta(a, b, mid) < p)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace

Interval
clopperPearsonInterval(std::uint64_t successes, std::uint64_t trials,
                       double confidence)
{
    NOCALERT_ASSERT(successes <= trials, "successes exceed trials");
    NOCALERT_ASSERT(confidence > 0.0 && confidence < 1.0,
                    "confidence must lie in (0,1)");
    if (trials == 0)
        return Interval{0.0, 1.0};

    const double alpha = 1.0 - confidence;
    const double n = static_cast<double>(trials);
    const double k = static_cast<double>(successes);

    Interval interval;
    if (successes == 0) {
        // One-sided closed forms: P(X = 0) = (1-p)^n = alpha/2.
        interval.lower = 0.0;
        interval.upper = 1.0 - std::pow(alpha / 2.0, 1.0 / n);
    } else if (successes == trials) {
        interval.lower = std::pow(alpha / 2.0, 1.0 / n);
        interval.upper = 1.0;
    } else {
        interval.lower = betaQuantile(alpha / 2.0, k, n - k + 1.0);
        interval.upper =
            betaQuantile(1.0 - alpha / 2.0, k + 1.0, n - k);
    }
    interval.lower = std::clamp(interval.lower, 0.0, 1.0);
    interval.upper = std::clamp(interval.upper, 0.0, 1.0);
    return interval;
}

Interval
binomialInterval(IntervalMethod method, std::uint64_t successes,
                 std::uint64_t trials, double confidence)
{
    switch (method) {
      case IntervalMethod::Wilson:
        return wilsonInterval(successes, trials, confidence);
      case IntervalMethod::ClopperPearson:
        return clopperPearsonInterval(successes, trials, confidence);
    }
    return Interval{};
}

} // namespace nocalert::stats
