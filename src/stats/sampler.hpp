/**
 * @file
 * Stratified sequential sampler — the planning core of sampled fault
 * campaigns.
 *
 * The sampler owns no simulation and no randomness: it decides *how
 * many* draws each stratum receives, batch by batch, from the
 * aggregate outcomes recorded so far. A batch is planned entirely
 * before any of its outcomes are observed, so batch composition is a
 * pure function of the completed-batch history; combined with
 * deterministic per-draw materialization (counter-mode RNG keyed by
 * the global draw index) this makes the whole sampled run stream a
 * pure function of the campaign configuration — the determinism
 * argument of DESIGN.md §12.
 *
 * Allocation is proportional to each open stratum's current interval
 * half-width (largest-remainder rounding, ties by stratum index), so
 * budget flows toward uncertainty; strata that have exhibited a rare
 * outcome (e.g. a false negative) get a splitting-style boost so the
 * tail is chased harder than its point rate alone would justify.
 */

#ifndef NOCALERT_STATS_SAMPLER_HPP
#define NOCALERT_STATS_SAMPLER_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/stopping.hpp"

namespace nocalert::stats {

/** Sampler knobs; all are campaign identity. */
struct SamplerConfig
{
    StoppingRule rule;

    /**
     * Hard cap on total draws across all strata (0 = unbounded; the
     * budget guard then requires the stopping rule to be able to
     * halt). Honored exactly: the final batch is truncated so the
     * total never exceeds it.
     */
    std::uint64_t maxDraws = 0;

    /** Draws planned per batch before outcomes are consulted. */
    unsigned batchSize = 64;

    /** Boost budget toward strata that saw a rare outcome. */
    bool reallocate = true;

    /** Allocation weight multiplier for rare-outcome strata. */
    double rareBoost = 4.0;
};

/** Aggregate state of one stratum. */
struct StratumCounts
{
    std::uint64_t draws = 0;     ///< Outcomes recorded.
    std::uint64_t successes = 0; ///< Primary-metric successes.
    std::uint64_t rare = 0;      ///< Rare-outcome observations.
    bool halted = false;         ///< Stopping rule satisfied.
};

/** Plans batches of draws over strata; see file comment. */
class StratifiedSampler
{
  public:
    /**
     * Budget guard: the error message (empty = valid) explaining why
     * this configuration cannot be run. Rejects configurations that
     * can never terminate — a stopping rule unable to halt combined
     * with an unbounded draw budget — as well as degenerate knobs
     * (zero batch size, confidence outside (0,1)).
     */
    static std::string validate(const SamplerConfig &config);

    /**
     * @p strata_count strata, indexed 0..count-1. @pre validate()
     * returned empty (the constructor aborts otherwise) and
     * strata_count > 0.
     */
    StratifiedSampler(SamplerConfig config, std::size_t strata_count);

    /**
     * Plan the next batch: the stratum index of each draw, in
     * deterministic order (ascending stratum). Empty once the sampler
     * is done — every stratum halted or the draw budget exhausted.
     * @pre every draw of the previous batch has been record()ed.
     */
    std::vector<std::size_t> planBatch();

    /** Record the outcome of one planned draw of the current batch. */
    void record(std::size_t stratum, bool success, bool rare);

    /**
     * True iff planBatch() has (or would have) returned empty: all
     * strata halted, or the budget is exhausted. Draws planned but not
     * yet recorded do not count as completion.
     */
    bool done() const;

    /** Total draws planned so far (recorded or in flight). */
    std::uint64_t drawsPlanned() const { return planned_; }

    /** Total outcomes recorded so far. */
    std::uint64_t drawsRecorded() const { return recorded_; }

    /** Per-stratum aggregates. */
    const std::vector<StratumCounts> &strata() const { return strata_; }

    const SamplerConfig &config() const { return config_; }

  private:
    void refreshHalts();

    SamplerConfig config_;
    std::vector<StratumCounts> strata_;
    std::uint64_t planned_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t outstanding_ = 0; ///< Planned, not yet recorded.
};

} // namespace nocalert::stats

#endif // NOCALERT_STATS_SAMPLER_HPP
