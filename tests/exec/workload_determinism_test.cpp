/**
 * @file
 * The workload-engine extension of the determinism battery: campaigns
 * driven by a phase program (with bursts) or a trace replay must
 * serialize to byte-identical artifacts for every --jobs value and on
 * both kernels — the workload backends ride the same warm-snapshot
 * methodology as the synthetic generator, so nothing about phases,
 * bursts, or replay cursors may depend on worker scheduling.
 */

#include "fault/campaign.hpp"
#include "fault/serialize.hpp"
#include "traffic/workload.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

namespace nocalert::fault {
namespace {

namespace fs = std::filesystem;

using traffic::WorkloadKind;
using traffic::WorkloadSpec;

CampaignConfig
baseCampaign()
{
    CampaignConfig config;
    config.network.width = 4;
    config.network.height = 4;
    config.warmup = 200;
    config.observeWindow = 1000;
    config.drainLimit = 4000;
    config.maxSites = 8;
    config.forever.epochLength = 400;
    return config;
}

WorkloadSpec
phasedWorkload(bool burst)
{
    WorkloadSpec workload;
    workload.kind = WorkloadKind::Phased;
    workload.phased.seed = 13;
    workload.phased.repeat = true;
    workload.phased.segments = {
        {.begin = 0,
         .end = 300,
         .pattern = noc::TrafficPattern::UniformRandom,
         .rate = 0.06,
         .classWeights = {},
         .hotspot = {}},
        {.begin = 300,
         .end = 600,
         .pattern = noc::TrafficPattern::Transpose,
         .rate = 0.1,
         .classWeights = {},
         .hotspot = {}},
    };
    if (burst) {
        workload.phased.burst.enabled = true;
        workload.phased.burst.period = 64;
        workload.phased.burst.onProbability = 0.5;
        workload.phased.burst.onMultiplier = 2.0;
        workload.phased.burst.offMultiplier = 0.25;
        workload.phased.burst.layers = 2;
    }
    return workload;
}

std::string
artifactAtJobs(CampaignConfig config, unsigned jobs)
{
    config.jobs = jobs;
    FaultCampaign campaign(config);
    const CampaignResult result = campaign.run();
    EXPECT_TRUE(result.complete());
    EXPECT_FALSE(result.runs.empty());
    return writeCampaignJson(result);
}

/** Byte-diff the artifact across jobs counts and both kernels. */
void
expectByteIdenticalEverywhere(const CampaignConfig &config)
{
    for (const bool dense : {false, true}) {
        SCOPED_TRACE(dense ? "dense" : "fast");
        CampaignConfig kernel_config = config;
        kernel_config.denseKernel = dense;
        const std::string serial = artifactAtJobs(kernel_config, 1);
        ASSERT_FALSE(serial.empty());
        EXPECT_EQ(artifactAtJobs(kernel_config, 4), serial);
    }

    // And the two kernels must agree with *each other*: identity
    // excludes the kernel choice, so their identity blocks — and every
    // per-run record — must match field for field.
    CampaignConfig fast = config;
    fast.denseKernel = false;
    fast.jobs = 1;
    CampaignConfig dense = config;
    dense.denseKernel = true;
    dense.jobs = 1;
    EXPECT_EQ(campaignIdentityJson(fast).dump(),
              campaignIdentityJson(dense).dump());
    const CampaignResult fast_result = FaultCampaign(fast).run();
    const CampaignResult dense_result = FaultCampaign(dense).run();
    ASSERT_EQ(fast_result.runs.size(), dense_result.runs.size());
    for (std::size_t i = 0; i < fast_result.runs.size(); ++i) {
        EXPECT_EQ(toJson(fast_result.runs[i]).dump(),
                  toJson(dense_result.runs[i]).dump())
            << "run " << i;
    }
}

TEST(WorkloadDeterminism, PhasedCampaignIsByteIdenticalAcrossJobs)
{
    CampaignConfig config = baseCampaign();
    config.workload = phasedWorkload(false);
    expectByteIdenticalEverywhere(config);
}

TEST(WorkloadDeterminism, BurstyCampaignIsByteIdenticalAcrossJobs)
{
    CampaignConfig config = baseCampaign();
    config.workload = phasedWorkload(true);
    expectByteIdenticalEverywhere(config);
}

TEST(WorkloadDeterminism, TraceCampaignIsByteIdenticalAcrossJobs)
{
    const fs::path file =
        fs::temp_directory_path() /
        ("nocalert_wl_determinism_" + std::to_string(::getpid()) +
         ".trace");

    CampaignConfig config = baseCampaign();
    // Record the warmup + observation span of the phased program so
    // the replayed campaign sees real traffic in its window.
    std::string error;
    ASSERT_TRUE(traffic::recordTrace(
        config.network, phasedWorkload(true),
        config.warmup + config.observeWindow, file.string(), &error))
        << error;

    config.workload.kind = WorkloadKind::Trace;
    config.workload.trace.path = file.string();
    ASSERT_TRUE(traffic::stampTraceSpec(config.workload.trace, &error))
        << error;

    expectByteIdenticalEverywhere(config);

    std::error_code ec;
    fs::remove(file, ec);
}

TEST(WorkloadDeterminism, RecoveryCampaignIsByteIdenticalAcrossJobs)
{
    // The full recovery stack (retransmission + quarantine-aware
    // routing) under a bursty phase program: same byte-identity
    // contract as plain detection campaigns.
    CampaignConfig config = baseCampaign();
    config.workload = phasedWorkload(true);
    config.kind = FaultKind::Permanent;
    config.recovery = true;
    expectByteIdenticalEverywhere(config);
}

TEST(WorkloadDeterminism, PhaseStratifiedSamplingIsByteIdenticalAcrossJobs)
{
    CampaignConfig config = baseCampaign();
    config.workload = phasedWorkload(false);
    config.sampling.enabled = true;
    config.sampling.ciHalfWidth = 0;
    config.sampling.maxRuns = 24;
    config.sampling.batchSize = 8;
    config.sampling.cycleJitter = 400;
    config.sampling.stratify = Stratify::Phase;
    config.sampling.samplerSeed = 5;

    const std::string serial = artifactAtJobs(config, 1);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(artifactAtJobs(config, 4), serial);
}

TEST(WorkloadDeterminism, DistinctWorkloadsProduceDistinctIdentity)
{
    // The serve cache keys on campaignArtifactHash; every workload
    // identity field must reach it. (This is the "cache keys pick up
    // the new fields for free" proof.)
    CampaignConfig synthetic = baseCampaign();
    CampaignConfig phased = baseCampaign();
    phased.workload = phasedWorkload(false);
    CampaignConfig bursty = baseCampaign();
    bursty.workload = phasedWorkload(true);

    const std::string hash_synthetic = campaignArtifactHash(synthetic);
    const std::string hash_phased = campaignArtifactHash(phased);
    const std::string hash_bursty = campaignArtifactHash(bursty);
    EXPECT_NE(hash_synthetic, hash_phased);
    EXPECT_NE(hash_synthetic, hash_bursty);
    EXPECT_NE(hash_phased, hash_bursty);

    // Segment edits change identity.
    CampaignConfig edited = phased;
    edited.workload.phased.segments[1].rate = 0.11;
    EXPECT_NE(campaignArtifactHash(edited), hash_phased);

    // A trace workload's identity pins the digest: same path, new
    // digest -> new identity.
    CampaignConfig trace_a = baseCampaign();
    trace_a.workload.kind = WorkloadKind::Trace;
    trace_a.workload.trace.path = "campaign.trace";
    trace_a.workload.trace.digest = 0x11111111;
    CampaignConfig trace_b = trace_a;
    trace_b.workload.trace.digest = 0x22222222;
    EXPECT_NE(campaignArtifactHash(trace_a),
              campaignArtifactHash(trace_b));
    EXPECT_NE(campaignArtifactHash(trace_a), hash_synthetic);
}

} // namespace
} // namespace nocalert::fault
