/**
 * FairScheduler: round-robin batch-quantum scheduling with per-job
 * cooperative cancellation — the multiplexing layer under the campaign
 * service. The tests drive runOne() directly for deterministic
 * interleavings and use serviceLoop() on a real thread for the
 * lifecycle paths.
 */

#include "exec/fairsched.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace nocalert::exec {
namespace {

TEST(FairScheduler, RunOneIsFalseWhenIdle)
{
    FairScheduler scheduler;
    EXPECT_FALSE(scheduler.runOne());
    EXPECT_EQ(scheduler.liveJobs(), 0u);
}

TEST(FairScheduler, SingleJobRunsQuantaUntilFinished)
{
    FairScheduler scheduler;
    int quanta = 0;
    scheduler.add([&quanta](CancelToken &) {
        ++quanta;
        return quanta < 3 ? QuantumResult::MoreWork
                          : QuantumResult::Finished;
    });
    EXPECT_EQ(scheduler.liveJobs(), 1u);
    while (scheduler.runOne()) {
    }
    EXPECT_EQ(quanta, 3);
    EXPECT_EQ(scheduler.liveJobs(), 0u);
}

TEST(FairScheduler, TurnsInterleaveRoundRobin)
{
    FairScheduler scheduler;
    std::string order;
    for (char name : {'a', 'b', 'c'}) {
        scheduler.add([&order, name](CancelToken &) {
            order.push_back(name);
            return order.size() < 9 ? QuantumResult::MoreWork
                                    : QuantumResult::Finished;
        });
    }
    // Every job gets every third turn regardless of arrival: a small
    // campaign is never starved behind a large one.
    for (int turn = 0; turn < 9; ++turn)
        EXPECT_TRUE(scheduler.runOne());
    EXPECT_EQ(order, "abcabcabc");
}

TEST(FairScheduler, RetiredJobsLeaveTheRing)
{
    FairScheduler scheduler;
    std::string order;
    scheduler.add([&order](CancelToken &) {
        order.push_back('a');
        return QuantumResult::Finished; // One quantum and done.
    });
    scheduler.add([&order](CancelToken &) {
        order.push_back('b');
        return order.size() < 4 ? QuantumResult::MoreWork
                                : QuantumResult::Finished;
    });
    while (scheduler.runOne()) {
    }
    EXPECT_EQ(order, "abbb");
}

TEST(FairScheduler, CancelFiresTheJobsToken)
{
    FairScheduler scheduler;
    bool observed_cancel = false;
    const FairScheduler::JobId job =
        scheduler.add([&observed_cancel](CancelToken &cancel) {
            if (cancel.cancelled()) {
                observed_cancel = true;
                return QuantumResult::Finished;
            }
            return QuantumResult::MoreWork;
        });

    EXPECT_TRUE(scheduler.runOne()); // Normal quantum.
    EXPECT_FALSE(observed_cancel);
    EXPECT_TRUE(scheduler.cancel(job));
    EXPECT_TRUE(scheduler.runOne()); // The job observes and retires.
    EXPECT_TRUE(observed_cancel);
    EXPECT_EQ(scheduler.liveJobs(), 0u);
}

TEST(FairScheduler, CancelUnknownOrRetiredJobIsFalse)
{
    FairScheduler scheduler;
    EXPECT_FALSE(scheduler.cancel(999));
    const FairScheduler::JobId job = scheduler.add(
        [](CancelToken &) { return QuantumResult::Finished; });
    EXPECT_TRUE(scheduler.runOne());
    EXPECT_FALSE(scheduler.cancel(job)); // Already retired.
}

TEST(FairScheduler, CancelAllRetiresEveryJobOnItsNextTurn)
{
    FairScheduler scheduler;
    int retired = 0;
    for (int i = 0; i < 3; ++i) {
        scheduler.add([&retired](CancelToken &cancel) {
            if (cancel.cancelled()) {
                ++retired;
                return QuantumResult::Finished;
            }
            return QuantumResult::MoreWork;
        });
    }
    scheduler.cancelAll();
    while (scheduler.runOne()) {
    }
    EXPECT_EQ(retired, 3);
    EXPECT_EQ(scheduler.liveJobs(), 0u);
}

TEST(FairScheduler, JobsAddedDuringAQuantumGetTurns)
{
    FairScheduler scheduler;
    std::string order;
    scheduler.add([&scheduler, &order](CancelToken &) {
        order.push_back('a');
        scheduler.add([&order](CancelToken &) {
            order.push_back('b');
            return QuantumResult::Finished;
        });
        return QuantumResult::Finished;
    });
    while (scheduler.runOne()) {
    }
    EXPECT_EQ(order, "ab");
}

TEST(FairScheduler, ServiceLoopDrainsJobsAndStops)
{
    FairScheduler scheduler;
    std::thread service([&scheduler] { scheduler.serviceLoop(); });

    std::atomic<int> done{0};
    for (int i = 0; i < 4; ++i) {
        scheduler.add([&done, turns = 0](CancelToken &) mutable {
            if (++turns < 3)
                return QuantumResult::MoreWork;
            done.fetch_add(1);
            return QuantumResult::Finished;
        });
    }
    scheduler.waitIdle();
    EXPECT_EQ(done.load(), 4);

    scheduler.stop();
    service.join();
}

TEST(FairScheduler, ShutdownSequenceCancelsDrainsAndStops)
{
    FairScheduler scheduler;
    std::thread service([&scheduler] { scheduler.serviceLoop(); });

    std::atomic<int> cancelled{0};
    for (int i = 0; i < 3; ++i) {
        scheduler.add([&cancelled](CancelToken &cancel) {
            if (cancel.cancelled()) {
                cancelled.fetch_add(1);
                return QuantumResult::Finished;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            return QuantumResult::MoreWork;
        });
    }
    // The documented shutdown order: cancel, drain, stop.
    scheduler.cancelAll();
    scheduler.waitIdle();
    scheduler.stop();
    service.join();
    EXPECT_EQ(cancelled.load(), 3);
    EXPECT_EQ(scheduler.liveJobs(), 0u);
}

} // namespace
} // namespace nocalert::exec
