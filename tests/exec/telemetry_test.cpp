#include "exec/telemetry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace nocalert::exec {
namespace {

TEST(TelemetryHub, CountersAccumulatePerLabel)
{
    TelemetryHub hub(10, 2, {"tp", "fp", "tn"});
    hub.recordRun(0);
    hub.recordRun(2);
    hub.recordRun(2);

    const TelemetrySnapshot snap = hub.snapshot();
    EXPECT_EQ(snap.runsPlanned, 10u);
    EXPECT_EQ(snap.runsCompleted, 3u);
    ASSERT_EQ(snap.counterLabels,
              (std::vector<std::string>{"tp", "fp", "tn"}));
    EXPECT_EQ(snap.counters, (std::vector<std::uint64_t>{1, 0, 2}));
}

TEST(TelemetryHub, EtaUnknownBeforeFirstRun)
{
    TelemetryHub hub(10, 1, {"done"});
    const TelemetrySnapshot snap = hub.snapshot();
    EXPECT_EQ(snap.runsCompleted, 0u);
    EXPECT_LT(snap.etaSeconds, 0.0);
}

TEST(TelemetryHub, EtaNonNegativeOnceRateIsKnown)
{
    TelemetryHub hub(10, 1, {"done"});
    hub.recordRun(0);
    const TelemetrySnapshot snap = hub.snapshot();
    EXPECT_GT(snap.runsPerSecond, 0.0);
    EXPECT_GE(snap.etaSeconds, 0.0);
}

TEST(TelemetryHub, UtilizationIsClampedToUnitInterval)
{
    TelemetryHub hub(1, 2, {"done"});
    // Report far more busy time than could have elapsed; the snapshot
    // must clamp rather than report >100%.
    hub.recordBusy(0, 3'600'000'000'000ULL); // one hour
    const TelemetrySnapshot snap = hub.snapshot();
    ASSERT_EQ(snap.workerUtilization.size(), 2u);
    EXPECT_EQ(snap.workerUtilization[0], 1.0);
    EXPECT_GE(snap.workerUtilization[1], 0.0);
    EXPECT_LE(snap.workerUtilization[1], 1.0);
}

TEST(TelemetryHub, ProgressLineRendersHandBuiltSnapshot)
{
    TelemetrySnapshot snap;
    snap.runsPlanned = 10;
    snap.runsCompleted = 5;
    snap.elapsedSeconds = 2.0;
    snap.runsPerSecond = 2.5;
    snap.etaSeconds = 2.0;
    snap.counterLabels = {"tp", "fp", "tn"};
    snap.counters = {4, 0, 1};
    snap.workerUtilization = {0.9, 0.7};

    const std::string line = TelemetryHub::progressLine(snap);
    EXPECT_NE(line.find("5/10"), std::string::npos) << line;
    EXPECT_NE(line.find("runs/s"), std::string::npos) << line;
    EXPECT_NE(line.find("eta 2s"), std::string::npos) << line;
    EXPECT_NE(line.find("util  80%"), std::string::npos) << line;
    EXPECT_NE(line.find("tp=4"), std::string::npos) << line;
    EXPECT_NE(line.find("tn=1"), std::string::npos) << line;
    // Zero counters are omitted to keep the line short.
    EXPECT_EQ(line.find("fp="), std::string::npos) << line;
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;
}

TEST(TelemetryHub, ProgressLineOmitsUnknownEta)
{
    TelemetrySnapshot snap;
    snap.runsPlanned = 10;
    snap.etaSeconds = -1.0;
    const std::string line = TelemetryHub::progressLine(snap);
    EXPECT_EQ(line.find("eta"), std::string::npos) << line;
    EXPECT_NE(line.find("0/10"), std::string::npos) << line;
}

// ---- deltaBetween: the windowed stream unit must never leak a
// ---- non-finite double onto the wire, whatever the snapshot pair.

void
expectAllFinite(const TelemetryDelta &delta)
{
    EXPECT_TRUE(std::isfinite(delta.windowSeconds));
    EXPECT_TRUE(std::isfinite(delta.runsPerSecond));
    EXPECT_TRUE(std::isfinite(delta.etaSeconds));
}

TelemetrySnapshot
snapAt(std::size_t completed, std::size_t planned, double elapsed,
       double rate = 0.0)
{
    TelemetrySnapshot snap;
    snap.runsCompleted = completed;
    snap.runsPlanned = planned;
    snap.elapsedSeconds = elapsed;
    snap.runsPerSecond = rate;
    return snap;
}

TEST(TelemetryDelta, NormalWindowComputesWindowedRate)
{
    const TelemetryDelta delta =
        deltaBetween(snapAt(10, 100, 5.0), snapAt(30, 100, 10.0));
    EXPECT_EQ(delta.runsCompleted, 30u);
    EXPECT_EQ(delta.deltaRuns, 20u);
    EXPECT_DOUBLE_EQ(delta.windowSeconds, 5.0);
    EXPECT_DOUBLE_EQ(delta.runsPerSecond, 4.0);
    EXPECT_DOUBLE_EQ(delta.etaSeconds, 70.0 / 4.0);
    expectAllFinite(delta);
}

TEST(TelemetryDelta, ZeroElapsedWindowDoesNotDivide)
{
    // Two snapshots inside one clock tick: runs advanced, time did
    // not. A naive deltaRuns/window would emit inf.
    const TelemetryDelta delta =
        deltaBetween(snapAt(10, 100, 5.0), snapAt(30, 100, 5.0, 6.0));
    EXPECT_EQ(delta.deltaRuns, 20u);
    EXPECT_DOUBLE_EQ(delta.windowSeconds, 0.0);
    EXPECT_DOUBLE_EQ(delta.runsPerSecond, 0.0);
    // Eta falls back to the cumulative rate instead of going infinite.
    EXPECT_DOUBLE_EQ(delta.etaSeconds, 70.0 / 6.0);
    expectAllFinite(delta);
}

TEST(TelemetryDelta, ZeroCompletedWindowIsAnIdlePoll)
{
    const TelemetryDelta delta =
        deltaBetween(snapAt(10, 100, 5.0), snapAt(10, 100, 8.0, 1.25));
    EXPECT_EQ(delta.deltaRuns, 0u);
    EXPECT_DOUBLE_EQ(delta.runsPerSecond, 0.0);
    EXPECT_DOUBLE_EQ(delta.etaSeconds, 90.0 / 1.25);
    expectAllFinite(delta);
}

TEST(TelemetryDelta, NoRateAnywhereMeansUnknownEta)
{
    const TelemetryDelta delta =
        deltaBetween(snapAt(0, 100, 0.0), snapAt(0, 100, 0.0));
    EXPECT_DOUBLE_EQ(delta.runsPerSecond, 0.0);
    EXPECT_DOUBLE_EQ(delta.etaSeconds, -1.0);
    expectAllFinite(delta);
}

TEST(TelemetryDelta, FinishedCampaignReportsZeroEta)
{
    const TelemetryDelta delta =
        deltaBetween(snapAt(90, 100, 5.0), snapAt(100, 100, 6.0));
    EXPECT_DOUBLE_EQ(delta.etaSeconds, 0.0);
    expectAllFinite(delta);
}

TEST(TelemetryDelta, BackwardsCountersClampToZero)
{
    // A subscriber may pair snapshots across a campaign restart; the
    // delta clamps rather than wrapping a size_t around.
    const TelemetryDelta delta =
        deltaBetween(snapAt(50, 100, 9.0), snapAt(10, 100, 3.0));
    EXPECT_EQ(delta.deltaRuns, 0u);
    EXPECT_DOUBLE_EQ(delta.windowSeconds, 0.0);
    EXPECT_DOUBLE_EQ(delta.runsPerSecond, 0.0);
    expectAllFinite(delta);
}

TEST(TelemetryDelta, NonFiniteInputsAreContained)
{
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const TelemetrySnapshot pairs[][2] = {
        {snapAt(10, 100, nan), snapAt(20, 100, 5.0, inf)},
        {snapAt(10, 100, 5.0), snapAt(20, 100, inf, nan)},
        {snapAt(10, 100, -inf), snapAt(20, 100, inf, inf)},
        {snapAt(0, 100, 0.0), snapAt(1, 100, 0.0, nan)},
    };
    for (const auto &pair : pairs) {
        const TelemetryDelta delta = deltaBetween(pair[0], pair[1]);
        expectAllFinite(delta);
        EXPECT_GE(delta.windowSeconds, 0.0);
        EXPECT_GE(delta.runsPerSecond, 0.0);
        EXPECT_GE(delta.etaSeconds, -1.0);
    }
}

TEST(TelemetryDelta, LiveHubSnapshotsProduceFiniteDeltas)
{
    TelemetryHub hub(8, 1, {"done"});
    const TelemetrySnapshot before = hub.snapshot();
    hub.recordRun(0);
    hub.recordRun(0);
    const TelemetrySnapshot after = hub.snapshot();
    const TelemetryDelta delta = deltaBetween(before, after);
    EXPECT_EQ(delta.deltaRuns, 2u);
    expectAllFinite(delta);
    // And the degenerate immediate re-poll (possibly zero-width
    // window) stays finite too.
    expectAllFinite(deltaBetween(after, hub.snapshot()));
}

} // namespace
} // namespace nocalert::exec
