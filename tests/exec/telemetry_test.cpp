#include "exec/telemetry.hpp"

#include <gtest/gtest.h>

#include <string>

namespace nocalert::exec {
namespace {

TEST(TelemetryHub, CountersAccumulatePerLabel)
{
    TelemetryHub hub(10, 2, {"tp", "fp", "tn"});
    hub.recordRun(0);
    hub.recordRun(2);
    hub.recordRun(2);

    const TelemetrySnapshot snap = hub.snapshot();
    EXPECT_EQ(snap.runsPlanned, 10u);
    EXPECT_EQ(snap.runsCompleted, 3u);
    ASSERT_EQ(snap.counterLabels,
              (std::vector<std::string>{"tp", "fp", "tn"}));
    EXPECT_EQ(snap.counters, (std::vector<std::uint64_t>{1, 0, 2}));
}

TEST(TelemetryHub, EtaUnknownBeforeFirstRun)
{
    TelemetryHub hub(10, 1, {"done"});
    const TelemetrySnapshot snap = hub.snapshot();
    EXPECT_EQ(snap.runsCompleted, 0u);
    EXPECT_LT(snap.etaSeconds, 0.0);
}

TEST(TelemetryHub, EtaNonNegativeOnceRateIsKnown)
{
    TelemetryHub hub(10, 1, {"done"});
    hub.recordRun(0);
    const TelemetrySnapshot snap = hub.snapshot();
    EXPECT_GT(snap.runsPerSecond, 0.0);
    EXPECT_GE(snap.etaSeconds, 0.0);
}

TEST(TelemetryHub, UtilizationIsClampedToUnitInterval)
{
    TelemetryHub hub(1, 2, {"done"});
    // Report far more busy time than could have elapsed; the snapshot
    // must clamp rather than report >100%.
    hub.recordBusy(0, 3'600'000'000'000ULL); // one hour
    const TelemetrySnapshot snap = hub.snapshot();
    ASSERT_EQ(snap.workerUtilization.size(), 2u);
    EXPECT_EQ(snap.workerUtilization[0], 1.0);
    EXPECT_GE(snap.workerUtilization[1], 0.0);
    EXPECT_LE(snap.workerUtilization[1], 1.0);
}

TEST(TelemetryHub, ProgressLineRendersHandBuiltSnapshot)
{
    TelemetrySnapshot snap;
    snap.runsPlanned = 10;
    snap.runsCompleted = 5;
    snap.elapsedSeconds = 2.0;
    snap.runsPerSecond = 2.5;
    snap.etaSeconds = 2.0;
    snap.counterLabels = {"tp", "fp", "tn"};
    snap.counters = {4, 0, 1};
    snap.workerUtilization = {0.9, 0.7};

    const std::string line = TelemetryHub::progressLine(snap);
    EXPECT_NE(line.find("5/10"), std::string::npos) << line;
    EXPECT_NE(line.find("runs/s"), std::string::npos) << line;
    EXPECT_NE(line.find("eta 2s"), std::string::npos) << line;
    EXPECT_NE(line.find("util  80%"), std::string::npos) << line;
    EXPECT_NE(line.find("tp=4"), std::string::npos) << line;
    EXPECT_NE(line.find("tn=1"), std::string::npos) << line;
    // Zero counters are omitted to keep the line short.
    EXPECT_EQ(line.find("fp="), std::string::npos) << line;
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;
}

TEST(TelemetryHub, ProgressLineOmitsUnknownEta)
{
    TelemetrySnapshot snap;
    snap.runsPlanned = 10;
    snap.etaSeconds = -1.0;
    const std::string line = TelemetryHub::progressLine(snap);
    EXPECT_EQ(line.find("eta"), std::string::npos) << line;
    EXPECT_NE(line.find("0/10"), std::string::npos) << line;
}

} // namespace
} // namespace nocalert::exec
