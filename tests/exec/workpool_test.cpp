#include "exec/workpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace nocalert::exec {
namespace {

TEST(WorkerPool, HardwareConcurrencyIsAtLeastOne)
{
    EXPECT_GE(WorkerPool::hardwareConcurrency(), 1u);
    EXPECT_EQ(WorkerPool(0).workers(),
              WorkerPool::hardwareConcurrency());
}

TEST(WorkerPool, EveryIndexExecutesExactlyOnce)
{
    constexpr std::size_t kCount = 257; // not a multiple of workers
    for (const unsigned workers : {1u, 2u, 4u, 7u}) {
        WorkerPool pool(workers);
        std::vector<std::atomic<int>> hits(kCount);
        pool.runIndexed(kCount, [&](std::size_t task, unsigned worker) {
            ASSERT_LT(task, kCount);
            ASSERT_LT(worker, workers);
            hits[task].fetch_add(1);
        });
        for (std::size_t i = 0; i < kCount; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "task " << i;

        // Per-worker accounting adds up to the task count.
        std::uint64_t executed = 0;
        for (const WorkerStats &stats : pool.stats())
            executed += stats.executed;
        EXPECT_EQ(executed, kCount);
    }
}

TEST(WorkerPool, SingleWorkerRunsInlineInOrder)
{
    WorkerPool pool(1);
    const auto caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    pool.runIndexed(16, [&](std::size_t task, unsigned worker) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_EQ(worker, 0u);
        order.push_back(task);
    });
    std::vector<std::size_t> expected(16);
    std::iota(expected.begin(), expected.end(), 0u);
    EXPECT_EQ(order, expected);
}

TEST(WorkerPool, ZeroTasksIsANoOp)
{
    WorkerPool pool(4);
    pool.runIndexed(0, [&](std::size_t, unsigned) { FAIL(); });
    for (const WorkerStats &stats : pool.stats())
        EXPECT_EQ(stats.executed, 0u);
}

TEST(WorkerPool, TaskExceptionBecomesTaskErrorNamingTheIndex)
{
    WorkerPool pool(1);
    try {
        pool.runIndexed(10, [](std::size_t task, unsigned) {
            if (task == 7)
                throw std::runtime_error("synthetic failure");
        });
        FAIL() << "expected TaskError";
    } catch (const TaskError &error) {
        EXPECT_EQ(error.taskIndex(), 7u);
        EXPECT_STREQ(error.what(), "synthetic failure");
    }
}

TEST(WorkerPool, ExceptionAbortsRemainingDispatch)
{
    // Parallel flavor: the pool must quiesce and rethrow exactly one
    // TaskError; tasks dispatched after the failure was observed do
    // not run (executed stays well below the full count).
    WorkerPool pool(4);
    std::atomic<std::size_t> executed{0};
    std::size_t failing = SIZE_MAX;
    try {
        pool.runIndexed(1000, [&](std::size_t task, unsigned) {
            if (task == 3)
                throw std::runtime_error("boom");
            executed.fetch_add(1);
        });
        FAIL() << "expected TaskError";
    } catch (const TaskError &error) {
        failing = error.taskIndex();
    }
    EXPECT_EQ(failing, 3u);
    EXPECT_LT(executed.load(), 1000u);
}

TEST(WorkerPool, PreCancelledTokenRunsNothing)
{
    WorkerPool pool(4);
    CancelToken cancel;
    cancel.cancel();
    std::atomic<std::size_t> executed{0};
    pool.runIndexed(100, [&](std::size_t, unsigned) {
        executed.fetch_add(1);
    }, &cancel);
    EXPECT_EQ(executed.load(), 0u);
}

TEST(WorkerPool, MidRunCancelStopsDispatchWithoutError)
{
    WorkerPool pool(1);
    CancelToken cancel;
    std::size_t executed = 0;
    pool.runIndexed(100, [&](std::size_t, unsigned) {
        if (++executed == 5)
            cancel.cancel();
    }, &cancel);
    EXPECT_EQ(executed, 5u);
}

TEST(WorkerPool, StatsCountStolenTasks)
{
    // With many short tasks and several workers, at least the total
    // is conserved; stolen is a subset of executed.
    WorkerPool pool(4);
    pool.runIndexed(500, [](std::size_t, unsigned) {});
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;
    for (const WorkerStats &stats : pool.stats()) {
        executed += stats.executed;
        stolen += stats.stolen;
    }
    EXPECT_EQ(executed, 500u);
    EXPECT_LE(stolen, executed);
}

} // namespace
} // namespace nocalert::exec
