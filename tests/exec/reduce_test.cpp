#include "exec/reduce.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace nocalert::exec {
namespace {

TEST(OrderedReducer, InOrderCommitsDeliverImmediately)
{
    std::vector<std::size_t> delivered;
    OrderedReducer<int> reducer([&](std::size_t index, int &&value) {
        EXPECT_EQ(static_cast<int>(index) * 10, value);
        delivered.push_back(index);
    });
    for (std::size_t i = 0; i < 5; ++i) {
        reducer.commit(i, static_cast<int>(i) * 10);
        EXPECT_EQ(reducer.committed(), i + 1);
        EXPECT_EQ(reducer.buffered(), 0u);
    }
    EXPECT_EQ(delivered, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(OrderedReducer, OutOfOrderCommitsBufferUntilContiguous)
{
    std::vector<std::size_t> delivered;
    OrderedReducer<std::string> reducer(
        [&](std::size_t index, std::string &&) {
            delivered.push_back(index);
        });

    reducer.commit(2, "c");
    EXPECT_TRUE(delivered.empty());
    EXPECT_EQ(reducer.committed(), 0u);
    EXPECT_EQ(reducer.buffered(), 1u);

    reducer.commit(0, "a");
    EXPECT_EQ(delivered, (std::vector<std::size_t>{0}));
    EXPECT_EQ(reducer.buffered(), 1u);

    // Committing 1 releases both 1 and the buffered 2.
    reducer.commit(1, "b");
    EXPECT_EQ(delivered, (std::vector<std::size_t>{0, 1, 2}));
    EXPECT_EQ(reducer.committed(), 3u);
    EXPECT_EQ(reducer.buffered(), 0u);
}

TEST(OrderedReducer, ReverseOrderDeliversEverythingAtTheEnd)
{
    std::vector<std::size_t> delivered;
    OrderedReducer<int> reducer([&](std::size_t index, int &&) {
        delivered.push_back(index);
    });
    for (std::size_t i = 10; i-- > 1;)
        reducer.commit(i, 0);
    EXPECT_TRUE(delivered.empty());
    EXPECT_EQ(reducer.buffered(), 9u);

    reducer.commit(0, 0);
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < 10; ++i)
        expected.push_back(i);
    EXPECT_EQ(delivered, expected);
}

TEST(OrderedReducer, MoveOnlyResultsPassThrough)
{
    std::vector<int> values;
    OrderedReducer<std::unique_ptr<int>> reducer(
        [&](std::size_t, std::unique_ptr<int> &&value) {
            values.push_back(*value);
        });
    reducer.commit(1, std::make_unique<int>(11));
    reducer.commit(0, std::make_unique<int>(10));
    EXPECT_EQ(values, (std::vector<int>{10, 11}));
}

} // namespace
} // namespace nocalert::exec
