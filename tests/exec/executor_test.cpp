#include "exec/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace nocalert::exec {
namespace {

/** Run count chosen so jobs == count is a meaningful sweep point. */
constexpr std::size_t kCount = 24;

std::vector<int>
collectResults(unsigned jobs, bool skewed_durations)
{
    CampaignExecutor executor(ExecConfig{jobs, /*streamSeed=*/9,
                                         /*stealSeed=*/jobs});
    std::vector<int> sink_order;
    const bool finished = executor.run<int>(
        kCount,
        [&](TaskContext &ctx) {
            if (skewed_durations) {
                // Early tasks take longest, maximizing out-of-order
                // completion under parallel schedules.
                std::this_thread::sleep_for(std::chrono::microseconds(
                    (kCount - ctx.index) * 50));
            }
            return static_cast<int>(ctx.index) * 3 + 1;
        },
        [&](std::size_t index, int &&value) {
            EXPECT_EQ(index, sink_order.size());
            sink_order.push_back(value);
        });
    EXPECT_TRUE(finished);
    return sink_order;
}

TEST(CampaignExecutor, SinkSeesIndexOrderForEveryJobsCount)
{
    const std::vector<int> serial = collectResults(1, false);
    ASSERT_EQ(serial.size(), kCount);
    for (const unsigned jobs :
         {2u, 4u, static_cast<unsigned>(kCount)}) {
        EXPECT_EQ(collectResults(jobs, true), serial)
            << "jobs=" << jobs;
    }
}

TEST(CampaignExecutor, TaskContextRngMatchesDeriveStream)
{
    constexpr std::uint64_t kSeed = 0xfeedULL;
    CampaignExecutor executor(ExecConfig{4, kSeed});
    std::atomic<int> mismatches{0};
    executor.run<int>(
        16,
        [&](TaskContext &ctx) {
            Pcg32 expected = deriveStream(kSeed, ctx.index);
            if (!(ctx.rng == expected))
                mismatches.fetch_add(1);
            return 0;
        },
        [](std::size_t, int &&) {});
    EXPECT_EQ(mismatches.load(), 0);
}

TEST(CampaignExecutor, FailurePropagatesAfterQuiescing)
{
    CampaignExecutor executor(ExecConfig{4});
    std::vector<std::size_t> committed;
    try {
        executor.run<int>(
            50,
            [](TaskContext &ctx) -> int {
                if (ctx.index == 10)
                    throw std::runtime_error("run 10 exploded");
                return 0;
            },
            [&](std::size_t index, int &&) {
                committed.push_back(index);
            });
        FAIL() << "expected TaskError";
    } catch (const TaskError &error) {
        EXPECT_EQ(error.taskIndex(), 10u);
        EXPECT_STREQ(error.what(), "run 10 exploded");
    }
    // Whatever was committed is a contiguous prefix not containing
    // the failed index — the checkpoint invariant.
    for (std::size_t i = 0; i < committed.size(); ++i)
        EXPECT_EQ(committed[i], i);
    EXPECT_LT(committed.size(), 11u);
}

TEST(CampaignExecutor, CancelLeavesContiguousPrefix)
{
    CampaignExecutor executor(ExecConfig{4});
    CancelToken cancel;
    std::vector<std::size_t> committed;
    const bool finished = executor.run<int>(
        100,
        [](TaskContext &) {
            // Slow the tasks so dispatch cannot outrun the cancel:
            // workers check the token between tasks, and instant
            // tasks could otherwise all finish before commit 7.
            std::this_thread::sleep_for(std::chrono::microseconds(500));
            return 0;
        },
        [&](std::size_t index, int &&) {
            committed.push_back(index);
            if (committed.size() == 7)
                cancel.cancel();
        },
        &cancel);
    EXPECT_FALSE(finished);
    ASSERT_GE(committed.size(), 7u);
    EXPECT_LT(committed.size(), 100u);
    for (std::size_t i = 0; i < committed.size(); ++i)
        EXPECT_EQ(committed[i], i);
}

TEST(CampaignExecutor, ReportsLiveUtilizationPerWorker)
{
    CampaignExecutor executor(ExecConfig{3});
    TelemetryHub hub(12, executor.jobs(), {"done"});
    executor.run<int>(
        12,
        [](TaskContext &) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            return 0;
        },
        [&](std::size_t, int &&) { hub.recordRun(0); }, nullptr, &hub);

    const TelemetrySnapshot snap = hub.snapshot();
    EXPECT_EQ(snap.runsCompleted, 12u);
    ASSERT_EQ(snap.workerUtilization.size(), 3u);
    double total = 0.0;
    for (const double u : snap.workerUtilization) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
        total += u;
    }
    EXPECT_GT(total, 0.0); // somebody did the sleeping
}

} // namespace
} // namespace nocalert::exec
