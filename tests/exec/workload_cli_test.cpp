/**
 * @file
 * End-to-end tests of the workload flags on the simulate and
 * campaign_shard CLIs: the rejection paths (malformed phase programs,
 * bad burst specs, conflicting flags, missing/damaged trace files)
 * must fail with non-zero status and an error naming the offending
 * field, and the record -> replay loop must reproduce a run exactly.
 *
 * Binary paths arrive via the NOCALERT_SIMULATE_BIN and
 * NOCALERT_SHARD_BIN compile definitions.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#ifndef NOCALERT_SIMULATE_BIN
#error "NOCALERT_SIMULATE_BIN must point at the simulate binary"
#endif
#ifndef NOCALERT_SHARD_BIN
#error "NOCALERT_SHARD_BIN must point at the campaign_shard binary"
#endif

namespace nocalert {
namespace {

namespace fs = std::filesystem;

struct CommandOutput
{
    int status = -1;
    std::string text; ///< Combined stdout + stderr.
};

/** Run @p command, capturing combined output and the exit status. */
CommandOutput
run(const std::string &command)
{
    CommandOutput out;
    std::FILE *pipe = ::popen((command + " 2>&1").c_str(), "r");
    if (pipe == nullptr)
        return out;
    char buffer[512];
    while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr)
        out.text += buffer;
    const int raw = ::pclose(pipe);
    out.status = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
    return out;
}

class WorkloadCli : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("nocalert_workload_cli_" + std::to_string(::getpid()) +
                "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
    }

    void TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    std::string path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    CommandOutput simulate(const std::string &flags) const
    {
        return run(std::string(NOCALERT_SIMULATE_BIN) + " " + flags);
    }

    CommandOutput shard(const std::string &flags) const
    {
        return run(std::string(NOCALERT_SHARD_BIN) + " " + flags);
    }

    fs::path dir_;
};

// ---- rejection paths ----

TEST_F(WorkloadCli, MalformedPhaseProgramNamesTheSegmentAndField)
{
    const CommandOutput out = simulate(
        "--mesh 4 --cycles 200 --phases 0:100:uniform:fast");
    EXPECT_NE(out.status, 0);
    EXPECT_NE(out.text.find("phase segment 0"), std::string::npos)
        << out.text;
    EXPECT_NE(out.text.find("rate 'fast'"), std::string::npos)
        << out.text;
}

TEST_F(WorkloadCli, OverlappingSegmentsAreRejectedByName)
{
    const CommandOutput out = simulate(
        "--mesh 4 --cycles 400 "
        "--phases 0:200:uniform:0.05,100:300:transpose:0.1");
    EXPECT_NE(out.status, 0);
    EXPECT_NE(out.text.find("overlaps"), std::string::npos) << out.text;
}

TEST_F(WorkloadCli, BadBurstSpecNamesTheField)
{
    const CommandOutput out = simulate(
        "--mesh 4 --cycles 200 --phases 0:200:uniform:0.05 "
        "--burst 64:maybe:2:0");
    EXPECT_NE(out.status, 0);
    EXPECT_NE(out.text.find("onProbability"), std::string::npos)
        << out.text;
}

TEST_F(WorkloadCli, BurstWithoutPhasesIsRejected)
{
    const CommandOutput out =
        simulate("--mesh 4 --cycles 200 --burst 64:0.5:2:0");
    EXPECT_NE(out.status, 0);
    EXPECT_NE(out.text.find("--burst requires"), std::string::npos)
        << out.text;
}

TEST_F(WorkloadCli, PhasesAndTraceReplayAreMutuallyExclusive)
{
    const CommandOutput out = simulate(
        "--mesh 4 --cycles 200 --phases 0:200:uniform:0.05 "
        "--trace-replay whatever.trace");
    EXPECT_NE(out.status, 0);
    EXPECT_NE(out.text.find("mutually exclusive"), std::string::npos)
        << out.text;
}

TEST_F(WorkloadCli, MissingTraceFileIsReported)
{
    const CommandOutput out = simulate(
        "--mesh 4 --cycles 200 --trace-replay " + path("missing.trace"));
    EXPECT_NE(out.status, 0);
    EXPECT_NE(out.text.find("missing.trace"), std::string::npos)
        << out.text;
}

TEST_F(WorkloadCli, CorruptTraceFileIsReported)
{
    const std::string file = path("garbage.trace");
    std::ofstream(file, std::ios::binary) << "this is not a trace";
    const CommandOutput out =
        simulate("--mesh 4 --cycles 200 --trace-replay " + file);
    EXPECT_NE(out.status, 0);
    EXPECT_NE(out.text.find("magic"), std::string::npos) << out.text;
}

TEST_F(WorkloadCli, OutOfRangeSyntheticRateNamesTheField)
{
    const CommandOutput out =
        simulate("--mesh 4 --cycles 200 --rate 1.7");
    EXPECT_NE(out.status, 0);
    EXPECT_NE(out.text.find("injectionRate"), std::string::npos)
        << out.text;
}

TEST_F(WorkloadCli, ShardRejectsBadPhaseProgramsToo)
{
    const CommandOutput out = shard(
        "run --out " + path("x.json") +
        " --mesh 4 --sites 2 --phases 100:50:uniform:0.05");
    EXPECT_NE(out.status, 0);
    EXPECT_NE(out.text.find("end"), std::string::npos) << out.text;
}

// ---- the record -> replay loop ----

TEST_F(WorkloadCli, RecordedTraceReplaysTheExactRun)
{
    const std::string trace = path("run.trace");
    const CommandOutput recorded = simulate(
        "--mesh 4 --cycles 500 --rate 0.08 --seed 11 --record-trace " +
        trace);
    ASSERT_EQ(recorded.status, 0) << recorded.text;
    ASSERT_TRUE(fs::exists(trace));

    const CommandOutput replayed =
        simulate("--mesh 4 --cycles 500 --trace-replay " + trace);
    ASSERT_EQ(replayed.status, 0) << replayed.text;

    // Both runs print identical statistics lines (packets, flits,
    // latency, throughput) — the replay IS the original workload.
    const auto stats_line = [](const std::string &text) {
        const std::size_t at = text.find("pkts(");
        EXPECT_NE(at, std::string::npos) << text;
        return text.substr(at, text.find('\n', at) - at);
    };
    EXPECT_EQ(stats_line(recorded.text), stats_line(replayed.text));
}

TEST_F(WorkloadCli, PhasedRecordingReplaysThePhaseProgram)
{
    const std::string trace = path("phased.trace");
    const std::string phases =
        "0:250:uniform:0.06,300:500:transpose:0.12";
    const CommandOutput recorded = simulate(
        "--mesh 4 --cycles 500 --phases " + phases +
        " --burst 32:0.5:2:0.25 --record-trace " + trace);
    ASSERT_EQ(recorded.status, 0) << recorded.text;

    const CommandOutput replayed =
        simulate("--mesh 4 --cycles 500 --trace-replay " + trace);
    ASSERT_EQ(replayed.status, 0) << replayed.text;

    const auto stats_line = [](const std::string &text) {
        const std::size_t at = text.find("pkts(");
        EXPECT_NE(at, std::string::npos) << text;
        return text.substr(at, text.find('\n', at) - at);
    };
    EXPECT_EQ(stats_line(recorded.text), stats_line(replayed.text));
}

TEST_F(WorkloadCli, ShardCampaignsVerifyAcrossWorkloadBackends)
{
    // A phased campaign run at --jobs 1 and --jobs 4 must produce
    // byte-identical artifacts (the CLI-level determinism check).
    const std::string base =
        "run --mesh 4 --sites 4 --warmup 200 "
        "--phases 0:300:uniform:0.06,300:600:transpose:0.1 "
        "--phase-repeat --burst 64:0.5:2:0.25 ";
    const CommandOutput a =
        shard(base + "--jobs 1 --out " + path("a.json"));
    ASSERT_EQ(a.status, 0) << a.text;
    const CommandOutput b =
        shard(base + "--jobs 4 --out " + path("b.json"));
    ASSERT_EQ(b.status, 0) << b.text;

    const CommandOutput verify =
        shard("verify " + path("a.json") + " " + path("b.json"));
    EXPECT_EQ(verify.status, 0) << verify.text;

    std::ifstream fa(path("a.json")), fb(path("b.json"));
    const std::string ja((std::istreambuf_iterator<char>(fa)),
                         std::istreambuf_iterator<char>());
    const std::string jb((std::istreambuf_iterator<char>(fb)),
                         std::istreambuf_iterator<char>());
    ASSERT_FALSE(ja.empty());
    EXPECT_EQ(ja, jb);
    // The artifact must self-describe as a schema-v6 workload doc.
    EXPECT_NE(ja.find("\"version\": 6"), std::string::npos);
    EXPECT_NE(ja.find("\"workload\""), std::string::npos);
}

} // namespace
} // namespace nocalert
