/**
 * End-to-end tests for the campaign_shard CLI, focused on the verify
 * subcommand's exit-code contract:
 *
 *   0  verify passed / help requested
 *   1  verify mismatch
 *   2  usage error
 *   3  an input file does not exist
 *   4  an input file is corrupt
 *
 * The binary path arrives via the NOCALERT_SHARD_BIN compile
 * definition ($<TARGET_FILE:campaign_shard>).
 */

#include "fault/campaign.hpp"
#include "fault/serialize.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#ifndef NOCALERT_SHARD_BIN
#error "NOCALERT_SHARD_BIN must point at the campaign_shard binary"
#endif

namespace nocalert::fault {
namespace {

namespace fs = std::filesystem;

/** Run the shard CLI, discarding output; return its exit status. */
int
shardExit(const std::string &arguments)
{
    const std::string command = std::string(NOCALERT_SHARD_BIN) + " " +
                                arguments + " >/dev/null 2>&1";
    const int raw = std::system(command.c_str());
    EXPECT_NE(raw, -1);
    return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

class ShardCli : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        // Unique per process *and* per test: ctest runs each TEST_F
        // as its own parallel process, so a shared name would let one
        // test's TearDown delete another's files mid-run.
        dir_ = fs::temp_directory_path() /
               ("nocalert_shard_cli_" + std::to_string(::getpid()) +
                "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
    }

    void TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    std::string path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    /** Run a tiny real campaign and save it where verify can see it. */
    std::string writeResult(const std::string &name,
                            std::uint64_t traffic_seed)
    {
        CampaignConfig config;
        config.network.width = 4;
        config.network.height = 4;
        config.traffic.injectionRate = 0.05;
        config.traffic.seed = traffic_seed;
        config.warmup = 200;
        config.observeWindow = 800;
        config.drainLimit = 3000;
        config.maxSites = 4;
        config.runForever = false;
        FaultCampaign campaign(config);
        const CampaignResult result = campaign.run();
        EXPECT_TRUE(result.complete());
        const std::string out = path(name);
        EXPECT_TRUE(saveCampaignResult(result, out));
        return out;
    }

    fs::path dir_;
};

TEST_F(ShardCli, HelpExitsZeroFromEverySpelling)
{
    EXPECT_EQ(shardExit("help"), 0);
    EXPECT_EQ(shardExit("--help"), 0);
    EXPECT_EQ(shardExit("-h"), 0);
}

TEST_F(ShardCli, MissingOrUnknownCommandIsAUsageError)
{
    EXPECT_EQ(shardExit(""), 2);
    EXPECT_EQ(shardExit("frobnicate"), 2);
}

TEST_F(ShardCli, VerifyWrongArgumentCountIsAUsageError)
{
    const std::string a = writeResult("a.json", 13);
    EXPECT_EQ(shardExit("verify " + a), 2);
    EXPECT_EQ(shardExit("verify " + a + " " + a + " " + a), 2);
}

TEST_F(ShardCli, VerifyIdenticalResultsPasses)
{
    const std::string a = writeResult("a.json", 13);
    EXPECT_EQ(shardExit("verify " + a + " " + a), 0);
}

TEST_F(ShardCli, VerifyMismatchedResultsExitsOne)
{
    const std::string a = writeResult("a.json", 13);
    const std::string b = writeResult("b.json", 14);
    EXPECT_EQ(shardExit("verify " + a + " " + b), 1);
}

TEST_F(ShardCli, VerifyMissingFileExitsThree)
{
    const std::string a = writeResult("a.json", 13);
    EXPECT_EQ(shardExit("verify " + a + " " + path("absent.json")), 3);
    EXPECT_EQ(shardExit("verify " + path("absent.json") + " " + a), 3);
}

TEST_F(ShardCli, VerifyCorruptFileExitsFour)
{
    const std::string a = writeResult("a.json", 13);

    const std::string garbage = path("garbage.json");
    std::ofstream(garbage) << "this is not json {";
    EXPECT_EQ(shardExit("verify " + a + " " + garbage), 4);

    // Valid JSON that is not a campaign result is corrupt too.
    const std::string wrong_shape = path("wrong.json");
    std::ofstream(wrong_shape) << "{\"hello\": \"world\"}\n";
    EXPECT_EQ(shardExit("verify " + a + " " + wrong_shape), 4);
}

} // namespace
} // namespace nocalert::fault
