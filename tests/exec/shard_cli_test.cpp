/**
 * End-to-end tests for the campaign_shard CLI, focused on the verify
 * subcommand's exit-code contract:
 *
 *   0  verify passed / help requested
 *   1  verify mismatch
 *   2  usage error
 *   3  an input file does not exist
 *   4  an input file is corrupt
 *
 * The binary path arrives via the NOCALERT_SHARD_BIN compile
 * definition ($<TARGET_FILE:campaign_shard>).
 */

#include "fault/campaign.hpp"
#include "fault/serialize.hpp"
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#ifndef NOCALERT_SHARD_BIN
#error "NOCALERT_SHARD_BIN must point at the campaign_shard binary"
#endif

namespace nocalert::fault {
namespace {

namespace fs = std::filesystem;

/** Run the shard CLI, discarding output; return its exit status. */
int
shardExit(const std::string &arguments)
{
    const std::string command = std::string(NOCALERT_SHARD_BIN) + " " +
                                arguments + " >/dev/null 2>&1";
    const int raw = std::system(command.c_str());
    EXPECT_NE(raw, -1);
    return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

class ShardCli : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        // Unique per process *and* per test: ctest runs each TEST_F
        // as its own parallel process, so a shared name would let one
        // test's TearDown delete another's files mid-run.
        dir_ = fs::temp_directory_path() /
               ("nocalert_shard_cli_" + std::to_string(::getpid()) +
                "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
    }

    void TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    std::string path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    /** Run a tiny real campaign and save it where verify can see it. */
    std::string writeResult(const std::string &name,
                            std::uint64_t traffic_seed)
    {
        CampaignConfig config;
        config.network.width = 4;
        config.network.height = 4;
        config.workload.synthetic.injectionRate = 0.05;
        config.workload.synthetic.seed = traffic_seed;
        config.warmup = 200;
        config.observeWindow = 800;
        config.drainLimit = 3000;
        config.maxSites = 4;
        config.runForever = false;
        FaultCampaign campaign(config);
        const CampaignResult result = campaign.run();
        EXPECT_TRUE(result.complete());
        const std::string out = path(name);
        EXPECT_TRUE(saveCampaignResult(result, out));
        return out;
    }

    /**
     * Flags for a tiny sampled campaign the CLI can finish in well
     * under a second (fixed budget: --ci-width 0 disables the
     * stopping rule, --max-runs bounds the draws).
     */
    std::string sampledRunFlags(const std::string &out,
                                std::uint64_t sampler_seed) const
    {
        return "run --out " + out +
               " --mesh 4 --sites 12 --rate 0.05 --seed 13"
               " --warmup 200 --jobs 1 --sample --ci-width 0"
               " --max-runs 8 --batch 4 --sampler-seed " +
               std::to_string(sampler_seed);
    }

    /**
     * Run a sampled campaign through the library (shorter windows
     * than the CLI defaults allow) and save it where verify can see
     * it. Returns the finished result through `result` when given.
     */
    std::string writeSampledResult(const std::string &name,
                                   std::uint64_t sampler_seed,
                                   CampaignResult *result = nullptr)
    {
        CampaignConfig config;
        config.network.width = 4;
        config.network.height = 4;
        config.workload.synthetic.injectionRate = 0.05;
        config.workload.synthetic.seed = 13;
        config.warmup = 200;
        config.observeWindow = 1200;
        config.drainLimit = 4000;
        config.maxSites = 12;
        config.runForever = false;
        config.jobs = 1;
        config.sampling.enabled = true;
        config.sampling.ciHalfWidth = 0.0;
        config.sampling.maxRuns = 8;
        config.sampling.batchSize = 4;
        config.sampling.samplerSeed = sampler_seed;
        FaultCampaign campaign(config);
        CampaignResult run = campaign.run();
        EXPECT_TRUE(run.complete());
        const std::string out = path(name);
        EXPECT_TRUE(saveCampaignResult(run, out));
        if (result != nullptr)
            *result = std::move(run);
        return out;
    }

    fs::path dir_;
};

TEST_F(ShardCli, HelpExitsZeroFromEverySpelling)
{
    EXPECT_EQ(shardExit("help"), 0);
    EXPECT_EQ(shardExit("--help"), 0);
    EXPECT_EQ(shardExit("-h"), 0);
}

TEST_F(ShardCli, MissingOrUnknownCommandIsAUsageError)
{
    EXPECT_EQ(shardExit(""), 2);
    EXPECT_EQ(shardExit("frobnicate"), 2);
}

TEST_F(ShardCli, VerifyWrongArgumentCountIsAUsageError)
{
    const std::string a = writeResult("a.json", 13);
    EXPECT_EQ(shardExit("verify " + a), 2);
    EXPECT_EQ(shardExit("verify " + a + " " + a + " " + a), 2);
}

TEST_F(ShardCli, VerifyIdenticalResultsPasses)
{
    const std::string a = writeResult("a.json", 13);
    EXPECT_EQ(shardExit("verify " + a + " " + a), 0);
}

TEST_F(ShardCli, VerifyMismatchedResultsExitsOne)
{
    const std::string a = writeResult("a.json", 13);
    const std::string b = writeResult("b.json", 14);
    EXPECT_EQ(shardExit("verify " + a + " " + b), 1);
}

TEST_F(ShardCli, VerifyMissingFileExitsThree)
{
    const std::string a = writeResult("a.json", 13);
    EXPECT_EQ(shardExit("verify " + a + " " + path("absent.json")), 3);
    EXPECT_EQ(shardExit("verify " + path("absent.json") + " " + a), 3);
}

TEST_F(ShardCli, VerifyCorruptFileExitsFour)
{
    const std::string a = writeResult("a.json", 13);

    const std::string garbage = path("garbage.json");
    std::ofstream(garbage) << "this is not json {";
    EXPECT_EQ(shardExit("verify " + a + " " + garbage), 4);

    // Valid JSON that is not a campaign result is corrupt too.
    const std::string wrong_shape = path("wrong.json");
    std::ofstream(wrong_shape) << "{\"hello\": \"world\"}\n";
    EXPECT_EQ(shardExit("verify " + a + " " + wrong_shape), 4);
}

TEST_F(ShardCli, SampledRunRoundTripsThroughVerify)
{
    // A sampled campaign driven entirely through CLI flags must
    // finish, persist a loadable artifact, and verify against itself
    // — exercising the sampled-only checks (sampler completion,
    // sampling estimates) on the passing path.
    const std::string out = path("sampled.json");
    ASSERT_EQ(shardExit(sampledRunFlags(out, 7)), 0);

    std::string error;
    const auto loaded = loadCampaignResult(out, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_TRUE(loaded->config.sampling.enabled);
    EXPECT_TRUE(loaded->samplerDone);
    EXPECT_EQ(loaded->runs.size(), 8u);

    EXPECT_EQ(shardExit("verify " + out + " " + out), 0);
}

TEST_F(ShardCli, SampledRunWithoutABoundIsAFatalError)
{
    // --ci-width 0 disables the stopping rule and --max-runs 0 means
    // "no cap": together nothing would ever end the campaign, so the
    // flag parser must refuse before any simulation starts.
    const std::string out = path("unbounded.json");
    EXPECT_EQ(shardExit("run --out " + out +
                        " --mesh 4 --sites 12 --sample"
                        " --ci-width 0 --max-runs 0"),
              1);
    EXPECT_FALSE(fs::exists(out));
}

TEST_F(ShardCli, VerifySampledResultsWithDifferentSamplerSeedsExitsOne)
{
    // The sampler seed selects which runs exist, so it is campaign
    // identity — two otherwise-identical sampled campaigns must not
    // verify against each other.
    const std::string a = writeSampledResult("a.json", 7);
    const std::string b = writeSampledResult("b.json", 8);
    EXPECT_EQ(shardExit("verify " + a + " " + b), 1);
}

TEST_F(ShardCli, VerifySampledAgainstExhaustiveExitsOne)
{
    const std::string sampled = writeSampledResult("sampled.json", 7);
    const std::string exhaustive = writeResult("exhaustive.json", 13);
    EXPECT_EQ(shardExit("verify " + sampled + " " + exhaustive), 1);
    EXPECT_EQ(shardExit("verify " + exhaustive + " " + sampled), 1);
}

TEST_F(ShardCli, VerifyTamperedSampledFileExitsFour)
{
    CampaignResult result;
    const std::string good = writeSampledResult("good.json", 7, &result);

    // Estimates that disagree with the runs they claim to summarize
    // fail recompute-validation at load: corrupt, not a mismatch.
    JsonValue doc = toJson(result);
    JsonValue sampling = *doc.find("sampling");
    JsonValue pooled = *sampling.find("pooled");
    pooled.set("detected", 999);
    sampling.set("pooled", std::move(pooled));
    doc.set("sampling", std::move(sampling));
    const std::string tampered = path("tampered.json");
    std::ofstream(tampered) << doc.dump() << "\n";
    EXPECT_EQ(shardExit("verify " + good + " " + tampered), 4);

    // A sampled document downgraded to the exhaustive schema version
    // is corrupt the same way.
    JsonValue downgraded = toJson(result);
    downgraded.set("version", 4);
    const std::string wrong_version = path("wrong_version.json");
    std::ofstream(wrong_version) << downgraded.dump() << "\n";
    EXPECT_EQ(shardExit("verify " + good + " " + wrong_version), 4);
}

TEST_F(ShardCli, SampledLimitedRunResumesToTheStraightArtifact)
{
    // --limit interrupts mid-campaign (and mid-batch: 5 is not a
    // multiple of --batch 4) leaving a resumable checkpoint; resume
    // must replay the deterministic draw stream and converge to the
    // artifact an uninterrupted invocation produces.
    const std::string straight = path("straight.json");
    ASSERT_EQ(shardExit(sampledRunFlags(straight, 7)), 0);

    const std::string limited = path("limited.json");
    ASSERT_EQ(shardExit(sampledRunFlags(limited, 7) + " --limit 5"), 0);
    {
        std::string error;
        const auto partial = loadCampaignResult(limited, &error);
        ASSERT_TRUE(partial.has_value()) << error;
        EXPECT_FALSE(partial->complete());
        EXPECT_EQ(partial->runs.size(), 5u);
    }
    ASSERT_EQ(shardExit("resume --checkpoint " + limited + " --jobs 1"),
              0);
    EXPECT_EQ(shardExit("verify " + straight + " " + limited), 0);
}

} // namespace
} // namespace nocalert::fault
