/**
 * Determinism and resume properties of the *sampled* campaign engine:
 * the dynamic run stream (batches planned from outcomes) must still
 * serialize to byte-identical JSON for every worker count, and an
 * interrupted campaign — whether stopped by a run limit or by a
 * cancellation token — must resume from its checkpoint and converge
 * to the very same artifact.
 */

#include "exec/cancel.hpp"
#include "fault/campaign.hpp"
#include "fault/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

namespace nocalert::fault {
namespace {

CampaignConfig
tinySampled(bool recovery)
{
    CampaignConfig config;
    config.network.width = 4;
    config.network.height = 4;
    config.workload.synthetic.injectionRate = 0.05;
    config.workload.synthetic.seed = 13;
    config.warmup = 200;
    config.observeWindow = 1200;
    config.drainLimit = recovery ? 8000 : 4000;
    config.maxSites = 12;
    config.runForever = false;
    config.recovery = recovery;
    config.sampling.enabled = true;
    config.sampling.ciHalfWidth = 0.0; // fixed budget
    config.sampling.maxRuns = 24;
    config.sampling.batchSize = 8;
    config.sampling.cycleJitter = 64;
    config.sampling.samplerSeed = 11;
    return config;
}

std::string
artifactAtJobs(CampaignConfig config, unsigned jobs)
{
    config.jobs = jobs;
    FaultCampaign campaign(config);
    const CampaignResult result = campaign.run();
    EXPECT_TRUE(result.complete());
    EXPECT_TRUE(result.samplerDone);
    return writeCampaignJson(result);
}

/** Unique temp path for a checkpoint; removed by the caller. */
std::string
checkpointPath(const char *tag)
{
    return (std::filesystem::path(::testing::TempDir()) /
            (std::string("nocalert_sampled_") + tag + ".json"))
        .string();
}

class SampledDeterminism : public ::testing::TestWithParam<bool>
{
};

TEST_P(SampledDeterminism, ArtifactIsByteIdenticalAcrossJobs)
{
    const CampaignConfig config = tinySampled(GetParam());

    const std::string serial = artifactAtJobs(config, 1);
    ASSERT_FALSE(serial.empty());

    // jobs=2 exercises stealing across a growing run stream; jobs=
    // batchSize gives every draw of a batch its own worker (maximum
    // commit-reordering pressure within the batch quantum).
    EXPECT_EQ(artifactAtJobs(config, 2), serial);
    EXPECT_EQ(artifactAtJobs(config, config.sampling.batchSize),
              serial);
}

TEST_P(SampledDeterminism, RunLimitCheckpointResumesToSameArtifact)
{
    const bool recovery = GetParam();
    const std::string reference =
        artifactAtJobs(tinySampled(recovery), 1);

    // Interrupt mid-campaign (and mid-batch: 10 is not a batch
    // multiple) via the run limit, then resume with a different jobs
    // count. The resumed artifact must converge byte-identically.
    CampaignConfig config = tinySampled(recovery);
    config.checkpointPath =
        checkpointPath(recovery ? "limit_rec" : "limit_det");
    config.jobs = 1;
    {
        FaultCampaign campaign(config);
        FaultCampaign::RunOptions options;
        options.maxNewRuns = 10;
        const CampaignResult partial = campaign.run(nullptr, options);
        EXPECT_FALSE(partial.complete());
        EXPECT_EQ(partial.runs.size(), 10u);
    }
    config.jobs = 3;
    FaultCampaign campaign(config);
    const CampaignResult resumed = campaign.run();
    EXPECT_TRUE(resumed.complete());
    EXPECT_EQ(writeCampaignJson(resumed), reference);
    std::remove(config.checkpointPath.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SampledDeterminism, ::testing::Values(false, true),
    [](const ::testing::TestParamInfo<bool> &info) {
        return info.param ? std::string("Recovery")
                          : std::string("Detection");
    });

TEST(SampledDeterminism, CancellationCheckpointResumesToSameArtifact)
{
    const std::string reference = artifactAtJobs(tinySampled(false), 1);

    // A cancellation token firing mid-campaign is the SIGINT path:
    // the engine must flush a contiguous-prefix checkpoint and the
    // next invocation must replay it into the identical artifact.
    CampaignConfig config = tinySampled(false);
    config.checkpointPath = checkpointPath("cancel");
    config.checkpointEvery = 4;
    config.jobs = 2;
    exec::CancelToken cancel;
    std::size_t committed = 0;
    {
        FaultCampaign campaign(config);
        FaultCampaign::RunOptions options;
        options.cancel = &cancel;
        options.telemetry =
            [&](const exec::TelemetrySnapshot &snapshot) {
                if (snapshot.runsCompleted >= 7)
                    cancel.cancel();
            };
        const CampaignResult partial = campaign.run(nullptr, options);
        committed = partial.runs.size();
        EXPECT_FALSE(partial.complete());
        EXPECT_GE(committed, 7u);
        EXPECT_LT(committed, 24u);
    }
    FaultCampaign campaign(config);
    const CampaignResult resumed = campaign.run();
    EXPECT_TRUE(resumed.complete());
    EXPECT_EQ(writeCampaignJson(resumed), reference);
    std::remove(config.checkpointPath.c_str());
}

TEST(SampledDeterminism, AdaptiveStoppingHaltsBeforeBudget)
{
    // With a generous half-width target the stopping rule — not the
    // budget — must end the campaign, and the decision must be
    // jobs-independent like everything else.
    CampaignConfig config = tinySampled(false);
    config.sampling.ciHalfWidth = 0.3;
    config.sampling.maxRuns = 500;
    config.sampling.batchSize = 16;

    config.jobs = 1;
    FaultCampaign campaign(config);
    const CampaignResult result = campaign.run();
    EXPECT_TRUE(result.complete());
    EXPECT_TRUE(result.samplerDone);
    EXPECT_LT(result.runs.size(), 500u);
    EXPECT_EQ(writeCampaignJson(result), artifactAtJobs(config, 2));
}

} // namespace
} // namespace nocalert::fault
