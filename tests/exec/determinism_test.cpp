/**
 * The tentpole property: a campaign serializes to *byte-identical*
 * JSON no matter how many workers executed it. Runs the same tiny
 * campaign at --jobs 1 / 4 / run-count across both kernels and both
 * detection/recovery modes and diffs the full artifacts.
 */

#include "fault/campaign.hpp"
#include "fault/serialize.hpp"

#include <gtest/gtest.h>

#include <string>

namespace nocalert::fault {
namespace {

CampaignConfig
tinyCampaign(bool recovery, bool dense_kernel)
{
    CampaignConfig config;
    config.network.width = 4;
    config.network.height = 4;
    config.workload.synthetic.injectionRate = 0.05;
    config.workload.synthetic.seed = 13;
    config.warmup = 200;
    config.observeWindow = 1200;
    config.drainLimit = recovery ? 8000 : 4000;
    config.maxSites = 8;
    config.forever.epochLength = 400;
    config.recovery = recovery;
    config.denseKernel = dense_kernel;
    return config;
}

std::string
artifactAtJobs(CampaignConfig config, unsigned jobs)
{
    config.jobs = jobs;
    FaultCampaign campaign(config);
    const CampaignResult result = campaign.run();
    EXPECT_TRUE(result.complete());
    return writeCampaignJson(result);
}

class Determinism : public ::testing::TestWithParam<std::pair<bool, bool>>
{
};

TEST_P(Determinism, ArtifactIsByteIdenticalAcrossJobs)
{
    const auto [recovery, dense] = GetParam();
    const CampaignConfig config = tinyCampaign(recovery, dense);

    const std::string serial = artifactAtJobs(config, 1);
    ASSERT_FALSE(serial.empty());

    // jobs=4 exercises stealing; jobs=maxSites gives every run its
    // own worker (maximum reordering pressure on the reducer).
    EXPECT_EQ(artifactAtJobs(config, 4), serial);
    EXPECT_EQ(artifactAtJobs(config, config.maxSites), serial);
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndModes, Determinism,
    ::testing::Values(std::make_pair(false, false),  // detection, active
                      std::make_pair(false, true),   // detection, dense
                      std::make_pair(true, false),   // recovery, active
                      std::make_pair(true, true)),   // recovery, dense
    [](const ::testing::TestParamInfo<std::pair<bool, bool>> &info) {
        std::string name = info.param.first ? "Recovery" : "Detection";
        name += info.param.second ? "Dense" : "Active";
        return name;
    });

TEST(Determinism, TelemetryBlockMatchesRunsForEveryJobsCount)
{
    const CampaignConfig config = tinyCampaign(false, false);
    for (const unsigned jobs : {1u, 4u}) {
        CampaignConfig run_config = config;
        run_config.jobs = jobs;
        FaultCampaign campaign(run_config);
        const CampaignResult result = campaign.run();
        const CampaignTelemetry telemetry = computeTelemetry(result);
        EXPECT_EQ(telemetry.runsPlanned, result.shardRunsPlanned);
        EXPECT_EQ(telemetry.runsCompleted, result.runs.size());
        std::uint64_t total = 0;
        for (const std::uint64_t count : telemetry.outcomes)
            total += count;
        EXPECT_EQ(total, telemetry.runsCompleted);
    }
}

} // namespace
} // namespace nocalert::fault
