/**
 * Unit tests for the binomial interval constructions: known reference
 * values, edge cases (0/n, n/n, n=1, zero trials), clamping, and a
 * sweep regression for the incomplete-beta symmetry threshold (which
 * once self-recursed to a stack overflow).
 */

#include "stats/binomial.hpp"
#include "stats/stopping.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nocalert::stats {
namespace {

TEST(NormalQuantile, ReferenceValues)
{
    // Two-sided 95% and 99% z-values, and the median.
    EXPECT_NEAR(normalQuantile(0.975), 1.95996398454, 1e-9);
    EXPECT_NEAR(normalQuantile(0.995), 2.57582930355, 1e-9);
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-12);
    EXPECT_NEAR(normalQuantile(0.025), -1.95996398454, 1e-9);
    // Tail region (p < 0.02425) exercises Acklam's lower branch.
    EXPECT_NEAR(normalQuantile(0.001), -3.09023230617, 1e-9);
}

TEST(WilsonInterval, ReferenceValue)
{
    // 8 successes in 10 trials at 95%: the standard textbook value.
    const Interval interval = wilsonInterval(8, 10, 0.95);
    EXPECT_NEAR(interval.lower, 0.4902, 5e-4);
    EXPECT_NEAR(interval.upper, 0.9433, 5e-4);
}

TEST(ClopperPearsonInterval, ReferenceValue)
{
    // 3 successes in 10 trials at 95% (exact interval).
    const Interval interval = clopperPearsonInterval(3, 10, 0.95);
    EXPECT_NEAR(interval.lower, 0.06674, 1e-4);
    EXPECT_NEAR(interval.upper, 0.65245, 1e-4);
}

TEST(ClopperPearsonInterval, ZeroSuccessesClosedForm)
{
    // k = 0: upper = 1 - (alpha/2)^(1/n), lower = 0 exactly.
    const Interval interval = clopperPearsonInterval(0, 20, 0.95);
    EXPECT_DOUBLE_EQ(interval.lower, 0.0);
    EXPECT_NEAR(interval.upper, 1.0 - std::pow(0.025, 1.0 / 20.0),
                1e-12);
}

TEST(ClopperPearsonInterval, AllSuccessesClosedForm)
{
    const Interval interval = clopperPearsonInterval(20, 20, 0.95);
    EXPECT_NEAR(interval.lower, std::pow(0.025, 1.0 / 20.0), 1e-12);
    EXPECT_DOUBLE_EQ(interval.upper, 1.0);
}

TEST(BinomialIntervals, ZeroTrialsIsVacuous)
{
    for (const IntervalMethod method :
         {IntervalMethod::Wilson, IntervalMethod::ClopperPearson}) {
        const Interval interval = binomialInterval(method, 0, 0, 0.95);
        EXPECT_DOUBLE_EQ(interval.lower, 0.0);
        EXPECT_DOUBLE_EQ(interval.upper, 1.0);
    }
}

TEST(BinomialIntervals, SingleTrialEdgeCasesAreValidAndClamped)
{
    for (const IntervalMethod method :
         {IntervalMethod::Wilson, IntervalMethod::ClopperPearson}) {
        for (const std::uint64_t k : {std::uint64_t{0}, std::uint64_t{1}}) {
            const Interval interval = binomialInterval(method, k, 1, 0.95);
            EXPECT_GE(interval.lower, 0.0);
            EXPECT_LE(interval.upper, 1.0);
            EXPECT_LT(interval.lower, interval.upper);
            EXPECT_TRUE(interval.contains(static_cast<double>(k)));
        }
    }
}

TEST(BinomialIntervals, SweepIsValidAndContainsPointEstimate)
{
    // Regression: the incomplete-beta symmetry switch must terminate
    // for every (k, n) — a self-recursive implementation overflowed
    // the stack right at the threshold x == (a+1)/(a+b+2). The sweep
    // also checks the universal properties: 0 <= lower <= p-hat <=
    // upper <= 1 for both constructions.
    for (std::uint64_t n = 1; n <= 40; ++n) {
        for (std::uint64_t k = 0; k <= n; ++k) {
            const double p_hat =
                static_cast<double>(k) / static_cast<double>(n);
            for (const IntervalMethod method :
                 {IntervalMethod::Wilson,
                  IntervalMethod::ClopperPearson}) {
                const Interval interval =
                    binomialInterval(method, k, n, 0.95);
                ASSERT_GE(interval.lower, 0.0) << "k=" << k << " n=" << n;
                ASSERT_LE(interval.upper, 1.0) << "k=" << k << " n=" << n;
                ASSERT_LE(interval.lower, p_hat + 1e-12)
                    << "k=" << k << " n=" << n;
                ASSERT_GE(interval.upper, p_hat - 1e-12)
                    << "k=" << k << " n=" << n;
            }
        }
    }
}

TEST(BinomialIntervals, WidthShrinksWithSampleSize)
{
    for (const IntervalMethod method :
         {IntervalMethod::Wilson, IntervalMethod::ClopperPearson}) {
        const double wide =
            binomialInterval(method, 5, 10, 0.95).halfWidth();
        const double narrow =
            binomialInterval(method, 50, 100, 0.95).halfWidth();
        EXPECT_LT(narrow, wide);
    }
}

TEST(BinomialIntervals, ClopperPearsonIsConservativeVersusWilson)
{
    // The exact interval is at least as wide as the score interval
    // away from the boundary — the reason reports carry both.
    for (std::uint64_t k = 1; k < 20; ++k) {
        const double wilson = wilsonInterval(k, 20, 0.95).halfWidth();
        const double exact =
            clopperPearsonInterval(k, 20, 0.95).halfWidth();
        EXPECT_GE(exact, wilson - 1e-9) << "k=" << k;
    }
}

TEST(BinomialIntervals, MirrorSymmetry)
{
    // I(k, n) and I(n-k, n) are reflections around 1/2 for both
    // constructions.
    for (const IntervalMethod method :
         {IntervalMethod::Wilson, IntervalMethod::ClopperPearson}) {
        const Interval a = binomialInterval(method, 3, 12, 0.95);
        const Interval b = binomialInterval(method, 9, 12, 0.95);
        EXPECT_NEAR(a.lower, 1.0 - b.upper, 1e-9);
        EXPECT_NEAR(a.upper, 1.0 - b.lower, 1e-9);
    }
}

TEST(StoppingRule, HaltsOnlyBelowTargetAndAboveMinDraws)
{
    StoppingRule rule;
    rule.targetHalfWidth = 0.1;
    rule.confidence = 0.95;
    rule.minDraws = 8;
    EXPECT_TRUE(rule.canHalt());
    // Below the minimum draw count the rule never fires, even for a
    // degenerate 0-width estimate.
    EXPECT_FALSE(rule.satisfied(0, 0));
    EXPECT_FALSE(rule.satisfied(7, 7));
    // 100/100 at 95%: CP-free Wilson half-width well under 0.1.
    EXPECT_TRUE(rule.satisfied(100, 100));
    // 50/100: half-width ~0.096 < 0.1.
    EXPECT_TRUE(rule.satisfied(50, 100));
    // 10/20: half-width ~0.20 > 0.1.
    EXPECT_FALSE(rule.satisfied(10, 20));
}

TEST(StoppingRule, NonPositiveTargetNeverHalts)
{
    StoppingRule rule;
    rule.targetHalfWidth = 0.0;
    EXPECT_FALSE(rule.canHalt());
    EXPECT_FALSE(rule.satisfied(1000, 1000));
}

} // namespace
} // namespace nocalert::stats
