/**
 * Coverage-validation harness for the sampled campaign engine.
 *
 * An exhaustive campaign over a small mesh provides the exact ground
 * truth (every site's outcome is deterministic, so the population
 * detection rate is known precisely). Sampled campaigns then draw from
 * the *same* population with replacement — a textbook binomial — and
 * the reported 95% intervals must contain the true rate at no less
 * than (roughly) the nominal frequency across many sampler seeds.
 * Everything is seeded, so the observed coverage is deterministic.
 */

#include "fault/campaign.hpp"
#include "fault/sampled.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace nocalert::fault {
namespace {

/** Small, fast campaign: 4x4 mesh, short windows, 16-site population. */
CampaignConfig
baseConfig()
{
    CampaignConfig config;
    config.network.width = 4;
    config.network.height = 4;
    config.workload.synthetic.injectionRate = 0.05;
    config.workload.synthetic.seed = 13;
    config.warmup = 200;
    config.observeWindow = 1200;
    config.drainLimit = 4000;
    config.maxSites = 16;
    config.runForever = false;
    config.jobs = 1;
    return config;
}

struct GroundTruth
{
    CampaignResult result;
    double detectionRate = 0.0;
};

/** Exhaustive sweep of the population, computed once per process. */
const GroundTruth &
groundTruth()
{
    static const GroundTruth truth = [] {
        GroundTruth t;
        FaultCampaign campaign(baseConfig());
        t.result = campaign.run();
        std::uint64_t detected = 0;
        for (const FaultRunResult &run : t.result.runs)
            detected += run.detected ? 1 : 0;
        t.detectionRate = static_cast<double>(detected) /
                          static_cast<double>(t.result.runs.size());
        return t;
    }();
    return truth;
}

/** Un-stratified fixed-budget sampling over the same population. */
CampaignConfig
sampledConfig(std::uint64_t sampler_seed, std::uint64_t max_runs)
{
    CampaignConfig config = baseConfig();
    config.sampling.enabled = true;
    config.sampling.stratify = Stratify::None;
    config.sampling.ciHalfWidth = 0.0; // fixed budget: no early stop
    config.sampling.maxRuns = max_runs;
    config.sampling.batchSize = static_cast<unsigned>(max_runs);
    config.sampling.samplerSeed = sampler_seed;
    return config;
}

TEST(Coverage, SampledPopulationIsTheExhaustiveSiteList)
{
    // The statistical engine must draw from *exactly* the site list
    // the exhaustive planner sweeps — otherwise the estimate targets a
    // different population than the ground truth.
    const GroundTruth &truth = groundTruth();
    const std::vector<FaultSite> population =
        sampledPopulation(baseConfig());
    ASSERT_EQ(population.size(), truth.result.runs.size());
    for (std::size_t i = 0; i < population.size(); ++i)
        EXPECT_EQ(population[i], truth.result.runs[i].site) << "i=" << i;
}

TEST(Coverage, GroundTruthRateIsInformative)
{
    // A degenerate population (all detected / none detected) would
    // make the coverage assertions vacuous; the chosen configuration
    // must keep the true rate strictly interior.
    const GroundTruth &truth = groundTruth();
    EXPECT_TRUE(truth.result.complete());
    EXPECT_GT(truth.detectionRate, 0.0);
    EXPECT_LT(truth.detectionRate, 1.0);
}

TEST(Coverage, DrawSequencesAreIndependentAcrossSamplerSeeds)
{
    // Regression: raw deriveStream is affine in (seed, index), so the
    // site pick of (seed, i) used to collide with (seed + 4, i - 1) —
    // adjacent sampler seeds produced shifted copies of one draw
    // sequence and the coverage statistics collapsed onto a handful of
    // truly independent samples. The planner must mix the seed and the
    // draw counter before stream selection.
    constexpr std::uint64_t kSeeds = 12;
    constexpr std::uint64_t kDraws = 24;
    std::vector<std::vector<std::uint64_t>> sequences;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        CampaignConfig config = sampledConfig(seed, kDraws);
        SampledPlanner planner(config,
                               sampledPopulation(config));
        std::vector<std::uint64_t> sites;
        for (std::uint64_t i = 0; i < kDraws; ++i) {
            const SampledDraw draw = planner.materialize(i, 0);
            sites.push_back(
                static_cast<std::uint64_t>(draw.site.router) * 1000 +
                static_cast<std::uint64_t>(draw.site.signal) * 100 +
                static_cast<std::uint64_t>(draw.site.port) * 10 +
                static_cast<std::uint64_t>(draw.site.vc + 1));
        }
        sequences.push_back(std::move(sites));
    }
    for (std::size_t a = 0; a < sequences.size(); ++a) {
        for (std::size_t b = a + 1; b < sequences.size(); ++b) {
            for (std::size_t shift = 0; shift <= 4; ++shift) {
                // Compare a[shift..] against b[..len-shift] and the
                // mirror image: no pair of seeds may be a (shifted)
                // copy of another.
                const std::size_t len = sequences[a].size() - shift;
                EXPECT_FALSE(
                    std::equal(sequences[a].begin() + shift,
                               sequences[a].begin() + shift + len,
                               sequences[b].begin()))
                    << "seeds " << a + 1 << " and " << b + 1
                    << " collide at shift " << shift;
                EXPECT_FALSE(
                    std::equal(sequences[b].begin() + shift,
                               sequences[b].begin() + shift + len,
                               sequences[a].begin()))
                    << "seeds " << b + 1 << " and " << a + 1
                    << " collide at shift " << shift;
            }
        }
    }
}

TEST(Coverage, SampledEngineOutcomesMatchExhaustiveTruth)
{
    // The cheap statistical sweep below replays planner draws against
    // the exhaustive ground truth instead of simulating each one;
    // this test licenses that shortcut: the full engine's per-draw
    // outcome must equal the exhaustive outcome of the drawn site.
    const GroundTruth &truth = groundTruth();
    const std::vector<FaultSite> population =
        sampledPopulation(baseConfig());
    for (const std::uint64_t seed : {1, 2}) {
        FaultCampaign campaign(sampledConfig(seed, 20));
        const CampaignResult result = campaign.run();
        ASSERT_TRUE(result.complete());
        ASSERT_EQ(result.runs.size(), 20u);

        const SamplingReport report = computeSamplingReport(result);
        ASSERT_EQ(report.pooled.draws, 20u);
        std::uint64_t detected = 0;
        for (const FaultRunResult &run : result.runs) {
            detected += run.detected ? 1 : 0;
            auto it = std::find(population.begin(), population.end(),
                                run.site);
            ASSERT_NE(it, population.end());
            const std::size_t index = static_cast<std::size_t>(
                it - population.begin());
            EXPECT_EQ(run.detected, truth.result.runs[index].detected)
                << "sampled outcome diverges from exhaustive truth for"
                   " population site "
                << index;
        }
        // The pooled estimate is the exact binomial of the draws.
        EXPECT_EQ(report.pooled.detected, detected);
    }
}

TEST(Coverage, IntervalsContainTruthAtNominalRate)
{
    const GroundTruth &truth = groundTruth();
    const std::vector<FaultSite> population =
        sampledPopulation(baseConfig());

    // Per-site outcome lookup (licensed by
    // SampledEngineOutcomesMatchExhaustiveTruth): replaying planner
    // draws against it makes a seed cost microseconds, so the sweep
    // can afford enough seeds for a sharp coverage assertion.
    auto detectedAt = [&](const FaultSite &site) {
        auto it =
            std::find(population.begin(), population.end(), site);
        EXPECT_NE(it, population.end());
        return truth.result.runs[static_cast<std::size_t>(
                                     it - population.begin())]
            .detected;
    };

    constexpr std::uint64_t kSeeds = 400;
    constexpr std::uint64_t kDraws = 20;
    std::uint64_t wilson_hits = 0;
    std::uint64_t cp_hits = 0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const CampaignConfig config = sampledConfig(seed, kDraws);
        SampledPlanner planner(config, population);
        std::uint64_t detected = 0;
        for (std::uint64_t i = 0; i < kDraws; ++i)
            detected +=
                detectedAt(planner.materialize(i, 0).site) ? 1 : 0;
        if (stats::wilsonInterval(detected, kDraws, 0.95)
                .contains(truth.detectionRate))
            ++wilson_hits;
        if (stats::clopperPearsonInterval(detected, kDraws, 0.95)
                .contains(truth.detectionRate))
            ++cp_hits;
    }

    // At n = 20 and p = truth the exact coverage of both intervals is
    // ~0.959 (they accept the same k-window here; Clopper-Pearson is
    // conservative by construction, Wilson happens to match at this
    // n). Over 400 seeds the binomial 3-sigma band around 0.959 is
    // about +/-0.030, so requiring 0.93 both stays below any plausible
    // realization and still catches the failure modes this harness
    // exists for: a biased or correlated draw stream (the affine
    // deriveStream collision produced 0.69 here) or a broken interval
    // construction. The sweep is fully seeded — the counts are
    // reproducible constants, not flaky statistics.
    EXPECT_GE(wilson_hits, 372u)
        << "Wilson coverage " << wilson_hits << "/" << kSeeds
        << " for p=" << truth.detectionRate;
    EXPECT_GE(cp_hits, 372u)
        << "Clopper-Pearson coverage " << cp_hits << "/" << kSeeds
        << " for p=" << truth.detectionRate;
}

TEST(Coverage, SingleDrawCampaignYieldsValidClampedIntervals)
{
    // n = 1 is the harshest edge case: the report must still produce
    // well-formed intervals (clamped to [0,1], non-degenerate) and the
    // campaign must classify as complete.
    FaultCampaign campaign(sampledConfig(5, 1));
    const CampaignResult result = campaign.run();
    EXPECT_TRUE(result.complete());
    EXPECT_TRUE(result.samplerDone);
    ASSERT_EQ(result.runs.size(), 1u);

    const SamplingReport report = computeSamplingReport(result);
    ASSERT_EQ(report.pooled.draws, 1u);
    for (const stats::Interval &interval :
         {report.pooled.detectedWilson,
          report.pooled.detectedClopperPearson,
          report.pooled.falseNegativeWilson,
          report.pooled.falseNegativeClopperPearson}) {
        EXPECT_GE(interval.lower, 0.0);
        EXPECT_LE(interval.upper, 1.0);
        EXPECT_LT(interval.lower, interval.upper);
    }
}

TEST(Coverage, ZeroObservedRareOutcomeStillBoundsTheRate)
{
    // The paper's headline claim is "zero false negatives": with k = 0
    // observed in n draws the Clopper-Pearson upper bound must be the
    // closed-form 1 - (alpha/2)^(1/n), a certified (conservative)
    // bound on the undetected-violation rate — never exactly zero.
    FaultCampaign campaign(sampledConfig(3, 24));
    const CampaignResult result = campaign.run();
    ASSERT_TRUE(result.complete());
    const SamplingReport report = computeSamplingReport(result);
    ASSERT_EQ(report.pooled.falseNegatives, 0u)
        << "NoCAlert missed a violation on the tiny mesh";
    EXPECT_DOUBLE_EQ(report.pooled.falseNegativeClopperPearson.lower,
                     0.0);
    EXPECT_GT(report.pooled.falseNegativeClopperPearson.upper, 0.0);
    EXPECT_LT(report.pooled.falseNegativeClopperPearson.upper, 0.2);
}

} // namespace
} // namespace nocalert::fault
