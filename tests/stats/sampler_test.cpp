/**
 * Unit tests for the stratified sequential sampler: the budget guard,
 * adaptive halting, exact draw-budget accounting, rare-outcome
 * reallocation, and plan determinism.
 */

#include "stats/sampler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace nocalert::stats {
namespace {

SamplerConfig
fixedBudget(std::uint64_t max_draws, unsigned batch)
{
    SamplerConfig config;
    config.rule.targetHalfWidth = 0.0; // never halts: budget-bounded
    config.maxDraws = max_draws;
    config.batchSize = batch;
    return config;
}

/** Record every draw of @p batch with a fixed outcome. */
void
recordAll(StratifiedSampler &sampler,
          const std::vector<std::size_t> &batch, bool success,
          bool rare = false)
{
    for (const std::size_t stratum : batch)
        sampler.record(stratum, success, rare);
}

TEST(SamplerValidate, AcceptsBoundedConfigurations)
{
    EXPECT_TRUE(StratifiedSampler::validate(SamplerConfig{}).empty());
    EXPECT_TRUE(StratifiedSampler::validate(fixedBudget(100, 10)).empty());
}

TEST(SamplerValidate, RejectsDegenerateKnobs)
{
    SamplerConfig config;
    config.batchSize = 0;
    EXPECT_FALSE(StratifiedSampler::validate(config).empty());

    config = SamplerConfig{};
    config.rule.confidence = 1.0;
    EXPECT_FALSE(StratifiedSampler::validate(config).empty());

    config = SamplerConfig{};
    config.rareBoost = 0.5;
    EXPECT_FALSE(StratifiedSampler::validate(config).empty());
}

TEST(SamplerValidate, BudgetGuardRejectsNeverHaltingRule)
{
    // A rule that can never fire plus an unbounded budget would sample
    // forever; the guard must refuse it (and the constructor aborts).
    SamplerConfig config;
    config.rule.targetHalfWidth = 0.0;
    config.maxDraws = 0;
    EXPECT_FALSE(StratifiedSampler::validate(config).empty());
    EXPECT_DEATH(StratifiedSampler(config, 1),
                 "invalid sampler config");

    // Either bound on its own restores validity.
    config.maxDraws = 10;
    EXPECT_TRUE(StratifiedSampler::validate(config).empty());
    config.maxDraws = 0;
    config.rule.targetHalfWidth = 0.05;
    EXPECT_TRUE(StratifiedSampler::validate(config).empty());
}

TEST(Sampler, MaxDrawsHonoredExactly)
{
    // 50 draws at batch size 16: batches of 16, 16, 16, then a final
    // truncated batch of 2 — never a draw past the budget.
    StratifiedSampler sampler(fixedBudget(50, 16), 1);
    std::vector<std::size_t> sizes;
    while (true) {
        const std::vector<std::size_t> batch = sampler.planBatch();
        if (batch.empty())
            break;
        sizes.push_back(batch.size());
        recordAll(sampler, batch, true);
    }
    EXPECT_EQ(sizes, (std::vector<std::size_t>{16, 16, 16, 2}));
    EXPECT_EQ(sampler.drawsPlanned(), 50u);
    EXPECT_EQ(sampler.drawsRecorded(), 50u);
    EXPECT_TRUE(sampler.done());
    EXPECT_TRUE(sampler.planBatch().empty());
}

TEST(Sampler, ExtremeRateStratumHaltsEarly)
{
    // Stratum 0 sees a degenerate 100% success rate — its Wilson
    // interval tightens fast and the rule halts it long before the
    // mixed stratum 1, whose later batches then get the whole budget.
    SamplerConfig config;
    config.rule.targetHalfWidth = 0.08;
    config.rule.minDraws = 8;
    config.batchSize = 32;
    config.maxDraws = 4096; // safety net; must not be the stopper
    StratifiedSampler sampler(config, 2);

    std::uint64_t batches = 0;
    std::uint64_t batches_after_halt0 = 0;
    while (true) {
        const std::vector<std::size_t> batch = sampler.planBatch();
        if (batch.empty())
            break;
        ++batches;
        if (sampler.strata()[0].halted) {
            ++batches_after_halt0;
            for (const std::size_t stratum : batch)
                EXPECT_EQ(stratum, 1u) << "draw for a halted stratum";
        }
        std::uint64_t i = 0;
        for (const std::size_t stratum : batch) {
            // Stratum 1 alternates success/failure (p = 1/2, the
            // widest interval), stratum 0 always succeeds.
            const bool success = stratum == 0 || (i++ % 2 == 0);
            sampler.record(stratum, success, false);
        }
    }

    EXPECT_TRUE(sampler.strata()[0].halted);
    EXPECT_TRUE(sampler.strata()[1].halted);
    EXPECT_GT(batches_after_halt0, 0u)
        << "stratum 0 should halt while stratum 1 keeps drawing";
    EXPECT_LT(sampler.strata()[0].draws, sampler.strata()[1].draws);
    // Adaptive stop fired, not the safety budget.
    EXPECT_LT(sampler.drawsPlanned(), config.maxDraws);
}

TEST(Sampler, RareOutcomeReallocationBoostsStratum)
{
    // Two strata with identical counts except stratum 1 exhibited a
    // rare outcome: with the default 4x boost it must receive more of
    // the next batch than stratum 0.
    SamplerConfig config = fixedBudget(1000, 20);
    config.rule.minDraws = 4;
    StratifiedSampler sampler(config, 2);

    std::vector<std::size_t> batch = sampler.planBatch();
    std::uint64_t i = 0;
    for (const std::size_t stratum : batch) {
        const bool success = (i++ % 2) == 0;
        // First draw landing in stratum 1 is marked rare.
        const bool rare =
            stratum == 1 && sampler.strata()[1].rare == 0;
        sampler.record(stratum, success, rare);
    }

    batch = sampler.planBatch();
    std::uint64_t to0 = 0;
    std::uint64_t to1 = 0;
    for (const std::size_t stratum : batch)
        (stratum == 0 ? to0 : to1) += 1;
    EXPECT_GT(to1, to0) << "rare-outcome stratum must be boosted";
}

TEST(Sampler, ReallocationCanBeDisabled)
{
    SamplerConfig config = fixedBudget(1000, 20);
    config.rule.minDraws = 4;
    config.reallocate = false;
    StratifiedSampler sampler(config, 2);

    std::vector<std::size_t> batch = sampler.planBatch();
    std::uint64_t i = 0;
    for (const std::size_t stratum : batch) {
        const bool success = (i++ % 2) == 0;
        sampler.record(stratum, success, stratum == 1);
    }

    // Same observed rates in both strata and no boost: the split of
    // the next batch must be even.
    ASSERT_EQ(sampler.strata()[0].successes * 2,
              sampler.strata()[0].draws);
    ASSERT_EQ(sampler.strata()[1].successes * 2,
              sampler.strata()[1].draws);
    batch = sampler.planBatch();
    std::uint64_t to0 = 0;
    std::uint64_t to1 = 0;
    for (const std::size_t stratum : batch)
        (stratum == 0 ? to0 : to1) += 1;
    EXPECT_EQ(to0, to1);
}

TEST(Sampler, BatchPlansAreDeterministic)
{
    // Two samplers fed the identical outcome stream must plan the
    // identical batch sequence — the foundation of the campaign's
    // byte-identical-across-jobs guarantee.
    SamplerConfig config;
    config.rule.targetHalfWidth = 0.1;
    config.batchSize = 24;
    config.maxDraws = 600;
    StratifiedSampler a(config, 3);
    StratifiedSampler b(config, 3);

    std::uint64_t i = 0;
    while (true) {
        const std::vector<std::size_t> batch_a = a.planBatch();
        const std::vector<std::size_t> batch_b = b.planBatch();
        ASSERT_EQ(batch_a, batch_b);
        if (batch_a.empty())
            break;
        for (const std::size_t stratum : batch_a) {
            const bool success = (i % 3) != 0;
            const bool rare = (i % 17) == 0;
            a.record(stratum, success, rare);
            b.record(stratum, success, rare);
            ++i;
        }
    }
    EXPECT_EQ(a.drawsPlanned(), b.drawsPlanned());
}

TEST(SamplerDeath, PlanBeforeRecordingPreviousBatchAborts)
{
    StratifiedSampler sampler(fixedBudget(100, 10), 1);
    const std::vector<std::size_t> batch = sampler.planBatch();
    ASSERT_FALSE(batch.empty());
    EXPECT_DEATH(sampler.planBatch(),
                 "planBatch before the previous batch was recorded");
}

TEST(SamplerDeath, RecordWithoutOutstandingDrawAborts)
{
    StratifiedSampler sampler(fixedBudget(100, 10), 1);
    EXPECT_DEATH(sampler.record(0, true, false),
                 "record without a planned draw outstanding");
}

} // namespace
} // namespace nocalert::stats
