/**
 * Write-ahead submission journal battery: record encode/decode round
 * trips, rejection of every flavor of damage (bad magic, flipped
 * bits, truncation), replay folding (submit/start/cancel/complete/
 * fail, resubmission after settlement), torn-tail and mid-file
 * corruption recovery, and compaction down to the live set — the
 * exact moves the daemon makes after a kill -9.
 */

#include "serve/journal.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "fault/serialize.hpp"
#include "util/fsio.hpp"

namespace nocalert::serve {
namespace {

namespace fs = std::filesystem;

fault::CampaignConfig
tinySpec(std::uint64_t traffic_seed)
{
    fault::CampaignConfig config;
    config.network.width = 4;
    config.network.height = 4;
    config.workload.synthetic.injectionRate = 0.05;
    config.workload.synthetic.seed = traffic_seed;
    config.warmup = 80;
    config.observeWindow = 400;
    config.drainLimit = 2000;
    config.maxSites = 3;
    config.runForever = false;
    return config;
}

JournalRecord
submitRecord(const std::string &id, std::uint64_t seed,
             bool detach = true)
{
    JournalRecord record;
    record.op = JournalRecord::Op::Submit;
    record.id = id;
    record.config = tinySpec(seed);
    record.detach = detach;
    return record;
}

JournalRecord
bareRecord(JournalRecord::Op op, const std::string &id)
{
    JournalRecord record;
    record.op = op;
    record.id = id;
    return record;
}

class JournalTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("nocalert_journal_" + std::to_string(::getpid()) +
                "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
        path_ = (dir_ / "journal.wal").string();
    }

    void TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    /** Append raw bytes bypassing the journal (damage injection). */
    void appendRaw(const std::string &bytes)
    {
        std::ofstream file(path_, std::ios::binary | std::ios::app);
        file.write(bytes.data(),
                   static_cast<std::streamsize>(bytes.size()));
    }

    fs::path dir_;
    std::string path_;
};

TEST_F(JournalTest, EncodeDecodeRoundTripsEveryOp)
{
    const JournalRecord submit = submitRecord("abc123", 7, false);
    const std::string line = SubmissionJournal::encodeRecord(submit);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    const auto decoded = SubmissionJournal::decodeLine(
        std::string_view(line).substr(0, line.size() - 1));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->op, JournalRecord::Op::Submit);
    EXPECT_EQ(decoded->id, "abc123");
    EXPECT_FALSE(decoded->detach);
    ASSERT_TRUE(decoded->config.has_value());
    EXPECT_EQ(fault::campaignArtifactHash(*decoded->config),
              fault::campaignArtifactHash(tinySpec(7)));

    for (const JournalRecord::Op op :
         {JournalRecord::Op::Start, JournalRecord::Op::Cancel,
          JournalRecord::Op::Complete}) {
        const std::string encoded =
            SubmissionJournal::encodeRecord(bareRecord(op, "xyz"));
        const auto back = SubmissionJournal::decodeLine(
            std::string_view(encoded).substr(0, encoded.size() - 1));
        ASSERT_TRUE(back.has_value()) << journalOpName(op);
        EXPECT_EQ(back->op, op);
        EXPECT_EQ(back->id, "xyz");
    }

    JournalRecord fail = bareRecord(JournalRecord::Op::Fail, "xyz");
    fail.message = "golden run cannot drain";
    const std::string encoded = SubmissionJournal::encodeRecord(fail);
    const auto back = SubmissionJournal::decodeLine(
        std::string_view(encoded).substr(0, encoded.size() - 1));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->op, JournalRecord::Op::Fail);
    EXPECT_EQ(back->message, "golden run cannot drain");
}

TEST_F(JournalTest, DecodeRejectsEveryFlavorOfDamage)
{
    std::string line = SubmissionJournal::encodeRecord(
        bareRecord(JournalRecord::Op::Start, "abc"));
    line.pop_back(); // decodeLine takes the line sans newline.

    EXPECT_TRUE(SubmissionJournal::decodeLine(line).has_value());
    // Wrong magic.
    std::string magic = line;
    magic[0] = 'X';
    EXPECT_FALSE(SubmissionJournal::decodeLine(magic).has_value());
    // A flipped payload bit breaks the CRC.
    std::string flipped = line;
    flipped[flipped.size() - 2] ^= 0x01;
    EXPECT_FALSE(SubmissionJournal::decodeLine(flipped).has_value());
    // A flipped CRC digit breaks the CRC the other way.
    std::string crcFlip = line;
    crcFlip[4] = crcFlip[4] == '0' ? '1' : '0';
    EXPECT_FALSE(SubmissionJournal::decodeLine(crcFlip).has_value());
    // Truncation (a torn write) never decodes.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{3}, std::size_t{12},
          line.size() - 1}) {
        EXPECT_FALSE(SubmissionJournal::decodeLine(
                         std::string_view(line).substr(0, keep))
                         .has_value())
            << "kept " << keep;
    }
    // A valid frame around non-record JSON is still rejected.
    const std::string payload = "{\"op\":\"submit\",\"id\":\"\"}";
    EXPECT_FALSE(SubmissionJournal::decodeLine(
                     "NJ1 " + crc32Hex(crc32(payload)) + " " + payload)
                     .has_value());
}

TEST_F(JournalTest, ReplayOfMissingFileIsCleanFirstBoot)
{
    SubmissionJournal journal(path_);
    const JournalReplay replay = journal.replay();
    EXPECT_TRUE(replay.pending.empty());
    EXPECT_TRUE(replay.completed.empty());
    EXPECT_EQ(replay.recordsReplayed, 0u);
    EXPECT_EQ(replay.recordsCorrupt, 0u);
    EXPECT_EQ(replay.bytesDroppedAtTail, 0u);
}

TEST_F(JournalTest, ReplayFoldsLifecyclesPerId)
{
    SubmissionJournal journal(path_);
    // A: submitted, never started.      -> pending, !started
    // B: submitted + started.           -> pending, started
    // C: ran to completion.             -> completed
    // D: cancelled.                     -> settled, gone
    // E: failed.                        -> settled, gone
    ASSERT_TRUE(journal.append(submitRecord("a", 1)));
    ASSERT_TRUE(journal.append(submitRecord("b", 2)));
    ASSERT_TRUE(
        journal.append(bareRecord(JournalRecord::Op::Start, "b")));
    ASSERT_TRUE(journal.append(submitRecord("c", 3)));
    ASSERT_TRUE(
        journal.append(bareRecord(JournalRecord::Op::Complete, "c")));
    ASSERT_TRUE(journal.append(submitRecord("d", 4)));
    ASSERT_TRUE(
        journal.append(bareRecord(JournalRecord::Op::Cancel, "d")));
    ASSERT_TRUE(journal.append(submitRecord("e", 5)));
    ASSERT_TRUE(
        journal.append(bareRecord(JournalRecord::Op::Fail, "e")));
    EXPECT_EQ(journal.appendCount(), 9u);

    const JournalReplay replay = journal.replay();
    EXPECT_EQ(replay.recordsReplayed, 9u);
    EXPECT_EQ(replay.recordsCorrupt, 0u);
    EXPECT_EQ(replay.bytesDroppedAtTail, 0u);
    ASSERT_EQ(replay.pending.size(), 2u);
    EXPECT_EQ(replay.pending[0].id, "a"); // Submit order preserved.
    EXPECT_FALSE(replay.pending[0].started);
    EXPECT_EQ(replay.pending[1].id, "b");
    EXPECT_TRUE(replay.pending[1].started);
    ASSERT_EQ(replay.completed.size(), 1u);
    EXPECT_EQ(replay.completed[0].id, "c");
    ASSERT_TRUE(replay.completed[0].config.has_value());
    EXPECT_EQ(fault::campaignArtifactHash(*replay.completed[0].config),
              fault::campaignArtifactHash(tinySpec(3)));
}

TEST_F(JournalTest, ResubmissionAfterSettlementReopensTheId)
{
    SubmissionJournal journal(path_);
    ASSERT_TRUE(journal.append(submitRecord("a", 1)));
    ASSERT_TRUE(
        journal.append(bareRecord(JournalRecord::Op::Cancel, "a")));
    ASSERT_TRUE(journal.append(submitRecord("a", 1)));

    const JournalReplay replay = journal.replay();
    ASSERT_EQ(replay.pending.size(), 1u);
    EXPECT_EQ(replay.pending[0].id, "a");
    EXPECT_TRUE(replay.completed.empty());
}

TEST_F(JournalTest, TornTailIsDroppedNotTrusted)
{
    SubmissionJournal journal(path_);
    ASSERT_TRUE(journal.append(submitRecord("a", 1)));
    // The exact failure kill -9 manufactures: a record cut mid-write.
    const std::string torn = SubmissionJournal::encodeRecord(
        submitRecord("b", 2));
    appendRaw(torn.substr(0, torn.size() / 2));

    const JournalReplay replay = journal.replay();
    EXPECT_EQ(replay.recordsReplayed, 1u);
    EXPECT_EQ(replay.recordsCorrupt, 0u);
    EXPECT_EQ(replay.bytesDroppedAtTail, torn.size() / 2);
    ASSERT_EQ(replay.pending.size(), 1u);
    EXPECT_EQ(replay.pending[0].id, "a");
}

TEST_F(JournalTest, BitFlippedRecordIsSkippedAndReplayResyncs)
{
    SubmissionJournal journal(path_);
    ASSERT_TRUE(journal.append(submitRecord("a", 1)));
    std::string damaged = SubmissionJournal::encodeRecord(
        submitRecord("b", 2));
    damaged[damaged.size() / 2] ^= 0x20; // Flip a payload bit.
    appendRaw(damaged);
    ASSERT_TRUE(journal.append(submitRecord("c", 3)));

    const JournalReplay replay = journal.replay();
    EXPECT_EQ(replay.recordsReplayed, 2u);
    EXPECT_EQ(replay.recordsCorrupt, 1u);
    ASSERT_EQ(replay.pending.size(), 2u);
    EXPECT_EQ(replay.pending[0].id, "a");
    EXPECT_EQ(replay.pending[1].id, "c"); // Resynced past the damage.
}

TEST_F(JournalTest, CompactRewritesToExactlyTheLiveSet)
{
    SubmissionJournal journal(path_);
    ASSERT_TRUE(journal.append(submitRecord("a", 1)));
    ASSERT_TRUE(
        journal.append(bareRecord(JournalRecord::Op::Start, "a")));
    ASSERT_TRUE(journal.append(submitRecord("b", 2)));
    ASSERT_TRUE(
        journal.append(bareRecord(JournalRecord::Op::Complete, "b")));
    appendRaw("NJ1 deadbeef {\"to"); // Torn tail to clean out.

    JournalReplay before = journal.replay();
    ASSERT_EQ(before.pending.size(), 1u);
    ASSERT_TRUE(journal.compact(before.pending));

    // The compacted journal replays to the same live set, and the
    // debris (settled records, torn tail) is gone from disk.
    const JournalReplay after = journal.replay();
    EXPECT_EQ(after.recordsReplayed, 2u); // submit a + start a.
    EXPECT_EQ(after.recordsCorrupt, 0u);
    EXPECT_EQ(after.bytesDroppedAtTail, 0u);
    ASSERT_EQ(after.pending.size(), 1u);
    EXPECT_EQ(after.pending[0].id, "a");
    EXPECT_TRUE(after.pending[0].started);
    EXPECT_TRUE(after.completed.empty());

    // Appending after compaction still works (appender reopens).
    ASSERT_TRUE(journal.append(submitRecord("c", 3)));
    EXPECT_EQ(journal.replay().pending.size(), 2u);
}

TEST_F(JournalTest, AppendFailsCleanlyOnMissingDirectory)
{
    SubmissionJournal journal(
        (dir_ / "absent" / "journal.wal").string());
    std::string error;
    EXPECT_FALSE(journal.append(submitRecord("a", 1), &error));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(journal.appendCount(), 0u);
}

} // namespace
} // namespace nocalert::serve
